"""ARM v5 (user-mode subset)."""

import os

from repro.isa.arm.abi import ABI
from repro.isa.arm.assembler import ArmAssembler
from repro.isa.base import IsaBundle, register

BUNDLE = register(
    IsaBundle(
        name="arm",
        package_dir=os.path.dirname(__file__),
        isa_file="arm.lis",
        os_file="arm_os.lis",
        buildset_file="arm_buildsets.lis",
        abi=ABI,
        assembler_factory=ArmAssembler,
    )
)

__all__ = ["ABI", "BUNDLE", "ArmAssembler"]
