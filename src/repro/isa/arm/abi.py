"""ARM EABI-style syscall and stack conventions."""

from repro.sysemu.syscalls import SyscallABI

#: r7 carries the syscall number, r0-r2 the arguments, r0 the result;
#: r13 is the stack pointer.
ABI = SyscallABI(
    regfile="R",
    number_reg=7,
    arg_regs=(0, 1, 2),
    ret_reg=0,
    error_reg=None,
    stack_reg=13,
)
