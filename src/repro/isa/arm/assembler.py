"""Two-pass assembler for the ARM v5 subset.

Standard ARM syntax with condition and S suffixes::

    add     r0, r1, r2, lsl #2
    subs    r3, r3, #1
    moveq   r0, #0
    ldr     r4, [sp, #8]
    str     r4, [r1], #4        @ post-indexed
    ldrh    r5, [r2, #2]
    bl      func
    bne     loop
    swi     #0
    li      r0, 0x12345678      @ pseudo: mov + 3 orr (always 4 words)
"""

from __future__ import annotations

import re

from repro.isa.asmcore import AsmContext, AsmError, Assembler

REG_ALIASES = {"sp": 13, "lr": 14, "pc": 15, "fp": 11, "ip": 12, "sl": 10}

CONDITIONS = {
    "eq": 0, "ne": 1, "cs": 2, "hs": 2, "cc": 3, "lo": 3, "mi": 4, "pl": 5,
    "vs": 6, "vc": 7, "hi": 8, "ls": 9, "ge": 10, "lt": 11, "gt": 12,
    "le": 13, "al": 14,
}

DP_OPS = {
    "and": 0x0, "eor": 0x1, "sub": 0x2, "rsb": 0x3, "add": 0x4, "adc": 0x5,
    "sbc": 0x6, "orr": 0xC, "mov": 0xD, "bic": 0xE, "mvn": 0xF,
}
DP_COMPARES = {"tst": 0x8, "teq": 0x9, "cmp": 0xA, "cmn": 0xB}
SHIFT_NAMES = {"lsl": 0, "lsr": 1, "asr": 2, "ror": 3}

# Base mnemonics ordered longest-first so suffix stripping is unambiguous.
_BASES = sorted(
    list(DP_OPS)
    + list(DP_COMPARES)
    + ["ldrsb", "ldrsh", "ldrb", "ldrh", "strb", "strh", "ldr", "str"]
    + ["mul", "mla", "clz", "mrs", "msr", "swi", "bx", "bl", "b"]
    + ["lsl", "lsr", "asr", "ror", "li", "nop", "push1", "pop1"],
    key=len,
    reverse=True,
)


def encode_rotated_imm(value: int) -> int | None:
    """Encode a 32-bit constant as an 8-bit value with even rotation."""
    value &= 0xFFFFFFFF
    for rot in range(16):
        rotated = ((value << (2 * rot)) | (value >> (32 - 2 * rot))) & 0xFFFFFFFF
        if rot == 0:
            rotated = value
        if rotated < 256:
            return (rot << 8) | rotated
    return None


class ArmAssembler(Assembler):
    """Assembler for the ARM subset described in ``arm.lis``."""

    ilen = 4
    endian = "little"
    # '#' introduces immediates on ARM, so comments are '@', ';' or '//'.
    comment_re = re.compile(r"(?:;|//|@).*")

    # -- mnemonic splitting ----------------------------------------------------

    _S_ALLOWED = frozenset(DP_OPS) | frozenset(SHIFT_NAMES) | {"mul", "mla"}

    def split_mnemonic(self, mnemonic: str, lineno: int) -> tuple[str, int, int]:
        """Return (base, cond, s_bit); tries longer bases first, so an
        ambiguous spelling like ``bls`` resolves to ``b``+``ls`` because
        ``bl`` cannot take an S suffix."""
        for base in _BASES:
            if not mnemonic.startswith(base):
                continue
            rest = mnemonic[len(base) :]
            s_bit = 0
            if rest.endswith("s") and base in self._S_ALLOWED:
                if rest[:-1] in CONDITIONS or rest[:-1] == "":
                    s_bit = 1
                    rest = rest[:-1]
            if rest == "":
                return base, 14, s_bit
            if rest in CONDITIONS:
                return base, CONDITIONS[rest], s_bit
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno)

    def register(self, text: str, lineno: int) -> int:
        text = text.strip().lower()
        if text in REG_ALIASES:
            return REG_ALIASES[text]
        if re.fullmatch(r"r\d{1,2}", text):
            number = int(text[1:])
            if number < 16:
                return number
        raise AsmError(f"expected register, got {text!r}", lineno)

    # -- operand2 ------------------------------------------------------------------

    def _operand2(self, parts: list[str], ctx: AsmContext) -> tuple[int, int]:
        """Encode a data-processing flexible operand -> (i_bit, bits)."""
        first = parts[0].strip()
        if first.startswith("#"):
            value = self.evaluate(first[1:], ctx)
            encoded = encode_rotated_imm(value)
            if encoded is None:
                raise AsmError(
                    f"immediate {value:#x} not encodable as rotated 8-bit",
                    ctx.lineno,
                )
            return 1, encoded
        rm = self.register(first, ctx.lineno)
        if len(parts) == 1:
            return 0, rm
        shift = parts[1].strip().lower()
        match = re.fullmatch(r"(lsl|lsr|asr|ror)\s+(.+)", shift)
        if not match:
            raise AsmError(f"bad shift specifier {shift!r}", ctx.lineno)
        kind = SHIFT_NAMES[match.group(1)]
        amount = match.group(2).strip()
        if amount.startswith("#"):
            value = self.evaluate(amount[1:], ctx)
            if value == 32 and kind in (1, 2):
                value = 0  # LSR/ASR #32 encode as shift_imm 0
            else:
                value = self.check_range(value, 5, False, ctx.lineno, "shift amount")
            return 0, (value << 7) | (kind << 5) | rm
        rs = self.register(amount, ctx.lineno)
        return 0, (rs << 8) | (kind << 5) | 0x10 | rm

    # -- memory addressing ------------------------------------------------------------

    def _address(self, text: str, ctx: AsmContext, halfword: bool):
        """Parse '[rn, ...]' forms -> (p, u, w, rn, offset_bits, i_flag)."""
        text = text.strip()
        writeback = text.endswith("!")
        if writeback:
            text = text[:-1].strip()
        post = False
        match = re.fullmatch(r"\[([^\]]+)\]\s*(?:,\s*(.+))?", text, re.S)
        if not match:
            raise AsmError(f"bad address {text!r}", ctx.lineno)
        inner = match.group(1)
        trailing = match.group(2)
        if trailing is not None:
            post = True
        parts = self.split_operands(inner)
        rn = self.register(parts[0], ctx.lineno)
        offset_text = None
        if post:
            offset_text = trailing
        elif len(parts) > 1:
            offset_text = ", ".join(parts[1:])
        p_bit = 0 if post else 1
        u_bit = 1
        if offset_text is None:
            return p_bit, u_bit, 0, rn, 0, 0
        offset_text = offset_text.strip()
        if offset_text.startswith("#"):
            value = self.evaluate(offset_text[1:], ctx)
            if value < 0:
                u_bit, value = 0, -value
            bits = 8 if halfword else 12
            value = self.check_range(value, bits, False, ctx.lineno, "offset")
            return p_bit, u_bit, 1 if writeback else 0, rn, value, 0
        negative = offset_text.startswith("-")
        if negative:
            u_bit = 0
            offset_text = offset_text[1:]
        if "," in offset_text:
            if halfword:
                raise AsmError("halfword transfers take register or #imm", ctx.lineno)
            reg_text, shift_text = (s.strip() for s in offset_text.split(",", 1))
            rm = self.register(reg_text, ctx.lineno)
            match = re.fullmatch(r"(lsl|lsr|asr|ror)\s+#(.+)", shift_text.lower())
            if not match:
                raise AsmError(f"bad offset shift {shift_text!r}", ctx.lineno)
            kind = SHIFT_NAMES[match.group(1)]
            amount = self.check_range(
                self.evaluate(match.group(2), ctx), 5, False, ctx.lineno, "shift"
            )
            bits = (amount << 7) | (kind << 5) | rm
            return p_bit, u_bit, 1 if writeback else 0, rn, bits, 1
        rm = self.register(offset_text, ctx.lineno)
        return p_bit, u_bit, 1 if writeback else 0, rn, rm, 1

    # -- encoding --------------------------------------------------------------------------

    def instruction_size(self, mnemonic: str, operands: list[str]) -> int:
        base = mnemonic
        for candidate in _BASES:
            if mnemonic.startswith(candidate):
                base = candidate
                break
        return 16 if base == "li" else 4

    def encode(self, mnemonic: str, operands: list[str], ctx: AsmContext) -> list[int]:
        base, cond, s_bit = self.split_mnemonic(mnemonic, ctx.lineno)
        c = cond << 28
        lineno = ctx.lineno

        if base in DP_OPS:
            op = DP_OPS[base]
            if base in ("mov", "mvn"):
                rd = self.register(operands[0], lineno)
                i_bit, bits = self._operand2(operands[1:], ctx)
                return [c | (i_bit << 25) | (op << 21) | (s_bit << 20) | (rd << 12) | bits]
            rd = self.register(operands[0], lineno)
            rn = self.register(operands[1], lineno)
            i_bit, bits = self._operand2(operands[2:], ctx)
            return [
                c | (i_bit << 25) | (op << 21) | (s_bit << 20) | (rn << 16)
                | (rd << 12) | bits
            ]
        if base in DP_COMPARES:
            op = DP_COMPARES[base]
            rn = self.register(operands[0], lineno)
            i_bit, bits = self._operand2(operands[1:], ctx)
            return [c | (i_bit << 25) | (op << 21) | (1 << 20) | (rn << 16) | bits]
        if base in SHIFT_NAMES:
            # lsl rd, rm, #n  ->  mov rd, rm, lsl #n
            rd = self.register(operands[0], lineno)
            i_bit, bits = self._operand2(
                [operands[1], f"{base} {operands[2]}"], ctx
            )
            return [c | (0xD << 21) | (s_bit << 20) | (rd << 12) | bits]
        if base in ("ldr", "ldrb", "str", "strb"):
            rd = self.register(operands[0], lineno)
            p, u, w, rn, off, ireg = self._address(
                ", ".join(operands[1:]), ctx, halfword=False
            )
            l_bit = 1 if base.startswith("ldr") else 0
            b_bit = 1 if base.endswith("b") else 0
            return [
                c | (1 << 26) | (ireg << 25) | (p << 24) | (u << 23) | (b_bit << 22)
                | (w << 21) | (l_bit << 20) | (rn << 16) | (rd << 12) | off
            ]
        if base in ("ldrh", "strh", "ldrsb", "ldrsh"):
            rd = self.register(operands[0], lineno)
            p, u, w, rn, off, ireg = self._address(
                ", ".join(operands[1:]), ctx, halfword=True
            )
            sh = {"ldrh": 1, "strh": 1, "ldrsb": 2, "ldrsh": 3}[base]
            l_bit = 0 if base == "strh" else 1
            if ireg:
                imm22, off_hi, off_lo = 0, 0, off
            else:
                imm22, off_hi, off_lo = 1, (off >> 4) & 0xF, off & 0xF
            return [
                c | (p << 24) | (u << 23) | (imm22 << 22) | (w << 21) | (l_bit << 20)
                | (rn << 16) | (rd << 12) | (off_hi << 8) | 0x90 | (sh << 5) | off_lo
            ]
        if base in ("mul", "mla"):
            rd = self.register(operands[0], lineno)
            rm = self.register(operands[1], lineno)
            rs = self.register(operands[2], lineno)
            word = c | (s_bit << 20) | (rd << 16) | (rs << 8) | 0x90 | rm
            if base == "mla":
                rn = self.register(operands[3], lineno)
                word |= (1 << 21) | (rn << 12)
            return [word]
        if base in ("b", "bl"):
            dest = self.evaluate(operands[0], ctx)
            disp = (dest - (ctx.addr + 8)) // 4
            if ctx.pass_index == 2:
                disp = self.check_range(disp, 24, True, lineno, "branch offset")
            link = 1 if base == "bl" else 0
            return [c | (0x5 << 25) | (link << 24) | (disp & 0xFFFFFF)]
        if base == "bx":
            rm = self.register(operands[0], lineno)
            return [c | 0x012FFF10 | rm]
        if base == "clz":
            rd = self.register(operands[0], lineno)
            rm = self.register(operands[1], lineno)
            return [c | (0x16F << 16) | (rd << 12) | 0xF10 | rm]
        if base == "mrs":
            rd = self.register(operands[0], lineno)
            return [c | (0x10F << 16) | (rd << 12)]
        if base == "msr":
            # msr cpsr_f, rm
            rm = self.register(operands[1], lineno)
            return [c | (0x12 << 20) | (0x8 << 16) | 0xF000 | rm]
        if base == "swi":
            imm = operands[0].lstrip("#") if operands else "0"
            return [c | (0xF << 24) | (self.evaluate(imm, ctx) & 0xFFFFFF)]
        if base == "nop":
            return [0xE1A00000]  # mov r0, r0
        if base == "li":
            # Load a full 32-bit constant: mov + 3x orr (stable 4 words).
            rd = self.register(operands[0], lineno)
            value = self.evaluate(operands[1], ctx) & 0xFFFFFFFF
            words = [c | (1 << 25) | (0xD << 21) | (rd << 12) | (value & 0xFF)]
            for rot_byte in (1, 2, 3):
                chunk = (value >> (8 * rot_byte)) & 0xFF
                rot = (16 - rot_byte * 4) % 16
                operand2 = (rot << 8) | chunk
                words.append(
                    c | (1 << 25) | (0xC << 21) | (rd << 16) | (rd << 12) | operand2
                )
            return words
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno)
