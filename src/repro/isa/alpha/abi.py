"""Alpha OSF/1-style syscall and stack conventions."""

from repro.sysemu.syscalls import SyscallABI

#: v0 carries the syscall number, a0-a2 the arguments, v0 the result,
#: a3 the error flag; $30 is the stack pointer.
ABI = SyscallABI(
    regfile="R",
    number_reg=0,
    arg_regs=(16, 17, 18),
    ret_reg=0,
    error_reg=19,
    stack_reg=30,
)

#: PALcode function used to enter the OS (callsys).
CALLSYS = 0x83
