"""Alpha (user-mode integer subset)."""

import os

from repro.isa.alpha.abi import ABI, CALLSYS
from repro.isa.alpha.assembler import AlphaAssembler
from repro.isa.base import IsaBundle, register

BUNDLE = register(
    IsaBundle(
        name="alpha",
        package_dir=os.path.dirname(__file__),
        isa_file="alpha.lis",
        os_file="alpha_os.lis",
        buildset_file="alpha_buildsets.lis",
        abi=ABI,
        assembler_factory=AlphaAssembler,
    )
)

__all__ = ["ABI", "BUNDLE", "CALLSYS", "AlphaAssembler"]
