"""Two-pass assembler for the Alpha subset.

Syntax follows OSF-style Alpha assembly::

    addq  $1, $2, $3        # register form
    addq  $1, 200, $3       # 8-bit literal form
    ldq   $4, 16($sp)       # memory displacement
    beq   $1, loop          # branch to label
    jmp   $26, ($27)        # indirect jump
    call_pal 0x83           # syscall entry
    li    $1, 0x12345678    # pseudo: ldah+lda pair (always 2 words)
"""

from __future__ import annotations

import re

from repro.isa.asmcore import AsmContext, AsmError, Assembler, hi16, lo16

REG_ALIASES = {
    "v0": 0, "t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7,
    "t7": 8, "s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14,
    "fp": 15, "s6": 15, "a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20,
    "a5": 21, "t8": 22, "t9": 23, "t10": 24, "t11": 25, "ra": 26, "pv": 27,
    "t12": 27, "at": 28, "gp": 29, "sp": 30, "zero": 31,
}

_MEM_OPERAND = re.compile(r"^(.*?)\(\s*(\$[A-Za-z0-9]+)\s*\)$")

OPERATES = {
    # mnemonic: (opcode, func)
    "addl": (0x10, 0x00), "s4addl": (0x10, 0x02), "subl": (0x10, 0x09),
    "s4subl": (0x10, 0x0B), "cmpbge": (0x10, 0x0F), "s8addl": (0x10, 0x12),
    "s8subl": (0x10, 0x1B), "cmpult": (0x10, 0x1D), "addq": (0x10, 0x20),
    "s4addq": (0x10, 0x22), "subq": (0x10, 0x29), "s4subq": (0x10, 0x2B),
    "cmpeq": (0x10, 0x2D), "s8addq": (0x10, 0x32), "s8subq": (0x10, 0x3B),
    "cmpule": (0x10, 0x3D), "cmplt": (0x10, 0x4D), "cmple": (0x10, 0x6D),
    "and": (0x11, 0x00), "bic": (0x11, 0x08), "cmovlbs": (0x11, 0x14),
    "cmovlbc": (0x11, 0x16), "bis": (0x11, 0x20), "cmoveq": (0x11, 0x24),
    "cmovne": (0x11, 0x26), "ornot": (0x11, 0x28), "xor": (0x11, 0x40),
    "cmovlt": (0x11, 0x44), "cmovge": (0x11, 0x46), "eqv": (0x11, 0x48),
    "cmovle": (0x11, 0x64), "cmovgt": (0x11, 0x66),
    "mskbl": (0x12, 0x02), "extbl": (0x12, 0x06), "insbl": (0x12, 0x0B),
    "extwl": (0x12, 0x16), "extll": (0x12, 0x26), "zap": (0x12, 0x30),
    "zapnot": (0x12, 0x31), "srl": (0x12, 0x34), "extql": (0x12, 0x36),
    "sll": (0x12, 0x39), "sra": (0x12, 0x3C),
    "mull": (0x13, 0x00), "mulq": (0x13, 0x20), "umulh": (0x13, 0x30),
}

MEMORIES = {
    "lda": 0x08, "ldah": 0x09, "ldbu": 0x0A, "ldq_u": 0x0B, "ldwu": 0x0C,
    "stw": 0x0D, "stb": 0x0E, "stq_u": 0x0F, "ldl": 0x28, "ldq": 0x29,
    "stl": 0x2C, "stq": 0x2D,
}

BRANCHES = {
    "br": 0x30, "bsr": 0x34, "blbc": 0x38, "beq": 0x39, "blt": 0x3A,
    "ble": 0x3B, "blbs": 0x3C, "bne": 0x3D, "bge": 0x3E, "bgt": 0x3F,
}


class AlphaAssembler(Assembler):
    """Assembler for the Alpha subset described in ``alpha.lis``."""

    ilen = 4
    endian = "little"

    def register(self, text: str, lineno: int) -> int:
        text = text.strip()
        if not text.startswith("$"):
            raise AsmError(f"expected register, got {text!r}", lineno)
        body = text[1:].lower()
        if body.isdigit():
            number = int(body)
            if number > 31:
                raise AsmError(f"no register {text}", lineno)
            return number
        if body in REG_ALIASES:
            return REG_ALIASES[body]
        raise AsmError(f"no register {text}", lineno)

    def _mem(self, opcode: int, ra: int, operand: str, ctx: AsmContext) -> int:
        match = _MEM_OPERAND.match(operand.strip())
        if match:
            disp_text, base_text = match.group(1).strip() or "0", match.group(2)
            base = self.register(base_text, ctx.lineno)
        else:
            disp_text, base = operand, 31
        disp = self.evaluate(disp_text, ctx)
        disp = self.check_range(disp, 16, True, ctx.lineno, "displacement")
        return (opcode << 26) | (ra << 21) | (base << 16) | disp

    def _operate(self, opcode: int, func: int, operands: list[str], ctx) -> int:
        if len(operands) != 3:
            raise AsmError("operate form needs 3 operands", ctx.lineno)
        ra = self.register(operands[0], ctx.lineno)
        rc = self.register(operands[2], ctx.lineno)
        word = (opcode << 26) | (ra << 21) | (func << 5) | rc
        src2 = operands[1].strip()
        if src2.startswith("$"):
            return word | (self.register(src2, ctx.lineno) << 16)
        lit = self.evaluate(src2, ctx)
        lit = self.check_range(lit, 8, False, ctx.lineno, "literal")
        return word | (lit << 13) | (1 << 12)

    def _branch(self, opcode: int, ra: int, target: str, ctx: AsmContext) -> int:
        dest = self.evaluate(target, ctx)
        disp = (dest - (ctx.addr + 4)) // 4
        if ctx.pass_index == 2:
            disp = self.check_range(disp, 21, True, ctx.lineno, "branch displacement")
        return (opcode << 26) | (ra << 21) | (disp & 0x1FFFFF)

    def instruction_size(self, mnemonic: str, operands: list[str]) -> int:
        return 8 if mnemonic == "li" else 4

    def encode(self, mnemonic: str, operands: list[str], ctx: AsmContext) -> list[int]:
        lineno = ctx.lineno
        if mnemonic in OPERATES:
            opcode, func = OPERATES[mnemonic]
            return [self._operate(opcode, func, operands, ctx)]
        if mnemonic in MEMORIES:
            if len(operands) != 2:
                raise AsmError(f"{mnemonic} needs 2 operands", lineno)
            ra = self.register(operands[0], lineno)
            return [self._mem(MEMORIES[mnemonic], ra, operands[1], ctx)]
        if mnemonic in BRANCHES:
            if len(operands) != 2:
                raise AsmError(f"{mnemonic} needs register, target", lineno)
            ra = self.register(operands[0], lineno)
            return [self._branch(BRANCHES[mnemonic], ra, operands[1], ctx)]
        if mnemonic in ("jmp", "jsr", "ret"):
            # jmp $ra, ($rb) - hint bits ignored by the simulator
            if len(operands) != 2:
                raise AsmError(f"{mnemonic} needs 2 operands", lineno)
            ra = self.register(operands[0], lineno)
            inner = operands[1].strip()
            match = re.match(r"^\(\s*(\$[A-Za-z0-9]+)\s*\)$", inner)
            if not match:
                raise AsmError(f"{mnemonic} target must be (register)", lineno)
            rb = self.register(match.group(1), lineno)
            return [(0x1A << 26) | (ra << 21) | (rb << 16)]
        if mnemonic == "call_pal":
            code = self.evaluate(operands[0], ctx) if operands else 0
            return [code & 0x03FFFFFF]
        # -- pseudo-instructions --------------------------------------------
        if mnemonic == "li":
            # Always ldah+lda so sizes are stable across passes.
            rd = self.register(operands[0], lineno)
            value = self.evaluate(operands[1], ctx)
            if ctx.pass_index == 2 and not -(2**31) <= value < 2**31:
                raise AsmError(f"li immediate {value} exceeds signed 32 bits", lineno)
            high, low = hi16(value), lo16(value)
            ldah = (0x09 << 26) | (rd << 21) | (31 << 16) | high
            lda = (0x08 << 26) | (rd << 21) | (rd << 16) | low
            return [ldah, lda]
        if mnemonic == "mov":
            rs = self.register(operands[0], lineno)
            rd = self.register(operands[1], lineno)
            return [(0x11 << 26) | (rs << 21) | (rs << 16) | (0x20 << 5) | rd]
        if mnemonic == "clr":
            rd = self.register(operands[0], lineno)
            return [(0x11 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | rd]
        if mnemonic == "nop":
            return [(0x11 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | 31]
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno)
