"""SPARC syscall and stack conventions."""

from repro.sysemu.syscalls import SyscallABI

#: %g1 carries the syscall number, %o0-%o2 the arguments, %o0 the
#: result; %o6 is the stack pointer.
ABI = SyscallABI(
    regfile="R",
    number_reg=1,
    arg_regs=(8, 9, 10),
    ret_reg=8,
    error_reg=None,
    stack_reg=14,
)
