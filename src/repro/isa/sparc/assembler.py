"""Two-pass assembler for the SPARC subset.

SPARC syntax (no delay slots in this subset — see sparc.lis)::

    add     %g1, %g2, %g3
    sub     %o0, 5, %o0
    sethi   0x48d15, %g1        @ raw 22-bit immediate form
    set     0x12345678, %g1     @ pseudo: sethi + or (always 2 words)
    ld      [%o0 + 4], %l0
    st      %l0, [%o0]
    subcc   %l1, 0, %g0         @ compare via %g0 destination
    cmp     %l1, 5              @ pseudo for subcc ..., %g0
    bne     loop
    call    func                @ writes %o7
    retl                        @ jmpl %o7 + 4, %g0 (no delay slot)
    ta      0                   @ trap always: syscall
"""

from __future__ import annotations

import re

from repro.isa.asmcore import AsmContext, AsmError, Assembler

REG_PREFIX = {"g": 0, "o": 8, "l": 16, "i": 24}

ARITH = {
    "add": 0x00, "and": 0x01, "or": 0x02, "xor": 0x03, "sub": 0x04,
    "andn": 0x05, "orn": 0x06, "xnor": 0x07, "umul": 0x0A, "smul": 0x0B,
    "addcc": 0x10, "andcc": 0x11, "orcc": 0x12, "xorcc": 0x13,
    "subcc": 0x14, "sll": 0x25, "srl": 0x26, "sra": 0x27,
    "save": 0x3C, "restore": 0x3D,
}

LOADS = {"ld": 0x00, "ldub": 0x01, "lduh": 0x02, "ldsb": 0x09, "ldsh": 0x0A}
STORES = {"st": 0x04, "stb": 0x05, "sth": 0x06}

BRANCHES = {
    "ba": 8, "bn": 0, "bne": 9, "be": 1, "bg": 10, "ble": 2, "bge": 11,
    "bl": 3, "bgu": 12, "bleu": 4, "bcc": 13, "bcs": 5, "bpos": 14,
    "bneg": 6, "bvc": 15, "bvs": 7, "bnz": 9, "bz": 1,
}


class SparcAssembler(Assembler):
    """Assembler for the SPARC subset described in ``sparc.lis``."""

    ilen = 4
    endian = "big"
    comment_re = re.compile(r"(?:!|;|//|@).*")

    def register(self, text: str, lineno: int) -> int:
        text = text.strip().lower()
        if not text.startswith("%"):
            raise AsmError(f"expected register, got {text!r}", lineno)
        body = text[1:]
        if body == "sp":
            return 14
        if body == "fp":
            return 30
        if body.startswith("r") and body[1:].isdigit() and int(body[1:]) < 32:
            return int(body[1:])
        if body and body[0] in REG_PREFIX and body[1:].isdigit():
            index = int(body[1:])
            if index < 8:
                return REG_PREFIX[body[0]] + index
        raise AsmError(f"no register {text!r}", lineno)

    def _reg_or_imm(self, text: str, ctx: AsmContext) -> int:
        """Encode the rs2/simm13 field with the i bit."""
        text = text.strip()
        if text.startswith("%"):
            return self.register(text, ctx.lineno)
        value = self.evaluate(text, ctx)
        value = self.check_range(value, 13, True, ctx.lineno, "immediate")
        return (1 << 13) | value

    def _f3(self, op: int, op3: int, rd: int, rs1: int, operand2: int) -> int:
        return (op << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | operand2

    def _address(self, text: str, ctx: AsmContext) -> tuple[int, int]:
        """Parse '[%rs1 + off]' -> (rs1, operand2 bits)."""
        match = re.fullmatch(r"\[\s*([^\]]+?)\s*\]", text.strip())
        if not match:
            raise AsmError(f"bad address {text!r}", ctx.lineno)
        inner = match.group(1)
        plus = re.match(r"(%\w+)\s*([+-])\s*(.+)", inner)
        if plus:
            rs1 = self.register(plus.group(1), ctx.lineno)
            rest = plus.group(3).strip()
            if rest.startswith("%"):
                if plus.group(2) == "-":
                    raise AsmError("register offsets cannot be negative", ctx.lineno)
                return rs1, self.register(rest, ctx.lineno)
            value = self.evaluate(rest, ctx)
            if plus.group(2) == "-":
                value = -value
            value = self.check_range(value, 13, True, ctx.lineno, "offset")
            return rs1, (1 << 13) | value
        return self.register(inner, ctx.lineno), (1 << 13)  # offset 0

    def instruction_size(self, mnemonic: str, operands: list[str]) -> int:
        return 8 if mnemonic == "set" else 4

    def encode(self, mnemonic: str, operands: list[str], ctx: AsmContext) -> list[int]:
        lineno = ctx.lineno
        if mnemonic in ARITH:
            rs1 = self.register(operands[0], lineno)
            operand2 = self._reg_or_imm(operands[1], ctx)
            rd = self.register(operands[2], lineno)
            return [self._f3(2, ARITH[mnemonic], rd, rs1, operand2)]
        if mnemonic in LOADS:
            rs1, operand2 = self._address(operands[0], ctx)
            rd = self.register(operands[1], lineno)
            return [self._f3(3, LOADS[mnemonic], rd, rs1, operand2)]
        if mnemonic in STORES:
            rd = self.register(operands[0], lineno)
            rs1, operand2 = self._address(operands[1], ctx)
            return [self._f3(3, STORES[mnemonic], rd, rs1, operand2)]
        if mnemonic in BRANCHES:
            dest = self.evaluate(operands[0], ctx)
            disp = (dest - ctx.addr) // 4
            if ctx.pass_index == 2:
                disp = self.check_range(disp, 22, True, lineno, "branch disp")
            return [(BRANCHES[mnemonic] << 25) | (0x2 << 22) | (disp & 0x3FFFFF)]
        if mnemonic == "sethi":
            value = self.evaluate(operands[0], ctx) & 0x3FFFFF
            rd = self.register(operands[1], lineno)
            return [(rd << 25) | (0x4 << 22) | value]
        if mnemonic == "call":
            dest = self.evaluate(operands[0], ctx)
            disp = (dest - ctx.addr) // 4
            return [(1 << 30) | (disp & 0x3FFFFFFF)]
        if mnemonic == "jmpl":
            rs1, operand2 = self._address(operands[0], ctx)
            rd = self.register(operands[1], lineno)
            return [self._f3(2, 0x38, rd, rs1, operand2)]
        if mnemonic == "rd":  # rd %y, reg
            rd = self.register(operands[1], lineno)
            return [self._f3(2, 0x28, rd, 0, 0)]
        if mnemonic == "wr":  # wr reg, 0, %y
            rs1 = self.register(operands[0], lineno)
            operand2 = self._reg_or_imm(operands[1], ctx)
            return [self._f3(2, 0x30, 0, rs1, operand2)]
        if mnemonic in ("ta", "tn"):
            cond = 8 if mnemonic == "ta" else 0
            operand2 = self._reg_or_imm(operands[0] if operands else "0", ctx)
            return [self._f3(2, 0x3A, cond, 0, operand2)]
        # -- pseudo-instructions ------------------------------------------------
        if mnemonic == "set":
            value = self.evaluate(operands[0], ctx) & 0xFFFFFFFF
            rd = self.register(operands[1], lineno)
            sethi = (rd << 25) | (0x4 << 22) | (value >> 10)
            orlow = self._f3(2, 0x02, rd, rd, (1 << 13) | (value & 0x3FF))
            return [sethi, orlow]
        if mnemonic == "mov":
            operand2 = self._reg_or_imm(operands[0], ctx)
            rd = self.register(operands[1], lineno)
            return [self._f3(2, 0x02, rd, 0, operand2)]  # or %g0, src, rd
        if mnemonic == "cmp":
            rs1 = self.register(operands[0], lineno)
            operand2 = self._reg_or_imm(operands[1], ctx)
            return [self._f3(2, 0x14, 0, rs1, operand2)]  # subcc -> %g0
        if mnemonic == "retl":
            return [self._f3(2, 0x38, 0, 15, (1 << 13) | 4)]  # jmpl %o7+4,%g0
        if mnemonic == "nop":
            return [(0x4 << 22)]  # sethi 0, %g0
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno)
