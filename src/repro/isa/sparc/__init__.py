"""SPARC V8 (user-mode subset, flat registers, no delay slots)."""

import os

from repro.isa.base import IsaBundle, register
from repro.isa.sparc.abi import ABI
from repro.isa.sparc.assembler import SparcAssembler

BUNDLE = register(
    IsaBundle(
        name="sparc",
        package_dir=os.path.dirname(__file__),
        isa_file="sparc.lis",
        os_file="sparc_os.lis",
        buildset_file="sparc_buildsets.lis",
        abi=ABI,
        assembler_factory=SparcAssembler,
    )
)

__all__ = ["ABI", "BUNDLE", "SparcAssembler"]
