"""Generic disassembler derived from the single specification.

Because the ADL description carries formats, decode patterns and operand
bindings, a usable disassembler falls out for free — another consumer of
the one specification.  Output is explicit rather than pretty::

    ADDQ ra=1 rb=2 rc=3
    LDQ ra=4 rb=30 disp16=16
    BNE ra=1 disp21=-3
"""

from __future__ import annotations

from repro.adl.snippets import analyze_stmts
from repro.adl.spec import Instruction, IsaSpec


def _relevant_bitfields(instr: Instruction) -> list[str]:
    """Bitfields actually read by the instruction's semantics."""
    reads: set[str] = set()
    for stmts in instr.action_code.values():
        reads |= analyze_stmts(list(stmts)).reads
    names = [name for name in instr.format.bitfields if name in reads]
    return names


class Disassembler:
    """Decode instruction words into name + decoded-field text."""

    def __init__(self, spec: IsaSpec) -> None:
        self.spec = spec
        self._fields = [
            _relevant_bitfields(instr) for instr in spec.instructions
        ]

    def disassemble(self, word: int) -> str:
        """One instruction word -> text (or ``.word`` for no match)."""
        index = self.spec.decode(word)
        if index is None:
            return f".word {word:#010x}"
        instr = self.spec.instructions[index]
        parts = [instr.name]
        for name in self._fields[index]:
            value = instr.format.bitfields[name].extract(word)
            parts.append(f"{name}={value}")
        return " ".join(parts)

    def disassemble_range(self, mem, start: int, count: int) -> list[str]:
        """Disassemble ``count`` instructions from memory at ``start``."""
        out = []
        ilen = self.spec.ilen
        for i in range(count):
            addr = start + i * ilen
            word = mem.read(addr, ilen)
            out.append(f"{addr:#8x}:  {self.disassemble(word)}")
        return out
