"""Instruction-set bundles: descriptions, assemblers, ABIs."""

from repro.isa.base import IsaBundle, available_isas, get_bundle

__all__ = ["IsaBundle", "available_isas", "get_bundle"]
