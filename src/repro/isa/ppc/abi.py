"""PowerPC SysV-style syscall and stack conventions."""

from repro.sysemu.syscalls import SyscallABI

#: r0 carries the syscall number, r3-r5 the arguments, r3 the result;
#: r1 is the stack pointer.
ABI = SyscallABI(
    regfile="R",
    number_reg=0,
    arg_regs=(3, 4, 5),
    ret_reg=3,
    error_reg=None,
    stack_reg=1,
)
