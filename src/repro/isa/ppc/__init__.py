"""PowerPC (user-mode 32-bit subset)."""

import os

from repro.isa.base import IsaBundle, register
from repro.isa.ppc.abi import ABI
from repro.isa.ppc.assembler import PpcAssembler

BUNDLE = register(
    IsaBundle(
        name="ppc",
        package_dir=os.path.dirname(__file__),
        isa_file="ppc.lis",
        os_file="ppc_os.lis",
        buildset_file="ppc_buildsets.lis",
        abi=ABI,
        assembler_factory=PpcAssembler,
    )
)

__all__ = ["ABI", "BUNDLE", "PpcAssembler"]
