"""Two-pass assembler for the PowerPC subset.

Classic PPC syntax; registers may be written ``3`` or ``r3``::

    addi    4, 0, 10          # li form also available
    add.    5, 4, 3           # dotted = record CR0
    lwz     6, 8(1)
    stwu    1, -16(1)
    cmpwi   4, 0
    bne     loop
    bdnz    loop
    mtlr    0
    blr
    rlwinm  7, 6, 3, 0, 28
    liw     9, 0x12345678     # pseudo: lis+ori (always 2 words)
    sc
"""

from __future__ import annotations

import re

from repro.isa.asmcore import AsmContext, AsmError, Assembler, hi16, lo16

_MEM_OPERAND = re.compile(r"^(.*?)\(\s*([^)]+)\s*\)$")

D_ARITH = {"addi": 14, "addis": 15, "mulli": 7, "subfic": 8}
D_LOGIC = {
    "andi.": 28, "andis.": 29, "ori": 24, "oris": 25, "xori": 26, "xoris": 27,
}
D_MEM = {
    "lwz": 32, "lwzu": 33, "lbz": 34, "lhz": 40, "lha": 42,
    "stw": 36, "stwu": 37, "stb": 38, "sth": 44,
}
# X-form rT, rA, rB arithmetic (xo10 values)
X_ARITH = {
    "add": 266, "subf": 40, "addc": 10, "subfc": 8, "mullw": 235,
    "mulhw": 75, "mulhwu": 11, "divw": 491, "divwu": 459,
}
# X-form rA <- rS op rB logical/shift (operands written rA, rS, rB)
X_LOGIC = {
    "and": 28, "andc": 60, "or": 444, "orc": 412, "xor": 316, "nand": 476,
    "nor": 124, "slw": 24, "srw": 536, "sraw": 792,
}
X_UNARY = {"cntlzw": 26, "extsb": 954, "extsh": 922}
X_MEM = {"lwzx": 23, "lbzx": 87, "stwx": 151, "stbx": 215}

# extended conditional branches: (bo, bi_base)
COND_BRANCHES = {
    "blt": (12, 0), "bgt": (12, 1), "beq": (12, 2),
    "bge": (4, 0), "ble": (4, 1), "bne": (4, 2),
    "bdnz": (16, 0), "bdz": (18, 0),
}


class PpcAssembler(Assembler):
    """Assembler for the PowerPC subset described in ``ppc.lis``."""

    ilen = 4
    endian = "big"

    def register(self, text: str, lineno: int) -> int:
        text = text.strip().lower()
        if text.startswith("r"):
            text = text[1:]
        if text == "sp":
            return 1
        if text.isdigit() and int(text) < 32:
            return int(text)
        raise AsmError(f"expected register, got {text!r}", lineno)

    def _d_form(self, opcd, rt, ra, value, ctx, signed=True) -> int:
        value = self.check_range(value, 16, signed, ctx.lineno, "immediate") \
            if ctx.pass_index == 2 else value & 0xFFFF
        return (opcd << 26) | (rt << 21) | (ra << 16) | (value & 0xFFFF)

    def _x_form(self, rt, ra, rb, xo10, rc=0) -> int:
        return (31 << 26) | (rt << 21) | (ra << 16) | (rb << 11) | (xo10 << 1) | rc

    def _branch_disp(self, target_text, ctx, bits) -> int:
        dest = self.evaluate(target_text, ctx)
        disp = (dest - ctx.addr) // 4
        if ctx.pass_index == 2:
            disp = self.check_range(disp, bits, True, ctx.lineno, "branch disp")
        return disp & ((1 << bits) - 1)

    def instruction_size(self, mnemonic: str, operands: list[str]) -> int:
        return 8 if mnemonic == "liw" else 4

    def encode(self, mnemonic: str, operands: list[str], ctx: AsmContext) -> list[int]:
        lineno = ctx.lineno
        rc = 0
        if mnemonic.endswith(".") and mnemonic not in D_LOGIC:
            rc = 1
            mnemonic = mnemonic[:-1]

        if mnemonic in D_ARITH:
            rt = self.register(operands[0], lineno)
            ra = self.register(operands[1], lineno)
            value = self.evaluate(operands[2], ctx)
            return [self._d_form(D_ARITH[mnemonic], rt, ra, value, ctx)]
        if mnemonic in D_LOGIC or mnemonic + "." in D_LOGIC:
            key = mnemonic if mnemonic in D_LOGIC else mnemonic + "."
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            value = self.evaluate(operands[2], ctx)
            return [self._d_form(D_LOGIC[key], rs, ra, value, ctx, signed=False)]
        if mnemonic in D_MEM:
            rt = self.register(operands[0], lineno)
            match = _MEM_OPERAND.match(operands[1].strip())
            if not match:
                raise AsmError(f"{mnemonic} needs disp(rA)", lineno)
            disp = self.evaluate(match.group(1) or "0", ctx)
            ra = self.register(match.group(2), lineno)
            return [self._d_form(D_MEM[mnemonic], rt, ra, disp, ctx)]
        if mnemonic in X_ARITH:
            rt = self.register(operands[0], lineno)
            ra = self.register(operands[1], lineno)
            rb = self.register(operands[2], lineno)
            return [self._x_form(rt, ra, rb, X_ARITH[mnemonic], rc)]
        if mnemonic in X_LOGIC:
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            rb = self.register(operands[2], lineno)
            return [self._x_form(rs, ra, rb, X_LOGIC[mnemonic], rc)]
        if mnemonic in X_UNARY:
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            return [self._x_form(rs, ra, 0, X_UNARY[mnemonic], rc)]
        if mnemonic == "srawi":
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            sh = self.check_range(self.evaluate(operands[2], ctx), 5, False, lineno, "sh")
            return [self._x_form(rs, ra, sh, 824, rc)]
        if mnemonic in X_MEM:
            rt = self.register(operands[0], lineno)
            ra = self.register(operands[1], lineno)
            rb = self.register(operands[2], lineno)
            return [self._x_form(rt, ra, rb, X_MEM[mnemonic])]
        if mnemonic == "neg":
            rt = self.register(operands[0], lineno)
            ra = self.register(operands[1], lineno)
            return [self._x_form(rt, ra, 0, 104, rc)]
        if mnemonic in ("rlwinm", "rlwimi"):
            opcd = 21 if mnemonic == "rlwinm" else 20
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            sh = self.evaluate(operands[2], ctx) & 31
            mb = self.evaluate(operands[3], ctx) & 31
            me = self.evaluate(operands[4], ctx) & 31
            return [
                (opcd << 26) | (rs << 21) | (ra << 16) | (sh << 11) | (mb << 6)
                | (me << 1) | rc
            ]
        if mnemonic in ("cmpwi", "cmplwi"):
            opcd = 11 if mnemonic == "cmpwi" else 10
            crf = 0
            rest = operands
            if len(operands) == 3:
                crf = self.evaluate(operands[0].lstrip("cr"), ctx) & 7
                rest = operands[1:]
            ra = self.register(rest[0], lineno)
            value = self.evaluate(rest[1], ctx)
            return [self._d_form(opcd, crf << 2, ra, value, ctx, mnemonic == "cmpwi")]
        if mnemonic in ("cmpw", "cmplw"):
            xo = 0 if mnemonic == "cmpw" else 32
            crf = 0
            rest = operands
            if len(operands) == 3:
                crf = self.evaluate(operands[0].lstrip("cr"), ctx) & 7
                rest = operands[1:]
            ra = self.register(rest[0], lineno)
            rb = self.register(rest[1], lineno)
            return [self._x_form(crf << 2, ra, rb, xo)]
        if mnemonic in ("b", "bl", "ba", "bla"):
            lk = 1 if "l" in mnemonic.replace("b", "", 1).replace("a", "") else 0
            aa = 1 if mnemonic.endswith("a") else 0
            disp = self._branch_disp(operands[0], ctx, 24)
            return [(18 << 26) | (disp << 2) | (aa << 1) | lk]
        if mnemonic in COND_BRANCHES:
            bo, bi = COND_BRANCHES[mnemonic]
            target = operands[-1]
            if len(operands) == 2:  # optional cr field: beq cr1, target
                crf = self.evaluate(operands[0].lstrip("cr"), ctx) & 7
                bi = crf * 4 + bi
            disp = self._branch_disp(target, ctx, 14)
            return [(16 << 26) | (bo << 21) | (bi << 16) | (disp << 2)]
        if mnemonic == "bc":
            bo = self.evaluate(operands[0], ctx) & 31
            bi = self.evaluate(operands[1], ctx) & 31
            disp = self._branch_disp(operands[2], ctx, 14)
            return [(16 << 26) | (bo << 21) | (bi << 16) | (disp << 2)]
        if mnemonic in ("blr", "bctr"):
            xo = 16 if mnemonic == "blr" else 528
            return [(19 << 26) | (20 << 21) | (xo << 1)]
        if mnemonic in ("blrl", "bctrl"):
            xo = 16 if mnemonic == "blrl" else 528
            return [(19 << 26) | (20 << 21) | (xo << 1) | 1]
        if mnemonic in ("mtlr", "mtctr", "mflr", "mfctr"):
            reg = self.register(operands[0], lineno)
            spr = 0x100 if "lr" in mnemonic else 0x120
            xo = 467 if mnemonic.startswith("mt") else 339
            return [(31 << 26) | (reg << 21) | (spr << 11) | (xo << 1)]
        if mnemonic == "mfcr":
            reg = self.register(operands[0], lineno)
            return [self._x_form(reg, 0, 0, 19)]
        if mnemonic == "sc":
            return [(17 << 26) | 2]
        # -- pseudo-instructions ------------------------------------------------
        if mnemonic == "li":
            rt = self.register(operands[0], lineno)
            value = self.evaluate(operands[1], ctx)
            return [self._d_form(14, rt, 0, value, ctx)]
        if mnemonic == "lis":
            rt = self.register(operands[0], lineno)
            value = self.evaluate(operands[1], ctx)
            return [self._d_form(15, rt, 0, value, ctx)]
        if mnemonic == "liw":
            # Full 32-bit constant: lis + ori (stable 2 words).
            rt = self.register(operands[0], lineno)
            value = self.evaluate(operands[1], ctx) & 0xFFFFFFFF
            high = (value >> 16) & 0xFFFF
            low = value & 0xFFFF
            lis = (15 << 26) | (rt << 21) | high
            ori = (24 << 26) | (rt << 21) | (rt << 16) | low
            return [lis, ori]
        if mnemonic == "mr":
            ra = self.register(operands[0], lineno)
            rs = self.register(operands[1], lineno)
            return [self._x_form(rs, ra, rs, 444, rc)]
        if mnemonic == "subi":
            rt = self.register(operands[0], lineno)
            ra = self.register(operands[1], lineno)
            value = -self.evaluate(operands[2], ctx)
            return [self._d_form(14, rt, ra, value, ctx)]
        if mnemonic == "nop":
            return [(24 << 26)]  # ori 0,0,0
        raise AsmError(f"unknown mnemonic {mnemonic!r}", lineno)
