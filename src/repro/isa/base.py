"""ISA bundle registry.

An :class:`IsaBundle` ties together everything one instruction set needs:
the ADL description files (ISA + OS overlay + buildsets, mirroring the
file split of the paper's Table I), the syscall ABI, and the assembler.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.adl import IsaSpec, load_isa
from repro.sysemu.syscalls import SyscallABI


@dataclass(frozen=True)
class IsaBundle:
    """Descriptor for one supported instruction set."""

    name: str
    package_dir: str
    isa_file: str
    os_file: str
    buildset_file: str
    abi: SyscallABI
    assembler_factory: object  # callable returning an Assembler

    def description_paths(self) -> list[str]:
        return [
            os.path.join(self.package_dir, self.isa_file),
            os.path.join(self.package_dir, self.os_file),
            os.path.join(self.package_dir, self.buildset_file),
        ]

    def load_spec(self) -> IsaSpec:
        return _load_spec_cached(tuple(self.description_paths()))

    def make_assembler(self):
        return self.assembler_factory()


@lru_cache(maxsize=None)
def _load_spec_cached(paths: tuple[str, ...]) -> IsaSpec:
    return load_isa(list(paths))


_REGISTRY: dict[str, IsaBundle] = {}


def register(bundle: IsaBundle) -> IsaBundle:
    _REGISTRY[bundle.name] = bundle
    return bundle


def get_bundle(name: str) -> IsaBundle:
    """Look up a registered ISA ('alpha', 'arm', 'ppc')."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown ISA {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_isas() -> list[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def _ensure_registered() -> None:
    # Importing the subpackages registers their bundles.
    from repro.isa import alpha, arm, ppc, sparc  # noqa: F401
