"""Shared two-pass assembler framework.

Each ISA provides a subclass implementing :meth:`Assembler.encode`, which
maps one mnemonic + operand list to one or more instruction words.  The
framework handles labels, directives, expression evaluation and the
two-pass layout, and produces a :class:`~repro.sysemu.loader.ProgramImage`.

Supported directives::

    .org ADDR        set the location counter
    .word EXPR, ...  emit 32-bit words
    .byte EXPR, ...  emit bytes
    .asciz "text"    emit a NUL-terminated string
    .align N         pad to an N-byte boundary
    .space N         emit N zero bytes
    name = EXPR      define a symbol

Expressions understand decimal/hex/binary integers, symbols, ``+ - * / %
<< >> & | ^ ~``, parentheses, unary minus, and the helpers ``hi16(x)`` /
``lo16(x)`` (high/low halves with the carry convention used by
``lda``/``addis`` style instruction pairs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sysemu.loader import ProgramImage


class AsmError(Exception):
    """Assembly failed; message includes the source line number."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        super().__init__(f"line {lineno}: {message}" if lineno else message)
        self.lineno = lineno


def lo16(value: int) -> int:
    """Low 16 bits as used by ``lda``-style displacement instructions."""
    return value & 0xFFFF


def hi16(value: int) -> int:
    """High 16 bits, adjusted so hi16*65536 + sext(lo16) == value."""
    low = value & 0xFFFF
    high = (value >> 16) & 0xFFFF
    if low & 0x8000:
        high = (high + 1) & 0xFFFF
    return high


_TOKEN = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<sym>[A-Za-z_.$][A-Za-z0-9_.$]*)"
    r"|(?P<op><<|>>|[-+*/%&|^~()]))"
)


class ExprEvaluator:
    """Recursive-descent evaluator for assembler expressions."""

    _FUNCS = {"hi16": hi16, "lo16": lo16}

    def __init__(self, text: str, symbols: dict[str, int], lineno: int | None = None):
        self.tokens = self._tokenize(text, lineno)
        self.pos = 0
        self.symbols = symbols
        self.lineno = lineno

    def _tokenize(self, text: str, lineno) -> list[str]:
        tokens: list[str] = []
        index = 0
        while index < len(text):
            match = _TOKEN.match(text, index)
            if match is None:
                if text[index:].strip() == "":
                    break
                raise AsmError(f"bad expression near {text[index:]!r}", lineno)
            tokens.append(match.group(match.lastgroup))
            index = match.end()
        return tokens

    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise AsmError("unexpected end of expression", self.lineno)
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._or()
        if self._peek() is not None:
            raise AsmError(f"trailing junk in expression: {self._peek()!r}", self.lineno)
        return value

    def _or(self) -> int:
        value = self._xor()
        while self._peek() == "|":
            self._next()
            value |= self._xor()
        return value

    def _xor(self) -> int:
        value = self._and()
        while self._peek() == "^":
            self._next()
            value ^= self._and()
        return value

    def _and(self) -> int:
        value = self._shift()
        while self._peek() == "&":
            self._next()
            value &= self._shift()
        return value

    def _shift(self) -> int:
        value = self._add()
        while self._peek() in ("<<", ">>"):
            if self._next() == "<<":
                value <<= self._add()
            else:
                value >>= self._add()
        return value

    def _add(self) -> int:
        value = self._mul()
        while self._peek() in ("+", "-"):
            if self._next() == "+":
                value += self._mul()
            else:
                value -= self._mul()
        return value

    def _mul(self) -> int:
        value = self._unary()
        while self._peek() in ("*", "/", "%"):
            op = self._next()
            rhs = self._unary()
            if op == "*":
                value *= rhs
            elif op == "/":
                value //= rhs
            else:
                value %= rhs
        return value

    def _unary(self) -> int:
        token = self._peek()
        if token == "-":
            self._next()
            return -self._unary()
        if token == "~":
            self._next()
            return ~self._unary()
        if token == "+":
            self._next()
            return self._unary()
        return self._atom()

    def _atom(self) -> int:
        token = self._next()
        if token == "(":
            value = self._or()
            if self._next() != ")":
                raise AsmError("missing ')'", self.lineno)
            return value
        if re.fullmatch(r"0[xX][0-9a-fA-F]+", token):
            return int(token, 16)
        if re.fullmatch(r"0[bB][01]+", token):
            return int(token, 2)
        if token.isdigit():
            return int(token)
        if token in self._FUNCS:
            if self._next() != "(":
                raise AsmError(f"{token} needs parentheses", self.lineno)
            value = self._or()
            if self._next() != ")":
                raise AsmError("missing ')'", self.lineno)
            return self._FUNCS[token](value)
        if token in self.symbols:
            return self.symbols[token]
        raise AsmError(f"undefined symbol {token!r}", self.lineno)


@dataclass
class AsmContext:
    """Information an encoder may need: where it is, what it can see."""

    addr: int
    symbols: dict[str, int]
    lineno: int
    pass_index: int  # 1 = layout, 2 = final


class Assembler:
    """Two-pass assembler; subclass per ISA.

    Subclasses implement :meth:`encode` returning a list of 32-bit words
    and may override :meth:`instruction_size` for variable-size pseudos.
    """

    ilen = 4
    endian = "little"
    comment_re = re.compile(r"(?:#|;|//|@(?![A-Za-z0-9_])).*")

    # -- subclass interface -------------------------------------------------------

    def encode(self, mnemonic: str, operands: list[str], ctx: AsmContext) -> list[int]:
        raise NotImplementedError

    def instruction_size(self, mnemonic: str, operands: list[str]) -> int:
        """Size in bytes (pass 1); default: one word, pseudos may differ."""
        return self.ilen

    # -- helpers for subclasses ---------------------------------------------------

    def evaluate(self, text: str, ctx: AsmContext) -> int:
        symbols = dict(ctx.symbols)
        symbols["."] = ctx.addr  # current location counter
        if ctx.pass_index == 1:
            # Symbols may be forward references during layout.
            try:
                return ExprEvaluator(text, symbols, ctx.lineno).parse()
            except AsmError:
                return 0
        return ExprEvaluator(text, symbols, ctx.lineno).parse()

    @staticmethod
    def split_operands(text: str) -> list[str]:
        """Split on top-level commas (parentheses protected)."""
        out: list[str] = []
        depth = 0
        current = []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                out.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        tail = "".join(current).strip()
        if tail:
            out.append(tail)
        return out

    def check_range(self, value: int, bits: int, signed: bool, lineno: int, what: str):
        if signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if not lo <= value <= hi:
            raise AsmError(f"{what} {value} out of range [{lo}, {hi}]", lineno)
        return value & ((1 << bits) - 1)

    # -- the two passes --------------------------------------------------------------

    def assemble(self, source: str, origin: int = 0) -> ProgramImage:
        """Assemble ``source`` into a program image based at ``origin``."""
        lines = source.splitlines()
        symbols: dict[str, int] = {}
        section = _Section(origin)
        for pass_index in (1, 2):
            section = _Section(origin)
            for lineno, raw in enumerate(lines, 1):
                line = self.comment_re.sub("", raw).strip()
                while True:
                    match = re.match(r"([A-Za-z_.$][A-Za-z0-9_.$]*):\s*", line)
                    if not match:
                        break
                    symbols[match.group(1)] = section.loc
                    line = line[match.end() :]
                if not line:
                    continue
                assign = re.match(r"([A-Za-z_.$][A-Za-z0-9_.$]*)\s*=\s*(.+)", line)
                if assign and not line.startswith("."):
                    ctx = AsmContext(section.loc, symbols, lineno, pass_index)
                    symbols[assign.group(1)] = self.evaluate(assign.group(2), ctx)
                    continue
                parts = line.split(None, 1)
                mnemonic = parts[0].lower()
                rest = parts[1] if len(parts) > 1 else ""
                ctx = AsmContext(section.loc, symbols, lineno, pass_index)
                if mnemonic.startswith("."):
                    self._directive(mnemonic, rest, ctx, section)
                    continue
                operands = self.split_operands(rest)
                if pass_index == 1:
                    section.loc += self.instruction_size(mnemonic, operands)
                else:
                    try:
                        words = self.encode(mnemonic, operands, ctx)
                    except AsmError:
                        raise
                    except Exception as exc:
                        raise AsmError(f"{mnemonic}: {exc}", lineno) from exc
                    for word in words:
                        section.emit(word.to_bytes(self.ilen, self.endian))

        image = ProgramImage(entry=symbols.get("_start", origin), symbols=dict(symbols))
        for addr in sorted(section.chunks):
            image.add_segment(addr, bytes(section.chunks[addr]))
        return image

    def _directive(self, name: str, rest: str, ctx: AsmContext, section: "_Section"):
        if name == ".org":
            section.loc = self.evaluate(rest, ctx)
        elif name == ".word":
            for item in self.split_operands(rest):
                section.emit(
                    (self.evaluate(item, ctx) & 0xFFFFFFFF).to_bytes(4, self.endian)
                )
        elif name == ".byte":
            for item in self.split_operands(rest):
                section.emit(bytes([self.evaluate(item, ctx) & 0xFF]))
        elif name == ".asciz":
            match = re.match(r'"((?:[^"\\]|\\.)*)"', rest.strip())
            if not match:
                raise AsmError(".asciz needs a quoted string", ctx.lineno)
            text = match.group(1).encode().decode("unicode_escape").encode("latin-1")
            section.emit(text + b"\x00")
        elif name == ".align":
            section.emit(b"\x00" * ((-section.loc) % self.evaluate(rest, ctx)))
        elif name == ".space":
            section.emit(b"\x00" * self.evaluate(rest, ctx))
        else:
            raise AsmError(f"unknown directive {name}", ctx.lineno)


class _Section:
    """Location counter + emitted bytes for one assembly pass."""

    def __init__(self, origin: int) -> None:
        self.loc = origin
        self.chunks: dict[int, bytearray] = {}
        self._open_start: int | None = None

    def emit(self, data: bytes) -> None:
        if (
            self._open_start is not None
            and self._open_start + len(self.chunks[self._open_start]) == self.loc
        ):
            self.chunks[self._open_start].extend(data)
        else:
            self._open_start = self.loc
            self.chunks[self.loc] = bytearray(data)
        self.loc += len(data)
