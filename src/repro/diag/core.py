"""Diagnostics model shared by the linter and the generated-code checker.

Every finding is a :class:`Diagnostic` carrying a stable code, a
severity, a message and source attribution.  Attribution is two-level:
``loc`` points at the originating ``.lis`` construct (when known) and
``gen_loc`` at the generated-module line a code-level finding concerns.
Tools register their code catalogues into the process-wide
:data:`REGISTRY` with :func:`register_codes`; codes are namespaced by
prefix (``LIS`` for spec lints, ``CHK`` for generated-code checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.adl.errors import SourceLoc


class Severity(enum.Enum):
    """How bad a finding is.  Only unsuppressed errors fail a run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    severity: Severity
    title: str


#: Process-wide code registry; each tool contributes its catalogue.
REGISTRY: dict[str, CodeInfo] = {}


def register_codes(infos: Iterable[CodeInfo]) -> dict[str, CodeInfo]:
    """Register a tool's code catalogue; returns that tool's own view."""
    own: dict[str, CodeInfo] = {}
    for info in infos:
        existing = REGISTRY.get(info.code)
        if existing is not None and existing != info:
            raise ValueError(
                f"diagnostic code {info.code!r} registered twice with "
                f"different definitions"
            )
        REGISTRY[info.code] = info
        own[info.code] = info
    return own


def registered_codes(prefix: str = "") -> dict[str, CodeInfo]:
    """All registered codes, optionally filtered by prefix."""
    return {
        code: info
        for code, info in REGISTRY.items()
        if code.startswith(prefix)
    }


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis tool."""

    code: str
    message: str
    #: originating specification construct (a ``.lis`` location), if known
    loc: SourceLoc | None = None
    severity: Severity | None = None
    suppressed: bool = False
    #: generated-module location, for findings about synthesized code
    gen_loc: SourceLoc | None = None

    def __post_init__(self) -> None:
        if self.severity is None:
            object.__setattr__(self, "severity", REGISTRY[self.code].severity)

    @property
    def title(self) -> str:
        return REGISTRY[self.code].title

    def sort_key(self) -> tuple:
        loc = self.loc
        gen = self.gen_loc
        return (
            loc.filename if loc else "~",
            loc.line if loc else 0,
            loc.column if loc else 0,
            self.code,
            self.message,
            gen.filename if gen else "",
            gen.line if gen else 0,
        )

    def as_suppressed(self) -> "Diagnostic":
        return replace(self, suppressed=True)


def make_diagnostic(
    code: str,
    message: str,
    loc: SourceLoc | None = None,
    gen_loc: SourceLoc | None = None,
) -> Diagnostic:
    """Create a diagnostic with the registry's default severity."""
    if code not in REGISTRY:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code=code, message=message, loc=loc, gen_loc=gen_loc)


@dataclass
class DiagnosticResult:
    """The outcome of running one analysis tool over one subject."""

    paths: tuple[str, ...]
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def _active(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.INFO]

    @property
    def suppressed(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def counts(self) -> dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "suppressed": len(self.suppressed),
        }
