"""Text and JSON rendering of diagnostic results (lint and check alike).

The JSON form is stable: a fixed ``version``, diagnostics sorted by
(file, line, column, code, message), and ``sort_keys`` everywhere, so CI
can diff two runs textually.  Both :mod:`repro.lint` and
:mod:`repro.check` emit this exact document shape.
"""

from __future__ import annotations

import json

from repro.diag.core import Diagnostic, DiagnosticResult

#: Bump when the JSON document shape changes incompatibly.
JSON_FORMAT_VERSION = 1


def _loc_str(diag: Diagnostic) -> str:
    if diag.loc is None:
        if diag.gen_loc is not None:
            return f"{diag.gen_loc.filename}:{diag.gen_loc.line}"
        return "<spec>"
    return f"{diag.loc.filename}:{diag.loc.line}:{diag.loc.column}"


def render_text(result: DiagnosticResult, *, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for diag in sorted(result.diagnostics, key=Diagnostic.sort_key):
        if diag.suppressed and not show_suppressed:
            continue
        tag = " (suppressed)" if diag.suppressed else ""
        gen = ""
        if diag.gen_loc is not None and diag.loc is not None:
            gen = f" [generated: {diag.gen_loc.filename}:{diag.gen_loc.line}]"
        lines.append(
            f"{_loc_str(diag)}: {diag.severity.value}: "
            f"{diag.code}: {diag.message}{gen}{tag}"
        )
    counts = result.counts()
    lines.append(
        f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
        f"{counts['infos']} info(s), {counts['suppressed']} suppressed"
    )
    return "\n".join(lines)


def diagnostic_to_dict(diag: Diagnostic) -> dict:
    doc = {
        "code": diag.code,
        "severity": diag.severity.value,
        "message": diag.message,
        "suppressed": diag.suppressed,
        "file": diag.loc.filename if diag.loc else None,
        "line": diag.loc.line if diag.loc else None,
        "column": diag.loc.column if diag.loc else None,
    }
    if diag.gen_loc is not None:
        doc["gen_file"] = diag.gen_loc.filename
        doc["gen_line"] = diag.gen_loc.line
    return doc


def render_json(result: DiagnosticResult, *, show_suppressed: bool = True) -> str:
    diagnostics = sorted(result.diagnostics, key=Diagnostic.sort_key)
    if not show_suppressed:
        diagnostics = [d for d in diagnostics if not d.suppressed]
    doc = {
        "version": JSON_FORMAT_VERSION,
        "paths": list(result.paths),
        "diagnostics": [diagnostic_to_dict(d) for d in diagnostics],
        "counts": result.counts(),
        "exit_code": result.exit_code,
    }
    return json.dumps(doc, indent=2, sort_keys=True)
