"""Inline ``# lint: disable=CODE`` / ``# check: disable=CODE`` handling.

A diagnostic is suppressed when the source line it points at (or the
line of the enclosing declaration) carries a trailing comment of the
form ``# lint: disable=LIS001`` / ``// check: disable=CHK020,LIS030``.
Both comment styles are accepted because ``.lis`` files use ``//``
outside snippets and ``#`` inside embedded Python, and both tool words
are accepted by both tools — the codes themselves are namespaced, so a
``lint:`` comment can suppress a checker finding and vice versa.

Sources are read lazily from disk and cached, so suppression works both
for the CLIs (which have the files anyway) and for the
``synthesize(strict=True)`` gate (which only has the analyzed spec plus
the source locations it carries).
"""

from __future__ import annotations

import re

from repro.adl.errors import SourceLoc
from repro.diag.core import Diagnostic

_DISABLE_RE = re.compile(
    r"(?:#|//)\s*(?:lint|check):\s*disable=([A-Za-z0-9_,\s]+)"
)


def parse_disables(line: str) -> frozenset[str]:
    """Diagnostic codes disabled by a single source line."""
    match = _DISABLE_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


class SuppressionIndex:
    """Maps (filename, line) to the set of codes disabled on that line."""

    def __init__(self, sources: dict[str, str] | None = None) -> None:
        #: filename -> {line number -> disabled codes}; None marks a file
        #: that could not be read (nothing suppressed there).
        self._by_file: dict[str, dict[int, frozenset[str]] | None] = {}
        for filename, text in (sources or {}).items():
            self._by_file[filename] = self._index_text(text)

    @staticmethod
    def _index_text(text: str) -> dict[int, frozenset[str]]:
        index: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            codes = parse_disables(line)
            if codes:
                index[lineno] = codes
        return index

    def _file_index(self, filename: str) -> dict[int, frozenset[str]] | None:
        if filename not in self._by_file:
            try:
                with open(filename, encoding="utf-8") as handle:
                    self._by_file[filename] = self._index_text(handle.read())
            except OSError:
                self._by_file[filename] = None
        return self._by_file[filename]

    def is_suppressed(self, diag: Diagnostic) -> bool:
        loc = diag.loc
        if loc is None or not loc.filename:
            return False
        index = self._file_index(loc.filename)
        if not index:
            return False
        return diag.code in index.get(loc.line, frozenset())

    def apply(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        """Return the diagnostics with suppressed ones marked as such."""
        return [
            d.as_suppressed() if self.is_suppressed(d) else d for d in diagnostics
        ]


def loc_line(loc: SourceLoc | None) -> int:
    return loc.line if loc else 0
