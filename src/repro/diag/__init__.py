"""Shared diagnostics core for repro's static-analysis tools.

Both the specification linter (:mod:`repro.lint`, ``LIS0xx`` codes) and
the generated-code checker (:mod:`repro.check`, ``CHK0xx`` codes) are
built on this module: one :class:`Diagnostic` model, one severity
ranking, one code registry, one pair of text/JSON renderers and one
inline-comment suppression mechanism.  Factoring them here guarantees
the two tools behave identically — same output formats, same exit-code
convention, same ``disable=`` comments.

Each tool registers its own codes with :func:`register_codes`; code
prefixes keep the namespaces disjoint.
"""

from repro.diag.core import (
    CodeInfo,
    Diagnostic,
    DiagnosticResult,
    REGISTRY,
    Severity,
    make_diagnostic,
    register_codes,
    registered_codes,
)
from repro.diag.render import diagnostic_to_dict, render_json, render_text
from repro.diag.suppress import SuppressionIndex, loc_line, parse_disables

__all__ = [
    "CodeInfo",
    "Diagnostic",
    "DiagnosticResult",
    "REGISTRY",
    "Severity",
    "SuppressionIndex",
    "diagnostic_to_dict",
    "loc_line",
    "make_diagnostic",
    "parse_disables",
    "register_codes",
    "registered_codes",
    "render_json",
    "render_text",
]
