"""Aggregation of observability data and its text/JSON renderings.

The stats document is one JSON-serializable dict::

    {
      "counters": {<nested tree from dotted counter names>},
      "events":   {"emitted": N, "dropped": N, "recent": [{...}, ...]}
    }

The ``record_*`` helpers fold component-held statistics (code-cache
stats on the block translator, per-entrypoint counts on the runtime,
static DCE metadata on the build plan, cache/predictor stats on timing
models) into the shared counter set, so one :func:`collect` call renders
everything a run touched.
"""

from __future__ import annotations

import json

#: how many trailing events a collected document includes by default
RECENT_EVENTS = 32


def record_sim_stats(obs, sim) -> None:
    """Fold one :class:`SynthesizedSimulator`'s statistics into ``obs``.

    Call once per simulator instance, after its run.  Adds per-entrypoint
    invocation counts and (block interfaces) code-cache statistics.
    """
    counters = obs.counters
    for name, count in sim._obs_ep.items():
        if count:
            counters.inc(f"entrypoints.{name}", count)
    translator = getattr(sim, "_translator", None)
    if translator is not None:
        stats = translator.cache_stats
        counters.inc("code_cache.hits", stats.hits)
        counters.inc("code_cache.misses", stats.misses)
        counters.inc("code_cache.evictions", stats.evictions)
        counters.inc("code_cache.flushes", stats.flushes)
        counters.inc("code_cache.blocks", stats.blocks)
        counters.inc("code_cache.chain.links", stats.chain_links)
        counters.inc("code_cache.chain.unlinks", stats.chain_unlinks)
        counters.inc("code_cache.chain.chained", stats.chained)


def record_generated_stats(obs, generated) -> None:
    """Fold synthesis-time (static) metadata into ``obs``.

    Currently: per-action statement totals and DCE-eliminated counts
    gathered while the module was generated.  Call once per
    :class:`GeneratedSimulator`.
    """
    counters = obs.counters
    for action, (total, eliminated) in sorted(generated.plan.dce_stats.items()):
        counters.inc(f"dce.{action}.stmts", total)
        counters.inc(f"dce.{action}.eliminated", eliminated)


def record_timing_stats(obs, organization: str, model) -> None:
    """Fold a timing model's cache/predictor statistics into ``obs``.

    ``model`` is anything carrying ``icache``/``dcache``/``predictor``
    attributes (an :class:`InOrderPipelineModel` or a whole
    organization object).  Values are stored as gauges under the
    organization's name, so re-recording after a longer run overwrites
    rather than double-counts.
    """
    counters = obs.counters
    prefix = f"timing.{organization}"
    for label in ("icache", "dcache"):
        cache = getattr(model, label, None)
        if cache is None:
            continue
        counters.put(f"{prefix}.{label}.hits", cache.stats.hits)
        counters.put(f"{prefix}.{label}.misses", cache.stats.misses)
    predictor = getattr(model, "predictor", None)
    if predictor is not None:
        counters.put(f"{prefix}.branch.correct", predictor.stats.correct)
        counters.put(
            f"{prefix}.branch.mispredicted", predictor.stats.mispredicted
        )


def collect(obs, recent: int = RECENT_EVENTS) -> dict:
    """Render ``obs`` into the canonical stats document."""
    events = obs.events
    if events.dropped:
        # Surface ring truncation as a gauge in the counter tree too, so
        # consumers that only look at counters still see it.
        obs.counters.put("events.dropped", events.dropped)
    tail = events.snapshot()[-recent:] if recent else []
    return {
        "counters": obs.counters.as_tree(),
        "events": {
            "emitted": events.emitted,
            "dropped": events.dropped,
            "recent": [event.as_dict() for event in tail],
        },
    }


def render_json(stats: dict) -> str:
    return json.dumps(stats, indent=2, sort_keys=True)


def render_text(stats: dict) -> str:
    """Human-oriented rendering: indented counter tree + event summary."""
    lines: list[str] = ["== stats =="]

    def walk(node: dict, depth: int) -> None:
        pad = "  " * depth
        for key in sorted(node):
            value = node[key]
            if isinstance(value, dict):
                lines.append(f"{pad}{key}:")
                walk(value, depth + 1)
            else:
                lines.append(f"{pad}{key:24s} {value}")

    counters = stats.get("counters", {})
    if counters:
        walk(counters, 0)
    else:
        lines.append("(no counters recorded)")
    events = stats.get("events", {})
    if events:
        dropped = events.get("dropped", 0)
        lines.append(
            f"events: {events.get('emitted', 0)} emitted, "
            f"{dropped} dropped"
        )
        if dropped:
            lines.append(
                f"  WARNING: event trace truncated — the ring overwrote "
                f"{dropped} event(s); raise ring_capacity for a full trace"
            )
        for event in events.get("recent", []):
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(event.items())
                if k not in ("seq", "kind")
            )
            lines.append(f"  [{event['seq']}] {event['kind']} {fields}".rstrip())
    return "\n".join(lines)
