"""Hierarchical named counters.

Counter names are dotted paths (``code_cache.hits``,
``syscall.write``); the flat dict is the storage, the hierarchy is a
rendering (:meth:`Counters.as_tree`).  :class:`NullCounters` is the
disabled twin: every mutator is a no-op, every reader sees emptiness.
Code that may run with observability off should either hold a
:class:`NullCounters` (cold paths — a dynamically-dead method call) or
be synthesized without the probe entirely (hot paths — see
:mod:`repro.synth.codegen`).
"""

from __future__ import annotations


class Counters:
    """Mutable dotted-name counter store."""

    __slots__ = ("_data",)

    enabled = True

    def __init__(self) -> None:
        self._data: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        data = self._data
        data[name] = data.get(name, 0) + amount

    def put(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value (gauge semantics)."""
        self._data[name] = value

    def get(self, name: str, default: int = 0) -> int:
        return self._data.get(name, default)

    def items(self) -> list[tuple[str, int]]:
        """All counters sorted by name."""
        return sorted(self._data.items())

    def as_tree(self) -> dict:
        """The counters as a nested dict keyed by dotted-path segments.

        A name that is both a leaf and a prefix of longer names keeps its
        own value under the reserved key ``"total"``.
        """
        tree: dict = {}
        for name, value in self.items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):
                    nxt = node[part] = {"total": nxt}
                node = nxt
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf]["total"] = value
            else:
                node[leaf] = value
        return tree

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one (summing)."""
        for name, value in other.items():
            self.inc(name, value)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counters {len(self._data)} names>"


class NullCounters:
    """Disabled counters: accepts every call, records nothing."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def put(self, name: str, value: int) -> None:
        pass

    def get(self, name: str, default: int = 0) -> int:
        return default

    def items(self) -> list[tuple[str, int]]:
        return []

    def as_tree(self) -> dict:
        return {}

    def merge(self, other) -> None:
        pass

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: shared no-op instance (NullCounters is stateless, one is enough)
NULL_COUNTERS = NullCounters()
