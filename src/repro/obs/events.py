"""Structured event tracing into a fixed-capacity ring buffer.

Events capture the *mechanisms* behind the paper's numbers — block
translations, code-cache evictions and flushes, speculation rollbacks,
syscall traps, timing-first checker mismatches — without unbounded
memory growth: the ring holds the most recent ``capacity`` events and
counts what it overwrote.
"""

from __future__ import annotations

from dataclasses import dataclass

# Canonical event kinds emitted by the instrumented layers.
BLOCK_TRANSLATE = "block_translate"
CACHE_EVICT = "cache_evict"
CACHE_FLUSH = "cache_flush"
ROLLBACK = "rollback"
SYSCALL = "syscall"
TIMING_MISMATCH = "timing_mismatch"


@dataclass(frozen=True)
class Event:
    """One trace event: a kind plus free-form integer/str fields."""

    seq: int
    kind: str
    fields: tuple[tuple[str, object], ...]

    def as_dict(self) -> dict:
        out: dict = {"seq": self.seq, "kind": self.kind}
        out.update(self.fields)
        return out


class EventRing:
    """Overwriting ring buffer of :class:`Event` records.

    Wrapping is not silent: every overwritten event increments
    :attr:`dropped`, which :func:`repro.obs.report.collect` surfaces as
    the ``events.dropped`` counter so a truncated trace is visible in
    both the text and JSON stats renderings.
    """

    __slots__ = ("capacity", "_buf", "_next", "emitted", "dropped")

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: list[Event | None] = [None] * capacity
        self._next = 0
        self.emitted = 0
        #: events overwritten because the ring was full
        self.dropped = 0

    def emit(self, kind: str, **fields) -> None:
        event = Event(self.emitted, kind, tuple(sorted(fields.items())))
        slot = self._next
        if self._buf[slot] is not None:
            self.dropped += 1
        self._buf[slot] = event
        self._next = (slot + 1) % self.capacity
        self.emitted += 1

    def snapshot(self) -> list[Event]:
        """Retained events, oldest first."""
        ordered = self._buf[self._next :] + self._buf[: self._next]
        return [e for e in ordered if e is not None]

    def clear(self) -> None:
        self._buf = [None] * self.capacity
        self._next = 0
        self.emitted = 0
        self.dropped = 0

    def __len__(self) -> int:
        return min(self.emitted, self.capacity)


class NullEventRing:
    """Disabled ring: accepts every emit, retains nothing."""

    __slots__ = ()

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0

    def emit(self, kind: str, **fields) -> None:
        pass

    def snapshot(self) -> list[Event]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: shared no-op instance
NULL_EVENTS = NullEventRing()
