"""The instrumentation facade threaded through every layer.

One :class:`Observability` instance is shared by a simulator, its OS
emulator and any timing organization wrapped around it, so a whole run
aggregates into one counter set and one event ring.  ``NULL_OBS`` is the
single shared disabled instance; layers accept ``obs=None`` and
substitute it, then branch **once** (at construction or synthesis time)
on ``obs.enabled`` to select their unobserved fast paths.

Probe points in the stack (see docs/observability.md for the catalog):

===========================  ==================================================
layer                        probes
===========================  ==================================================
synth/codegen (generated)    per-entrypoint invocation counts (``_obs_ep``),
                             DCE-eliminated statement counts (static metadata)
synth/translator             block translation time/length, per-block DCE,
                             code-cache hit/miss/evict/flush
synth/runtime                counted ``do_block`` path, cache-flush events
sysemu/syscalls              per-syscall counters + trap events
timing/*                     cache and predictor stats, mismatch events,
                             rollback depth histogram
===========================  ==================================================
"""

from __future__ import annotations

from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.events import NULL_EVENTS, EventRing


class Observability:
    """Live counters + event ring shared across one run's components."""

    __slots__ = ("counters", "events")

    enabled = True

    def __init__(self, ring_capacity: int = 4096) -> None:
        self.counters = Counters()
        self.events = EventRing(ring_capacity)

    def clear(self) -> None:
        self.counters.clear()
        self.events.clear()


class _NullObservability:
    """Disabled facade: null counters, null events, ``enabled = False``."""

    __slots__ = ("counters", "events")

    enabled = False

    def __init__(self) -> None:
        self.counters = NULL_COUNTERS
        self.events = NULL_EVENTS

    def clear(self) -> None:
        pass


#: the shared disabled instance every layer defaults to
NULL_OBS = _NullObservability()


def make_observability(enabled: bool = True, ring_capacity: int = 4096):
    """An :class:`Observability` when enabled, else the shared null."""
    return Observability(ring_capacity) if enabled else NULL_OBS
