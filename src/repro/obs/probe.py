"""The instrumentation facade threaded through every layer.

One :class:`Observability` instance is shared by a simulator, its OS
emulator and any timing organization wrapped around it, so a whole run
aggregates into one counter set and one event ring.  ``NULL_OBS`` is the
single shared disabled instance; layers accept ``obs=None`` and
substitute it, then branch **once** (at construction or synthesis time)
on ``obs.enabled`` to select their unobserved fast paths.

Probe points in the stack (see docs/observability.md for the catalog):

===========================  ==================================================
layer                        probes
===========================  ==================================================
synth/codegen (generated)    per-entrypoint invocation counts (``_obs_ep``),
                             DCE-eliminated statement counts (static metadata)
synth/translator             block translation time/length, per-block DCE,
                             code-cache hit/miss/evict/flush
synth/runtime                counted ``do_block`` path, cache-flush events
sysemu/syscalls              per-syscall counters + trap events
timing/*                     cache and predictor stats, mismatch events,
                             rollback depth histogram
===========================  ==================================================
"""

from __future__ import annotations

from repro.obs.counters import NULL_COUNTERS, Counters
from repro.obs.events import NULL_EVENTS, EventRing
from repro.prof.profiler import NULL_PROF, Profiler


class Observability:
    """Live counters + event ring shared across one run's components.

    ``profiler`` optionally attaches a :class:`repro.prof.Profiler` as
    ``self.prof``; layers branch once on ``obs.prof.enabled`` to select
    their profiled variants, exactly as they branch on ``obs.enabled``
    for counting.
    """

    __slots__ = ("counters", "events", "prof")

    enabled = True

    def __init__(self, ring_capacity: int = 4096, profiler=None) -> None:
        self.counters = Counters()
        self.events = EventRing(ring_capacity)
        self.prof = profiler if profiler is not None else NULL_PROF

    def clear(self) -> None:
        self.counters.clear()
        self.events.clear()
        self.prof.clear()


class _NullObservability:
    """Disabled facade: null counters, null events, ``enabled = False``."""

    __slots__ = ("counters", "events", "prof")

    enabled = False

    def __init__(self) -> None:
        self.counters = NULL_COUNTERS
        self.events = NULL_EVENTS
        self.prof = NULL_PROF

    def clear(self) -> None:
        pass


#: the shared disabled instance every layer defaults to
NULL_OBS = _NullObservability()


def make_observability(
    enabled: bool = True, ring_capacity: int = 4096, profile: bool = False
):
    """An :class:`Observability` when enabled, else the shared null.

    ``profile=True`` additionally attaches a live
    :class:`repro.prof.Profiler` (and implies ``enabled``): profiling
    rides on the same facade the counters do.
    """
    if profile:
        return Observability(ring_capacity, profiler=Profiler())
    return Observability(ring_capacity) if enabled else NULL_OBS
