"""Observability: counters, event tracing and reporting for the stack.

The subsystem follows the same principle as the simulators it watches:
the *enabled* and *disabled* variants are selected up front (at
synthesis or construction time), not tested per event.  A simulator
built without observability contains no probe bytecode at all, and the
runtime binds its unobserved fast paths — being off costs nothing.

Layers:

* :mod:`repro.obs.counters` — hierarchical named counters;
* :mod:`repro.obs.events` — fixed-capacity ring buffer of structured
  trace events (block translations, evictions, rollbacks, syscalls,
  timing mismatches);
* :mod:`repro.obs.probe` — the :class:`Observability` facade handed to
  every layer, plus the shared null instance;
* :mod:`repro.obs.report` — aggregation into one stats tree and its
  text/JSON renderings.
"""

from repro.obs.counters import NULL_COUNTERS, Counters, NullCounters
from repro.obs.events import NULL_EVENTS, Event, EventRing, NullEventRing
from repro.obs.probe import NULL_OBS, Observability, make_observability
from repro.obs.report import (
    collect,
    record_generated_stats,
    record_sim_stats,
    record_timing_stats,
    render_json,
    render_text,
)

__all__ = [
    "Counters",
    "Event",
    "EventRing",
    "NULL_COUNTERS",
    "NULL_EVENTS",
    "NULL_OBS",
    "NullCounters",
    "NullEventRing",
    "Observability",
    "collect",
    "make_observability",
    "record_generated_stats",
    "record_sim_stats",
    "record_timing_stats",
    "render_json",
    "render_text",
]
