"""Instruction-kind classification for timing models.

Trace-driven (functional-first) timing simulators decode the instruction
word themselves to learn the instruction's kind; this helper memoizes
that decode against the single specification, so the timing model never
duplicates semantics — only categories.
"""

from __future__ import annotations

from repro.adl.spec import IsaSpec
from repro.adl.snippets import analyze_stmt

LOAD = "load"
STORE = "store"
BRANCH = "branch"
SYSCALL = "syscall"
MUL = "mul"
ALU = "alu"


def _instruction_kind(spec: IsaSpec, index: int) -> str:
    instr = spec.instructions[index]
    effects = set()
    writes = set()
    reads_mem = False
    for stmts in instr.action_code.values():
        for stmt in stmts:
            facts = analyze_stmt(stmt)
            effects |= facts.effects
            writes |= facts.writes
            if "__mem_read" in facts.reads or "__mem_read" in facts.unknown_calls:
                reads_mem = True
    if "__syscall" in effects:
        return SYSCALL
    if "__mem_write" in effects:
        return STORE
    # memory reads appear as pure calls; detect via source text
    source_kinds = " ".join(instr.action_code)
    if "memory_access" in instr.action_code and any(
        "__mem_read" in _stmt_source(s)
        for s in instr.action_code.get("memory_access", ())
    ):
        return LOAD
    if "next_pc" in writes:
        return BRANCH
    if "mul" in instr.name.lower():
        return MUL
    return ALU


def _stmt_source(stmt) -> str:
    import ast

    return ast.unparse(stmt)


class InstructionClassifier:
    """Memoized word -> kind classification for one ISA."""

    def __init__(self, spec: IsaSpec) -> None:
        self.spec = spec
        self._kind_by_index = [
            _instruction_kind(spec, i) for i in range(len(spec.instructions))
        ]
        self._cache: dict[int, str] = {}

    def kind(self, word: int) -> str:
        kind = self._cache.get(word)
        if kind is None:
            index = self.spec.decode(word)
            kind = self._kind_by_index[index] if index is not None else ALU
            self._cache[word] = kind
        return kind

    def name(self, word: int) -> str:
        index = self.spec.decode(word)
        return self.spec.instructions[index].name if index is not None else "?"
