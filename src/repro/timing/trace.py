"""Stored instruction traces (paper §II-B).

"The instruction stream could even be written to storage and then fed to
the timing simulator or multiple timing simulators in parallel."  A
:class:`TraceWriter` captures the per-instruction records of any Block
interface into a compact file; :class:`TraceReader` replays them into as
many trace-consuming timing models as desired, with no functional
simulation at all on the replay side.

File format: a text header naming the ISA, interface and record fields,
then one line per instruction with ``repr``-compatible values (``-`` for
fields the instruction did not produce).  Deliberately simple and
diff-able; density was not a goal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterator

from repro.arch.faults import ExitProgram
from repro.synth.synthesizer import GeneratedSimulator

MAGIC = "repro-trace 1"


class TraceWriter:
    """Runs a Block-interface simulator and streams its records to a file."""

    def __init__(self, generated: GeneratedSimulator, syscall_handler=None):
        if generated.plan.buildset.semantic_detail != "block":
            raise ValueError("trace capture needs a Block-detail interface")
        self.generated = generated
        self.sim = generated.make(syscall_handler=syscall_handler)
        self.fields = generated.plan.trace_fields

    @property
    def state(self):
        return self.sim.state

    def capture(self, stream: IO[str], max_instructions: int) -> int:
        """Run and write records; returns instructions captured."""
        plan = self.generated.plan
        stream.write(f"{MAGIC}\n")
        stream.write(f"isa {plan.spec.name}\n")
        stream.write(f"interface {plan.buildset.name}\n")
        stream.write(f"fields {' '.join(self.fields)}\n")
        sim = self.sim
        di = sim.di
        captured = 0

        def flush_records():
            nonlocal captured
            for record in di.trace:
                stream.write(
                    " ".join("-" if v is None else str(v) for v in record)
                )
                stream.write("\n")
                captured += 1

        try:
            while captured < max_instructions:
                di.count = 0
                sim.do_block(di)
                flush_records()
        except ExitProgram as exc:
            flush_records()
            stream.write(f"exit {exc.status}\n")
        return captured


@dataclass
class TraceHeader:
    isa: str
    interface: str
    fields: tuple[str, ...]


class TraceReader:
    """Replays a stored trace as per-instruction record dicts."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        if stream.readline().strip() != MAGIC:
            raise ValueError("not a repro trace file")
        header: dict[str, str] = {}
        for _ in range(3):
            key, _, value = stream.readline().strip().partition(" ")
            header[key] = value
        self.header = TraceHeader(
            isa=header["isa"],
            interface=header["interface"],
            fields=tuple(header["fields"].split()),
        )
        self.exit_status: int | None = None

    def __iter__(self) -> Iterator[dict[str, int | None]]:
        fields = self.header.fields
        for line in self._stream:
            line = line.strip()
            if not line:
                continue
            if line.startswith("exit "):
                self.exit_status = int(line.split()[1])
                return
            values = [
                None if token == "-" else int(token) for token in line.split()
            ]
            yield dict(zip(fields, values))


def replay_into(reader: TraceReader, timing_model) -> None:
    """Feed every record of ``reader`` into an in-order pipeline model."""
    for record in reader:
        timing_model.consume(
            record["pc"],
            record["instr_bits"],
            record["next_pc"],
            record.get("effective_addr"),
            record.get("branch_taken"),
        )
