"""Timing-first organization (paper §II-D).

"The timing simulator performs functional behaviour which is then checked
by the functional simulator; when there is a mismatch, the timing
simulator's pipeline is flushed and its architectural state is reloaded
from the functional simulator."

The timing side here is an integrated model (it executes instructions
itself); the checker is a One/Min functional simulator running one
instruction behind.  A fault-injection hook lets tests demonstrate the
organization's selling point: timing-model functional bugs surface as
counted, recoverable mismatches rather than silent corruption.
"""

from __future__ import annotations

from repro.arch.faults import ExitProgram
from repro.obs.events import TIMING_MISMATCH
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats
from repro.prof.spans import TIMING as TIMING_SPAN
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.classify import BRANCH, LOAD, MUL, STORE, InstructionClassifier
from repro.timing.pipeline import TimingReport, default_caches
from repro.timing.branch import BimodalPredictor


class TimingFirstSimulator:
    """Integrated timing model checked by a decoupled functional model."""

    def __init__(
        self,
        timing_generated: GeneratedSimulator,
        checker_generated: GeneratedSimulator,
        syscall_handler_factory,
        inject_bug_every: int | None = None,
        obs=None,
    ) -> None:
        # Two independent simulators with independent OS emulators: the
        # paper's organization keeps completely separate state and
        # resynchronizes on mismatch.
        self.obs = obs if obs is not None else NULL_OBS
        self.timing_sim = timing_generated.make(
            syscall_handler=syscall_handler_factory(), obs=self.obs
        )
        self.checker_sim = checker_generated.make(
            syscall_handler=syscall_handler_factory()
        )
        self.classifier = InstructionClassifier(timing_generated.spec)
        self.icache, self.dcache = default_caches()
        self.predictor = BimodalPredictor()
        self.inject_bug_every = inject_bug_every
        self.cycles = 0
        self.instructions = 0
        self.mismatches = 0
        self.mispredicts = 0

    @property
    def state(self):
        return self.timing_sim.state

    def load(self, loader) -> None:
        """Apply a loader callable to both simulators' states."""
        loader(self.timing_sim.state)
        loader(self.checker_sim.state)

    def _account(self, di) -> None:
        kind = self.classifier.kind(di.instr_bits)
        cycles = self.icache.access(di.pc)
        if kind in (LOAD, STORE):
            cycles += self.dcache.access(di.effective_addr, kind == STORE)
        elif kind == MUL:
            cycles += 3
        if kind == BRANCH and not self.predictor.update(
            di.pc, bool(di.branch_taken)
        ):
            cycles += 6
            self.mispredicts += 1
        self.cycles += cycles

    def step_instruction(self) -> None:
        timing = self.timing_sim
        checker = self.checker_sim
        timing.do_in_one(timing.di)
        self._account(timing.di)
        self.instructions += 1
        if (
            self.inject_bug_every
            and self.instructions % self.inject_bug_every == 0
        ):
            # Deliberate timing-model functional bug (paper: "bugs can be
            # tolerated"): corrupt a register before the check runs.
            regfile = next(iter(timing.state.rf.values()))
            regfile[5] ^= 0x1000
        # The checker executes the same instruction on its own state...
        checker.do_in_one(checker.di)
        # ...and the timing model's architectural state is validated
        # against it ("the timing model directly queries architectural
        # state in the functional model").
        if (
            timing.state.pc != checker.state.pc
            or timing.state.rf != checker.state.rf
            or timing.state.sr != checker.state.sr
        ):
            self.mismatches += 1
            if self.obs.enabled:
                self.obs.counters.inc("timing_first.mismatches")
                self.obs.events.emit(
                    TIMING_MISMATCH,
                    pc=timing.state.pc,
                    instruction=self.instructions,
                )
            # Pipeline flush + state reload from the functional model.
            timing.state.copy_architectural_state_from(checker.state)
            self.cycles += 10  # flush penalty

    def run(self, max_instructions: int) -> TimingReport:
        """Profiling-aware entry: a TIMING span brackets the whole drive."""
        if self.obs.prof.enabled:
            with self.obs.prof.spans.span(TIMING_SPAN):
                return self._run(max_instructions)
        return self._run(max_instructions)

    def _run(self, max_instructions: int) -> TimingReport:
        report = TimingReport("timing-first")
        try:
            while self.instructions < max_instructions:
                self.step_instruction()
        except ExitProgram as exc:
            report.exit_status = exc.status
        report.instructions = self.instructions
        report.cycles = self.cycles
        report.mismatches = self.mismatches
        report.branch_mispredicts = self.mispredicts
        report.icache_misses = self.icache.stats.misses
        report.dcache_misses = self.dcache.stats.misses
        if self.obs.enabled:
            record_timing_stats(self.obs, "timing_first", self)
        return report
