"""Sampling simulation: detailed windows + fast-forward (paper §I/§II-C).

"Timing simulators which support sampling perform detailed simulation for
only small portions of the total simulation run and fast-forward through
the rest ... During fast-forwarding, the timing simulator needs very
little information from and exerts little control on the functional
simulator."

Two synthesized interfaces over ONE architectural state: a Step-detail
interface drives the detailed windows, and a Block/Min interface performs
the fast-forwarding.  This is the multi-interface use case that motivates
the single-specification principle — both simulators come from the same
description, so no functionality was written twice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.arch.faults import ExitProgram
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.timing_directed import TimingDirectedSimulator


@dataclass
class SamplingReport:
    instructions: int
    detailed_instructions: int
    fastforward_instructions: int
    sampled_cycles: int
    elapsed: float
    exit_status: int | None

    @property
    def estimated_cpi(self) -> float:
        if not self.detailed_instructions:
            return 0.0
        return self.sampled_cycles / self.detailed_instructions


class SamplingSimulator:
    """Alternates detailed (Step) and fast-forward (Block/Min) execution."""

    def __init__(
        self,
        step_generated: GeneratedSimulator,
        block_generated: GeneratedSimulator,
        syscall_handler=None,
        detail_window: int = 200,
        fastforward_window: int = 1800,
        obs=None,
    ) -> None:
        state = step_generated.spec.make_state()
        self.detailed = TimingDirectedSimulator(
            step_generated, syscall_handler=syscall_handler, state=state,
            obs=obs,
        )
        self.fast = block_generated.make(
            state=state, syscall_handler=syscall_handler, obs=obs
        )
        self.detail_window = detail_window
        self.fastforward_window = fastforward_window

    @property
    def state(self):
        return self.fast.state

    def run(self, max_instructions: int) -> SamplingReport:
        detailed_count = 0
        fast_count = 0
        status = None
        cycles_before = self.detailed.cycles
        start = time.perf_counter()
        try:
            while detailed_count + fast_count < max_instructions:
                for _ in range(self.detail_window):
                    self.detailed.step_instruction()
                    detailed_count += 1
                result = self.fast.run(self.fastforward_window)
                fast_count += result.executed
                if result.exited:
                    status = result.exit_status
                    break
        except ExitProgram as exc:
            status = exc.status
        elapsed = time.perf_counter() - start
        return SamplingReport(
            instructions=detailed_count + fast_count,
            detailed_instructions=detailed_count,
            fastforward_instructions=fast_count,
            sampled_cycles=self.detailed.cycles - cycles_before,
            elapsed=elapsed,
            exit_status=status,
        )
