"""Speculative functional-first organization (paper §II-E).

"All execution ... is considered speculative, and when the timing
simulator detects that the functional simulator's execution has differed
in any way from the timing simulator's ... it can command the functional
simulator to undo its previous behavior and continue down another path."

The substrate for the paper's motivating case (timing-dependent memory
ordering between threads) is a multiprocessor; per the substitution rule
we model the *interface consequence* instead: a deterministic divergence
schedule stands in for detected memory-order violations, forcing the
functional simulator to roll back its speculative tail and re-execute.
Final architectural state must be (and is, see tests) unaffected —
which is precisely the property the rollback interface must provide.
"""

from __future__ import annotations

from repro.arch.faults import ExitProgram
from repro.obs.events import ROLLBACK
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats
from repro.prof.spans import TIMING as TIMING_SPAN
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.pipeline import InOrderPipelineModel, TimingReport


class SpeculativeFunctionalFirstSimulator:
    """Run-ahead functional simulator with rollback on divergence."""

    def __init__(
        self,
        generated: GeneratedSimulator,
        syscall_handler=None,
        timing: InOrderPipelineModel | None = None,
        window: int = 16,
        diverge_every: int = 0,
        diverge_depth: int = 4,
        obs=None,
    ) -> None:
        if not generated.plan.buildset.speculation:
            raise ValueError(
                "speculative functional-first requires a speculation-enabled "
                "interface"
            )
        if generated.plan.buildset.semantic_detail != "one":
            raise ValueError("expected a One-detail speculative interface")
        self.obs = obs if obs is not None else NULL_OBS
        self.sim = generated.make(syscall_handler=syscall_handler, obs=self.obs)
        self.timing = timing or InOrderPipelineModel(generated.spec)
        self.window = window
        self.diverge_every = diverge_every
        self.diverge_depth = diverge_depth
        self.rollbacks = 0
        self.rolled_back_instructions = 0
        self._since_diverge = 0

    @property
    def state(self):
        return self.sim.state

    def run(self, max_instructions: int) -> TimingReport:
        """Profiling-aware entry: a TIMING span brackets the whole drive."""
        if self.obs.prof.enabled:
            with self.obs.prof.spans.span(TIMING_SPAN):
                return self._run(max_instructions)
        return self._run(max_instructions)

    def _run(self, max_instructions: int) -> TimingReport:
        report = TimingReport("speculative-functional-first")
        sim = self.sim
        di = sim.di
        committed = 0
        speculative = 0
        try:
            while committed + speculative < max_instructions:
                sim.do_in_one(di)
                speculative += 1
                self._since_diverge += 1
                self.timing.consume(
                    di.pc,
                    di.instr_bits,
                    di.next_pc,
                    getattr(di, "effective_addr", None),
                    getattr(di, "branch_taken", None),
                )
                if (
                    self.diverge_every
                    and self._since_diverge >= self.diverge_every
                    and speculative > 0
                ):
                    # Timing model detected divergence: undo the tail and
                    # re-execute it down the (identical) corrected path.
                    depth = min(self.diverge_depth, speculative)
                    sim.rollback(depth)
                    speculative -= depth
                    self.rollbacks += 1
                    self.rolled_back_instructions += depth
                    self._since_diverge = 0
                    if self.obs.enabled:
                        # Depth histogram: one counter per rollback depth.
                        self.obs.counters.inc("rollback.count")
                        self.obs.counters.inc(f"rollback.depth.{depth}")
                        self.obs.events.emit(
                            ROLLBACK, depth=depth, committed=committed
                        )
                if speculative > self.window:
                    commit = speculative - self.window
                    sim.commit(commit)
                    committed += commit
                    speculative -= commit
        except ExitProgram as exc:
            report.exit_status = exc.status
            committed += speculative
        report = self.timing.fill_report(report)
        report.organization = "speculative-functional-first"
        report.rollbacks = self.rollbacks
        report.rolled_back_instructions = self.rolled_back_instructions
        if self.obs.enabled:
            record_timing_stats(self.obs, "spec_functional_first", self.timing)
        return report
