"""Branch prediction timing models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    correct: int = 0
    mispredicted: int = 0

    @property
    def predictions(self) -> int:
        return self.correct + self.mispredicted

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class BimodalPredictor:
    """Classic 2-bit saturating-counter predictor indexed by PC."""

    def __init__(self, entries: int = 1024) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._table = [2] * entries  # weakly taken
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was right."""
        index = self._index(pc)
        predicted = self._table[index] >= 2
        if taken and self._table[index] < 3:
            self._table[index] += 1
        elif not taken and self._table[index] > 0:
            self._table[index] -= 1
        if predicted == taken:
            self.stats.correct += 1
        else:
            self.stats.mispredicted += 1
        return predicted == taken


class GsharePredictor:
    """Global-history XOR-indexed 2-bit predictor."""

    def __init__(self, entries: int = 1024, history_bits: int = 8) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._table = [2] * entries
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        index = self._index(pc)
        predicted = self._table[index] >= 2
        if taken and self._table[index] < 3:
            self._table[index] += 1
        elif not taken and self._table[index] > 0:
            self._table[index] -= 1
        self._history = (
            (self._history << 1) | (1 if taken else 0)
        ) & ((1 << self.history_bits) - 1)
        if predicted == taken:
            self.stats.correct += 1
        else:
            self.stats.mispredicted += 1
        return predicted == taken


class AlwaysTakenPredictor:
    """Degenerate baseline predictor."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> bool:
        if taken:
            self.stats.correct += 1
        else:
            self.stats.mispredicted += 1
        return taken
