"""Shared in-order pipeline timing mathematics and reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timing.branch import BimodalPredictor
from repro.timing.cache import Cache
from repro.timing.classify import (
    BRANCH,
    LOAD,
    MUL,
    STORE,
    SYSCALL,
    InstructionClassifier,
)


@dataclass
class TimingReport:
    """Summary of one timing-simulation run."""

    organization: str
    instructions: int = 0
    cycles: int = 0
    branch_mispredicts: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    mismatches: int = 0  # timing-first checker corrections
    rollbacks: int = 0  # speculative functional-first recoveries
    rolled_back_instructions: int = 0
    exit_status: int | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def default_caches() -> tuple[Cache, Cache]:
    l2 = Cache("L2", size=256 * 1024, line=64, assoc=8, hit_latency=8,
               miss_penalty=60)
    icache = Cache("I1", size=8 * 1024, line=32, assoc=2, hit_latency=1,
                   next_level=l2)
    dcache = Cache("D1", size=8 * 1024, line=32, assoc=2, hit_latency=1,
                   next_level=l2)
    return icache, dcache


class InOrderPipelineModel:
    """Scalar in-order pipeline: 1 CPI plus memory/branch/multiply stalls.

    Consumes per-instruction information at the paper's "Decode"
    informational level: pc, instruction bits, next pc, effective address,
    branch direction.
    """

    def __init__(
        self,
        spec,
        icache: Cache | None = None,
        dcache: Cache | None = None,
        predictor: BimodalPredictor | None = None,
        mispredict_penalty: int = 6,
        mul_latency: int = 4,
    ) -> None:
        if icache is None or dcache is None:
            icache, dcache = default_caches()
        self.classifier = InstructionClassifier(spec)
        self.icache = icache
        self.dcache = dcache
        self.predictor = predictor or BimodalPredictor()
        self.mispredict_penalty = mispredict_penalty
        self.mul_latency = mul_latency
        self.cycles = 0
        self.instructions = 0
        self.mispredicts = 0

    def consume(
        self,
        pc: int,
        instr_bits: int,
        next_pc: int,
        effective_addr: int | None,
        branch_taken: int | None,
    ) -> None:
        """Account one committed instruction."""
        kind = self.classifier.kind(instr_bits)
        cycles = self.icache.access(pc)  # fetch
        if kind in (LOAD, STORE) and effective_addr is not None:
            cycles += self.dcache.access(effective_addr, kind == STORE)
        elif kind == MUL:
            cycles += self.mul_latency
        if kind == BRANCH:
            taken = bool(branch_taken) if branch_taken is not None else (
                next_pc != pc + 4
            )
            if not self.predictor.update(pc, taken):
                cycles += self.mispredict_penalty
                self.mispredicts += 1
        self.cycles += cycles
        self.instructions += 1

    def fill_report(self, report: TimingReport) -> TimingReport:
        report.instructions = self.instructions
        report.cycles = self.cycles
        report.branch_mispredicts = self.mispredicts
        report.icache_misses = self.icache.stats.misses
        report.dcache_misses = self.dcache.stats.misses
        return report
