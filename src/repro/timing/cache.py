"""Set-associative cache timing model (LRU replacement).

Timing simulators in every organization use these for instruction and
data access latencies.  Only timing is modeled — data always comes from
the functional simulator's memory, exactly the decoupling the paper's
taxonomy assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of cache; ``next_level`` may be another Cache or None.

    Latency returned by :meth:`access` is the total cycles including any
    lower-level penalty.
    """

    def __init__(
        self,
        name: str,
        size: int = 16 * 1024,
        line: int = 32,
        assoc: int = 2,
        hit_latency: int = 1,
        miss_penalty: int = 20,
        next_level: "Cache | None" = None,
    ) -> None:
        if size % (line * assoc):
            raise ValueError("size must be a multiple of line * assoc")
        self.name = name
        self.line = line
        self.assoc = assoc
        self.sets = size // (line * assoc)
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self.next_level = next_level
        self.stats = CacheStats()
        # each set: list of tags, most-recently-used last
        self._ways: list[list[int]] = [[] for _ in range(self.sets)]

    def access(self, addr: int, write: bool = False) -> int:
        """Access ``addr``; returns latency in cycles and updates state."""
        line_addr = addr // self.line
        index = line_addr % self.sets
        tag = line_addr // self.sets
        ways = self._ways[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return self.hit_latency
        self.stats.misses += 1
        latency = self.hit_latency + (
            self.next_level.access(addr, write)
            if self.next_level is not None
            else self.miss_penalty
        )
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return latency

    def flush(self) -> None:
        self._ways = [[] for _ in range(self.sets)]

    def reset_stats(self) -> None:
        self.stats = CacheStats()
