"""Integrated organization (paper §II-A).

"The integrated organization uses only a single simulator which
intermingles the functional and timing aspects ... and thus does not have
a separate functional simulator nor an interface."  We model it as one
loop that executes functionally and accounts cycles inline — useful as
the baseline row of the Figure 1 demonstration and as the timing side of
timing-first.
"""

from __future__ import annotations

from repro.arch.faults import ExitProgram
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.classify import BRANCH, LOAD, MUL, STORE, InstructionClassifier
from repro.timing.pipeline import TimingReport, default_caches
from repro.timing.branch import BimodalPredictor


class IntegratedSimulator:
    """Functional execution and cycle accounting intermingled in one loop."""

    def __init__(self, generated: GeneratedSimulator, syscall_handler=None,
                 obs=None):
        if generated.plan.buildset.semantic_detail != "one":
            raise ValueError("integrated baseline uses a One-detail build")
        self.obs = obs if obs is not None else NULL_OBS
        self.sim = generated.make(syscall_handler=syscall_handler, obs=self.obs)
        self.classifier = InstructionClassifier(generated.spec)
        self.icache, self.dcache = default_caches()
        self.predictor = BimodalPredictor()
        self.cycles = 0
        self.instructions = 0
        self.mispredicts = 0

    @property
    def state(self):
        return self.sim.state

    def run(self, max_instructions: int) -> TimingReport:
        report = TimingReport("integrated")
        sim = self.sim
        di = sim.di
        try:
            while self.instructions < max_instructions:
                sim.do_in_one(di)
                self.instructions += 1
                kind = self.classifier.kind(di.instr_bits)
                cycles = self.icache.access(di.pc)
                if kind in (LOAD, STORE):
                    cycles += self.dcache.access(
                        di.effective_addr, kind == STORE
                    )
                elif kind == MUL:
                    cycles += 3
                if kind == BRANCH and not self.predictor.update(
                    di.pc, bool(di.branch_taken)
                ):
                    cycles += 6
                    self.mispredicts += 1
                self.cycles += cycles
        except ExitProgram as exc:
            report.exit_status = exc.status
        report.instructions = self.instructions
        report.cycles = self.cycles
        report.branch_mispredicts = self.mispredicts
        report.icache_misses = self.icache.stats.misses
        report.dcache_misses = self.dcache.stats.misses
        if self.obs.enabled:
            record_timing_stats(self.obs, "integrated", self)
        return report
