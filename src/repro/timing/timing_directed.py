"""Timing-directed organization (paper §II-C).

"As instructions flow through the microarchitecture, the timing simulator
asks the functional simulator to execute particular elements of each
instruction's behaviour."  We drive the seven Step-detail interface calls
(fetch, decode, operand fetch, execute, memory, writeback, exception) one
at a time, charging cycles per stage — the timing simulator controls when
each semantic step of the instruction happens.
"""

from __future__ import annotations

from repro.arch.faults import ExitProgram
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats
from repro.prof.spans import TIMING as TIMING_SPAN
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.classify import BRANCH, LOAD, MUL, STORE, InstructionClassifier
from repro.timing.pipeline import TimingReport, default_caches
from repro.timing.branch import BimodalPredictor


class TimingDirectedSimulator:
    """Pipeline that invokes individual instruction steps at its own pace."""

    def __init__(
        self,
        generated: GeneratedSimulator,
        syscall_handler=None,
        state=None,
        mispredict_penalty: int = 6,
        mul_latency: int = 4,
        obs=None,
    ) -> None:
        if generated.plan.buildset.semantic_detail != "step":
            raise ValueError("timing-directed requires a Step-detail interface")
        self.obs = obs if obs is not None else NULL_OBS
        self.sim = generated.make(
            state=state, syscall_handler=syscall_handler, obs=self.obs
        )
        self.entries = [getattr(self.sim, n) for n in self.sim.entry_names]
        self.classifier = InstructionClassifier(generated.spec)
        self.icache, self.dcache = default_caches()
        self.predictor = BimodalPredictor()
        self.mispredict_penalty = mispredict_penalty
        self.mul_latency = mul_latency
        self.cycles = 0
        self.instructions = 0
        self.mispredicts = 0

    @property
    def state(self):
        return self.sim.state

    def step_instruction(self) -> None:
        """Drive one instruction through the seven interface calls."""
        di = self.sim.di
        (fetch, decode, operands, execute, memory, writeback, exception) = (
            self.entries
        )
        # Fetch: timing decides when the fetch happens and pays the I-cache.
        fetch(di)
        self.cycles += self.icache.access(di.pc)
        # Decode + operand fetch: one cycle each in this simple pipe.
        decode(di)
        self.cycles += 1
        operands(di)
        kind = self.classifier.kind(di.instr_bits)
        # Execute.
        execute(di)
        self.cycles += self.mul_latency if kind == MUL else 1
        # Memory: the timing model issues the access when the D-cache
        # port is free; here that's immediately, but the *control* is ours.
        memory(di)
        if kind in (LOAD, STORE):
            self.cycles += self.dcache.access(di.effective_addr, kind == STORE)
        # Writeback happens when the timing model says so.
        writeback(di)
        exception(di)
        if kind == BRANCH:
            taken = bool(di.branch_taken)
            if not self.predictor.update(di.pc, taken):
                self.cycles += self.mispredict_penalty
                self.mispredicts += 1
        self.instructions += 1

    def run(self, max_instructions: int) -> TimingReport:
        """Profiling-aware entry: a TIMING span brackets the whole drive."""
        if self.obs.prof.enabled:
            with self.obs.prof.spans.span(TIMING_SPAN):
                return self._run(max_instructions)
        return self._run(max_instructions)

    def _run(self, max_instructions: int) -> TimingReport:
        report = TimingReport("timing-directed")
        try:
            while self.instructions < max_instructions:
                self.step_instruction()
        except ExitProgram as exc:
            self.instructions += 1
            report.exit_status = exc.status
        report.instructions = self.instructions
        report.cycles = self.cycles
        report.branch_mispredicts = self.mispredicts
        report.icache_misses = self.icache.stats.misses
        report.dcache_misses = self.dcache.stats.misses
        if self.obs.enabled:
            record_timing_stats(self.obs, "timing_directed", self)
        return report
