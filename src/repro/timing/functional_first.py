"""Functional-first organization (paper §II-B).

"The functional simulator executes instructions and produces a stream of
information about their execution which is then consumed by the timing
simulator."  We drive a Block-detail functional simulator and feed its
per-instruction trace records into the in-order pipeline model.  The
interface needs only the Decode informational level — exactly the
``block_decode`` buildset.
"""

from __future__ import annotations

from repro.arch.faults import ExitProgram
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats
from repro.prof.spans import TIMING
from repro.synth.synthesizer import GeneratedSimulator
from repro.timing.pipeline import InOrderPipelineModel, TimingReport


class FunctionalFirstSimulator:
    """Trace-producing functional simulator + trace-consuming timing model."""

    def __init__(
        self,
        generated: GeneratedSimulator,
        syscall_handler=None,
        timing: InOrderPipelineModel | None = None,
        obs=None,
    ) -> None:
        if generated.plan.buildset.semantic_detail != "block":
            raise ValueError(
                "functional-first expects a block-detail interface "
                "(one call per basic block producing a trace)"
            )
        self.obs = obs if obs is not None else NULL_OBS
        self.sim = generated.make(syscall_handler=syscall_handler, obs=self.obs)
        self.timing = timing or InOrderPipelineModel(generated.spec)
        fields = generated.plan.trace_fields
        index = {name: position for position, name in enumerate(fields)}
        missing = {"pc", "instr_bits", "next_pc"} - set(index)
        if missing:
            raise ValueError(f"interface hides required fields: {missing}")
        self._pc = index["pc"]
        self._bits = index["instr_bits"]
        self._next = index["next_pc"]
        self._ea = index.get("effective_addr")
        self._taken = index.get("branch_taken")
        # Construction-time selection, as everywhere: the profiled twin
        # wraps each block's trace consumption in a TIMING span.
        self._consume = (
            self._consume_trace_profiled
            if self.obs.prof.enabled
            else self._consume_trace
        )

    @property
    def state(self):
        return self.sim.state

    def _consume_trace(self, trace) -> None:
        timing = self.timing
        for record in trace:
            timing.consume(
                record[self._pc],
                record[self._bits],
                record[self._next],
                record[self._ea] if self._ea is not None else None,
                record[self._taken] if self._taken is not None else None,
            )

    def _consume_trace_profiled(self, trace) -> None:
        with self.obs.prof.spans.span(TIMING):
            self._consume_trace(trace)

    def run(self, max_instructions: int) -> TimingReport:
        """Run until guest exit or the instruction budget is spent."""
        report = TimingReport("functional-first")
        sim = self.sim
        consume = self._consume
        di = sim.di
        executed = 0
        try:
            while executed < max_instructions:
                di.count = 0
                sim.do_block(di)
                executed += di.count
                consume(di.trace)
        except ExitProgram as exc:
            consume(di.trace)
            report.exit_status = exc.status
        if self.obs.enabled:
            record_timing_stats(self.obs, "functional_first", self.timing)
        return self.timing.fill_report(report)
