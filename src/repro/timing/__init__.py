"""Timing simulators: the decoupled-organization taxonomy of Figure 1."""

from repro.timing.branch import AlwaysTakenPredictor, BimodalPredictor
from repro.timing.cache import Cache, CacheStats
from repro.timing.classify import InstructionClassifier
from repro.timing.functional_first import FunctionalFirstSimulator
from repro.timing.integrated import IntegratedSimulator
from repro.timing.pipeline import InOrderPipelineModel, TimingReport, default_caches
from repro.timing.sampling import SamplingReport, SamplingSimulator
from repro.timing.spec_functional_first import SpeculativeFunctionalFirstSimulator
from repro.timing.timing_directed import TimingDirectedSimulator
from repro.timing.timing_first import TimingFirstSimulator

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "Cache",
    "CacheStats",
    "FunctionalFirstSimulator",
    "InOrderPipelineModel",
    "InstructionClassifier",
    "IntegratedSimulator",
    "SamplingReport",
    "SamplingSimulator",
    "SpeculativeFunctionalFirstSimulator",
    "TimingDirectedSimulator",
    "TimingFirstSimulator",
    "TimingReport",
    "default_caches",
]
