"""Program images and loading.

Our assemblers produce a :class:`ProgramImage` (segments + entry point +
symbol table) rather than a full ELF file; the loader writes it into
guest memory and establishes the initial register environment (stack
pointer per the ISA's :class:`~repro.sysemu.syscalls.SyscallABI`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.state import ArchState
from repro.sysemu.syscalls import SyscallABI

DEFAULT_STACK_TOP = 0x00F0_0000
DEFAULT_STACK_SIZE = 0x0010_0000


@dataclass
class ProgramImage:
    """A loadable guest program."""

    entry: int
    segments: list[tuple[int, bytes]] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)

    def add_segment(self, addr: int, data: bytes) -> None:
        self.segments.append((addr, bytes(data)))

    @property
    def size(self) -> int:
        return sum(len(data) for _, data in self.segments)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"program has no symbol {name!r}") from None


def load_image(
    state: ArchState,
    image: ProgramImage,
    abi: SyscallABI | None = None,
    stack_top: int = DEFAULT_STACK_TOP,
) -> None:
    """Write ``image`` into memory, set the entry PC and the stack pointer."""
    for addr, data in image.segments:
        state.mem.write_bytes(addr, data)
    state.pc = image.entry
    if abi is not None and abi.stack_reg is not None:
        mask = (1 << state.regfile_def(abi.regfile).width) - 1
        state.rf[abi.regfile][abi.stack_reg] = stack_top & mask
