"""User-mode OS emulation and program loading."""

from repro.sysemu.loader import ProgramImage, load_image
from repro.sysemu.syscalls import (
    SYS_BRK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_READ,
    SYS_TIME,
    SYS_WRITE,
    OSEmulator,
    SyscallABI,
)

__all__ = [
    "OSEmulator",
    "ProgramImage",
    "SYS_BRK",
    "SYS_EXIT",
    "SYS_GETPID",
    "SYS_READ",
    "SYS_TIME",
    "SYS_WRITE",
    "SyscallABI",
    "load_image",
]
