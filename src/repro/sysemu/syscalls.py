"""User-mode operating-system emulation.

The paper runs user-mode binaries with "operating system calls ...
emulated" (§V.A): the instruction conventionally used to enter the OS is
overridden by an ADL overlay file whose action calls ``__syscall()``,
which lands here.

One :class:`OSEmulator` instance serves one simulated process.  It is
ISA-agnostic; a small :class:`SyscallABI` record says which registers
carry the syscall number, arguments and return value.  The syscall
numbers form our own small stable "repro OS" ABI shared by all three
instruction sets, so one workload builder can target everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.faults import ExitProgram
from repro.arch.state import ArchState
from repro.obs.events import SYSCALL
from repro.obs.probe import NULL_OBS

SYS_EXIT = 1
SYS_READ = 3
SYS_WRITE = 4
SYS_GETPID = 20
SYS_BRK = 45
SYS_TIME = 13

#: human-readable names for the observability layer's per-syscall counters
SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_TIME: "time",
    SYS_GETPID: "getpid",
    SYS_BRK: "brk",
}


@dataclass(frozen=True)
class SyscallABI:
    """Register conventions for syscalls on one ISA."""

    regfile: str
    number_reg: int
    arg_regs: tuple[int, int, int]
    ret_reg: int
    #: register that receives 0 on success / 1 on error, or None
    error_reg: int | None = None
    #: architectural stack pointer (used by the loader, kept here so every
    #: per-ISA convention lives in one record)
    stack_reg: int | None = None


class SyscallError(Exception):
    """An emulated syscall was invoked with invalid arguments."""


class OSEmulator:
    """Emulates the tiny user-mode OS interface the workloads need.

    Use an instance as the ``syscall_handler`` of a synthesized simulator::

        os = OSEmulator(alpha.ABI)
        sim = generated.make(syscall_handler=os)

    Output written to fd 1/2 accumulates in :attr:`stdout` /
    :attr:`stderr`; ``read`` consumes :attr:`stdin`.
    """

    def __init__(
        self,
        abi: SyscallABI,
        stdin: bytes = b"",
        brk_base: int = 0x0100_0000,
        time_step: int = 1,
        obs=None,
    ) -> None:
        self.abi = abi
        self.stdin = bytearray(stdin)
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.brk = brk_base
        self.pid = 1000
        self._time = 0
        self._time_step = time_step
        self.call_counts: dict[int, int] = {}
        self.obs = obs if obs is not None else NULL_OBS

    # -- register plumbing ------------------------------------------------------

    def _regs(self, state: ArchState) -> list[int]:
        return state.rf[self.abi.regfile]

    def _args(self, state: ArchState) -> tuple[int, int, int]:
        regs = self._regs(state)
        a0, a1, a2 = self.abi.arg_regs
        return regs[a0], regs[a1], regs[a2]

    def _ret(self, state: ArchState, value: int, error: bool = False) -> None:
        regs = self._regs(state)
        mask = (1 << state.regfile_def(self.abi.regfile).width) - 1
        regs[self.abi.ret_reg] = value & mask
        if self.abi.error_reg is not None:
            regs[self.abi.error_reg] = 1 if error else 0

    # -- dispatch -----------------------------------------------------------------

    def __call__(self, state: ArchState, di=None) -> None:
        """Handle one syscall trap (signature matches the synth hook)."""
        number = self._regs(state)[self.abi.number_reg]
        self.call_counts[number] = self.call_counts.get(number, 0) + 1
        obs = self.obs
        if obs.enabled:
            obs.counters.inc(f"syscall.{SYSCALL_NAMES.get(number, number)}")
            obs.events.emit(SYSCALL, number=number, pc=state.pc)
        handler = self._HANDLERS.get(number)
        if handler is None:
            self._ret(state, 2**32 - 38, error=True)  # -ENOSYS-ish
            return
        handler(self, state)

    # -- individual syscalls ----------------------------------------------------------

    def _sys_exit(self, state: ArchState) -> None:
        status, _, _ = self._args(state)
        raise ExitProgram(status & 0xFF)

    def _sys_write(self, state: ArchState) -> None:
        fd, buf, length = self._args(state)
        data = state.mem.read_bytes(buf, length)
        if fd == 1:
            self.stdout.extend(data)
        elif fd == 2:
            self.stderr.extend(data)
        else:
            self._ret(state, 2**32 - 9, error=True)  # -EBADF
            return
        self._ret(state, length)

    def _sys_read(self, state: ArchState) -> None:
        fd, buf, length = self._args(state)
        if fd != 0:
            self._ret(state, 2**32 - 9, error=True)
            return
        data = bytes(self.stdin[:length])
        del self.stdin[:length]
        state.mem.write_bytes(buf, data)
        self._ret(state, len(data))

    def _sys_brk(self, state: ArchState) -> None:
        target, _, _ = self._args(state)
        if target:
            self.brk = target
        self._ret(state, self.brk)

    def _sys_getpid(self, state: ArchState) -> None:
        self._ret(state, self.pid)

    def _sys_time(self, state: ArchState) -> None:
        # Deterministic monotone clock so runs are reproducible.
        self._time += self._time_step
        self._ret(state, self._time)

    _HANDLERS = {
        SYS_EXIT: _sys_exit,
        SYS_WRITE: _sys_write,
        SYS_READ: _sys_read,
        SYS_BRK: _sys_brk,
        SYS_GETPID: _sys_getpid,
        SYS_TIME: _sys_time,
    }
