"""Per-ISA lowering of the portable kernel-builder operations.

The paper's evaluation runs SPEC CPU2000int and MediaBench binaries; we
have no compiler, so the benchmark suite is written once against a small
portable macro-assembly API (:mod:`repro.workloads.builder`) and lowered
to each ISA's real assembly here.  Every kernel therefore exercises each
instruction set's own encodings, addressing modes and branch idioms.
"""

from __future__ import annotations


class Lowering:
    """Target interface: turns portable ops into assembly lines."""

    name: str
    wordsize: int
    #: physical registers backing virtual registers v0, v1, ...
    vregs: list[str]

    def reg(self, vreg: int) -> str:
        try:
            return self.vregs[vreg]
        except IndexError:
            raise ValueError(
                f"{self.name}: kernel uses more than {len(self.vregs)} registers"
            ) from None

    # Each method returns a list of assembly lines.
    def prologue(self) -> list[str]:
        return ["_start:"]

    def li(self, rd: int, value) -> list[str]:
        raise NotImplementedError

    def la(self, rd: int, label: str) -> list[str]:
        raise NotImplementedError

    def mov(self, rd: int, rs: int) -> list[str]:
        raise NotImplementedError

    def alu(self, op: str, rd: int, ra: int, rb: int) -> list[str]:
        raise NotImplementedError

    def alui(self, op: str, rd: int, ra: int, imm: int) -> list[str]:
        raise NotImplementedError

    def shifti(self, op: str, rd: int, ra: int, imm: int) -> list[str]:
        raise NotImplementedError

    def load(self, rd: int, base: int, offset: int, size: str) -> list[str]:
        raise NotImplementedError

    def store(self, rs: int, base: int, offset: int, size: str) -> list[str]:
        raise NotImplementedError

    def branch(self, cond: str, ra: int, rb: int, label: str) -> list[str]:
        raise NotImplementedError

    def branchi(self, cond: str, ra: int, imm: int, label: str) -> list[str]:
        raise NotImplementedError

    def jump(self, label: str) -> list[str]:
        raise NotImplementedError

    def call(self, label: str) -> list[str]:
        raise NotImplementedError

    def ret(self) -> list[str]:
        raise NotImplementedError

    def exit(self, rs: int) -> list[str]:
        raise NotImplementedError


_INVERT = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}


class AlphaLowering(Lowering):
    """Alpha: compare-into-register then branch-on-register.

    Kernels are defined with 32-bit wrap-around semantics so all ISAs
    compute identical results; on 64-bit Alpha the lowering therefore
    uses the sign-extending *L operate forms and keeps every virtual
    register canonically sign-extended from 32 bits.
    """

    name = "alpha"
    wordsize = 4
    vregs = [f"${n}" for n in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)]
    _scratch = "$22"

    _ALU = {"add": "addl", "sub": "subl", "mul": "mull", "and": "and",
            "or": "bis", "xor": "xor"}
    _SIZES = {"b": ("ldbu", "stb"), "h": ("ldwu", "stw"), "l": ("ldl", "stl"),
              "w": ("ldl", "stl")}
    _CMP = {"eq": "cmpeq", "lt": "cmplt", "le": "cmple"}

    def li(self, rd, value):
        return [f"li {self.reg(rd)}, {value}"]

    def la(self, rd, label):
        return [f"li {self.reg(rd)}, {label}"]

    def mov(self, rd, rs):
        return [f"mov {self.reg(rs)}, {self.reg(rd)}"]

    def alu(self, op, rd, ra, rb):
        return [f"{self._ALU[op]} {self.reg(ra)}, {self.reg(rb)}, {self.reg(rd)}"]

    def alui(self, op, rd, ra, imm):
        if op in ("add", "sub") and 0 <= imm < 256:
            return [f"{self._ALU[op]} {self.reg(ra)}, {imm}, {self.reg(rd)}"]
        if op in ("add", "sub") and -32768 <= imm < 32768:
            # lda is a 64-bit add; operands here are addresses/counters
            # that stay far from the 32-bit boundary.
            value = imm if op == "add" else -imm
            return [f"lda {self.reg(rd)}, {value}({self.reg(ra)})"]
        if op in ("and", "or", "xor") and 0 <= imm < 256:
            return [f"{self._ALU[op]} {self.reg(ra)}, {imm}, {self.reg(rd)}"]
        raise ValueError(f"alpha: cannot encode {op} imm {imm}")

    def shifti(self, op, rd, ra, imm):
        if op == "shl":
            return [
                f"sll {self.reg(ra)}, {imm}, {self.reg(rd)}",
                f"addl {self.reg(rd)}, 0, {self.reg(rd)}",  # renormalize to 32
            ]
        if op == "shr":
            return [
                f"zapnot {self.reg(ra)}, 15, {self.reg(rd)}",  # zero-extend 32
                f"srl {self.reg(rd)}, {imm}, {self.reg(rd)}",
            ]
        return [f"sra {self.reg(ra)}, {imm}, {self.reg(rd)}"]

    def load(self, rd, base, offset, size):
        ld, _ = self._SIZES[size]
        return [f"{ld} {self.reg(rd)}, {offset}({self.reg(base)})"]

    def store(self, rs, base, offset, size):
        _, st = self._SIZES[size]
        return [f"{st} {self.reg(rs)}, {offset}({self.reg(base)})"]

    def _cmp_branch(self, cond, lhs, rhs, label):
        scratch = self._scratch
        if cond in self._CMP:
            return [f"{self._CMP[cond]} {lhs}, {rhs}, {scratch}",
                    f"bne {scratch}, {label}"]
        if cond == "ne":
            return [f"cmpeq {lhs}, {rhs}, {scratch}", f"beq {scratch}, {label}"]
        if cond == "gt":  # a > b  <=>  not (a <= b)
            return [f"cmple {lhs}, {rhs}, {scratch}", f"beq {scratch}, {label}"]
        if cond == "ge":
            return [f"cmplt {lhs}, {rhs}, {scratch}", f"beq {scratch}, {label}"]
        raise ValueError(cond)

    def branch(self, cond, ra, rb, label):
        return self._cmp_branch(cond, self.reg(ra), self.reg(rb), label)

    def branchi(self, cond, ra, imm, label):
        if imm == 0:
            direct = {"eq": "beq", "ne": "bne", "lt": "blt", "ge": "bge",
                      "gt": "bgt", "le": "ble"}[cond]
            return [f"{direct} {self.reg(ra)}, {label}"]
        if 0 <= imm < 256:
            return self._cmp_branch(cond, self.reg(ra), str(imm), label)
        raise ValueError(f"alpha: branch immediate {imm} out of range")

    def jump(self, label):
        return [f"br $31, {label}"]

    def call(self, label):
        return [f"bsr $26, {label}"]

    def ret(self):
        return ["ret $31, ($26)"]

    def exit(self, rs):
        return [f"mov {self.reg(rs)}, $16", "li $0, 1", "call_pal 0x83"]


class ArmLowering(Lowering):
    """ARM: flag-setting compare then conditional branch."""

    name = "arm"
    wordsize = 4
    vregs = [f"r{n}" for n in (4, 5, 6, 8, 9, 10, 11, 12, 3, 1, 2, 0)]

    _ALU = {"add": "add", "sub": "sub", "mul": "mul", "and": "and",
            "or": "orr", "xor": "eor"}
    _LD = {"b": "ldrb", "w": "ldr", "h": "ldrh", "l": "ldr"}
    _ST = {"b": "strb", "w": "str", "h": "strh", "l": "str"}
    _BC = {"eq": "beq", "ne": "bne", "lt": "blt", "ge": "bge", "gt": "bgt",
           "le": "ble"}

    def li(self, rd, value):
        return [f"li {self.reg(rd)}, {value}"]

    def la(self, rd, label):
        return [f"li {self.reg(rd)}, {label}"]

    def mov(self, rd, rs):
        return [f"mov {self.reg(rd)}, {self.reg(rs)}"]

    def alu(self, op, rd, ra, rb):
        if op == "mul" and rd == ra:
            # MUL requires rd != rm on ARMv5; swap the commutative operands.
            return [f"mul {self.reg(rd)}, {self.reg(rb)}, {self.reg(ra)}"]
        return [f"{self._ALU[op]} {self.reg(rd)}, {self.reg(ra)}, {self.reg(rb)}"]

    def alui(self, op, rd, ra, imm):
        return [f"{self._ALU[op]} {self.reg(rd)}, {self.reg(ra)}, #{imm}"]

    def shifti(self, op, rd, ra, imm):
        mnemonic = {"shl": "lsl", "shr": "lsr", "sar": "asr"}[op]
        return [f"mov {self.reg(rd)}, {self.reg(ra)}, {mnemonic} #{imm}"]

    def load(self, rd, base, offset, size):
        return [f"{self._LD[size]} {self.reg(rd)}, [{self.reg(base)}, #{offset}]"]

    def store(self, rs, base, offset, size):
        return [f"{self._ST[size]} {self.reg(rs)}, [{self.reg(base)}, #{offset}]"]

    def branch(self, cond, ra, rb, label):
        return [f"cmp {self.reg(ra)}, {self.reg(rb)}", f"{self._BC[cond]} {label}"]

    def branchi(self, cond, ra, imm, label):
        return [f"cmp {self.reg(ra)}, #{imm}", f"{self._BC[cond]} {label}"]

    def jump(self, label):
        return [f"b {label}"]

    def call(self, label):
        return [f"bl {label}"]

    def ret(self):
        return ["bx lr"]

    def exit(self, rs):
        return [f"mov r0, {self.reg(rs)}", "mov r7, #1", "swi #0"]


class PpcLowering(Lowering):
    """PowerPC: CR-based compares, CTR left to hand-written code."""

    name = "ppc"
    wordsize = 4
    vregs = [f"{n}" for n in (14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25)]

    _ALU = {"add": "add", "sub": "subf_swapped", "mul": "mullw", "and": "and",
            "or": "or", "xor": "xor"}
    _LD = {"b": "lbz", "w": "lwz", "h": "lhz", "l": "lwz"}
    _ST = {"b": "stb", "w": "stw", "h": "sth", "l": "stw"}
    _BC = {"eq": "beq", "ne": "bne", "lt": "blt", "ge": "bge", "gt": "bgt",
           "le": "ble"}

    def li(self, rd, value):
        if -32768 <= value < 32768:
            return [f"li {self.reg(rd)}, {value}"]
        return [f"liw {self.reg(rd)}, {value}"]

    def la(self, rd, label):
        return [f"liw {self.reg(rd)}, {label}"]

    def mov(self, rd, rs):
        return [f"mr {self.reg(rd)}, {self.reg(rs)}"]

    def alu(self, op, rd, ra, rb):
        if op == "sub":
            return [f"subf {self.reg(rd)}, {self.reg(rb)}, {self.reg(ra)}"]
        if op in ("and", "or", "xor"):
            return [f"{op} {self.reg(rd)}, {self.reg(ra)}, {self.reg(rb)}"]
        mnemonic = {"add": "add", "mul": "mullw"}[op]
        return [f"{mnemonic} {self.reg(rd)}, {self.reg(ra)}, {self.reg(rb)}"]

    def alui(self, op, rd, ra, imm):
        if op == "add":
            return [f"addi {self.reg(rd)}, {self.reg(ra)}, {imm}"]
        if op == "sub":
            return [f"addi {self.reg(rd)}, {self.reg(ra)}, {-imm}"]
        if op == "and":
            return [f"andi. {self.reg(rd)}, {self.reg(ra)}, {imm}"]
        if op == "or":
            return [f"ori {self.reg(rd)}, {self.reg(ra)}, {imm}"]
        if op == "xor":
            return [f"xori {self.reg(rd)}, {self.reg(ra)}, {imm}"]
        raise ValueError(f"ppc: {op} immediate")

    def shifti(self, op, rd, ra, imm):
        if op == "shl":
            return [f"rlwinm {self.reg(rd)}, {self.reg(ra)}, {imm}, 0, {31 - imm}"]
        if op == "shr":
            return [f"rlwinm {self.reg(rd)}, {self.reg(ra)}, {(32 - imm) % 32}, {imm}, 31"]
        return [f"srawi {self.reg(rd)}, {self.reg(ra)}, {imm}"]

    def load(self, rd, base, offset, size):
        return [f"{self._LD[size]} {self.reg(rd)}, {offset}({self.reg(base)})"]

    def store(self, rs, base, offset, size):
        return [f"{self._ST[size]} {self.reg(rs)}, {offset}({self.reg(base)})"]

    def branch(self, cond, ra, rb, label):
        return [f"cmpw {self.reg(ra)}, {self.reg(rb)}", f"{self._BC[cond]} {label}"]

    def branchi(self, cond, ra, imm, label):
        return [f"cmpwi {self.reg(ra)}, {imm}", f"{self._BC[cond]} {label}"]

    def jump(self, label):
        return [f"b {label}"]

    def call(self, label):
        return [f"bl {label}"]

    def ret(self):
        return ["blr"]

    def exit(self, rs):
        return [f"mr 3, {self.reg(rs)}", "li 0, 1", "sc"]


class SparcLowering(Lowering):
    """SPARC: condition codes via subcc/cmp, branches on icc."""

    name = "sparc"
    wordsize = 4
    vregs = ["%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
             "%i0", "%i1", "%i2", "%i3"]

    _ALU = {"add": "add", "sub": "sub", "mul": "umul", "and": "and",
            "or": "or", "xor": "xor"}
    _LD = {"b": "ldub", "w": "ld", "h": "lduh", "l": "ld"}
    _ST = {"b": "stb", "w": "st", "h": "sth", "l": "st"}
    _BC = {"eq": "be", "ne": "bne", "lt": "bl", "ge": "bge", "gt": "bg",
           "le": "ble"}

    def li(self, rd, value):
        if -4096 <= value < 4096:
            return [f"mov {value}, {self.reg(rd)}"]
        return [f"set {value & 0xFFFFFFFF}, {self.reg(rd)}"]

    def la(self, rd, label):
        return [f"set {label}, {self.reg(rd)}"]

    def mov(self, rd, rs):
        return [f"mov {self.reg(rs)}, {self.reg(rd)}"]

    def alu(self, op, rd, ra, rb):
        return [f"{self._ALU[op]} {self.reg(ra)}, {self.reg(rb)}, {self.reg(rd)}"]

    def alui(self, op, rd, ra, imm):
        if not -4096 <= imm < 4096:
            raise ValueError(f"sparc: immediate {imm} out of simm13 range")
        return [f"{self._ALU[op]} {self.reg(ra)}, {imm}, {self.reg(rd)}"]

    def shifti(self, op, rd, ra, imm):
        mnemonic = {"shl": "sll", "shr": "srl", "sar": "sra"}[op]
        return [f"{mnemonic} {self.reg(ra)}, {imm}, {self.reg(rd)}"]

    def load(self, rd, base, offset, size):
        return [f"{self._LD[size]} [{self.reg(base)} + {offset}], {self.reg(rd)}"]

    def store(self, rs, base, offset, size):
        return [f"{self._ST[size]} {self.reg(rs)}, [{self.reg(base)} + {offset}]"]

    def branch(self, cond, ra, rb, label):
        return [f"cmp {self.reg(ra)}, {self.reg(rb)}", f"{self._BC[cond]} {label}"]

    def branchi(self, cond, ra, imm, label):
        return [f"cmp {self.reg(ra)}, {imm}", f"{self._BC[cond]} {label}"]

    def jump(self, label):
        return [f"ba {label}"]

    def call(self, label):
        return [f"call {label}"]

    def ret(self):
        return ["retl"]

    def exit(self, rs):
        return [f"mov {self.reg(rs)}, %o0", "mov 1, %g1", "ta 0"]


LOWERINGS = {
    "alpha": AlphaLowering(),
    "arm": ArmLowering(),
    "ppc": PpcLowering(),
    "sparc": SparcLowering(),
}
