"""The benchmark kernel suite.

Nine integer kernels standing in for the paper's SPEC CPU2000int /
MediaBench workloads: each is written once against the portable builder
and comes with a pure-Python reference model.  All arithmetic is defined
mod 2**32 with signed 32-bit comparisons, which every lowering implements
exactly, so one expected value validates all three ISAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.builder import Kernel

M32 = 0xFFFFFFFF
LCG_MUL = 1103515245
LCG_ADD = 12345


def _lcg(seed: int) -> int:
    return (seed * LCG_MUL + LCG_ADD) & M32


def _s32(x: int) -> int:
    x &= M32
    return x - (1 << 32) if x & 0x80000000 else x


@dataclass(frozen=True)
class KernelSpec:
    """One kernel: builder, reference model, default sizes."""

    name: str
    build: Callable[[int], Kernel]
    reference: Callable[[int], int]
    test_n: int
    bench_n: int
    description: str


# -- 1. checksum: pure ALU mix -------------------------------------------------


def build_checksum(n: int) -> Kernel:
    k = Kernel()
    seed, acc, i, limit, mul, t1, t2 = k.regs("seed acc i limit mul t1 t2")
    k.li(seed, 1)
    k.li(acc, 0)
    k.li(i, 0)
    k.li(limit, n)
    k.li(mul, LCG_MUL)
    k.label("loop")
    k.alu("mul", seed, seed, mul)
    k.li(t1, LCG_ADD)
    k.alu("add", seed, seed, t1)
    k.alu("xor", acc, acc, seed)
    k.shifti("shl", t1, acc, 1)
    k.shifti("shr", t2, acc, 31)
    k.alu("or", acc, t1, t2)
    k.alu("add", acc, acc, i)
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "loop")
    k.store_result(acc)
    k.exit(acc)
    return k


def ref_checksum(n: int) -> int:
    seed, acc = 1, 0
    for i in range(n):
        seed = _lcg(seed)
        acc = (acc ^ seed) & M32
        acc = ((acc << 1) | (acc >> 31)) & M32
        acc = (acc + i) & M32
    return acc


# -- 2. fib: tight dependent loop -------------------------------------------------


def build_fib(n: int) -> Kernel:
    k = Kernel()
    a, b, t, i = k.regs("a b t i")
    k.li(a, 0)
    k.li(b, 1)
    k.li(i, n)
    k.label("loop")
    k.alu("add", t, a, b)
    k.mov(a, b)
    k.mov(b, t)
    k.alui("sub", i, i, 1)
    k.branchi("ne", i, 0, "loop")
    k.store_result(a)
    k.exit(a)
    return k


def ref_fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, (a + b) & M32
    return a


# -- 3. sieve: byte flags, nested loops ----------------------------------------------


def build_sieve(n: int) -> Kernel:
    k = Kernel()
    flags, i, j, count, limit, byte = k.regs("flags i j count limit byte")
    k.data_space("sieve_flags", n + 1)
    k.la(flags, "sieve_flags")
    k.li(count, 0)
    k.li(limit, n)
    k.li(i, 2)
    k.label("outer")
    k.alu("add", byte, flags, i)
    k.load(byte, byte, 0, "b")
    k.branchi("ne", byte, 0, "next")
    k.alui("add", count, count, 1)
    k.alu("mul", j, i, i)
    k.branch("gt", j, limit, "next")
    k.label("mark")
    k.alu("add", byte, flags, j)
    k.store(i, byte, 0, "b")  # any nonzero byte marks composite (i >= 2)
    k.alu("add", j, j, i)
    k.branch("le", j, limit, "mark")
    k.label("next")
    k.alui("add", i, i, 1)
    k.branch("le", i, limit, "outer")
    k.store_result(count)
    k.exit(count)
    return k


def ref_sieve(n: int) -> int:
    flags = bytearray(n + 1)
    count = 0
    for i in range(2, n + 1):
        if not flags[i]:
            count += 1
            j = i * i
            while j <= n:
                flags[j] = 1
                j += i
    return count


# -- 4. sort: insertion sort over an LCG-filled array -------------------------------------


def build_sort(n: int) -> Kernel:
    k = Kernel()
    base, seed, i, j, key, t1, t2, limit = k.regs("base seed i j key t1 t2 limit")
    k.data_space("sort_data", n * 4)
    k.la(base, "sort_data")
    # fill with 15-bit LCG values
    k.li(seed, 1)
    k.li(i, 0)
    k.li(limit, n)
    k.li(t2, LCG_MUL)
    k.label("fill")
    k.alu("mul", seed, seed, t2)
    k.li(t1, LCG_ADD)
    k.alu("add", seed, seed, t1)
    k.shifti("shr", t1, seed, 17)
    k.shifti("shl", key, i, 2)
    k.alu("add", key, key, base)
    k.store(t1, key, 0, "l")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "fill")
    # insertion sort
    k.li(i, 1)
    k.label("outer")
    k.branch("ge", i, limit, "done")
    k.shifti("shl", t1, i, 2)
    k.alu("add", t1, t1, base)
    k.load(key, t1, 0, "l")
    k.mov(j, i)
    k.label("inner")
    k.branchi("le", j, 0, "insert")
    k.shifti("shl", t1, j, 2)
    k.alu("add", t1, t1, base)
    k.load(t2, t1, -4, "l")
    k.branch("le", t2, key, "insert")
    k.store(t2, t1, 0, "l")
    k.alui("sub", j, j, 1)
    k.jump("inner")
    k.label("insert")
    k.shifti("shl", t1, j, 2)
    k.alu("add", t1, t1, base)
    k.store(key, t1, 0, "l")
    k.alui("add", i, i, 1)
    k.jump("outer")
    k.label("done")
    # checksum: sum((i+1) * a[i])
    k.li(seed, 0)
    k.li(i, 0)
    k.label("sum")
    k.shifti("shl", t1, i, 2)
    k.alu("add", t1, t1, base)
    k.load(t2, t1, 0, "l")
    k.alui("add", key, i, 1)
    k.alu("mul", t2, t2, key)
    k.alu("add", seed, seed, t2)
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "sum")
    k.store_result(seed)
    k.exit(seed)
    return k


def ref_sort(n: int) -> int:
    seed = 1
    data = []
    for _ in range(n):
        seed = _lcg(seed)
        data.append(seed >> 17)
    data.sort()
    total = 0
    for index, value in enumerate(data):
        total = (total + (index + 1) * value) & M32
    return total


# -- 5. string search: byte scanning ----------------------------------------------------------


def build_strsearch(n: int) -> Kernel:
    k = Kernel()
    text, i, seed, t1, t2, count, limit, pat = k.regs(
        "text i seed t1 t2 count limit pat"
    )
    k.data_space("hay", n + 4)
    # generate text of letters 'a'..'h'
    k.la(text, "hay")
    k.li(seed, 7)
    k.li(i, 0)
    k.li(limit, n)
    k.li(t2, LCG_MUL)
    k.label("gen")
    k.alu("mul", seed, seed, t2)
    k.li(t1, LCG_ADD)
    k.alu("add", seed, seed, t1)
    k.shifti("shr", t1, seed, 13)
    k.alui("and", t1, t1, 7)
    k.alui("add", t1, t1, 97)  # 'a'
    k.alu("add", pat, text, i)
    k.store(t1, pat, 0, "b")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "gen")
    # count occurrences of "ab"
    k.li(count, 0)
    k.li(i, 0)
    k.alui("sub", limit, limit, 1)
    k.label("scan")
    k.alu("add", pat, text, i)
    k.load(t1, pat, 0, "b")
    k.branchi("ne", t1, 97, "skip")
    k.load(t2, pat, 1, "b")
    k.branchi("ne", t2, 98, "skip")
    k.alui("add", count, count, 1)
    k.label("skip")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "scan")
    k.store_result(count)
    k.exit(count)
    return k


def ref_strsearch(n: int) -> int:
    seed = 7
    text = bytearray()
    for _ in range(n):
        seed = _lcg(seed)
        text.append(97 + ((seed >> 13) & 7))
    return sum(
        1 for i in range(n - 1) if text[i] == 97 and text[i + 1] == 98
    )


# -- 6. matmul: nested loops + addressing -------------------------------------------------------


def build_matmul(n: int) -> Kernel:
    k = Kernel()
    a, b, c, i, j, p, acc, t1 = k.regs("a b c i j p acc t1")
    t2, t3 = k.regs("t2 t3")
    k.data_space("mat_a", n * n * 4)
    k.data_space("mat_b", n * n * 4)
    k.data_space("mat_c", n * n * 4)
    # initialize A and B
    k.la(a, "mat_a")
    k.la(b, "mat_b")
    k.li(i, 0)
    k.li(t3, n * n)
    k.label("init")
    k.alui("and", t1, i, 31)
    k.alui("add", t1, t1, 1)
    k.shifti("shl", t2, i, 2)
    k.alu("add", t2, t2, a)
    k.store(t1, t2, 0, "l")
    k.alui("and", t1, i, 15)
    k.alui("add", t1, t1, 2)
    k.shifti("shl", t2, i, 2)
    k.alu("add", t2, t2, b)
    k.store(t1, t2, 0, "l")
    k.alui("add", i, i, 1)
    k.branch("lt", i, t3, "init")
    # C = A * B
    k.la(c, "mat_c")
    k.li(i, 0)
    k.label("row")
    k.li(j, 0)
    k.label("col")
    k.li(acc, 0)
    k.li(p, 0)
    k.label("dot")
    k.li(t1, n)
    k.alu("mul", t1, t1, i)
    k.alu("add", t1, t1, p)
    k.shifti("shl", t1, t1, 2)
    k.alu("add", t1, t1, a)
    k.load(t2, t1, 0, "l")
    k.li(t1, n)
    k.alu("mul", t1, t1, p)
    k.alu("add", t1, t1, j)
    k.shifti("shl", t1, t1, 2)
    k.alu("add", t1, t1, b)
    k.load(t3, t1, 0, "l")
    k.alu("mul", t2, t2, t3)
    k.alu("add", acc, acc, t2)
    k.alui("add", p, p, 1)
    k.branchi("lt", p, n, "dot")
    k.li(t1, n)
    k.alu("mul", t1, t1, i)
    k.alu("add", t1, t1, j)
    k.shifti("shl", t1, t1, 2)
    k.alu("add", t1, t1, c)
    k.store(acc, t1, 0, "l")
    k.alui("add", j, j, 1)
    k.branchi("lt", j, n, "col")
    k.alui("add", i, i, 1)
    k.branchi("lt", i, n, "row")
    # checksum C
    k.li(acc, 0)
    k.li(i, 0)
    k.li(t3, n * n)
    k.label("sum")
    k.shifti("shl", t1, i, 2)
    k.alu("add", t1, t1, c)
    k.load(t2, t1, 0, "l")
    k.alu("add", acc, acc, t2)
    k.alui("add", i, i, 1)
    k.branch("lt", i, t3, "sum")
    k.store_result(acc)
    k.exit(acc)
    return k


def ref_matmul(n: int) -> int:
    a = [((i & 31) + 1) for i in range(n * n)]
    b = [((i & 15) + 2) for i in range(n * n)]
    total = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for p in range(n):
                acc = (acc + a[i * n + p] * b[p * n + j]) & M32
            total = (total + acc) & M32
    return total


# -- 7. listsum: pointer chasing -------------------------------------------------------------------


def build_listsum(n: int) -> Kernel:
    k = Kernel()
    base, i, t1, t2, node, acc, limit = k.regs("base i t1 t2 node acc limit")
    k.data_space("nodes", n * 8)
    k.la(base, "nodes")
    # node i lives at base + perm(i)*8 where perm(i) = (i*7) % n;
    # node stores [value, address-of-next]
    k.li(i, 0)
    k.li(limit, n)
    k.label("build")
    k.li(t1, 7)
    k.alu("mul", t1, t1, i)
    k.label("mod")  # t1 %= n by repeated subtraction (n small multiples)
    k.branch("lt", t1, limit, "modend")
    k.alu("sub", t1, t1, limit)
    k.jump("mod")
    k.label("modend")
    k.shifti("shl", t1, t1, 3)
    k.alu("add", node, base, t1)  # this node
    k.alui("add", t2, i, 1)
    k.branch("lt", t2, limit, "notlast")
    k.li(t2, 0)
    k.label("notlast")
    k.li(t1, 7)
    k.alu("mul", t1, t1, t2)
    k.label("mod2")
    k.branch("lt", t1, limit, "mod2end")
    k.alu("sub", t1, t1, limit)
    k.jump("mod2")
    k.label("mod2end")
    k.shifti("shl", t1, t1, 3)
    k.alu("add", t1, base, t1)  # next node address
    k.alui("add", t2, i, 3)
    k.store(t2, node, 0, "l")  # value = i + 3
    k.store(t1, node, 4, "l")  # next pointer
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "build")
    # traverse from the head (perm(0) == 0)
    k.mov(node, base)
    k.li(acc, 0)
    k.li(i, 0)
    k.label("walk")
    k.load(t1, node, 0, "l")
    k.alu("add", acc, acc, t1)
    k.load(node, node, 4, "l")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "walk")
    k.store_result(acc)
    k.exit(acc)
    return k


def ref_listsum(n: int) -> int:
    # every node's value is i+3 and the walk visits n nodes exactly once
    # (7 is coprime with the sizes we use), so the sum is closed-form.
    return (sum(i + 3 for i in range(n))) & M32


# -- 8. bitcount: masked popcount ---------------------------------------------------------------------


def build_bitcount(n: int) -> Kernel:
    k = Kernel()
    seed, acc, i, limit, x, t1, m1, m2, m3 = k.regs(
        "seed acc i limit x t1 m1 m2 m3"
    )
    k.li(seed, 3)
    k.li(acc, 0)
    k.li(i, 0)
    k.li(limit, n)
    k.li(m1, 0x55555555)
    k.li(m2, 0x33333333)
    k.li(m3, 0x0F0F0F0F)
    k.label("loop")
    k.li(t1, LCG_MUL)
    k.alu("mul", seed, seed, t1)
    k.li(t1, LCG_ADD)
    k.alu("add", seed, seed, t1)
    # x = popcount(seed)
    k.shifti("shr", x, seed, 1)
    k.alu("and", x, x, m1)
    k.alu("sub", x, seed, x)
    k.shifti("shr", t1, x, 2)
    k.alu("and", t1, t1, m2)
    k.alu("and", x, x, m2)
    k.alu("add", x, x, t1)
    k.shifti("shr", t1, x, 4)
    k.alu("add", x, x, t1)
    k.alu("and", x, x, m3)
    k.shifti("shr", t1, x, 8)
    k.alu("add", x, x, t1)
    k.shifti("shr", t1, x, 16)
    k.alu("add", x, x, t1)
    k.alui("and", x, x, 63)
    k.alu("add", acc, acc, x)
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "loop")
    k.store_result(acc)
    k.exit(acc)
    return k


def ref_bitcount(n: int) -> int:
    seed, acc = 3, 0
    for _ in range(n):
        seed = _lcg(seed)
        acc = (acc + bin(seed).count("1")) & M32
    return acc


# -- 9. memcopy: bulk word moves --------------------------------------------------------------------------


def build_memcopy(n: int) -> Kernel:
    k = Kernel()
    src, dst, i, t1, t2, acc, limit = k.regs("src dst i t1 t2 acc limit")
    k.data_space("copy_src", n * 4)
    k.data_space("copy_dst", n * 4)
    k.la(src, "copy_src")
    k.la(dst, "copy_dst")
    k.li(i, 0)
    k.li(limit, n)
    k.label("fill")
    k.alui("add", t1, i, 13)
    k.alu("mul", t1, t1, t1)
    k.shifti("shl", t2, i, 2)
    k.alu("add", t2, t2, src)
    k.store(t1, t2, 0, "l")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "fill")
    k.li(i, 0)
    k.label("copy")
    k.shifti("shl", t1, i, 2)
    k.alu("add", t2, t1, src)
    k.load(t2, t2, 0, "l")
    k.alu("add", t1, t1, dst)
    k.store(t2, t1, 0, "l")
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "copy")
    k.li(acc, 0)
    k.li(i, 0)
    k.label("sum")
    k.shifti("shl", t1, i, 2)
    k.alu("add", t1, t1, dst)
    k.load(t2, t1, 0, "l")
    k.alu("xor", acc, acc, t2)
    k.alu("add", acc, acc, i)
    k.alui("add", i, i, 1)
    k.branch("lt", i, limit, "sum")
    k.store_result(acc)
    k.exit(acc)
    return k


def ref_memcopy(n: int) -> int:
    acc = 0
    for i in range(n):
        value = ((i + 13) * (i + 13)) & M32
        acc = ((acc ^ value) + i) & M32
    return acc


SUITE: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in [
        KernelSpec("checksum", build_checksum, ref_checksum, 500, 6000,
                   "ALU/rotate mix over an LCG stream"),
        KernelSpec("fib", build_fib, ref_fib, 300, 8000,
                   "dependent add chain"),
        KernelSpec("sieve", build_sieve, ref_sieve, 300, 2500,
                   "sieve of Eratosthenes over byte flags"),
        KernelSpec("sort", build_sort, ref_sort, 48, 160,
                   "insertion sort + weighted checksum"),
        KernelSpec("strsearch", build_strsearch, ref_strsearch, 400, 6000,
                   "byte-wise naive substring count"),
        KernelSpec("matmul", build_matmul, ref_matmul, 8, 18,
                   "dense integer matrix multiply"),
        KernelSpec("listsum", build_listsum, ref_listsum, 100, 705,
                   "linked-list build + pointer chase"),
        KernelSpec("bitcount", build_bitcount, ref_bitcount, 300, 4000,
                   "branch-free popcount"),
        KernelSpec("memcopy", build_memcopy, ref_memcopy, 300, 4000,
                   "word copy + checksum"),
    ]
}
