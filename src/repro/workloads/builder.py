"""Portable kernel builder.

A :class:`Kernel` is written once against this API and emitted as real
assembly for each ISA via :mod:`repro.workloads.lowering`::

    k = Kernel()
    i, total = k.regs("i total")
    k.li(total, 0)
    k.li(i, 100)
    k.label("loop")
    k.alu("add", total, total, i)
    k.alui("sub", i, i, 1)
    k.branchi("ne", i, 0, "loop")
    k.store_result(total)
    k.exit(total)
    source = k.emit("alpha")

``store_result`` writes the named register to the ``result`` data word so
validation can read an untruncated value (exit status is only 8 bits).
"""

from __future__ import annotations

from repro.workloads.lowering import LOWERINGS, Lowering


class Kernel:
    """Accumulates portable operations, then emits per-ISA assembly."""

    def __init__(self) -> None:
        self._ops: list[tuple] = []
        self._data: list[str] = []
        self._nregs = 0
        self._uses_result = False

    # -- registers -----------------------------------------------------------

    def regs(self, names: str) -> list[int]:
        """Allocate one virtual register per whitespace-separated name."""
        out = []
        for _ in names.split():
            out.append(self._nregs)
            self._nregs += 1
        return out

    # -- code ------------------------------------------------------------------

    def _op(self, *item) -> None:
        self._ops.append(item)

    def label(self, name: str) -> None:
        self._op("label", name)

    def li(self, rd: int, value: int) -> None:
        self._op("li", rd, value)

    def la(self, rd: int, label: str) -> None:
        self._op("la", rd, label)

    def mov(self, rd: int, rs: int) -> None:
        self._op("mov", rd, rs)

    def alu(self, op: str, rd: int, ra: int, rb: int) -> None:
        self._op("alu", op, rd, ra, rb)

    def alui(self, op: str, rd: int, ra: int, imm: int) -> None:
        self._op("alui", op, rd, ra, imm)

    def shifti(self, op: str, rd: int, ra: int, imm: int) -> None:
        self._op("shifti", op, rd, ra, imm)

    def load(self, rd: int, base: int, offset: int = 0, size: str = "l") -> None:
        self._op("load", rd, base, offset, size)

    def store(self, rs: int, base: int, offset: int = 0, size: str = "l") -> None:
        self._op("store", rs, base, offset, size)

    def branch(self, cond: str, ra: int, rb: int, label: str) -> None:
        self._op("branch", cond, ra, rb, label)

    def branchi(self, cond: str, ra: int, imm: int, label: str) -> None:
        self._op("branchi", cond, ra, imm, label)

    def jump(self, label: str) -> None:
        self._op("jump", label)

    def call(self, label: str) -> None:
        self._op("call", label)

    def ret(self) -> None:
        self._op("ret")

    def exit(self, rs: int) -> None:
        self._op("exit", rs)

    def store_result(self, rs: int) -> None:
        """Persist a register into the 32-bit ``result`` data word."""
        self._uses_result = True
        self._op("store_result", rs)

    # -- data -----------------------------------------------------------------------

    def data_space(self, label: str, nbytes: int, align: int = 8) -> None:
        self._data.append(f".align {align}")
        self._data.append(f"{label}:")
        self._data.append(f".space {nbytes}")

    def data_bytes(self, label: str, text: str, align: int = 8) -> None:
        self._data.append(f".align {align}")
        self._data.append(f"{label}:")
        self._data.append(f'.asciz "{text}"')

    def data_words(self, label: str, values: list[int], align: int = 8) -> None:
        self._data.append(f".align {align}")
        self._data.append(f"{label}:")
        for value in values:
            self._data.append(f".word {value}")

    # -- emission ---------------------------------------------------------------------

    def emit(self, isa: str) -> str:
        """Render this kernel as assembly source for ``isa``."""
        lowering = LOWERINGS[isa]
        lines: list[str] = list(lowering.prologue())
        scratch_addr = None
        for item in self._ops:
            kind = item[0]
            if kind == "label":
                lines.append(f"{item[1]}:")
            elif kind == "store_result":
                # borrow the last virtual register slot for the address
                addr_reg = len(lowering.vregs) - 1
                lines.extend(lowering.la(addr_reg, "result"))
                lines.extend(lowering.store(item[1], addr_reg, 0, "l"))
            else:
                lines.extend(getattr(lowering, kind)(*item[1:]))
        lines.append("")
        lines.extend(self._data)
        if self._uses_result:
            lines.append(".align 8")
            lines.append("result:")
            lines.append(".space 8")
        return "\n".join(lines) + "\n"

    @property
    def wordsize_by_isa(self) -> dict[str, int]:
        return {name: low.wordsize for name, low in LOWERINGS.items()}


def wordsize(isa: str) -> int:
    return LOWERINGS[isa].wordsize


def available_isas() -> list[str]:
    return sorted(LOWERINGS)
