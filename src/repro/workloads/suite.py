"""Running the kernel suite on synthesized simulators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.base import get_bundle
from repro.obs.report import record_sim_stats
from repro.prof.profiler import record_sim_profile
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads.kernels import SUITE, KernelSpec


@dataclass
class KernelRun:
    """Outcome of running one kernel on one simulator."""

    kernel: str
    isa: str
    executed: int
    exit_status: int | None
    result: int
    expected: int
    elapsed: float

    @property
    def correct(self) -> bool:
        return self.result == self.expected


def assemble_kernel(isa: str, spec: KernelSpec, n: int, origin: int = 0x1000):
    """Assemble one kernel for one ISA; returns the program image."""
    bundle = get_bundle(isa)
    source = spec.build(n).emit(isa)
    return bundle.make_assembler().assemble(source, origin=origin)


def run_kernel(
    generated,
    isa: str,
    name: str,
    n: int | None = None,
    max_instructions: int = 50_000_000,
    obs=None,
) -> KernelRun:
    """Run kernel ``name`` on a fresh simulator from ``generated``.

    Pass an :class:`repro.obs.Observability` as ``obs`` to aggregate the
    run's statistics (per-entrypoint counts, code-cache behaviour,
    per-syscall counts) into it; the default runs unobserved.
    """
    import time

    spec = SUITE[name]
    size = n if n is not None else spec.test_n
    bundle = get_bundle(isa)
    image = assemble_kernel(isa, spec, size)
    os_emu = OSEmulator(bundle.abi, obs=obs)
    sim = generated.make(syscall_handler=os_emu, obs=obs)
    load_image(sim.state, image, bundle.abi)
    start = time.perf_counter()
    result = sim.run(max_instructions)
    elapsed = time.perf_counter() - start
    value = sim.state.mem.read_u32(image.symbol("result"))
    if obs is not None and obs.enabled:
        record_sim_stats(obs, sim)
        obs.counters.inc("run.instructions", result.executed)
        obs.counters.inc("run.kernels", 1)
        if obs.prof.enabled:
            record_sim_profile(obs.prof, sim)
    return KernelRun(
        kernel=name,
        isa=isa,
        executed=result.executed,
        exit_status=result.exit_status,
        result=value,
        expected=spec.reference(size) & 0xFFFFFFFF,
        elapsed=elapsed,
    )


def kernel_names() -> list[str]:
    return sorted(SUITE)
