"""Portable benchmark kernels and per-ISA lowering."""

from repro.workloads.builder import Kernel, available_isas, wordsize
from repro.workloads.kernels import SUITE, KernelSpec
from repro.workloads.suite import KernelRun, assemble_kernel, kernel_names, run_kernel

__all__ = [
    "Kernel",
    "KernelRun",
    "KernelSpec",
    "SUITE",
    "assemble_kernel",
    "available_isas",
    "kernel_names",
    "run_kernel",
    "wordsize",
]
