"""Semantic analysis: raw declarations -> :class:`repro.adl.spec.IsaSpec`.

The analyzer enforces the single-specification discipline:

* every field, operand and action is declared exactly once;
* later ``action`` declarations override earlier ones for the same
  (target, action) pair — this is how an OS-emulation overlay file
  replaces the semantics of the syscall instruction, exactly as §V.A of
  the paper describes;
* accessor snippets are instantiated per operand slot, turning the
  generic ``index``/``value`` names into the slot's ``<slot>_id`` and
  value fields;
* buildsets resolve their visibility lists and entrypoint action lists
  against the specification.
"""

from __future__ import annotations

import ast

from repro.adl import snippets, syntax as syn
from repro.adl.errors import AnalysisError, SourceLoc
from repro.adl.spec import (
    ALWAYS_VISIBLE,
    BUILTIN_FIELDS,
    Accessor,
    Bitfield,
    Buildset,
    Entrypoint,
    Field,
    Format,
    Instruction,
    IsaSpec,
    OperandBinding,
    OperandSlot,
)
from repro.arch.registers import RegisterFileDef, SpecialRegisterDef, width_of
from repro.lint.decode import find_pattern_conflicts
from repro.ops import PURE_NAMESPACE

_FIELD_TYPES = {"u8", "u16", "u32", "u64", "bool"}


def _field_width_ok(type_name: str) -> bool:
    return type_name in _FIELD_TYPES


class _Collector:
    """First pass: bucket declarations and reject duplicates."""

    def __init__(self, decls: list[syn.Decl]) -> None:
        self.isa_name = "unnamed"
        self.endian = "little"
        self.ilen = 4
        self.regfiles: dict[str, syn.RegfileDecl] = {}
        self.sregs: dict[str, syn.SregDecl] = {}
        self.fields: dict[str, syn.FieldDecl] = {}
        self.formats: dict[str, syn.FormatDecl] = {}
        self.accessors: dict[str, syn.AccessorDecl] = {}
        self.operandnames: dict[str, syn.OperandNameDecl] = {}
        self.classes: list[str] = []
        self.operands: list[syn.OperandAttachDecl] = []
        self.actions: dict[tuple[str, str], syn.ActionDecl] = {}  # last wins
        self.action_order: tuple[str, ...] | None = None
        self.instructions: dict[str, syn.InstructionDecl] = {}
        self.groups: dict[str, syn.GroupDecl] = {}
        self.helpers: dict[str, syn.HelperDecl] = {}
        self.predicate: syn.PredicateDecl | None = None
        self.buildsets: dict[str, syn.BuildsetDecl] = {}
        for decl in decls:
            self._add(decl)

    def _unique(self, table: dict, key: str, decl: syn.Decl, what: str) -> None:
        if key in table:
            raise AnalysisError(f"duplicate {what} {key!r}", decl.loc)
        table[key] = decl

    def _add(self, decl: syn.Decl) -> None:
        if isinstance(decl, syn.IsaDecl):
            self.isa_name = decl.name
        elif isinstance(decl, syn.EndianDecl):
            self.endian = decl.value
        elif isinstance(decl, syn.IlenDecl):
            if decl.value not in (2, 4, 8):
                raise AnalysisError("ilen must be 2, 4 or 8 bytes", decl.loc)
            self.ilen = decl.value
        elif isinstance(decl, syn.RegfileDecl):
            self._unique(self.regfiles, decl.name, decl, "register file")
        elif isinstance(decl, syn.SregDecl):
            self._unique(self.sregs, decl.name, decl, "special register")
        elif isinstance(decl, syn.FieldDecl):
            self._unique(self.fields, decl.name, decl, "field")
        elif isinstance(decl, syn.FormatDecl):
            self._unique(self.formats, decl.name, decl, "format")
        elif isinstance(decl, syn.AccessorDecl):
            self._unique(self.accessors, decl.name, decl, "accessor")
        elif isinstance(decl, syn.OperandNameDecl):
            self._unique(self.operandnames, decl.name, decl, "operand name")
        elif isinstance(decl, syn.ClassDecl):
            if decl.name in self.classes:
                raise AnalysisError(f"duplicate class {decl.name!r}", decl.loc)
            self.classes.append(decl.name)
        elif isinstance(decl, syn.OperandAttachDecl):
            self.operands.append(decl)
        elif isinstance(decl, syn.ActionDecl):
            self.actions[(decl.target, decl.action)] = decl  # override allowed
        elif isinstance(decl, syn.ActionsOrderDecl):
            if self.action_order is not None:
                raise AnalysisError("duplicate 'actions' order declaration", decl.loc)
            if len(set(decl.names)) != len(decl.names):
                raise AnalysisError("'actions' list contains duplicates", decl.loc)
            self.action_order = decl.names
        elif isinstance(decl, syn.InstructionDecl):
            self._unique(self.instructions, decl.name, decl, "instruction")
        elif isinstance(decl, syn.GroupDecl):
            self._unique(self.groups, decl.name, decl, "group")
        elif isinstance(decl, syn.HelperDecl):
            self.helpers[decl.name] = decl  # override allowed? keep last
        elif isinstance(decl, syn.PredicateDecl):
            self.predicate = decl
        elif isinstance(decl, syn.BuildsetDecl):
            self.buildsets[decl.name] = decl  # later file may redefine
        else:  # pragma: no cover - parser produces only known decls
            raise AnalysisError(f"unhandled declaration {type(decl).__name__}", decl.loc)


def analyze(decls: list[syn.Decl], *, check_decode: bool = True) -> IsaSpec:
    """Resolve declarations into a validated :class:`IsaSpec`.

    ``check_decode=False`` skips the hard decode-conflict check so that
    :mod:`repro.lint` can analyze a conflicted specification and report
    every overlap as a located diagnostic instead of one exception.
    """
    col = _Collector(decls)
    if col.action_order is None:
        raise AnalysisError("missing 'actions' order declaration")

    # -- register files and special registers ------------------------------
    regfiles = {
        name: RegisterFileDef(name, decl.count, _checked_type(decl.type, decl.loc))
        for name, decl in col.regfiles.items()
    }
    sregs = {
        name: SpecialRegisterDef(name, _checked_type(decl.type, decl.loc))
        for name, decl in col.sregs.items()
    }

    # -- fields ------------------------------------------------------------
    fields: dict[str, Field] = {
        name: Field(name, type_name, builtin=True)
        for name, type_name in _builtin_fields(col.ilen).items()
    }
    for name, decl in col.fields.items():
        if name in fields:
            raise AnalysisError(f"field {name!r} shadows a builtin field", decl.loc)
        if name in regfiles or name in sregs:
            raise AnalysisError(
                f"field {name!r} collides with a register declaration", decl.loc
            )
        fields[name] = Field(name, _checked_type(decl.type, decl.loc), loc=decl.loc)
    for name, decl in col.operandnames.items():
        id_field = f"{name}_id"
        if id_field in fields:
            raise AnalysisError(
                f"operand id field {id_field!r} collides with an existing field",
                decl.loc,
            )
        fields[id_field] = Field(id_field, "u32", slot=name, loc=decl.loc)
        if decl.value_field not in fields:
            raise AnalysisError(
                f"operand {name!r} value field {decl.value_field!r} is not declared",
                decl.loc,
            )
        fields[decl.value_field] = Field(
            decl.value_field,
            fields[decl.value_field].type,
            slot=name,
            loc=fields[decl.value_field].loc,
        )

    # -- formats -------------------------------------------------------------
    formats: dict[str, Format] = {}
    word_bits = col.ilen * 8
    for name, decl in col.formats.items():
        bitfields: dict[str, Bitfield] = {}
        for bf in decl.bitfields:
            if bf.hi >= word_bits:
                raise AnalysisError(
                    f"bitfield {bf.name} exceeds {word_bits}-bit instruction word",
                    bf.loc,
                )
            if bf.name in bitfields:
                raise AnalysisError(
                    f"duplicate bitfield {bf.name!r} in format {name!r}", bf.loc
                )
            if bf.name in fields or bf.name in regfiles or bf.name in sregs:
                raise AnalysisError(
                    f"bitfield {bf.name!r} collides with a field or register name",
                    bf.loc,
                )
            bitfields[bf.name] = Bitfield(bf.name, bf.hi, bf.lo, bf.signed)
        formats[name] = Format(name, bitfields, loc=decl.loc)

    # -- helpers ---------------------------------------------------------------
    helpers: dict[str, object] = {}
    helper_sources: dict[str, str] = {}
    for name, decl in col.helpers.items():
        namespace: dict[str, object] = dict(PURE_NAMESPACE)
        namespace.update(helpers)
        try:
            exec(compile(decl.snippet, str(decl.snippet_loc), "exec"), namespace)
        except Exception as exc:
            raise AnalysisError(f"helper {name!r} failed to execute: {exc}", decl.loc)
        if name not in namespace or not callable(namespace[name]):
            raise AnalysisError(
                f"helper snippet must define a function named {name!r}", decl.loc
            )
        helpers[name] = namespace[name]
        helper_sources[name] = decl.snippet

    # -- accessors ----------------------------------------------------------
    accessors: dict[str, Accessor] = {}
    for name, decl in col.accessors.items():
        accessors[name] = Accessor(
            name=name,
            params=decl.params,
            decode=tuple(snippets.parse_snippet(decl.decode, decl.loc))
            if decl.decode
            else (),
            read=tuple(snippets.parse_snippet(decl.read, decl.loc))
            if decl.read
            else (),
            write=tuple(snippets.parse_snippet(decl.write, decl.loc))
            if decl.write
            else (),
            loc=decl.loc,
        )

    # -- operand slots ---------------------------------------------------------
    operand_slots: dict[str, OperandSlot] = {}
    for name, decl in col.operandnames.items():
        for action in (decl.decode_action, decl.access_action):
            if action not in col.action_order:
                raise AnalysisError(
                    f"operand {name!r} references unknown action {action!r}", decl.loc
                )
        operand_slots[name] = OperandSlot(
            name, decl.direction, decl.decode_action, decl.access_action,
            decl.value_field,
        )

    # -- operand bindings per target ----------------------------------------
    known_targets = set(col.classes) | set(col.instructions)
    bindings_by_target: dict[str, list[OperandBinding]] = {}
    for decl in col.operands:
        if decl.target not in known_targets:
            raise AnalysisError(
                f"operand target {decl.target!r} is not a class or instruction",
                decl.loc,
            )
        slot = operand_slots.get(decl.opname)
        if slot is None:
            raise AnalysisError(f"unknown operand slot {decl.opname!r}", decl.loc)
        accessor = accessors.get(decl.accessor)
        if accessor is None:
            raise AnalysisError(f"unknown accessor {decl.accessor!r}", decl.loc)
        if len(decl.args) != len(accessor.params):
            raise AnalysisError(
                f"accessor {accessor.name!r} expects {len(accessor.params)} "
                f"argument(s), got {len(decl.args)}",
                decl.loc,
            )
        bindings_by_target.setdefault(decl.target, []).append(
            OperandBinding(slot, accessor, decl.args, decl.target, decl.loc)
        )

    # -- user actions: validate targets and action names ----------------------
    for (target, action), decl in col.actions.items():
        if target != "*" and target not in known_targets:
            raise AnalysisError(
                f"action target {target!r} is not a class or instruction", decl.loc
            )
        if action not in col.action_order:
            raise AnalysisError(
                f"action name {action!r} is not in the 'actions' order", decl.loc
            )
    parsed_actions: dict[
        tuple[str, str], tuple[tuple[ast.stmt, ...], SourceLoc]
    ] = {
        key: (
            tuple(snippets.parse_snippet(decl.snippet, decl.snippet_loc)),
            decl.snippet_loc,
        )
        for key, decl in col.actions.items()
    }

    # -- instructions --------------------------------------------------------
    global_names = (
        set(fields)
        | set(regfiles)
        | set(sregs)
        | set(helpers)
        | set(snippets.PURE_FUNCTIONS)
        | set(snippets.EFFECT_FUNCTIONS)
    )
    instructions: list[Instruction] = []
    for name, decl in col.instructions.items():
        fmt = formats.get(decl.format)
        if fmt is None:
            raise AnalysisError(
                f"instruction {name!r} uses unknown format {decl.format!r}", decl.loc
            )
        for cls in decl.classes:
            if cls not in col.classes:
                raise AnalysisError(
                    f"instruction {name!r} references unknown class {cls!r}", decl.loc
                )
        patterns: list[tuple[int, int]] = []
        for alternative in decl.matches:
            mask = 0
            value = 0
            for term in alternative:
                bitfield = fmt.bitfields.get(term.field)
                if bitfield is None:
                    raise AnalysisError(
                        f"match field {term.field!r} is not in format {fmt.name!r}",
                        term.loc,
                    )
                raw = term.value & ((1 << bitfield.width) - 1)
                if term.value >= (1 << bitfield.width):
                    raise AnalysisError(
                        f"match value {term.value:#x} does not fit bitfield "
                        f"{term.field!r} ({bitfield.width} bits)",
                        term.loc,
                    )
                term_mask = ((1 << bitfield.width) - 1) << bitfield.lo
                if mask & term_mask:
                    raise AnalysisError(
                        f"duplicate match on bitfield {term.field!r}", term.loc
                    )
                mask |= term_mask
                value |= raw << bitfield.lo
            if mask == 0:
                raise AnalysisError(
                    f"instruction {name!r} has an empty match", decl.loc
                )
            patterns.append((mask, value))
        if not patterns:
            raise AnalysisError(f"instruction {name!r} has no match terms", decl.loc)

        operands = _resolve_operands(name, decl.classes, bindings_by_target, decl.loc)
        action_code, action_locs = _build_action_code(
            name,
            decl,
            fmt,
            operands,
            parsed_actions,
            col.action_order,
            fields,
            regfiles,
            sregs,
            global_names,
        )
        instructions.append(
            Instruction(
                name=name,
                format=fmt,
                classes=decl.classes,
                patterns=tuple(patterns),
                operands=tuple(operands),
                action_code=action_code,
                loc=decl.loc,
                action_locs=action_locs,
            )
        )

    if check_decode:
        _check_decode_conflicts(instructions)

    # -- groups (may reference previously-declared groups) -----------------------
    groups: dict[str, tuple[str, ...]] = {}
    for name, decl in col.groups.items():
        expanded: list[str] = []
        for action in decl.actions:
            if action in groups:
                expanded.extend(groups[action])
            elif action in col.action_order:
                expanded.append(action)
            else:
                raise AnalysisError(
                    f"group {name!r} references unknown action or group "
                    f"{action!r}",
                    decl.loc,
                )
        groups[name] = tuple(expanded)

    # -- predicate ----------------------------------------------------------------
    predicate: tuple[str, str] | None = None
    if col.predicate is not None:
        if col.predicate.field not in fields:
            raise AnalysisError(
                f"predicate field {col.predicate.field!r} is not declared",
                col.predicate.loc,
            )
        if col.predicate.after_action not in col.action_order:
            raise AnalysisError(
                f"predicate action {col.predicate.after_action!r} is unknown",
                col.predicate.loc,
            )
        predicate = (col.predicate.field, col.predicate.after_action)

    # -- buildsets -----------------------------------------------------------------
    buildsets: dict[str, Buildset] = {}
    for name, decl in col.buildsets.items():
        buildsets[name] = _build_buildset(decl, fields, groups, col.action_order)

    return IsaSpec(
        name=col.isa_name,
        endian=col.endian,
        ilen=col.ilen,
        regfiles=regfiles,
        sregs=sregs,
        fields=fields,
        formats=formats,
        accessors=accessors,
        operand_slots=operand_slots,
        classes=tuple(col.classes),
        instructions=instructions,
        action_order=col.action_order,
        groups=groups,
        helpers=helpers,
        helper_sources=helper_sources,
        predicate=predicate,
        buildsets=buildsets,
    )


def _checked_type(type_name: str, loc: SourceLoc) -> str:
    if type_name == "bool":
        return "u8"
    try:
        width_of(type_name)
    except ValueError:
        raise AnalysisError(f"unknown type {type_name!r}", loc) from None
    return type_name


def _builtin_fields(ilen: int) -> dict[str, str]:
    out = dict(BUILTIN_FIELDS)
    out["instr_bits"] = {2: "u16", 4: "u32", 8: "u64"}[ilen]
    return out


def _resolve_operands(
    instr_name: str,
    classes: tuple[str, ...],
    bindings_by_target: dict[str, list[OperandBinding]],
    loc: SourceLoc,
) -> list[OperandBinding]:
    """Collect operand bindings from classes (in order) then the instruction.

    An instruction-level binding overrides a class-level binding for the
    same slot; two classes binding the same slot is an error.
    """
    by_slot: dict[str, OperandBinding] = {}
    for cls in classes:
        for binding in bindings_by_target.get(cls, []):
            if binding.slot.name in by_slot:
                raise AnalysisError(
                    f"instruction {instr_name!r}: operand slot "
                    f"{binding.slot.name!r} bound by multiple classes",
                    loc,
                )
            by_slot[binding.slot.name] = binding
    for binding in bindings_by_target.get(instr_name, []):
        by_slot[binding.slot.name] = binding  # instruction overrides class
    return list(by_slot.values())


def _instantiate_accessor(
    stmts: tuple[ast.stmt, ...],
    binding: OperandBinding,
    fields: dict[str, Field],
    known: set[str],
) -> list[ast.stmt]:
    """Rename an accessor snippet for one operand slot."""
    if not stmts:
        return []
    slot = binding.slot
    mapping: dict[str, str | ast.expr] = {
        "index": slot.id_field,
        "value": slot.value_field,
    }
    for param, arg in zip(binding.accessor.params, binding.args):
        if isinstance(arg, int):
            mapping[param] = ast.Constant(arg)
        else:
            mapping[param] = str(arg)
    # Rename snippet-private locals so two slots sharing an accessor do
    # not clash inside one generated function.
    facts = snippets.analyze_stmts(list(stmts))
    for local in facts.writes - {"index", "value"} - known:
        mapping.setdefault(local, f"__{slot.name}_{local}")
    return snippets.rename_names(list(stmts), mapping, binding.loc)


def _build_action_code(
    instr_name: str,
    decl: syn.InstructionDecl,
    fmt: Format,
    operands: list[OperandBinding],
    parsed_actions: dict[tuple[str, str], tuple[tuple[ast.stmt, ...], SourceLoc]],
    action_order: tuple[str, ...],
    fields: dict[str, Field],
    regfiles: dict,
    sregs: dict,
    global_names: set[str],
) -> tuple[dict[str, tuple[ast.stmt, ...]], dict[str, SourceLoc]]:
    """Assemble the per-action statement lists for one instruction."""
    known = global_names | set(fmt.bitfields)
    code: dict[str, list[ast.stmt]] = {}
    action_locs: dict[str, SourceLoc] = {}

    # Operand-generated statements first, in binding order.
    for binding in operands:
        slot = binding.slot
        decode_stmts = _instantiate_accessor(
            binding.accessor.decode, binding, fields, known
        )
        code.setdefault(slot.decode_action, []).extend(decode_stmts)
        access = (
            binding.accessor.read if slot.direction == "source"
            else binding.accessor.write
        )
        access_stmts = _instantiate_accessor(access, binding, fields, known)
        code.setdefault(slot.access_action, []).extend(access_stmts)

    # User snippets: instruction-specific overrides class-provided
    # overrides wildcard, resolved per action name.
    for action in action_order:
        user = parsed_actions.get((instr_name, action))
        if user is None:
            for cls in decl.classes:
                user = parsed_actions.get((cls, action))
                if user is not None:
                    break
        if user is None:
            user = parsed_actions.get(("*", action))
        if user is not None:
            stmts, snippet_loc = user
            action_locs[action] = snippet_loc
            code.setdefault(action, []).extend(
                ast.parse(ast.unparse(stmt)).body[0] for stmt in stmts
            )

    # Validate name usage: anything read must be globally known, a format
    # bitfield, or written earlier inside the same action's statement list.
    for action, stmts in code.items():
        assigned: set[str] = set()
        for stmt in stmts:
            facts = snippets.analyze_stmt(stmt)
            unknown = facts.reads - known - assigned - facts.writes
            unknown -= {"True", "False", "None"}
            if unknown:
                raise AnalysisError(
                    f"instruction {instr_name!r}, action {action!r}: "
                    f"unknown name(s) {sorted(unknown)}",
                    decl.loc,
                )
            if facts.unknown_calls - set(snippets.EFFECT_FUNCTIONS) - global_names:
                bad = facts.unknown_calls - global_names
                if bad:
                    raise AnalysisError(
                        f"instruction {instr_name!r}, action {action!r}: "
                        f"call to unknown function(s) {sorted(bad)}",
                        decl.loc,
                    )
            assigned |= facts.writes
    return (
        {action: tuple(stmts) for action, stmts in code.items() if stmts},
        action_locs,
    )


def _check_decode_conflicts(instructions: list[Instruction]) -> None:
    """Reject ambiguous decode spaces via mask/value intersection.

    Uses the lint engine's pairwise overlap classification: identical
    patterns and overlaps where neither pattern is strictly more specific
    are hard errors (dispatch order would be arbitrary).  Strict
    specialization (one mask a superset of the other) stays legal — the
    popcount-ordered dispatch tables resolve it deterministically — and is
    surfaced as a lint warning instead (``LIS003``).
    """
    for conflict in find_pattern_conflicts(instructions):
        if conflict.kind == "identical":
            raise AnalysisError(
                f"instructions {conflict.a!r} and {conflict.b!r} have "
                f"identical decode patterns "
                f"(mask {conflict.pattern_b[0]:#x}, value {conflict.pattern_b[1]:#x})",
                conflict.b_loc or conflict.a_loc,
            )
        if conflict.kind == "ambiguous":
            raise AnalysisError(
                f"instructions {conflict.a!r} and {conflict.b!r} have "
                f"overlapping decode patterns and neither is more specific: "
                f"some encodings match both and dispatch order would be "
                f"arbitrary",
                conflict.b_loc or conflict.a_loc,
            )


def _build_buildset(
    decl: syn.BuildsetDecl,
    fields: dict[str, Field],
    groups: dict[str, tuple[str, ...]],
    action_order: tuple[str, ...],
) -> Buildset:
    speculation = False
    visible = set(fields)  # default: show all
    explicit_shows: set[str] = set()
    entrypoints: list[Entrypoint] = []
    names_seen: set[str] = set()
    for stmt in decl.statements:
        if isinstance(stmt, syn.SpeculationStmt):
            speculation = stmt.enabled
        elif isinstance(stmt, syn.VisibilityStmt):
            if not stmt.names:  # "all"
                visible = set(fields) if stmt.mode == "show" else set(ALWAYS_VISIBLE)
                if stmt.mode == "hide":
                    explicit_shows.clear()
                continue
            for name in stmt.names:
                if name not in fields:
                    raise AnalysisError(
                        f"visibility list names unknown field {name!r}", stmt.loc
                    )
                if stmt.mode == "show":
                    visible.add(name)
                    explicit_shows.add(name)
                elif name not in ALWAYS_VISIBLE:
                    visible.discard(name)
                    explicit_shows.discard(name)
        elif isinstance(stmt, syn.EntrypointStmt):
            if stmt.name in names_seen:
                raise AnalysisError(
                    f"duplicate entrypoint {stmt.name!r} in buildset {decl.name!r}",
                    stmt.loc,
                )
            names_seen.add(stmt.name)
            expanded: list[str] = []
            for action in stmt.actions:
                if action in groups:
                    expanded.extend(groups[action])
                elif action in action_order:
                    expanded.append(action)
                else:
                    raise AnalysisError(
                        f"entrypoint {stmt.name!r} references unknown action or "
                        f"group {action!r}",
                        stmt.loc,
                    )
            entrypoints.append(Entrypoint(stmt.name, stmt.block, tuple(expanded)))
        else:  # pragma: no cover
            raise AnalysisError("unknown buildset statement", stmt.loc)
    if not entrypoints:
        raise AnalysisError(f"buildset {decl.name!r} has no entrypoints", decl.loc)
    if sum(1 for ep in entrypoints if ep.block) > 1 or (
        any(ep.block for ep in entrypoints) and len(entrypoints) > 1
    ):
        raise AnalysisError(
            f"buildset {decl.name!r}: a block entrypoint must be the only "
            f"entrypoint",
            decl.loc,
        )
    visible |= set(ALWAYS_VISIBLE)
    return Buildset(
        name=decl.name,
        speculation=speculation,
        visible=frozenset(visible),
        entrypoints=tuple(entrypoints),
        loc=decl.loc,
        explicit_shows=frozenset(explicit_shows),
    )
