"""Diagnostics for the LIS-like architecture description language."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLoc:
    """A position inside an ADL source file (1-based line/column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ADLError(Exception):
    """Base class for every error raised by the ADL front end."""

    def __init__(self, message: str, loc: SourceLoc | None = None) -> None:
        self.loc = loc
        self.message = message
        super().__init__(f"{loc}: {message}" if loc else message)


class LexError(ADLError):
    """Malformed token (unterminated snippet, stray character, ...)."""


class ParseError(ADLError):
    """Token stream does not match the grammar."""


class AnalysisError(ADLError):
    """Well-formed syntax with inconsistent meaning (unknown names, ...)."""


class SnippetError(ADLError):
    """A ``%{ ... %}`` Python snippet failed to parse or is disallowed."""
