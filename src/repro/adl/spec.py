"""Resolved ISA specification model.

:func:`repro.adl.analyzer.analyze` turns raw declarations into an
:class:`IsaSpec`.  Everything here is buildset-independent: the *single
specification* of the paper's principle.  The synthesizer
(:mod:`repro.synth`) later specializes it per buildset.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.adl.errors import SourceLoc
from repro.arch.registers import RegisterFileDef, SpecialRegisterDef, width_of

#: Fields every description gets for free; also the paper's "Min"
#: informational level ("address, instruction encoding, next PC, faults,
#: and simulator context").
BUILTIN_FIELDS: dict[str, str] = {
    "pc": "u64",
    "phys_pc": "u64",
    "instr_bits": "u64",
    "next_pc": "u64",
    "fault": "u32",
}

#: Builtin fields that remain visible in every interface.
ALWAYS_VISIBLE: frozenset[str] = frozenset(BUILTIN_FIELDS)


@dataclass(frozen=True)
class Bitfield:
    """One contiguous bit range of an instruction format."""

    name: str
    hi: int
    lo: int
    signed: bool

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def extract(self, word: int) -> int:
        """Extract this bitfield's (possibly sign-extended) value."""
        value = (word >> self.lo) & ((1 << self.width) - 1)
        if self.signed and value & (1 << (self.width - 1)):
            value -= 1 << self.width
        return value


@dataclass(frozen=True)
class Format:
    """A named instruction encoding layout."""

    name: str
    bitfields: dict[str, Bitfield]
    loc: SourceLoc | None = None

    def extract_all(self, word: int) -> dict[str, int]:
        return {name: bf.extract(word) for name, bf in self.bitfields.items()}


@dataclass(frozen=True)
class Field:
    """An intermediate value / operand value communicable via an interface."""

    name: str
    type: str
    builtin: bool = False
    #: operand slot this field belongs to, if any ("src1_id" -> "src1")
    slot: str | None = None
    loc: SourceLoc | None = None

    @property
    def width(self) -> int:
        return width_of(self.type)


@dataclass(frozen=True)
class Accessor:
    """Parsed accessor: how operands decode, read and write state."""

    name: str
    params: tuple[str, ...]
    decode: tuple[ast.stmt, ...]
    read: tuple[ast.stmt, ...]
    write: tuple[ast.stmt, ...]
    loc: SourceLoc | None = None


@dataclass(frozen=True)
class OperandSlot:
    """A named operand position declared by ``operandname``."""

    name: str
    direction: str  # "source" | "dest"
    decode_action: str
    access_action: str
    value_field: str

    @property
    def id_field(self) -> str:
        return f"{self.name}_id"


@dataclass(frozen=True)
class OperandBinding:
    """An operand slot bound to an accessor for one class/instruction."""

    slot: OperandSlot
    accessor: Accessor
    args: tuple[object, ...]
    target: str
    loc: SourceLoc | None = None


@dataclass(frozen=True)
class Instruction:
    """One fully-resolved instruction."""

    name: str
    format: Format
    classes: tuple[str, ...]
    #: decode (mask, value) alternatives over the instruction word
    patterns: tuple[tuple[int, int], ...]
    #: operand bindings in effect, in declaration order
    operands: tuple[OperandBinding, ...]
    #: action name -> statements (operand-generated + user snippet),
    #: already instantiated for this instruction
    action_code: dict[str, tuple[ast.stmt, ...]] = field(default_factory=dict)
    loc: SourceLoc | None = None
    #: action name -> source location of the user snippet that provided
    #: its code (instruction-specific, class, or wildcard declaration)
    action_locs: dict[str, SourceLoc] = field(default_factory=dict)

    @property
    def mask(self) -> int:
        return self.patterns[0][0]

    @property
    def value(self) -> int:
        return self.patterns[0][1]

    def actions_present(self) -> tuple[str, ...]:
        return tuple(self.action_code)


@dataclass(frozen=True)
class Entrypoint:
    """One interface call of a buildset (groups already expanded)."""

    name: str
    block: bool
    actions: tuple[str, ...]


@dataclass(frozen=True)
class Buildset:
    """One interface definition: the paper's central construct."""

    name: str
    speculation: bool
    visible: frozenset[str]
    entrypoints: tuple[Entrypoint, ...]
    loc: SourceLoc | None = None
    #: fields named by an explicit ``visibility show`` list (as opposed to
    #: a blanket ``show all``); lets tooling tell deliberate exposure from
    #: the default
    explicit_shows: frozenset[str] = frozenset()

    @property
    def semantic_detail(self) -> str:
        """Classify as the paper's Block / One / Step levels."""
        if any(ep.block for ep in self.entrypoints):
            return "block"
        return "one" if len(self.entrypoints) == 1 else "step"


@dataclass
class IsaSpec:
    """The single specification: everything about an instruction set."""

    name: str
    endian: str
    ilen: int
    regfiles: dict[str, RegisterFileDef]
    sregs: dict[str, SpecialRegisterDef]
    fields: dict[str, Field]
    formats: dict[str, Format]
    accessors: dict[str, Accessor]
    operand_slots: dict[str, OperandSlot]
    classes: tuple[str, ...]
    instructions: list[Instruction]
    action_order: tuple[str, ...]
    groups: dict[str, tuple[str, ...]]
    helpers: dict[str, object]  # name -> callable (pure by contract)
    helper_sources: dict[str, str]
    predicate: tuple[str, str] | None  # (field, after_action)
    buildsets: dict[str, Buildset]

    def instruction(self, name: str) -> Instruction:
        for instr in self.instructions:
            if instr.name == name:
                return instr
        raise KeyError(name)

    def expand_actions(self, names: tuple[str, ...]) -> tuple[str, ...]:
        """Expand group names into their member actions, preserving order."""
        out: list[str] = []
        for name in names:
            if name in self.groups:
                out.extend(self.groups[name])
            else:
                out.append(name)
        return tuple(out)

    def action_index(self, name: str) -> int:
        return self.action_order.index(name)

    def make_state(self):
        """Create a fresh :class:`~repro.arch.state.ArchState` for this ISA."""
        from repro.arch.state import ArchState

        return ArchState(
            regfiles=self.regfiles.values(),
            sregs=self.sregs.values(),
            endian=self.endian,
        )

    def decode_groups(self) -> list[tuple[int, dict[int, int]]]:
        """Build decode dispatch tables.

        Returns ``[(mask, {word & mask: instruction_index})]`` ordered by
        descending mask popcount, so the most specific encodings match
        first.
        """
        by_mask: dict[int, dict[int, int]] = {}
        for index, instr in enumerate(self.instructions):
            for mask, value in instr.patterns:
                table = by_mask.setdefault(mask, {})
                table[value] = index
        return sorted(
            by_mask.items(), key=lambda item: bin(item[0]).count("1"), reverse=True
        )

    def decode(self, word: int) -> int | None:
        """Decode one instruction word to an instruction index (slow path)."""
        for mask, table in self.decode_groups():
            index = table.get(word & mask)
            if index is not None:
                return index
        return None
