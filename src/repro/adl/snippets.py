"""Tooling for the Python semantics snippets embedded in ADL sources.

LIS embeds C++ between ``%{ ... %}``; our ADL embeds Python.  Everything
the synthesizer needs to reason about a snippet lives here:

* :func:`parse_snippet` — parse + restrict to the allowed statement subset.
* :func:`analyze_stmt` — per-statement read/write/effect sets, the raw
  material for liveness analysis and dead-code elimination.
* :func:`rename_names` — alpha-renaming used to instantiate accessor
  snippets per operand slot (``index`` -> ``src1_id``, params -> fields).
* :func:`fold_constants` — constant propagation/folding used by the
  basic-block translator, where decode-time knowledge turns format fields
  into literals.

Snippets may only use: assignments (including ``+=`` style and subscript
stores into register files), expressions, ``if``/``else``, ``pass``, and
calls.  ``import``, loops, ``def``, attribute access and similar are
rejected so that generated code stays analyzable and the dataflow facts
stay exact.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field

from repro.adl.errors import SnippetError, SourceLoc

# Calls to these names never mutate simulator state; a statement whose only
# call targets are pure may be removed when its results are dead.
PURE_FUNCTIONS = frozenset(
    {
        "u8",
        "u16",
        "u32",
        "u64",
        "i8",
        "i16",
        "i32",
        "i64",
        "sext",
        "rotl32",
        "rotr32",
        "rotl64",
        "rotr64",
        "clz32",
        "ctz32",
        "popcount",
        "carry_add32",
        "carry_add64",
        "borrow_sub32",
        "overflow_add32",
        "overflow_sub32",
        "overflow_add64",
        "overflow_sub64",
        "bool",
        "int",
        "abs",
        "min",
        "max",
        "len",
        "divmod",
        # Memory loads and instruction fetches read but do not mutate.
        "__mem_read",
        "__mem_read_s",
        "__fetch",
        "__check_cond",
    }
)

# Calls to these names have architectural side effects; statements
# containing them are anchored (never dead-code-eliminated).
EFFECT_FUNCTIONS = frozenset({"__mem_write", "__syscall", "__raise"})

_ALLOWED_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.If, ast.Pass)
_ALLOWED_EXPRS = (
    ast.BinOp,
    ast.UnaryOp,
    ast.BoolOp,
    ast.Compare,
    ast.IfExp,
    ast.Call,
    ast.Name,
    ast.Constant,
    ast.Subscript,
    ast.Tuple,
    ast.Slice,
    ast.operator,
    ast.unaryop,
    ast.boolop,
    ast.cmpop,
    ast.expr_context,
    ast.keyword,
)


def parse_snippet(text: str, loc: SourceLoc | None = None) -> list[ast.stmt]:
    """Parse a snippet into a list of statements, enforcing the subset."""
    source = textwrap.dedent(text)
    try:
        module = ast.parse(source, mode="exec")
    except SyntaxError as exc:
        raise SnippetError(f"snippet is not valid Python: {exc.msg}", loc) from exc
    for node in ast.walk(module):
        if isinstance(node, ast.Module):
            continue
        if isinstance(node, _ALLOWED_STMTS) or isinstance(node, _ALLOWED_EXPRS):
            continue
        raise SnippetError(
            f"snippet uses disallowed construct {type(node).__name__}", loc
        )
    return module.body


@dataclass
class StmtFacts:
    """Dataflow facts for one snippet statement."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    #: names of register files / containers stored into via subscripts
    subscript_writes: set[str] = field(default_factory=set)
    #: names of effectful functions called
    effects: set[str] = field(default_factory=set)
    #: names of called functions that are neither pure nor known-effectful
    unknown_calls: set[str] = field(default_factory=set)

    @property
    def has_effect(self) -> bool:
        """True when the statement must execute regardless of liveness."""
        return bool(self.effects or self.subscript_writes or self.unknown_calls)


class _FactsVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.facts = StmtFacts()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.reads.add(node.id)
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            self.facts.writes.add(node.id)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Store) and isinstance(node.value, ast.Name):
            self.facts.subscript_writes.add(node.value.id)
            self.facts.reads.add(node.value.id)
            self.visit(node.slice)
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in EFFECT_FUNCTIONS:
                self.facts.effects.add(name)
                if name == "__raise":
                    # __raise(code) lowers to `fault = code`
                    self.facts.writes.add("fault")
            elif name not in PURE_FUNCTIONS:
                self.facts.unknown_calls.add(name)
            self.facts.reads.discard(name)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x += y reads x as well as writing it.
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self.facts.reads.add(node.target.id)
            self.facts.writes.add(node.target.id)
        elif isinstance(node.target, ast.Subscript) and isinstance(
            node.target.value, ast.Name
        ):
            self.facts.subscript_writes.add(node.target.value.id)
            self.facts.reads.add(node.target.value.id)
            self.visit(node.target.slice)
        else:  # pragma: no cover - parse_snippet rejects other targets
            self.visit(node.target)


def analyze_stmt(stmt: ast.stmt) -> StmtFacts:
    """Compute read/write/effect facts for one statement (recursively)."""
    visitor = _FactsVisitor()
    visitor.visit(stmt)
    return visitor.facts


def analyze_stmts(stmts: list[ast.stmt]) -> StmtFacts:
    """Union of :func:`analyze_stmt` over a statement list."""
    total = StmtFacts()
    for stmt in stmts:
        facts = analyze_stmt(stmt)
        total.reads |= facts.reads
        total.writes |= facts.writes
        total.subscript_writes |= facts.subscript_writes
        total.effects |= facts.effects
        total.unknown_calls |= facts.unknown_calls
    return total


class _Renamer(ast.NodeTransformer):
    def __init__(self, mapping: dict[str, str | ast.expr], loc: SourceLoc | None):
        self.mapping = mapping
        self.loc = loc

    def visit_Name(self, node: ast.Name) -> ast.expr:
        target = self.mapping.get(node.id)
        if target is None:
            return node
        if isinstance(target, str):
            return ast.copy_location(ast.Name(target, node.ctx), node)
        if isinstance(node.ctx, ast.Load):
            return ast.copy_location(target, node)
        raise SnippetError(
            f"cannot substitute expression for {node.id!r} in store context", self.loc
        )

    def visit_Call(self, node: ast.Call) -> ast.expr:
        # Function names are positions, not values: never rename them.
        node.args = [self.visit(arg) for arg in node.args]
        node.keywords = [
            ast.keyword(kw.arg, self.visit(kw.value)) for kw in node.keywords
        ]
        return node


def rename_names(
    stmts: list[ast.stmt],
    mapping: dict[str, str | ast.expr],
    loc: SourceLoc | None = None,
) -> list[ast.stmt]:
    """Return a deep copy of ``stmts`` with names substituted.

    String values rename both loads and stores; AST-expression values are
    substituted at loads only (a store through one is an error).
    """
    renamer = _Renamer(mapping, loc)
    out = []
    for stmt in stmts:
        copied = ast.parse(ast.unparse(stmt)).body[0]  # cheap deep copy
        out.append(ast.fix_missing_locations(renamer.visit(copied)))
    return out


def snippet_locals(stmts: list[ast.stmt], known: set[str]) -> set[str]:
    """Names written by the snippet that are not globally-known fields."""
    return analyze_stmts(stmts).writes - known


# -- constant folding ---------------------------------------------------------


class _Folder(ast.NodeTransformer):
    """Evaluates expressions whose operands are all constants.

    ``env`` maps names to constant values (block-translate-time knowledge
    such as decoded format fields); ``funcs`` maps foldable function names
    to their Python implementations.
    """

    def __init__(self, env: dict[str, object], funcs: dict[str, object]):
        self.env = env
        self.funcs = funcs

    def _const(self, node: ast.AST, value: object) -> ast.expr:
        return ast.copy_location(ast.Constant(value), node)

    def visit_Name(self, node: ast.Name) -> ast.expr:
        if isinstance(node.ctx, ast.Load) and node.id in self.env:
            return self._const(node, self.env[node.id])
        return node

    def _try_eval(self, node: ast.expr) -> ast.expr:
        try:
            value = eval(  # noqa: S307 - expression built only from constants
                compile(ast.Expression(ast.fix_missing_locations(node)), "<fold>", "eval"),
                {"__builtins__": {}},
                {},
            )
        except Exception:
            return node
        return self._const(node, value)

    def visit_BinOp(self, node: ast.BinOp) -> ast.expr:
        node = self.generic_visit(node)
        if isinstance(node.left, ast.Constant) and isinstance(node.right, ast.Constant):
            return self._try_eval(node)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.expr:
        node = self.generic_visit(node)
        if isinstance(node.operand, ast.Constant):
            return self._try_eval(node)
        return node

    def visit_Compare(self, node: ast.Compare) -> ast.expr:
        node = self.generic_visit(node)
        if isinstance(node.left, ast.Constant) and all(
            isinstance(cmp, ast.Constant) for cmp in node.comparators
        ):
            return self._try_eval(node)
        return node

    def visit_BoolOp(self, node: ast.BoolOp) -> ast.expr:
        node = self.generic_visit(node)
        values = node.values
        if all(isinstance(v, ast.Constant) for v in values):
            return self._try_eval(node)
        # Short-circuit partial folding: `True and x` -> x, `False and x` -> False.
        if isinstance(values[0], ast.Constant):
            truthy = bool(values[0].value)
            if isinstance(node.op, ast.And):
                rest = values[1:] if truthy else []
                if not truthy:
                    return self._const(node, values[0].value)
            else:  # Or
                if truthy:
                    return self._const(node, values[0].value)
                rest = values[1:]
            if len(rest) == 1:
                return rest[0]
            if rest:
                return ast.copy_location(ast.BoolOp(node.op, rest), node)
        return node

    def visit_IfExp(self, node: ast.IfExp) -> ast.expr:
        node = self.generic_visit(node)
        if isinstance(node.test, ast.Constant):
            return node.body if node.test.value else node.orelse
        return node

    def visit_Call(self, node: ast.Call) -> ast.expr:
        node = self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self.funcs
            and not node.keywords
            and all(isinstance(arg, ast.Constant) for arg in node.args)
        ):
            try:
                value = self.funcs[node.func.id](*[arg.value for arg in node.args])
            except Exception:
                return node
            return self._const(node, value)
        return node

    def visit_If(self, node: ast.If) -> ast.stmt | list[ast.stmt]:
        node.test = self.visit(node.test)
        node.body = self._fold_body(node.body)
        node.orelse = self._fold_body(node.orelse)
        if isinstance(node.test, ast.Constant):
            taken = node.body if node.test.value else node.orelse
            return taken or [ast.copy_location(ast.Pass(), node)]
        return node

    def _fold_body(self, body: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in body:
            result = self.visit(stmt)
            if isinstance(result, list):
                out.extend(result)
            elif result is not None:
                out.append(result)
        return out


def fold_constants(
    stmts: list[ast.stmt],
    env: dict[str, object],
    funcs: dict[str, object] | None = None,
) -> list[ast.stmt]:
    """Fold constants through ``stmts`` given known name values.

    Names assigned anywhere in ``stmts`` are dropped from ``env`` first, so
    only genuinely constant names (decode-time format fields and literals)
    are propagated.
    """
    written = analyze_stmts(stmts).writes
    live_env = {k: v for k, v in env.items() if k not in written}
    folder = _Folder(live_env, funcs or {})
    out: list[ast.stmt] = []
    for stmt in stmts:
        copied = ast.parse(ast.unparse(stmt)).body[0]
        result = folder.visit(copied)
        if isinstance(result, list):
            out.extend(result)
        elif result is not None:
            out.append(ast.fix_missing_locations(result))
    return [s for s in out if not isinstance(s, ast.Pass)] or [ast.Pass()]


def propagate_constants(
    stmts: list[ast.stmt],
    env: dict[str, object],
    funcs: dict[str, object] | None = None,
    max_rounds: int = 4,
) -> tuple[list[ast.stmt], dict[str, object]]:
    """Iterated :func:`fold_constants` with discovery of derived constants.

    After each folding round, any name that is assigned exactly once, at
    the top level, from a constant (e.g. ``src1_id = 5`` once format fields
    folded) is promoted into the environment and propagated in the next
    round.  Returns the folded statements and the final environment, which
    the block translator uses to embed operand identifiers as literals.
    """
    env = dict(env)
    promoted_names: set[str] = set()
    current = stmts
    for _ in range(max_rounds):
        # Unlike fold_constants, keep promoted single-assignment names in
        # the environment even though they are written inside the snippet.
        written = analyze_stmts(current).writes - promoted_names
        live_env = {k: v for k, v in env.items() if k not in written}
        folder = _Folder(live_env, funcs or {})
        folded: list[ast.stmt] = []
        for stmt in current:
            copied = ast.parse(ast.unparse(stmt)).body[0]
            result = folder.visit(copied)
            if isinstance(result, list):
                folded.extend(result)
            elif result is not None:
                folded.append(ast.fix_missing_locations(result))
        current = [s for s in folded if not isinstance(s, ast.Pass)] or [ast.Pass()]
        write_counts: dict[str, int] = {}
        for stmt in current:
            for name in analyze_stmt(stmt).writes:
                write_counts[name] = write_counts.get(name, 0) + 1
        promoted = False
        for stmt in current:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
            ):
                name = stmt.targets[0].id
                if write_counts.get(name) == 1 and name not in env:
                    env[name] = stmt.value.value
                    promoted_names.add(name)
                    promoted = True
        if not promoted:
            break
    return current, env
