"""Recursive-descent parser for the LIS-like ADL.

Grammar (EBNF; ``SNIPPET`` is a ``%{ ... %}`` Python block)::

    file        := decl*
    decl        := isa | endian | ilen | include | regfile | sreg | field
                 | format | accessor | operandname | class | operand
                 | action | actions | instruction | group | predicate
                 | buildset
    isa         := "isa" IDENT ";"
    endian      := "endian" ("little" | "big") ";"
    ilen        := "ilen" NUMBER ";"
    include     := "include" STRING ";"
    regfile     := "regfile" IDENT NUMBER IDENT ";"
    sreg        := "sreg" IDENT IDENT ";"
    field       := "field" IDENT IDENT ";"
    format      := "format" IDENT "{" (IDENT "[" NUMBER ":" NUMBER "]"
                                       ["signed"] ";")* "}"
    accessor    := "accessor" IDENT "(" [IDENT ("," IDENT)*] ")"
                   "{" (("decode"|"read"|"write") SNIPPET)* "}"
    operandname := "operandname" IDENT ("source"|"dest")
                   "(" IDENT "," IDENT ")" "=" IDENT ";"
    class       := "class" IDENT ";"
    operand     := "operand" IDENT IDENT IDENT "(" [arg ("," arg)*] ")" ";"
    arg         := IDENT | NUMBER
    action      := "action" (IDENT | "*") "@" IDENT "=" SNIPPET
    actions     := "actions" IDENT ("," IDENT)* ";"
    instruction := "instruction" IDENT "format" IDENT [":" IDENT ("," IDENT)*]
                   "{" ("match" IDENT "==" NUMBER ("," IDENT "==" NUMBER)* ";")* "}"
    group       := "group" IDENT "=" IDENT ("," IDENT)* ";"
    predicate   := "predicate" IDENT "after" IDENT ";"
    buildset    := "buildset" IDENT "{" bstmt* "}"
    bstmt       := "speculation" ("on"|"off") ";"
                 | "visibility" ("show"|"hide") ("all" | IDENT ("," IDENT)*) ";"
                 | "entrypoint" ["block"] IDENT "=" IDENT ("," IDENT)* ";"

``include`` paths are resolved relative to the including file by
:func:`parse_files`.
"""

from __future__ import annotations

import os

from repro.adl import syntax as syn
from repro.adl.errors import ParseError, SourceLoc
from repro.adl.lexer import Token, TokKind, tokenize


class Parser:
    """Parses one token stream into a list of declarations."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token-stream helpers ---------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokKind.EOF:
            self._index += 1
        return token

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind is TokKind.PUNCT and token.text == text

    def _at_ident(self, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind is not TokKind.IDENT:
            return False
        return text is None or token.text == text

    def _expect_punct(self, text: str) -> Token:
        token = self._next()
        if token.kind is not TokKind.PUNCT or token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.loc)
        return token

    def _expect_ident(self, what: str = "identifier") -> Token:
        token = self._next()
        if token.kind is not TokKind.IDENT:
            raise ParseError(f"expected {what}, found {token.text!r}", token.loc)
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if token.kind is not TokKind.IDENT or token.text != word:
            raise ParseError(f"expected {word!r}, found {token.text!r}", token.loc)
        return token

    def _expect_number(self) -> Token:
        token = self._next()
        if token.kind is not TokKind.NUMBER:
            raise ParseError(f"expected number, found {token.text!r}", token.loc)
        return token

    def _expect_snippet(self) -> Token:
        token = self._next()
        if token.kind is not TokKind.SNIPPET:
            raise ParseError(
                f"expected %{{ ... %}} snippet, found {token.text!r}", token.loc
            )
        return token

    def _ident_list(self) -> tuple[str, ...]:
        names = [self._expect_ident().text]
        while self._at_punct(","):
            self._next()
            names.append(self._expect_ident().text)
        return tuple(names)

    # -- declarations -----------------------------------------------------

    def parse_file(self) -> list[syn.Decl]:
        decls: list[syn.Decl] = []
        while self._peek().kind is not TokKind.EOF:
            decls.append(self._parse_decl())
        return decls

    def _parse_decl(self) -> syn.Decl:
        token = self._peek()
        if token.kind is not TokKind.IDENT:
            raise ParseError(f"expected declaration, found {token.text!r}", token.loc)
        handler = getattr(self, f"_parse_{token.text}", None)
        if handler is None:
            raise ParseError(f"unknown declaration {token.text!r}", token.loc)
        return handler()

    def _parse_isa(self) -> syn.IsaDecl:
        loc = self._next().loc
        name = self._expect_ident("ISA name").text
        self._expect_punct(";")
        return syn.IsaDecl(loc, name)

    def _parse_endian(self) -> syn.EndianDecl:
        loc = self._next().loc
        token = self._expect_ident("'little' or 'big'")
        if token.text not in ("little", "big"):
            raise ParseError(f"endian must be little or big, got {token.text!r}", token.loc)
        self._expect_punct(";")
        return syn.EndianDecl(loc, token.text)

    def _parse_ilen(self) -> syn.IlenDecl:
        loc = self._next().loc
        value = self._expect_number().value
        self._expect_punct(";")
        return syn.IlenDecl(loc, int(value))

    def _parse_include(self) -> syn.IncludeDecl:
        loc = self._next().loc
        token = self._next()
        if token.kind is not TokKind.STRING:
            raise ParseError("include expects a quoted path", token.loc)
        self._expect_punct(";")
        return syn.IncludeDecl(loc, token.text)

    def _parse_regfile(self) -> syn.RegfileDecl:
        loc = self._next().loc
        name = self._expect_ident("register file name").text
        count = int(self._expect_number().value)
        type_name = self._expect_ident("register type").text
        self._expect_punct(";")
        return syn.RegfileDecl(loc, name, count, type_name)

    def _parse_sreg(self) -> syn.SregDecl:
        loc = self._next().loc
        name = self._expect_ident("special register name").text
        type_name = self._expect_ident("register type").text
        self._expect_punct(";")
        return syn.SregDecl(loc, name, type_name)

    def _parse_field(self) -> syn.FieldDecl:
        loc = self._next().loc
        name = self._expect_ident("field name").text
        type_name = self._expect_ident("field type").text
        self._expect_punct(";")
        return syn.FieldDecl(loc, name, type_name)

    def _parse_format(self) -> syn.FormatDecl:
        loc = self._next().loc
        name = self._expect_ident("format name").text
        self._expect_punct("{")
        bitfields: list[syn.BitfieldDecl] = []
        while not self._at_punct("}"):
            bf_name_tok = self._expect_ident("bitfield name")
            self._expect_punct("[")
            hi = int(self._expect_number().value)
            self._expect_punct(":")
            lo = int(self._expect_number().value)
            self._expect_punct("]")
            signed = False
            if self._at_ident("signed"):
                self._next()
                signed = True
            self._expect_punct(";")
            if hi < lo:
                raise ParseError(
                    f"bitfield {bf_name_tok.text} has hi < lo", bf_name_tok.loc
                )
            bitfields.append(
                syn.BitfieldDecl(bf_name_tok.text, hi, lo, signed, bf_name_tok.loc)
            )
        self._expect_punct("}")
        return syn.FormatDecl(loc, name, tuple(bitfields))

    def _parse_accessor(self) -> syn.AccessorDecl:
        loc = self._next().loc
        name = self._expect_ident("accessor name").text
        self._expect_punct("(")
        params: list[str] = []
        if not self._at_punct(")"):
            params.extend(self._ident_list())
        self._expect_punct(")")
        self._expect_punct("{")
        parts: dict[str, str] = {}
        while not self._at_punct("}"):
            kind_tok = self._expect_ident("'decode', 'read' or 'write'")
            if kind_tok.text not in ("decode", "read", "write"):
                raise ParseError(
                    f"unexpected accessor section {kind_tok.text!r}", kind_tok.loc
                )
            if kind_tok.text in parts:
                raise ParseError(
                    f"duplicate accessor section {kind_tok.text!r}", kind_tok.loc
                )
            parts[kind_tok.text] = self._expect_snippet().text
        self._expect_punct("}")
        return syn.AccessorDecl(
            loc,
            name,
            tuple(params),
            parts.get("decode"),
            parts.get("read"),
            parts.get("write"),
        )

    def _parse_operandname(self) -> syn.OperandNameDecl:
        loc = self._next().loc
        name = self._expect_ident("operand slot name").text
        dir_tok = self._expect_ident("'source' or 'dest'")
        if dir_tok.text not in ("source", "dest"):
            raise ParseError(
                f"operand direction must be source or dest, got {dir_tok.text!r}",
                dir_tok.loc,
            )
        self._expect_punct("(")
        decode_action = self._expect_ident("decode action name").text
        self._expect_punct(",")
        access_action = self._expect_ident("access action name").text
        self._expect_punct(")")
        self._expect_punct("=")
        value_field = self._expect_ident("value field name").text
        self._expect_punct(";")
        return syn.OperandNameDecl(
            loc, name, dir_tok.text, decode_action, access_action, value_field
        )

    def _parse_class(self) -> syn.ClassDecl:
        loc = self._next().loc
        name = self._expect_ident("class name").text
        self._expect_punct(";")
        return syn.ClassDecl(loc, name)

    def _parse_operand(self) -> syn.OperandAttachDecl:
        loc = self._next().loc
        target = self._expect_ident("class or instruction name").text
        opname = self._expect_ident("operand slot name").text
        accessor = self._expect_ident("accessor name").text
        self._expect_punct("(")
        args: list[object] = []
        if not self._at_punct(")"):
            while True:
                token = self._next()
                if token.kind is TokKind.IDENT:
                    args.append(token.text)
                elif token.kind is TokKind.NUMBER:
                    args.append(int(token.value))
                else:
                    raise ParseError(
                        "operand arguments must be identifiers or numbers", token.loc
                    )
                if not self._at_punct(","):
                    break
                self._next()
        self._expect_punct(")")
        self._expect_punct(";")
        return syn.OperandAttachDecl(loc, target, opname, accessor, tuple(args))

    def _parse_action(self) -> syn.ActionDecl:
        loc = self._next().loc
        if self._at_punct("*"):
            target = self._next().text
        else:
            target = self._expect_ident("class or instruction name").text
        self._expect_punct("@")
        action = self._expect_ident("action name").text
        self._expect_punct("=")
        snippet_tok = self._expect_snippet()
        return syn.ActionDecl(loc, target, action, snippet_tok.text, snippet_tok.loc)

    def _parse_helper(self) -> syn.HelperDecl:
        loc = self._next().loc
        name = self._expect_ident("helper function name").text
        self._expect_punct("=")
        snippet_tok = self._expect_snippet()
        return syn.HelperDecl(loc, name, snippet_tok.text, snippet_tok.loc)

    def _parse_actions(self) -> syn.ActionsOrderDecl:
        loc = self._next().loc
        names = self._ident_list()
        self._expect_punct(";")
        return syn.ActionsOrderDecl(loc, names)

    def _parse_instruction(self) -> syn.InstructionDecl:
        loc = self._next().loc
        name = self._expect_ident("instruction name").text
        self._expect_keyword("format")
        format_name = self._expect_ident("format name").text
        classes: tuple[str, ...] = ()
        if self._at_punct(":"):
            self._next()
            classes = self._ident_list()
        self._expect_punct("{")
        alternatives: list[tuple[syn.MatchTerm, ...]] = []
        while not self._at_punct("}"):
            self._expect_keyword("match")
            terms: list[syn.MatchTerm] = []
            while True:
                field_tok = self._expect_ident("bitfield name")
                self._expect_punct("==")
                value = int(self._expect_number().value)
                terms.append(syn.MatchTerm(field_tok.text, value, field_tok.loc))
                if not self._at_punct(","):
                    break
                self._next()
            self._expect_punct(";")
            alternatives.append(tuple(terms))
        self._expect_punct("}")
        return syn.InstructionDecl(
            loc, name, format_name, classes, tuple(alternatives)
        )

    def _parse_group(self) -> syn.GroupDecl:
        loc = self._next().loc
        name = self._expect_ident("group name").text
        self._expect_punct("=")
        names = self._ident_list()
        self._expect_punct(";")
        return syn.GroupDecl(loc, name, names)

    def _parse_predicate(self) -> syn.PredicateDecl:
        loc = self._next().loc
        field_name = self._expect_ident("predicate field").text
        self._expect_keyword("after")
        action = self._expect_ident("action name").text
        self._expect_punct(";")
        return syn.PredicateDecl(loc, field_name, action)

    def _parse_buildset(self) -> syn.BuildsetDecl:
        loc = self._next().loc
        name = self._expect_ident("buildset name").text
        self._expect_punct("{")
        statements: list[syn.BuildsetStmt] = []
        while not self._at_punct("}"):
            statements.append(self._parse_buildset_stmt())
        self._expect_punct("}")
        return syn.BuildsetDecl(loc, name, tuple(statements))

    def _parse_buildset_stmt(self) -> syn.BuildsetStmt:
        token = self._expect_ident("buildset statement")
        if token.text == "speculation":
            mode = self._expect_ident("'on' or 'off'")
            if mode.text not in ("on", "off"):
                raise ParseError("speculation must be on or off", mode.loc)
            self._expect_punct(";")
            return syn.SpeculationStmt(token.loc, mode.text == "on")
        if token.text == "visibility":
            mode = self._expect_ident("'show' or 'hide'")
            if mode.text not in ("show", "hide"):
                raise ParseError("visibility must be show or hide", mode.loc)
            if self._at_ident("all"):
                self._next()
                names: tuple[str, ...] = ()
            else:
                names = self._ident_list()
            self._expect_punct(";")
            return syn.VisibilityStmt(token.loc, mode.text, names)
        if token.text == "entrypoint":
            block = False
            if self._at_ident("block"):
                self._next()
                block = True
            name = self._expect_ident("entrypoint name").text
            self._expect_punct("=")
            actions = self._ident_list()
            self._expect_punct(";")
            return syn.EntrypointStmt(token.loc, name, block, actions)
        raise ParseError(f"unknown buildset statement {token.text!r}", token.loc)


def parse_source(source: str, filename: str = "<adl>") -> list[syn.Decl]:
    """Parse one ADL source string into declarations (no include handling)."""
    return Parser(tokenize(source, filename)).parse_file()


def parse_files(paths: list[str]) -> list[syn.Decl]:
    """Parse several files in order, expanding ``include`` declarations.

    Later declarations override earlier ones during analysis, so the order
    of ``paths`` matters: ISA description first, then OS/buildset overlays.
    """
    decls: list[syn.Decl] = []
    seen: set[str] = set()

    def load(path: str) -> None:
        real = os.path.realpath(path)
        if real in seen:
            return
        seen.add(real)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        for decl in parse_source(source, path):
            if isinstance(decl, syn.IncludeDecl):
                load(os.path.join(os.path.dirname(path), decl.path))
            else:
                decls.append(decl)

    for path in paths:
        load(path)
    return decls
