"""Tokenizer for the LIS-like ADL.

The language is deliberately C-flavoured (the original LIS embeds C++
snippets; ours embeds Python snippets inside ``%{ ... %}``).  Comments are
``//`` to end of line and ``/* ... */`` blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.adl.errors import LexError, SourceLoc


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SNIPPET = "snippet"  # raw Python text captured from %{ ... %}
    PUNCT = "punct"
    EOF = "eof"


# Multi-character punctuators must come first so maximal munch applies.
_PUNCTS = ("==", ";", ",", "(", ")", "{", "}", "[", "]", ":", "=", "@", "*", ".")


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    loc: SourceLoc
    value: int | None = None  # numeric value for NUMBER tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}@{self.loc})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Streaming tokenizer over one source string."""

    def __init__(self, source: str, filename: str = "<adl>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def loc(self) -> SourceLoc:
        return SourceLoc(self.filename, self.line, self.col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self.pos):
                start = self.loc()
                self._advance(2)
                while self.pos < len(src) and not src.startswith("*/", self.pos):
                    self._advance()
                if self.pos >= len(src):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def _lex_snippet(self) -> Token:
        start = self.loc()
        self._advance(2)  # consume %{
        begin = self.pos
        depth = 1
        src = self.source
        while self.pos < len(src):
            if src.startswith("%{", self.pos):
                depth += 1
                self._advance(2)
            elif src.startswith("%}", self.pos):
                depth -= 1
                if depth == 0:
                    text = src[begin : self.pos]
                    self._advance(2)
                    return Token(TokKind.SNIPPET, text, start)
                self._advance(2)
            else:
                self._advance()
        raise LexError("unterminated %{ snippet", start)

    def _lex_number(self) -> Token:
        start = self.loc()
        begin = self.pos
        src = self.source
        if src.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF_":
                self._advance()
            text = src[begin : self.pos]
            if len(text) == 2:
                raise LexError("hexadecimal literal has no digits", start)
            return Token(TokKind.NUMBER, text, start, value=int(text, 16))
        if src.startswith(("0b", "0B"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "01_":
                self._advance()
            text = src[begin : self.pos]
            if len(text) == 2:
                raise LexError("binary literal has no digits", start)
            return Token(TokKind.NUMBER, text, start, value=int(text, 2))
        while self.pos < len(src) and src[self.pos].isdigit():
            self._advance()
        text = src[begin : self.pos]
        return Token(TokKind.NUMBER, text, start, value=int(text))

    def _lex_string(self) -> Token:
        start = self.loc()
        self._advance()  # opening quote
        begin = self.pos
        src = self.source
        while self.pos < len(src) and src[self.pos] != '"':
            if src[self.pos] == "\n":
                raise LexError("unterminated string literal", start)
            self._advance()
        if self.pos >= len(src):
            raise LexError("unterminated string literal", start)
        text = src[begin : self.pos]
        self._advance()  # closing quote
        return Token(TokKind.STRING, text, start)

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokKind.EOF, "", self.loc())
        src = self.source
        ch = src[self.pos]
        if src.startswith("%{", self.pos):
            return self._lex_snippet()
        if _is_ident_start(ch):
            start = self.loc()
            begin = self.pos
            while self.pos < len(src) and _is_ident_char(src[self.pos]):
                self._advance()
            return Token(TokKind.IDENT, src[begin : self.pos], start)
        if ch.isdigit():
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        for punct in _PUNCTS:
            if src.startswith(punct, self.pos):
                start = self.loc()
                self._advance(len(punct))
                return Token(TokKind.PUNCT, punct, start)
        raise LexError(f"unexpected character {ch!r}", self.loc())


def tokenize(source: str, filename: str = "<adl>") -> list[Token]:
    """Tokenize an entire source string (EOF token included)."""
    lexer = Lexer(source, filename)
    tokens: list[Token] = []
    while True:
        token = lexer.next_token()
        tokens.append(token)
        if token.kind is TokKind.EOF:
            return tokens
