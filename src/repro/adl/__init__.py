"""LIS-like Architecture Description Language front end.

Typical use::

    from repro.adl import load_isa
    spec = load_isa(["alpha.lis", "alpha_os.lis", "alpha_buildsets.lis"])
"""

from repro.adl.analyzer import analyze
from repro.adl.errors import (
    ADLError,
    AnalysisError,
    LexError,
    ParseError,
    SnippetError,
    SourceLoc,
)
from repro.adl.parser import parse_files, parse_source
from repro.adl.spec import (
    ALWAYS_VISIBLE,
    BUILTIN_FIELDS,
    Buildset,
    Entrypoint,
    Field,
    Instruction,
    IsaSpec,
)


def load_isa(paths: list[str]) -> IsaSpec:
    """Parse and analyze a list of ADL files (later files may override)."""
    return analyze(parse_files(list(paths)))


def load_isa_source(source: str, filename: str = "<adl>") -> IsaSpec:
    """Parse and analyze a single ADL source string."""
    return analyze(parse_source(source, filename))


__all__ = [
    "ADLError",
    "ALWAYS_VISIBLE",
    "AnalysisError",
    "BUILTIN_FIELDS",
    "Buildset",
    "Entrypoint",
    "Field",
    "Instruction",
    "IsaSpec",
    "LexError",
    "ParseError",
    "SnippetError",
    "SourceLoc",
    "analyze",
    "load_isa",
    "load_isa_source",
    "parse_files",
    "parse_source",
]
