"""Syntax tree for the LIS-like ADL (pre-analysis declarations).

The parser produces these records verbatim from the source; name
resolution, overriding, and consistency checks happen later in
:mod:`repro.adl.analyzer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.errors import SourceLoc


@dataclass(frozen=True)
class Decl:
    """Base class for top-level declarations."""

    loc: SourceLoc


@dataclass(frozen=True)
class IsaDecl(Decl):
    name: str


@dataclass(frozen=True)
class EndianDecl(Decl):
    value: str  # "little" | "big"


@dataclass(frozen=True)
class IlenDecl(Decl):
    value: int  # instruction length in bytes


@dataclass(frozen=True)
class IncludeDecl(Decl):
    path: str


@dataclass(frozen=True)
class RegfileDecl(Decl):
    name: str
    count: int
    type: str


@dataclass(frozen=True)
class SregDecl(Decl):
    name: str
    type: str


@dataclass(frozen=True)
class FieldDecl(Decl):
    name: str
    type: str


@dataclass(frozen=True)
class BitfieldDecl:
    name: str
    hi: int
    lo: int
    signed: bool
    loc: SourceLoc


@dataclass(frozen=True)
class FormatDecl(Decl):
    name: str
    bitfields: tuple[BitfieldDecl, ...]


@dataclass(frozen=True)
class AccessorDecl(Decl):
    name: str
    params: tuple[str, ...]
    decode: str | None
    read: str | None
    write: str | None


@dataclass(frozen=True)
class OperandNameDecl(Decl):
    name: str
    direction: str  # "source" | "dest"
    decode_action: str
    access_action: str
    value_field: str


@dataclass(frozen=True)
class ClassDecl(Decl):
    name: str


@dataclass(frozen=True)
class OperandAttachDecl(Decl):
    target: str  # class or instruction name
    opname: str
    accessor: str
    args: tuple[object, ...]  # identifiers (str) or integer literals


@dataclass(frozen=True)
class ActionDecl(Decl):
    target: str  # class name, instruction name, or "*"
    action: str
    snippet: str
    snippet_loc: SourceLoc


@dataclass(frozen=True)
class ActionsOrderDecl(Decl):
    names: tuple[str, ...]


@dataclass(frozen=True)
class HelperDecl(Decl):
    """A pure Python helper function usable from snippets.

    The snippet must define a function whose name matches ``name``; it is
    executed once at synthesis time and bound into generated modules.
    """

    name: str
    snippet: str
    snippet_loc: SourceLoc


@dataclass(frozen=True)
class MatchTerm:
    field: str
    value: int
    loc: SourceLoc


@dataclass(frozen=True)
class InstructionDecl(Decl):
    name: str
    format: str
    classes: tuple[str, ...]
    #: decode alternatives (OR); the terms within one alternative AND
    matches: tuple[tuple[MatchTerm, ...], ...]


@dataclass(frozen=True)
class GroupDecl(Decl):
    name: str
    actions: tuple[str, ...]


@dataclass(frozen=True)
class PredicateDecl(Decl):
    field: str
    after_action: str


@dataclass(frozen=True)
class BuildsetStmt:
    loc: SourceLoc


@dataclass(frozen=True)
class SpeculationStmt(BuildsetStmt):
    enabled: bool


@dataclass(frozen=True)
class VisibilityStmt(BuildsetStmt):
    mode: str  # "show" | "hide"
    names: tuple[str, ...]  # empty tuple means "all"


@dataclass(frozen=True)
class EntrypointStmt(BuildsetStmt):
    name: str
    block: bool
    actions: tuple[str, ...]


@dataclass(frozen=True)
class BuildsetDecl(Decl):
    name: str
    statements: tuple[BuildsetStmt, ...] = field(default_factory=tuple)
