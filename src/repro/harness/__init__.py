"""Measurement harness: regenerates every table and figure of the paper."""

from repro.harness.hostops import CostsOfDetail, hostops_per_instruction, table3
from repro.harness.loc import IsaCharacteristics, count_adl_lines, table1
from repro.harness.speed import (
    DEFAULT_KERNELS,
    INTERFACE_GRID,
    SpeedMeasurement,
    bench_scale,
    measure_buildset,
    measure_interpreter,
    table2,
)
from repro.harness.tables import render_table

__all__ = [
    "CostsOfDetail",
    "DEFAULT_KERNELS",
    "INTERFACE_GRID",
    "IsaCharacteristics",
    "SpeedMeasurement",
    "bench_scale",
    "count_adl_lines",
    "hostops_per_instruction",
    "measure_buildset",
    "measure_interpreter",
    "render_table",
    "table1",
    "table2",
    "table3",
]
