"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations


def render_table(
    title: str,
    headers: list[str],
    rows: list[list[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Fixed-width ASCII table, paper-style."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)
