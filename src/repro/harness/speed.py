"""Table II: simulation speed (MIPS) per interface per ISA.

The paper reports the geometric mean of speed over six SPEC CPU2000int
benchmarks; we report the geometric mean over the kernel suite at a
configurable scale (absolute guest instruction counts are far smaller —
CPython vs a 2 GHz Opteron — but the table's *shape* is the target).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize
from repro.synth.interp import InterpretedSimulator
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads import SUITE, assemble_kernel

#: the paper's twelve interfaces (semantic / informational / speculation)
INTERFACE_GRID: tuple[tuple[str, str, str, str], ...] = (
    ("block_min", "Block", "Min", "No"),
    ("block_decode", "Block", "Decode", "No"),
    ("block_decode_spec", "Block", "Decode", "Yes"),
    ("block_all", "Block", "All", "No"),
    ("block_all_spec", "Block", "All", "Yes"),
    ("one_min", "One", "Min", "No"),
    ("one_decode", "One", "Decode", "No"),
    ("one_decode_spec", "One", "Decode", "Yes"),
    ("one_all", "One", "All", "No"),
    ("one_all_spec", "One", "All", "Yes"),
    ("step_all", "Step", "All", "No"),
    ("step_all_spec", "Step", "All", "Yes"),
)

DEFAULT_KERNELS = ("checksum", "fib", "sieve", "strsearch", "bitcount", "memcopy")


def bench_scale() -> float:
    """Workload scale factor, settable via REPRO_BENCH_SCALE.

    The default keeps the full benchmark suite around five minutes on a
    laptop; raise it for more stable numbers.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_reps() -> int:
    """Timed repetitions per kernel, settable via REPRO_BENCH_REPS."""
    return max(1, int(os.environ.get("REPRO_BENCH_REPS", "2")))


@dataclass
class SpeedMeasurement:
    isa: str
    buildset: str
    mips: float
    instructions: int
    elapsed: float
    #: per-repetition geomean MIPS across the kernels; the headline
    #: ``mips`` is best-of-reps per kernel, the samples let consumers
    #: (``repro bench diff``) pick the least-disturbed repetition
    samples: tuple[float, ...] = ()


def _measure_one(
    sim_factory, isa: str, kernels, scale: float
) -> tuple[float, int, float, tuple[float, ...]]:
    """Geomean MIPS over kernels; returns (mips, instrs, seconds, samples).

    Each kernel is run once to warm translation caches, then re-run from a
    snapshot for the timed measurement.  The paper measures over the first
    4 billion instructions, where one-time translation cost is fully
    amortized; the warm run reproduces that steady state at our scale
    (Table III accounts for translation cost explicitly instead).
    """
    bundle = get_bundle(isa)
    reps = bench_reps()
    rates: list[float] = []
    #: per-repetition, per-kernel instruction rates
    rep_rates: list[list[float]] = [[] for _ in range(reps)]
    total_instructions = 0
    total_elapsed = 0.0
    for name in kernels:
        spec = SUITE[name]
        n = max(2, int(spec.bench_n * scale))
        if name == "listsum":
            while math.gcd(n, 7) != 1:
                n += 1
        image = assemble_kernel(isa, spec, n)
        os_emu = OSEmulator(bundle.abi)
        sim = sim_factory(os_emu)
        load_image(sim.state, image, bundle.abi)
        snapshot = sim.state.snapshot()
        warm = sim.run(200_000_000)  # warm run: translation happens here
        if not warm.exited:
            raise RuntimeError(f"{isa}/{name}: did not finish")
        best_rate = 0.0
        for rep in range(reps):  # best-of-reps to damp scheduler noise
            sim.state.restore(snapshot)
            start = time.perf_counter()
            result = sim.run(200_000_000)
            elapsed = time.perf_counter() - start
            if not result.exited:
                raise RuntimeError(f"{isa}/{name}: did not finish (timed run)")
            rate = result.executed / max(elapsed, 1e-9)
            best_rate = max(best_rate, rate)
            rep_rates[rep].append(rate)
            total_instructions += result.executed
            total_elapsed += elapsed
        rates.append(best_rate)
    geomean = math.exp(sum(math.log(rate) for rate in rates) / len(rates))
    samples = tuple(
        math.exp(sum(math.log(r) for r in row) / len(row)) / 1e6
        for row in rep_rates
        if row
    )
    return geomean / 1e6, total_instructions, total_elapsed, samples


def measure_buildset(
    isa: str,
    buildset: str,
    kernels=DEFAULT_KERNELS,
    scale: float | None = None,
    options: SynthOptions | None = None,
) -> SpeedMeasurement:
    """MIPS of one synthesized interface on one ISA."""
    scale = bench_scale() if scale is None else scale
    generated = synthesize(get_bundle(isa).load_spec(), buildset, options)
    mips, instructions, elapsed, samples = _measure_one(
        lambda os_emu: generated.make(syscall_handler=os_emu), isa, kernels, scale
    )
    return SpeedMeasurement(isa, buildset, mips, instructions, elapsed, samples)


def measure_interpreter(
    isa: str,
    buildset: str = "one_min",
    kernels=DEFAULT_KERNELS,
    scale: float | None = None,
) -> SpeedMeasurement:
    """MIPS of the interpreted execution style (footnote 5)."""
    scale = bench_scale() if scale is None else scale
    spec = get_bundle(isa).load_spec()
    mips, instructions, elapsed, samples = _measure_one(
        lambda os_emu: InterpretedSimulator(spec, buildset, syscall_handler=os_emu),
        isa,
        kernels,
        scale,
    )
    return SpeedMeasurement(
        isa, f"interp:{buildset}", mips, instructions, elapsed, samples
    )


def table2(
    isas=("alpha", "arm", "ppc"),
    kernels=DEFAULT_KERNELS,
    scale: float | None = None,
    buildsets=None,
) -> dict[tuple[str, str], SpeedMeasurement]:
    """The full Table II grid: {(buildset, isa): measurement}.

    ``buildsets`` restricts the grid to a subset of interfaces (CI's
    smoke job measures just ``block_min``/``one_min`` at tiny scale).
    """
    out: dict[tuple[str, str], SpeedMeasurement] = {}
    rows = INTERFACE_GRID if buildsets is None else tuple(
        row for row in INTERFACE_GRID if row[0] in buildsets
    )
    for buildset, *_ in rows:
        for isa in isas:
            out[(buildset, isa)] = measure_buildset(isa, buildset, kernels, scale)
    return out
