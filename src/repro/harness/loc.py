"""Table I: instruction-set characteristics.

The paper reports lines of LIS code (excluding comments and blank lines)
for the ISA description, OS/simulator support, and buildsets, plus the
approximate instruction count.  We measure the same statistics from our
ADL description files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.base import IsaBundle, get_bundle

_LINE_COMMENT = re.compile(r"//.*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.S)


def count_adl_lines(path: str) -> int:
    """Non-comment, non-blank lines of one ADL file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    source = _BLOCK_COMMENT.sub("", source)
    count = 0
    for line in source.splitlines():
        line = _LINE_COMMENT.sub("", line).strip()
        if line:
            count += 1
    return count


@dataclass
class IsaCharacteristics:
    """One column of Table I."""

    isa: str
    isa_description_lines: int
    os_support_lines: int
    buildset_lines: int
    buildsets: int
    lines_per_buildset: float
    instructions: int

    @classmethod
    def measure(cls, isa: str) -> "IsaCharacteristics":
        bundle: IsaBundle = get_bundle(isa)
        spec = bundle.load_spec()
        isa_path, os_path, buildset_path = bundle.description_paths()
        buildset_lines = count_adl_lines(buildset_path)
        n_buildsets = len(spec.buildsets)
        return cls(
            isa=isa,
            isa_description_lines=count_adl_lines(isa_path),
            os_support_lines=count_adl_lines(os_path),
            buildset_lines=buildset_lines,
            buildsets=n_buildsets,
            lines_per_buildset=buildset_lines / n_buildsets if n_buildsets else 0.0,
            instructions=len(spec.instructions),
        )


def table1(isas: tuple[str, ...] = ("alpha", "arm", "ppc")) -> list[IsaCharacteristics]:
    return [IsaCharacteristics.measure(isa) for isa in isas]
