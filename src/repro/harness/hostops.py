"""Table III: costs of detail in host operations per simulated instruction.

The paper counts host instructions; our host is the CPython VM, so the
unit is executed Python bytecode operations, measured by profile builds
(static bytecode length of each generated callable weighted by its
dynamic invocation count, plus calibrated costs for the memory
primitives, plus amortized block-translation cost).  The table's derived
rows match the paper's: a base cost (One/Min/No) and incremental costs of
decode information, full information, block-call batching (negative:
block interfaces are cheaper), multiple calls per instruction, and
speculation support.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads import SUITE, assemble_kernel

PROFILE_KERNELS = ("checksum", "sieve", "memcopy")


def hostops_per_instruction(
    isa: str,
    buildset: str,
    kernels=PROFILE_KERNELS,
    scale: float = 1.0,
    options: SynthOptions | None = None,
) -> float:
    """Mean host ops per simulated instruction over the given kernels."""
    bundle = get_bundle(isa)
    if options is None:
        options = SynthOptions(profile=True)
    generated = synthesize(bundle.load_spec(), buildset, options)
    total_ops = 0
    total_instructions = 0
    for name in kernels:
        spec = SUITE[name]
        n = max(2, int(spec.test_n * scale))
        if name == "listsum":
            while math.gcd(n, 7) != 1:
                n += 1
        image = assemble_kernel(isa, spec, n)
        os_emu = OSEmulator(bundle.abi)
        sim = generated.make(syscall_handler=os_emu)
        load_image(sim.state, image, bundle.abi)
        result = sim.run(50_000_000)
        if not result.exited:
            raise RuntimeError(f"{isa}/{name}: did not finish")
        total_ops += sim.hostops
        total_instructions += result.executed
    return total_ops / total_instructions


@dataclass
class CostsOfDetail:
    """One column of Table III."""

    isa: str
    base: float  # One/Min/No
    incr_decode_info: float
    incr_full_info: float
    incr_block_call: float  # negative: batching wins
    incr_multiple_calls: float
    incr_speculation: float

    @classmethod
    def measure(cls, isa: str, kernels=PROFILE_KERNELS, scale: float = 1.0):
        cost = {
            name: hostops_per_instruction(isa, name, kernels, scale)
            for name in (
                "one_min",
                "one_decode",
                "one_all",
                "one_all_spec",
                "block_min",
                "step_all",
            )
        }
        return cls(
            isa=isa,
            base=cost["one_min"],
            incr_decode_info=cost["one_decode"] - cost["one_min"],
            incr_full_info=cost["one_all"] - cost["one_min"],
            incr_block_call=cost["block_min"] - cost["one_min"],
            incr_multiple_calls=cost["step_all"] - cost["one_all"],
            incr_speculation=cost["one_all_spec"] - cost["one_all"],
        )


def table3(isas=("alpha", "arm", "ppc"), scale: float | None = None):
    if scale is None:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return [CostsOfDetail.measure(isa, scale=scale) for isa in isas]
