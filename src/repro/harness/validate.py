"""Rotating-interface validation (paper §V-D), as a reusable utility.

"We then validated all the interfaces by running all the benchmarks,
calling the interfaces on a rotating basis; each dynamic instruction or
basic block used a different interface than the previous one.  This
procedure ensured the validity of all of the interfaces without
requiring a complete validation run per interface."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.faults import ExitProgram
from repro.adl.spec import IsaSpec
from repro.synth import SynthOptions, synthesize


@dataclass
class RotationResult:
    """Outcome of one rotating-validation run."""

    executed: int
    exited: bool
    exit_status: int | None
    interfaces_used: tuple[str, ...]
    calls_per_interface: dict[str, int]
    state: object = None  # the shared final ArchState


def rotate_interfaces(
    spec: IsaSpec,
    buildset_names: list[str],
    setup,
    syscall_handler=None,
    max_instructions: int = 10_000_000,
    options: SynthOptions | None = None,
) -> RotationResult:
    """Run one program, switching interfaces every call.

    ``setup(state)`` loads the program into the shared architectural
    state.  Each interface call (one instruction for One/Step detail,
    one basic block for Block detail) uses the next buildset in the
    rotation — all simulators share one :class:`ArchState`, exactly the
    paper's procedure.
    """
    if not buildset_names:
        raise ValueError("need at least one buildset to rotate")
    state = spec.make_state()
    setup(state)
    sims = []
    for name in buildset_names:
        generated = synthesize(spec, name, options)
        sims.append(generated.make(state=state, syscall_handler=syscall_handler))

    executed = 0
    exited = False
    status = None
    calls = {name: 0 for name in buildset_names}
    index = 0
    try:
        while executed < max_instructions:
            sim = sims[index % len(sims)]
            calls[buildset_names[index % len(sims)]] += 1
            index += 1
            detail = sim.buildset.semantic_detail
            if detail == "block":
                sim.di.count = 0
                sim.do_block(sim.di)
                executed += sim.di.count
            elif detail == "one":
                getattr(sim, sim.entry_names[0])(sim.di)
                executed += 1
            else:
                for entry_name in sim.entry_names:
                    getattr(sim, entry_name)(sim.di)
                executed += 1
    except ExitProgram as exc:
        exited = True
        status = exc.status
        last = sims[(index - 1) % len(sims)]
        executed += last.di.count if last.buildset.semantic_detail == "block" else 1
    return RotationResult(
        executed=executed,
        exited=exited,
        exit_status=status,
        interfaces_used=tuple(buildset_names),
        calls_per_interface=calls,
        state=state,
    )
