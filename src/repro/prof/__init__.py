"""Profiling and tracing: where the host's time goes, per guest cause.

The observability subsystem (:mod:`repro.obs`) counts *how often*
mechanisms fire; this sibling answers *how long they take* and *which
guest code is hot* — the attribution the paper's Tables II/III argue
from.  Same contract as every layer it watches: the enabled and
disabled variants are selected at synthesis/construction time
(``obs.prof`` is either a live :class:`Profiler` or the shared
:data:`NULL_PROF`), never tested per event, and ``repro check``'s
residue pass proves the off state leaves no bytecode behind.

Layers:

* :mod:`repro.prof.spans` — nested wall-clock span tracing
  (translate / execute / chain_patch / syscall / rollback /
  timing_model) aggregated into a self/total span tree;
* :mod:`repro.prof.guest` — guest attribution: per-translated-unit
  timing, synthesized per-PC probes, a background PC sampler, and an
  optional ``sys.setprofile`` host-call mode;
* :mod:`repro.prof.export` — Chrome Trace Event JSON, folded stacks
  for ``flamegraph.pl``, report documents and text rendering;
* :mod:`repro.prof.bench` — ``BENCH_*.json`` regression diffing and
  the bench trajectory (``repro bench diff`` / ``repro bench trail``).
"""

from repro.prof.bench import (
    BenchDiff,
    DEFAULT_THRESHOLD,
    bench_trail,
    diff_bench,
    flatten_mips,
    load_bench,
    render_diff,
    render_trail,
)
from repro.prof.export import (
    chrome_trace,
    folded_stacks,
    profile_document,
    render_profile_text,
    write_chrome_trace,
)
from repro.prof.guest import (
    NULL_GUEST,
    GuestProfiler,
    HostCallProfiler,
    NullGuestProfiler,
    PCSampler,
)
from repro.prof.profiler import NULL_PROF, NullProfiler, Profiler, record_sim_profile
from repro.prof.spans import (
    CHAIN_PATCH,
    EXECUTE,
    NULL_SPANS,
    ROLLBACK,
    SYSCALL,
    TIMING,
    TRANSLATE,
    NullSpanTracer,
    SpanNode,
    SpanTracer,
)

__all__ = [
    "BenchDiff",
    "CHAIN_PATCH",
    "DEFAULT_THRESHOLD",
    "EXECUTE",
    "GuestProfiler",
    "HostCallProfiler",
    "NULL_GUEST",
    "NULL_PROF",
    "NULL_SPANS",
    "NullGuestProfiler",
    "NullProfiler",
    "NullSpanTracer",
    "PCSampler",
    "Profiler",
    "ROLLBACK",
    "SYSCALL",
    "SpanNode",
    "SpanTracer",
    "TIMING",
    "TRANSLATE",
    "bench_trail",
    "chrome_trace",
    "diff_bench",
    "flatten_mips",
    "folded_stacks",
    "load_bench",
    "profile_document",
    "record_sim_profile",
    "render_diff",
    "render_profile_text",
    "render_trail",
    "write_chrome_trace",
]
