"""Nested wall-clock span tracing.

A span is one timed region of the host's work on behalf of the guest —
translating a unit, executing the dispatch loop, patching a chain cell,
servicing a syscall, rolling back speculative state, or running a
timing model.  Spans nest: the tracer keeps a stack, and each distinct
path through that stack becomes one node of the span *tree*, carrying
count, total/min/max wall time, with self time derived at render time
(total minus the children's totals).

Two products come out of one tracer:

* the aggregated tree (:meth:`SpanTracer.tree`) — the ``repro profile``
  report and the folded-stack export read this;
* the raw completed-span list (:attr:`SpanTracer.events`) — the Chrome
  Trace Event export reads this.  The list is capped so a long run
  cannot grow without bound; spills are counted, never silent.

Like every observability layer in this repo, the disabled twin
(:class:`NullSpanTracer`) is selected once at construction time and
costs nothing per event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

#: canonical span names used by the instrumented layers
TRANSLATE = "translate"
EXECUTE = "execute"
CHAIN_PATCH = "chain_patch"
SYSCALL = "syscall"
ROLLBACK = "rollback"
TIMING = "timing_model"

#: default cap on retained raw span events (Chrome trace export)
MAX_EVENTS = 65536


class SpanNode:
    """Aggregate statistics for one path in the span tree."""

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns = 0
        self.max_ns = 0
        self.children: dict[str, SpanNode] = {}

    def record(self, dur_ns: int) -> None:
        if self.count == 0 or dur_ns < self.min_ns:
            self.min_ns = dur_ns
        if dur_ns > self.max_ns:
            self.max_ns = dur_ns
        self.count += 1
        self.total_ns += dur_ns

    @property
    def self_ns(self) -> int:
        """Total time minus the children's totals (never negative)."""
        return max(0, self.total_ns - sum(c.total_ns for c in self.children.values()))

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def as_dict(self) -> dict:
        out: dict = {
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }
        if self.children:
            out["children"] = {
                name: child.as_dict()
                for name, child in sorted(self.children.items())
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanNode {self.name} n={self.count} total={self.total_ns}ns>"


class SpanTracer:
    """Stack-based span tracer building a tree plus a raw event list."""

    __slots__ = ("_clock", "_stack", "_starts", "root", "events",
                 "max_events", "events_dropped", "origin_ns")

    enabled = True

    def __init__(self, clock=time.perf_counter_ns, max_events: int = MAX_EVENTS):
        self._clock = clock
        self.root = SpanNode("root")
        self._stack: list[SpanNode] = [self.root]
        self._starts: list[int] = []
        #: completed spans as (name, depth, start_ns, dur_ns), start times
        #: relative to the tracer's construction
        self.events: list[tuple[str, int, int, int]] = []
        self.max_events = max_events
        self.events_dropped = 0
        self.origin_ns = clock()

    # -- recording ---------------------------------------------------------

    def begin(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))
        self._starts.append(self._clock())

    def end(self) -> None:
        t1 = self._clock()
        node = self._stack.pop()
        t0 = self._starts.pop()
        node.record(t1 - t0)
        if len(self.events) < self.max_events:
            self.events.append(
                (node.name, len(self._starts), t0 - self.origin_ns, t1 - t0)
            )
        else:
            self.events_dropped += 1

    @contextmanager
    def span(self, name: str):
        """Context manager timing one region; exception-safe."""
        self.begin(name)
        try:
            yield self
        finally:
            self.end()

    # -- reading -----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._starts)

    def tree(self) -> dict:
        """The aggregated span tree as a JSON-serializable dict."""
        return {
            name: child.as_dict()
            for name, child in sorted(self.root.children.items())
        }

    def paths(self) -> list[tuple[tuple[str, ...], SpanNode]]:
        """Every tree node with its root-relative path, pre-order."""
        out: list[tuple[tuple[str, ...], SpanNode]] = []

        def walk(node: SpanNode, path: tuple[str, ...]) -> None:
            for name in sorted(node.children):
                child = node.children[name]
                out.append((path + (name,), child))
                walk(child, path + (name,))

        walk(self.root, ())
        return out

    def clear(self) -> None:
        self.root = SpanNode("root")
        self._stack = [self.root]
        self._starts = []
        self.events = []
        self.events_dropped = 0
        self.origin_ns = self._clock()


_NULL_CONTEXT = nullcontext()


class NullSpanTracer:
    """Disabled tracer: every call is a no-op, every reader sees emptiness."""

    __slots__ = ()

    enabled = False
    events: tuple = ()
    events_dropped = 0
    origin_ns = 0
    depth = 0

    def begin(self, name: str) -> None:
        pass

    def end(self) -> None:
        pass

    def span(self, name: str):
        return _NULL_CONTEXT

    def tree(self) -> dict:
        return {}

    def paths(self) -> list:
        return []

    def clear(self) -> None:
        pass


#: shared no-op instance
NULL_SPANS = NullSpanTracer()
