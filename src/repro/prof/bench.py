"""Bench-trajectory tooling over ``BENCH_<exp_id>.json`` artifacts.

Every benchmark run persists its raw measurements as a ``BENCH_*.json``
document (see ``benchmarks/conftest.py``); until now those were
write-only.  This module turns them into a regression trajectory:

* :func:`flatten_mips` — extract every ``(label path) -> MIPS`` cell
  from a bench document's ``mips`` tree, whatever its nesting shape
  (``{isa: {on, off}}`` for ablations, ``{buildset: {isa: v}}`` for
  Table II, ...).  When a parallel ``samples`` tree carries
  per-repetition measurements, the **minimum** sample is used — the
  least-disturbed repetition, not a noise-inflated mean.
* :func:`diff_bench` — per-cell deltas between two documents of the
  same experiment, with a regression threshold; drives
  ``repro bench diff`` and its non-zero exit on regression.
* :func:`bench_trail` — one summary row per artifact in a results
  directory (``repro bench trail``), the bench trajectory at a glance.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

#: default regression threshold: fail past a 10% MIPS loss
DEFAULT_THRESHOLD = 0.10

#: cells whose key path ends in one of these are derived, not measurements
_DERIVED_LEAVES = frozenset({"ratio", "speedup", "share"})


def load_bench(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _walk(node, path: tuple[str, ...], out: dict) -> None:
    if isinstance(node, dict):
        for key in sorted(node):
            _walk(node[key], path + (str(key),), out)
    elif isinstance(node, list):
        if node and all(isinstance(v, (int, float)) for v in node):
            out[path] = min(node)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[path] = float(node)


def flatten_mips(doc: dict) -> dict[tuple[str, ...], float]:
    """Every measured MIPS cell of a bench document, keyed by label path.

    Derived cells (``ratio``/``speedup``) are skipped — they regress
    whenever their inputs do and would double-report.  When the document
    carries a ``samples`` tree mirroring ``mips``, each cell prefers
    ``min(samples)`` over the headline scalar.
    """
    cells: dict[tuple[str, ...], float] = {}
    _walk(doc.get("mips", {}), (), cells)
    cells = {
        path: value
        for path, value in cells.items()
        if not (path and path[-1] in _DERIVED_LEAVES)
    }
    samples: dict[tuple[str, ...], float] = {}
    _walk(doc.get("samples", {}), (), samples)
    for path, value in samples.items():
        if path in cells:
            cells[path] = value
    return cells


@dataclass
class DiffRow:
    """One compared cell."""

    key: tuple[str, ...]
    old: float
    new: float

    @property
    def delta(self) -> float:
        """Relative change: ``new/old - 1`` (negative = slower)."""
        return self.new / self.old - 1.0 if self.old else math.inf

    @property
    def label(self) -> str:
        return "/".join(self.key)


@dataclass
class BenchDiff:
    """Result of diffing two bench documents."""

    experiment: str
    threshold: float
    rows: list[DiffRow] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.delta < -self.threshold]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "threshold": self.threshold,
            "cells": [
                {
                    "key": row.label,
                    "old": row.old,
                    "new": row.new,
                    "delta": row.delta,
                    "regressed": row.delta < -self.threshold,
                }
                for row in self.rows
            ],
            "only_old": self.only_old,
            "only_new": self.only_new,
            "regressions": len(self.regressions),
        }


def diff_bench(
    old: dict, new: dict, threshold: float = DEFAULT_THRESHOLD
) -> BenchDiff:
    """Compare two bench documents cell by cell.

    Documents of different experiments still diff (cells match by label
    path), but the mismatch is worth surfacing — the experiment name in
    the result is ``old != new`` aware.
    """
    old_cells = flatten_mips(old)
    new_cells = flatten_mips(new)
    old_exp = old.get("experiment", "?")
    new_exp = new.get("experiment", "?")
    experiment = old_exp if old_exp == new_exp else f"{old_exp} vs {new_exp}"
    diff = BenchDiff(experiment=experiment, threshold=threshold)
    for key in sorted(set(old_cells) | set(new_cells)):
        if key not in old_cells:
            diff.only_new.append("/".join(key))
        elif key not in new_cells:
            diff.only_old.append("/".join(key))
        else:
            diff.rows.append(DiffRow(key, old_cells[key], new_cells[key]))
    return diff


def render_diff(diff: BenchDiff) -> str:
    """Human-oriented diff rendering."""
    from repro.harness.tables import render_table

    rows = []
    for row in diff.rows:
        flag = ""
        if row.delta < -diff.threshold:
            flag = "REGRESSED"
        elif row.delta > diff.threshold:
            flag = "improved"
        rows.append(
            [row.label, f"{row.old:.3f}", f"{row.new:.3f}",
             f"{row.delta * +100:+.1f}%", flag]
        )
    out = [
        render_table(
            f"Bench diff: {diff.experiment} "
            f"(threshold {diff.threshold * 100:.0f}%)",
            ["cell", "old MIPS", "new MIPS", "delta", ""],
            rows,
        )
    ]
    for label in diff.only_old:
        out.append(f"only in old: {label}")
    for label in diff.only_new:
        out.append(f"only in new: {label}")
    n = len(diff.regressions)
    out.append(
        f"{n} regression(s) past {diff.threshold * 100:.0f}% "
        f"across {len(diff.rows)} compared cell(s)"
    )
    return "\n".join(out)


def _geomean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def bench_trail(results_dir: str) -> list[dict]:
    """One summary row per ``BENCH_*.json`` artifact in a directory."""
    rows: list[dict] = []
    try:
        names = sorted(
            n for n in os.listdir(results_dir)
            if n.startswith("BENCH_") and n.endswith(".json")
        )
    except FileNotFoundError:
        return rows
    for name in names:
        path = os.path.join(results_dir, name)
        try:
            doc = load_bench(path)
        except (OSError, json.JSONDecodeError):
            rows.append({"file": name, "experiment": "(unreadable)",
                         "cells": 0, "geomean_mips": 0.0, "scale": None})
            continue
        cells = flatten_mips(doc)
        rows.append(
            {
                "file": name,
                "experiment": doc.get("experiment", "?"),
                "cells": len(cells),
                "geomean_mips": _geomean(list(cells.values())),
                "scale": doc.get("scale"),
            }
        )
    return rows


def render_trail(rows: list[dict]) -> str:
    from repro.harness.tables import render_table

    table = [
        [
            row["file"],
            row["experiment"],
            row["cells"],
            f"{row['geomean_mips']:.3f}" if row["geomean_mips"] else "-",
            row["scale"] if row["scale"] is not None else "-",
        ]
        for row in rows
    ]
    return render_table(
        "Bench trajectory (geomean MIPS over each artifact's cells)",
        ["artifact", "experiment", "cells", "geomean", "scale"],
        table,
    )
