"""Profile exports: Chrome trace, folded stacks, report documents.

* :func:`chrome_trace` — Chrome Trace Event Format JSON (the ``[]``-of-
  events object form with ``traceEvents``), loadable in Perfetto or
  ``chrome://tracing``.  Every completed span becomes one complete
  (``"ph": "X"``) event; run metadata rides in ``otherData``.
* :func:`folded_stacks` — the semicolon-joined stack/self-weight text
  format consumed by Brendan Gregg's ``flamegraph.pl`` (weights are
  span *self* time in microseconds).
* :func:`profile_document` — the whole profile as one JSON document
  (span tree + hot-block + hot-PC tables), the ``--profile=out.json``
  and ``repro profile --json`` payload.
* :func:`render_profile_text` — the human report.
"""

from __future__ import annotations

import json

#: pid/tid stamped into trace events (the run is single-process)
_PID = 1
_TID = 1


def chrome_trace(prof, meta: dict | None = None) -> dict:
    """Render a profiler's spans as a Chrome Trace Event Format document."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "repro simulator"},
        }
    ]
    for name, depth, start_ns, dur_ns in prof.spans.events:
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "X",
                "ts": start_ns / 1e3,
                "dur": dur_ns / 1e3,
                "pid": _PID,
                "tid": _TID,
                "args": {"depth": depth},
            }
        )
    other: dict = dict(prof.meta)
    if meta:
        other.update(meta)
    other["events_dropped"] = prof.spans.events_dropped
    hot = prof.guest.hot_blocks(limit=10, ilen=other.get("ilen", 4))
    if hot:
        other["hot_blocks"] = [
            {"pc": hex(row["pc"]), "end": hex(row["end"]),
             "ns": row["ns"], "share": round(row["share"], 4)}
            for row in hot
        ]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def folded_stacks(prof) -> str:
    """Span tree as folded stacks (``a;b;c <self_us>`` per line)."""
    lines = []
    for path, node in prof.spans.paths():
        self_us = node.self_ns // 1000
        if self_us > 0:
            lines.append(f"{';'.join(path)} {self_us}")
    return "\n".join(lines) + ("\n" if lines else "")


def profile_document(prof, meta: dict | None = None) -> dict:
    """The full profile as one JSON-serializable document."""
    doc_meta: dict = dict(prof.meta)
    if meta:
        doc_meta.update(meta)
    ilen = doc_meta.get("ilen", 4)
    return {
        "meta": doc_meta,
        "spans": prof.spans.tree(),
        "events_dropped": prof.spans.events_dropped,
        "hot_blocks": prof.guest.hot_blocks(ilen=ilen),
        "hot_pcs": prof.guest.hot_pcs(limit=64),
    }


def write_chrome_trace(path: str, prof, meta: dict | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(prof, meta), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}"


def render_profile_text(prof, meta: dict | None = None, limit: int = 16) -> str:
    """Human-oriented rendering: span tree + hot-block/hot-PC tables."""
    from repro.harness.tables import render_table

    doc_meta: dict = dict(prof.meta)
    if meta:
        doc_meta.update(meta)
    ilen = doc_meta.get("ilen", 4)
    lines: list[str] = ["== profile =="]
    if doc_meta:
        tagged = ", ".join(
            f"{k}={v}" for k, v in sorted(doc_meta.items()) if k != "ilen"
        )
        if tagged:
            lines.append(f"({tagged})")

    tree = prof.spans.tree()
    if tree:
        lines.append("spans (total / self ms, count, min..max us):")

        def walk(nodes: dict, depth: int) -> None:
            for name in sorted(
                nodes, key=lambda n: -nodes[n]["total_ns"]
            ):
                node = nodes[name]
                pad = "  " * (depth + 1)
                lines.append(
                    f"{pad}{name:<18s} {_fmt_ms(node['total_ns']):>10s} / "
                    f"{_fmt_ms(node['self_ns']):>10s}  x{node['count']:<8d} "
                    f"{node['min_ns'] // 1000}..{node['max_ns'] // 1000}"
                )
                walk(node.get("children", {}), depth + 1)

        walk(tree, 0)
    else:
        lines.append("(no spans recorded)")

    hot = prof.guest.hot_blocks(limit=limit, ilen=ilen)
    if hot:
        rows = [
            [
                f"{row['pc']:#x}..{row['end']:#x}",
                f"{row['share'] * 100:.1f}%",
                _fmt_ms(row["ns"]),
                row["calls"],
                row["instructions"],
                row["parts"],
                row["chained_calls"],
            ]
            for row in hot
        ]
        lines.append(
            render_table(
                "Hot translated units (host time per guest PC range)",
                ["guest PC range", "share", "ms", "calls", "instrs",
                 "parts", "chained"],
                rows,
            )
        )
    pcs = prof.guest.hot_pcs(limit=limit)
    if pcs:
        rows = [
            [f"{row['pc']:#x}", row["hits"], row["samples"]] for row in pcs
        ]
        lines.append(
            render_table(
                "Hot guest PCs (probe hits / PC samples)",
                ["guest PC", "hits", "samples"],
                rows,
            )
        )
    if prof.spans.events_dropped:
        lines.append(
            f"WARNING: {prof.spans.events_dropped} span event(s) dropped "
            f"past the raw-event cap; aggregates are still exact"
        )
    return "\n".join(lines)
