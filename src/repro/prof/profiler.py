"""The profiling facade: spans + guest attribution behind one handle.

One :class:`Profiler` is shared by a run's components, exactly like the
:class:`~repro.obs.probe.Observability` facade it rides on
(``make_observability(profile=True)`` attaches one as ``obs.prof``).
Layers branch **once** — at synthesis or construction time — on
``prof.enabled`` to select their profiled variants; the shared
:data:`NULL_PROF` twin makes the disabled path free.
"""

from __future__ import annotations

from repro.prof.guest import NULL_GUEST, GuestProfiler
from repro.prof.spans import NULL_SPANS, SpanTracer


class Profiler:
    """Live span tracer + guest profiler for one run."""

    __slots__ = ("spans", "guest", "meta")

    enabled = True

    def __init__(self, max_events: int | None = None) -> None:
        self.spans = (
            SpanTracer() if max_events is None else SpanTracer(max_events=max_events)
        )
        self.guest = GuestProfiler()
        #: free-form run metadata stamped into exports (isa, buildset, ...)
        self.meta: dict = {}

    def clear(self) -> None:
        self.spans.clear()
        self.guest.clear()
        self.meta.clear()


class NullProfiler:
    """Disabled facade: null spans, null guest profiler."""

    __slots__ = ()

    enabled = False
    spans = NULL_SPANS
    guest = NULL_GUEST
    meta: dict = {}

    def clear(self) -> None:
        pass


#: the shared disabled instance every layer defaults to
NULL_PROF = NullProfiler()


def record_sim_profile(prof, sim) -> None:
    """Fold one simulator's synthesized-probe hit counts into ``prof``.

    Call once per simulator instance after its run (mirrors
    :func:`repro.obs.report.record_sim_stats`).  Only modules generated
    with ``SynthOptions(trace=True)`` populate ``sim._prof_hits``.
    """
    hits = getattr(sim, "_prof_hits", None)
    if hits:
        prof.guest.add_pc_hits(hits)
        hits.clear()
