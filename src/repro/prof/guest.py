"""Guest attribution: which guest code costs host time.

Three complementary sources feed one :class:`GuestProfiler`:

* **unit timing** (Block interfaces) — the profiled dispatch loop times
  each translated unit's execution and charges it to the unit's guest
  PC, together with the unit's superblock/chain provenance
  (``__block_len__``/``__block_parts__`` attached by the translator);
* **probe hits** (One/Step interfaces) — modules synthesized with
  ``SynthOptions(trace=True)`` count executions per guest PC in
  ``sim._prof_hits``; :func:`record_sim_profile` folds them in;
* **PC sampling** (:class:`PCSampler`) — a background thread samples
  ``state.pc`` at a fixed interval, attributing host wall time
  statistically.  Works for any execution style, including the
  interpreted path, without touching generated code.

A :class:`HostCallProfiler` (``sys.setprofile``) is the optional
host-side view for interpreted/One paths: cumulative time per generated
function instead of per guest PC.
"""

from __future__ import annotations

import sys
import threading
import time


class UnitStat:
    """Accumulated cost of one translated unit (or one guest PC)."""

    __slots__ = ("pc", "length", "parts", "ns", "calls", "instructions",
                 "chained_calls")

    def __init__(self, pc: int, length: int = 0, parts: int = 1) -> None:
        self.pc = pc
        self.length = length
        self.parts = parts
        self.ns = 0
        self.calls = 0
        self.instructions = 0
        self.chained_calls = 0

    def as_dict(self, ilen: int = 4) -> dict:
        return {
            "pc": self.pc,
            "end": self.pc + self.length * ilen,
            "length": self.length,
            "parts": self.parts,
            "ns": self.ns,
            "calls": self.calls,
            "instructions": self.instructions,
            "chained_calls": self.chained_calls,
        }


class GuestProfiler:
    """Per-unit and per-PC host-time attribution for one run."""

    __slots__ = ("units", "pc_hits", "samples", "foreign_ns")

    enabled = True

    def __init__(self) -> None:
        #: translated-unit stats keyed by the unit's entry PC
        self.units: dict[int, UnitStat] = {}
        #: per-guest-PC execution counts from synthesized probes
        self.pc_hits: dict[int, int] = {}
        #: per-guest-PC sample counts from a :class:`PCSampler`
        self.samples: dict[int, int] = {}
        #: time spent in non-guest work (chain patching, successor
        #: translation) nested *inside* a unit's timed window; the
        #: profiled dispatch loop subtracts the delta so a cold unit is
        #: not billed for translating everything downstream of it
        self.foreign_ns = 0

    # -- recording ---------------------------------------------------------

    def register_unit(self, pc: int, length: int, parts: int = 1) -> None:
        """Declare a translated unit's shape (called at install time)."""
        stat = self.units.get(pc)
        if stat is None:
            self.units[pc] = UnitStat(pc, length, parts)
        else:
            stat.length = length
            stat.parts = parts

    def add_unit_time(
        self, pc: int, ns: int, executed: int, chained: bool = False
    ) -> None:
        """Charge one execution of the unit at ``pc``."""
        stat = self.units.get(pc)
        if stat is None:
            stat = self.units[pc] = UnitStat(pc)
        stat.ns += ns
        stat.calls += 1
        stat.instructions += executed
        if chained:
            stat.chained_calls += 1

    def add_pc_hits(self, hits: dict) -> None:
        """Fold per-PC execution counts (synthesized probes) in."""
        mine = self.pc_hits
        for pc, count in hits.items():
            mine[pc] = mine.get(pc, 0) + count

    def add_samples(self, samples: dict) -> None:
        """Fold per-PC sample counts (a :class:`PCSampler` result) in."""
        mine = self.samples
        for pc, count in samples.items():
            mine[pc] = mine.get(pc, 0) + count

    # -- reading -----------------------------------------------------------

    def hot_blocks(self, limit: int | None = None, ilen: int = 4) -> list[dict]:
        """Translated units by descending host time, with share of total."""
        total = sum(stat.ns for stat in self.units.values()) or 1
        rows = sorted(self.units.values(), key=lambda s: (-s.ns, s.pc))
        if limit is not None:
            rows = rows[:limit]
        out = []
        for stat in rows:
            row = stat.as_dict(ilen)
            row["share"] = stat.ns / total
            out.append(row)
        return out

    def hot_pcs(self, limit: int | None = None) -> list[dict]:
        """Guest PCs by descending weight (probe hits + samples merged)."""
        merged: dict[int, dict] = {}
        for pc, count in self.pc_hits.items():
            merged[pc] = {"pc": pc, "hits": count, "samples": 0}
        for pc, count in self.samples.items():
            row = merged.setdefault(pc, {"pc": pc, "hits": 0, "samples": 0})
            row["samples"] = count
        rows = sorted(
            merged.values(),
            key=lambda r: (-(r["hits"] + r["samples"]), r["pc"]),
        )
        return rows if limit is None else rows[:limit]

    def clear(self) -> None:
        self.units.clear()
        self.pc_hits.clear()
        self.samples.clear()
        self.foreign_ns = 0


class NullGuestProfiler:
    """Disabled twin: accepts every call, records nothing."""

    __slots__ = ()

    enabled = False
    units: dict = {}
    pc_hits: dict = {}
    samples: dict = {}
    foreign_ns = 0

    def register_unit(self, pc, length, parts=1) -> None:
        pass

    def add_unit_time(self, pc, ns, executed, chained=False) -> None:
        pass

    def add_pc_hits(self, hits) -> None:
        pass

    def add_samples(self, samples) -> None:
        pass

    def hot_blocks(self, limit=None, ilen=4) -> list:
        return []

    def hot_pcs(self, limit=None) -> list:
        return []

    def clear(self) -> None:
        pass


#: shared no-op instance
NULL_GUEST = NullGuestProfiler()


class PCSampler:
    """Background-thread guest-PC sampler.

    Reads ``target.pc`` (an :class:`~repro.arch.state.ArchState` or any
    object with an integer ``pc``) every ``interval_us`` microseconds
    while started.  Under the GIL an attribute read of an int is safe
    without locking; the histogram is only approximate by design.
    """

    def __init__(self, target, interval_us: int = 200) -> None:
        self.target = target
        self.interval = interval_us / 1e6
        self.counts: dict[int, int] = {}
        self.taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _loop(self) -> None:
        counts = self.counts
        target = self.target
        while not self._stop.is_set():
            pc = target.pc
            counts[pc] = counts.get(pc, 0) + 1
            self.taken += 1
            time.sleep(self.interval)

    def start(self) -> "PCSampler":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-pc-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[int, int]:
        """Stop sampling; returns the PC histogram."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return self.counts

    def __enter__(self) -> "PCSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class HostCallProfiler:
    """``sys.setprofile``-based host-function attribution.

    Records cumulative wall time and call counts per Python function,
    keyed by code-object name.  Intended for the interpreted and One
    paths, where guest work maps onto generated functions (``_b_<i>``
    bodies, entrypoints) rather than translated units.  Heavy — never
    enabled implicitly.
    """

    def __init__(self, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self._stack: list[tuple[str, int]] = []
        self.stats: dict[str, list[int]] = {}  # name -> [calls, ns]

    def _hook(self, frame, event, arg) -> None:
        if event in ("call", "c_call"):
            name = (
                frame.f_code.co_name if event == "call" else str(arg.__name__)
            )
            self._stack.append((name, self._clock()))
        elif event in ("return", "c_return", "c_exception"):
            if not self._stack:
                return
            name, t0 = self._stack.pop()
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = [0, 0]
            stat[0] += 1
            stat[1] += self._clock() - t0

    def start(self) -> "HostCallProfiler":
        sys.setprofile(self._hook)
        return self

    def stop(self) -> dict[str, list[int]]:
        sys.setprofile(None)
        self._stack.clear()
        return self.stats

    def __enter__(self) -> "HostCallProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def top(self, limit: int = 20) -> list[dict]:
        rows = sorted(
            ({"name": k, "calls": v[0], "ns": v[1]} for k, v in self.stats.items()),
            key=lambda r: -r["ns"],
        )
        return rows[:limit]
