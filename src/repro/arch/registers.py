"""Register-file metadata.

The ADL declares register files (``regfile R 32 u64;``) and special
registers (``sreg lr u32;``).  At runtime a register file is just a Python
list of unsigned integers — generated code caches the list in a local and
indexes it directly — so this module only carries the metadata needed to
build and validate that runtime representation.
"""

from __future__ import annotations

from dataclasses import dataclass

_WIDTHS = {"u8": 8, "u16": 16, "u32": 32, "u64": 64}


def width_of(type_name: str) -> int:
    """Bit width of an ADL scalar type name such as ``u64``."""
    try:
        return _WIDTHS[type_name]
    except KeyError:
        raise ValueError(f"unknown register type {type_name!r}") from None


@dataclass(frozen=True)
class RegisterFileDef:
    """A named bank of same-width registers (e.g. the 32 GPRs)."""

    name: str
    count: int
    type: str

    @property
    def width(self) -> int:
        return width_of(self.type)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def create(self) -> list[int]:
        """Materialize the runtime representation (a zeroed list)."""
        return [0] * self.count


@dataclass(frozen=True)
class SpecialRegisterDef:
    """A single named register outside any file (LR, CTR, NZCV, ...)."""

    name: str
    type: str

    @property
    def width(self) -> int:
        return width_of(self.type)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1
