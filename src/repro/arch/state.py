"""Architectural state container.

One :class:`ArchState` holds everything the ISA manual calls
architecturally visible: the PC, every register file, every special
register, and guest memory.  Synthesized simulators mutate it directly;
timing-first checkers compare two of them; speculation support journals
mutations into :attr:`ArchState.journal` so they can be rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.arch.memory import Memory
from repro.arch.registers import RegisterFileDef, SpecialRegisterDef


@dataclass
class Snapshot:
    """Deep copy of an :class:`ArchState` at one point in time."""

    pc: int
    rf: dict[str, list[int]]
    sr: dict[str, int]
    mem: dict[int, bytes]


class ArchState:
    """Mutable architectural state for one simulated hardware context.

    Parameters
    ----------
    regfiles:
        Register-file declarations from the ISA description.
    sregs:
        Special-register declarations from the ISA description.
    endian:
        Guest byte order.
    """

    __slots__ = ("pc", "rf", "sr", "mem", "journal", "_regfile_defs", "_sreg_defs")

    def __init__(
        self,
        regfiles: Iterable[RegisterFileDef] = (),
        sregs: Iterable[SpecialRegisterDef] = (),
        endian: str = "little",
    ) -> None:
        self.pc = 0
        self._regfile_defs = {rf.name: rf for rf in regfiles}
        self._sreg_defs = {sr.name: sr for sr in sregs}
        self.rf: dict[str, list[int]] = {
            name: rf.create() for name, rf in self._regfile_defs.items()
        }
        self.sr: dict[str, int] = {name: 0 for name in self._sreg_defs}
        self.mem = Memory(endian)
        # Undo journal for speculation-enabled buildsets: one list of undo
        # records per speculatively-executed instruction (newest last).
        self.journal: list[list[tuple[Any, ...]]] = []

    # -- introspection -----------------------------------------------------

    def regfile_def(self, name: str) -> RegisterFileDef:
        return self._regfile_defs[name]

    def sreg_def(self, name: str) -> SpecialRegisterDef:
        return self._sreg_defs[name]

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Capture a deep copy of all architectural state."""
        return Snapshot(
            pc=self.pc,
            rf={name: list(regs) for name, regs in self.rf.items()},
            sr=dict(self.sr),
            mem=self.mem.snapshot(),
        )

    def restore(self, snap: Snapshot) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.pc = snap.pc
        self.rf = {name: list(regs) for name, regs in snap.rf.items()}
        self.sr = dict(snap.sr)
        self.mem.restore(snap.mem)
        self.journal.clear()

    def copy_architectural_state_from(self, other: "ArchState") -> None:
        """Reload registers, PC and memory from ``other``.

        Used by timing-first organizations when a mismatch forces the
        timing model to resynchronize with the functional model.
        """
        self.restore(other.snapshot())

    # -- speculation rollback -------------------------------------------------

    def rollback(self, count: int = 1) -> int:
        """Undo the effects of the last ``count`` journaled instructions.

        Returns the number of instructions actually rolled back (bounded
        by the journal depth).  Undo records are applied newest-first.
        """
        rolled = 0
        while rolled < count and self.journal:
            records = self.journal.pop()
            for record in reversed(records):
                kind = record[0]
                if kind == "r":  # register-file write: ('r', file, index, old)
                    self.rf[record[1]][record[2]] = record[3]
                elif kind == "s":  # special register: ('s', name, old)
                    self.sr[record[1]] = record[2]
                elif kind == "m":  # memory: ('m', addr, size, old)
                    self.mem.write(record[1], record[2], record[3])
                elif kind == "p":  # pc: ('p', old)
                    self.pc = record[1]
                else:  # pragma: no cover - guarded by codegen
                    raise ValueError(f"unknown undo record {record!r}")
            rolled += 1
        return rolled

    def commit(self, count: int = 1) -> int:
        """Discard undo records for the oldest ``count`` instructions.

        Called once speculatively-executed instructions are known to be on
        the correct path; keeps the journal bounded.
        """
        committed = min(count, len(self.journal))
        del self.journal[:committed]
        return committed

    # -- equality for validation -----------------------------------------------

    def same_architectural_state(self, other: "ArchState") -> bool:
        """True when PC, registers and memory contents all match."""
        if self.pc != other.pc or self.rf != other.rf or self.sr != other.sr:
            return False
        mine = dict(self.mem.iter_nonzero_pages())
        theirs = dict(other.mem.iter_nonzero_pages())
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        files = ", ".join(f"{name}[{len(regs)}]" for name, regs in self.rf.items())
        return f"<ArchState pc={self.pc:#x} {files} sregs={sorted(self.sr)}>"


__all__ = ["ArchState", "Snapshot"]
