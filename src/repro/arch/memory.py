"""Sparse paged guest memory.

The functional simulators synthesized by :mod:`repro.synth` perform all
loads and stores through this class, so the common aligned, within-page
case is kept on a fast path.  Pages are demand-zero ``bytearray`` objects
allocated on first touch, which lets workloads use scattered code, stack
and heap regions without an explicit mapping step.

Endianness is a property of the memory (PowerPC descriptions run
big-endian, Alpha and ARM little-endian), mirroring how the paper's
functional simulators bind byte order once per instruction set.
"""

from __future__ import annotations

from typing import Iterator

PAGE_BITS = 16
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Byte-addressable sparse memory with fixed endianness.

    Parameters
    ----------
    endian:
        ``"little"`` or ``"big"``.
    """

    __slots__ = ("endian", "_pages")

    def __init__(self, endian: str = "little") -> None:
        if endian not in ("little", "big"):
            raise ValueError(f"endian must be 'little' or 'big', got {endian!r}")
        self.endian = endian
        self._pages: dict[int, bytearray] = {}

    # -- page management ------------------------------------------------

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def pages_allocated(self) -> int:
        """Number of pages currently materialized."""
        return len(self._pages)

    def clear(self) -> None:
        """Release every page (memory reads as zero afterwards)."""
        self._pages.clear()

    # -- scalar access ---------------------------------------------------

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as an unsigned integer."""
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_BITS)
            if page is None:
                return 0
            return int.from_bytes(page[off : off + size], self.endian)
        return int.from_bytes(self.read_bytes(addr, size), self.endian)

    def write(self, addr: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``addr``."""
        off = addr & PAGE_MASK
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, self.endian)
        if off + size <= PAGE_SIZE:
            self._page(addr >> PAGE_BITS)[off : off + size] = data
        else:
            self.write_bytes(addr, data)

    # Convenience fixed-width accessors used by generated code and tests.

    def read_u8(self, addr: int) -> int:
        page = self._pages.get(addr >> PAGE_BITS)
        return page[addr & PAGE_MASK] if page is not None else 0

    def read_u16(self, addr: int) -> int:
        return self.read(addr, 2)

    def read_u32(self, addr: int) -> int:
        return self.read(addr, 4)

    def read_u64(self, addr: int) -> int:
        return self.read(addr, 8)

    def write_u8(self, addr: int, value: int) -> None:
        self._page(addr >> PAGE_BITS)[addr & PAGE_MASK] = value & 0xFF

    def write_u16(self, addr: int, value: int) -> None:
        self.write(addr, 2, value)

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, 4, value)

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, 8, value)

    # -- bulk access -----------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read ``length`` raw bytes starting at ``addr``."""
        out = bytearray()
        while length > 0:
            off = addr & PAGE_MASK
            take = min(length, PAGE_SIZE - off)
            page = self._pages.get(addr >> PAGE_BITS)
            if page is None:
                out.extend(b"\x00" * take)
            else:
                out.extend(page[off : off + take])
            addr += take
            length -= take
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write raw ``data`` starting at ``addr``."""
        pos = 0
        length = len(data)
        while pos < length:
            off = addr & PAGE_MASK
            take = min(length - pos, PAGE_SIZE - off)
            self._page(addr >> PAGE_BITS)[off : off + take] = data[pos : pos + take]
            addr += take
            pos += take

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (without the NUL).

        Scans one page at a time with ``bytes.find`` rather than one call
        per byte; an unallocated page reads as zeros and therefore
        terminates the string immediately.
        """
        out = bytearray()
        while len(out) < limit:
            page = self._pages.get(addr >> PAGE_BITS)
            if page is None:
                break  # demand-zero page: the next byte is NUL
            off = addr & PAGE_MASK
            end = min(PAGE_SIZE, off + (limit - len(out)))
            nul = page.find(0, off, end)
            if nul >= 0:
                out += page[off:nul]
                break
            out += page[off:end]
            addr += end - off
        return bytes(out)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[int, bytes]:
        """Capture page contents for later :meth:`restore`."""
        return {index: bytes(page) for index, page in self._pages.items()}

    def restore(self, snap: dict[int, bytes]) -> None:
        """Restore contents captured by :meth:`snapshot`."""
        self._pages = {index: bytearray(page) for index, page in snap.items()}

    def iter_nonzero_pages(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(base_address, contents)`` for pages holding any data."""
        for index in sorted(self._pages):
            page = self._pages[index]
            if any(page):
                yield index << PAGE_BITS, bytes(page)
