"""Architectural-state substrate: memory, registers, faults, state."""

from repro.arch.faults import (
    ExitProgram,
    Fault,
    IllegalInstruction,
    SimulationError,
    UnalignedAccess,
)
from repro.arch.memory import Memory
from repro.arch.registers import RegisterFileDef, SpecialRegisterDef
from repro.arch.state import ArchState, Snapshot

__all__ = [
    "ArchState",
    "ExitProgram",
    "Fault",
    "IllegalInstruction",
    "Memory",
    "RegisterFileDef",
    "SimulationError",
    "Snapshot",
    "SpecialRegisterDef",
    "UnalignedAccess",
]
