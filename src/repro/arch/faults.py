"""Fault model shared by every synthesized functional simulator.

The paper's interfaces expose a ``fault`` field at even the minimal
informational detail level ("address, instruction encoding, next PC,
*faults*, and simulator context").  We model faults two ways:

* *Recoverable/reportable* conditions are encoded as small integers
  (:class:`Fault`) written into the dynamic-instruction ``fault`` field so
  that timing simulators can observe them through the interface.
* *Simulation-terminating* conditions are Python exceptions derived from
  :class:`SimulationError` (or :class:`ExitProgram` for a clean guest
  ``exit``), because no further guest progress is possible.
"""

from __future__ import annotations

import enum


class Fault(enum.IntEnum):
    """Per-instruction fault codes reported through the interface."""

    NONE = 0
    ILLEGAL_INSTRUCTION = 1
    UNALIGNED_ACCESS = 2
    SYSCALL = 3
    BREAKPOINT = 4
    ARITHMETIC = 5


class SimulationError(Exception):
    """Base class for errors that abort simulation."""


class IllegalInstruction(SimulationError):
    """Raised when the decoder cannot match an instruction word."""

    def __init__(self, pc: int, bits: int) -> None:
        super().__init__(f"illegal instruction {bits:#010x} at pc {pc:#x}")
        self.pc = pc
        self.bits = bits


class UnalignedAccess(SimulationError):
    """Raised for a misaligned access on ISAs that require alignment."""

    def __init__(self, addr: int, size: int) -> None:
        super().__init__(f"unaligned {size}-byte access at {addr:#x}")
        self.addr = addr
        self.size = size


class ExitProgram(Exception):
    """Raised by the OS-emulation layer when the guest calls ``exit``.

    Not a :class:`SimulationError`: a guest exit is the normal way for a
    workload to finish.  Drivers catch it and record ``status``.
    """

    def __init__(self, status: int) -> None:
        super().__init__(f"guest exited with status {status}")
        self.status = status
