"""Command-line interface.

::

    python -m repro isas                          # list instruction sets
    python -m repro interfaces alpha              # list buildsets + detail
    python -m repro run alpha prog.s              # assemble + run a program
    python -m repro run alpha prog.s --buildset block_min --max 1000000
    python -m repro run alpha prog.s --stats      # + observability report
    python -m repro kernels alpha one_min         # run the kernel suite
    python -m repro kernels alpha block_min --stats=json   # scriptable
    python -m repro stats alpha block_min         # observability report
    python -m repro kernels alpha block_min --profile        # profile report
    python -m repro kernels alpha block_min --profile=p.json # Chrome trace
    python -m repro profile alpha block_min       # profiling-first entrypoint
    python -m repro bench diff old.json new.json  # MIPS regression diff
    python -m repro bench trail                   # bench trajectory summary
    python -m repro disasm alpha prog.s           # assemble + disassemble
    python -m repro lint alpha                    # static-check the spec
    python -m repro lint alpha --format=json      # machine-readable
    python -m repro check alpha                   # validate generated modules
    python -m repro check alpha --costs           # + static cost predictions
    python -m repro table1 [--json]               # Table I analogue
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.loc import table1
from repro.harness.tables import render_table
from repro.iface import InformationalDetail, SemanticDetail
from repro.isa.base import available_isas, get_bundle
from repro.isa.disasm import Disassembler
from repro.obs import (
    collect,
    make_observability,
    record_generated_stats,
    record_sim_stats,
    render_json,
    render_text,
)
from repro.prof import (
    DEFAULT_THRESHOLD,
    folded_stacks,
    profile_document,
    record_sim_profile,
    render_profile_text,
    write_chrome_trace,
)
from repro.synth import SynthOptions, synthesize
from repro.sysemu import OSEmulator, load_image
from repro.workloads import kernel_names, run_kernel


def _cmd_isas(_args) -> int:
    for isa in available_isas():
        spec = get_bundle(isa).load_spec()
        print(f"{isa:8s} {len(spec.instructions):3d} instructions, "
              f"{len(spec.buildsets)} interfaces, {spec.endian}-endian")
    return 0


def _cmd_interfaces(args) -> int:
    spec = get_bundle(args.isa).load_spec()
    rows = []
    for name, buildset in sorted(spec.buildsets.items()):
        rows.append(
            [
                name,
                SemanticDetail.of(buildset).value,
                InformationalDetail.of(buildset, spec).value,
                "yes" if buildset.speculation else "no",
                len(buildset.entrypoints),
            ]
        )
    print(
        render_table(
            f"Interfaces of {args.isa}",
            ["buildset", "semantic", "informational", "speculation", "#calls"],
            rows,
        )
    )
    return 0


def _load_program(args):
    bundle = get_bundle(args.isa)
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    image = bundle.make_assembler().assemble(source, origin=args.origin)
    return bundle, image


def _stats_setup(stats_mode, profile: bool = False):
    """(SynthOptions, Observability) for --stats/--profile (None = off).

    Profiling implies observability (the profiler rides on the same
    facade) and additionally synthesizes guest-PC trace probes.
    """
    if profile:
        return (
            SynthOptions(observe=True, trace=True),
            make_observability(profile=True),
        )
    if not stats_mode:
        return None, None
    return SynthOptions(observe=True), make_observability()


def _emit_profile(prof, dest: str) -> None:
    """Print the text profile (``dest == "-"``) or write a Chrome trace."""
    if dest == "-":
        print(render_profile_text(prof))
    else:
        write_chrome_trace(dest, prof)
        print(f"[profile] wrote Chrome trace to {dest}", file=sys.stderr)


def _apply_block_flags(options, args):
    """Fold ``--superblock``/``--no-chain`` into the synthesis options.

    Returns ``options`` unchanged (possibly ``None``) when neither flag
    was given, so the default-option paths stay untouched.
    """
    import dataclasses

    superblock = getattr(args, "superblock", None)
    no_chain = getattr(args, "no_chain", False)
    if superblock is None and not no_chain:
        return options
    if options is None:
        options = SynthOptions()
    overrides: dict = {}
    if superblock is not None:
        overrides["superblock"] = superblock
    if no_chain:
        overrides["chain"] = False
    return dataclasses.replace(options, **overrides)


def add_block_flags(parser) -> None:
    """Block-translator tuning flags shared by ``run`` and ``kernels``."""
    parser.add_argument(
        "--superblock", type=int, default=None, metavar="N",
        help="superblock formation budget in instructions "
             "(0 disables; block buildsets only)",
    )
    parser.add_argument(
        "--no-chain", action="store_true",
        help="disable direct block chaining (block buildsets only)",
    )


def _print_stats(stats: dict, mode: str) -> None:
    print(render_json(stats) if mode == "json" else render_text(stats))


def _cmd_run(args) -> int:
    bundle, image = _load_program(args)
    options, obs = _stats_setup(args.stats, bool(args.profile))
    options = _apply_block_flags(options, args)
    generated = synthesize(bundle.load_spec(), args.buildset, options)
    os_emu = OSEmulator(
        bundle.abi,
        stdin=sys.stdin.buffer.read() if args.stdin else b"",
        obs=obs,
    )
    sim = generated.make(syscall_handler=os_emu, obs=obs)
    load_image(sim.state, image, bundle.abi)
    result = sim.run(args.max)
    sys.stdout.write(bytes(os_emu.stdout).decode("latin-1"))
    sys.stderr.write(bytes(os_emu.stderr).decode("latin-1"))
    print(
        f"\n[{args.isa}/{args.buildset}] executed {result.executed} "
        f"instructions; "
        + (f"exit status {result.exit_status}" if result.exited
           else "instruction budget exhausted")
    )
    if obs is not None:
        record_generated_stats(obs, generated)
        record_sim_stats(obs, sim)
        obs.counters.inc("run.instructions", result.executed)
        if obs.prof.enabled:
            record_sim_profile(obs.prof, sim)
            obs.prof.meta.update(
                {
                    "isa": args.isa,
                    "buildset": args.buildset,
                    "ilen": generated.plan.spec.ilen,
                    "command": "run",
                }
            )
            _emit_profile(obs.prof, args.profile)
        if args.stats:
            stats = collect(obs)
            stats["run"] = {
                "isa": args.isa,
                "buildset": args.buildset,
                "executed": result.executed,
                "exited": result.exited,
                "exit_status": result.exit_status,
            }
            _print_stats(stats, args.stats)
    return (result.exit_status or 0) if result.exited else 2


def _cmd_disasm(args) -> int:
    bundle, image = _load_program(args)
    spec = bundle.load_spec()
    disasm = Disassembler(spec)
    for addr, data in image.segments:
        for offset in range(0, len(data) - len(data) % spec.ilen, spec.ilen):
            word = int.from_bytes(
                data[offset : offset + spec.ilen], spec.endian
            )
            print(f"{addr + offset:#8x}:  {disasm.disassemble(word)}")
    return 0


def _run_kernel_suite(
    isa: str, buildset: str, stats_mode, kernels=None, args=None,
    profile: bool = False,
):
    """Run the kernel suite; returns (records, failures, stats, obs)."""
    options, obs = _stats_setup(stats_mode, profile)
    if args is not None:
        options = _apply_block_flags(options, args)
    spec = get_bundle(isa).load_spec()
    generated = synthesize(spec, buildset, options)
    if profile:
        obs.prof.meta.update(
            {
                "isa": isa,
                "buildset": buildset,
                "ilen": spec.ilen,
                "command": "kernels",
            }
        )
    records = []
    failures = 0
    for name in kernels if kernels else kernel_names():
        run = run_kernel(generated, isa, name, obs=obs)
        records.append(
            {
                "kernel": name,
                "instructions": run.executed,
                "result": run.result,
                "correct": run.correct,
                "mips": run.executed / max(run.elapsed, 1e-9) / 1e6,
            }
        )
        failures += 0 if run.correct else 1
    stats = None
    if obs is not None:
        record_generated_stats(obs, generated)
        if stats_mode:
            stats = collect(obs)
    return records, failures, stats, obs


def _cmd_kernels(args) -> int:
    stats_mode = args.stats
    records, failures, stats, obs = _run_kernel_suite(
        args.isa, args.buildset, stats_mode, args=args,
        profile=bool(args.profile),
    )
    as_json = args.json or stats_mode == "json"
    if as_json:
        doc = {
            "isa": args.isa,
            "buildset": args.buildset,
            "kernels": [
                {**r, "mips": round(r["mips"], 3)} for r in records
            ],
            "failures": failures,
        }
        if stats is not None:
            doc["stats"] = stats
        if args.profile == "-":
            doc["profile"] = profile_document(obs.prof)
        elif args.profile:
            write_chrome_trace(args.profile, obs.prof)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 1 if failures else 0
    rows = [
        [
            r["kernel"],
            r["instructions"],
            f"{r['result']:#x}",
            "ok" if r["correct"] else "WRONG",
            f"{r['mips']:.2f}",
        ]
        for r in records
    ]
    print(
        render_table(
            f"Kernel suite on {args.isa}/{args.buildset}",
            ["kernel", "instructions", "result", "check", "MIPS"],
            rows,
        )
    )
    if stats is not None:
        _print_stats(stats, stats_mode)
    if args.profile:
        _emit_profile(obs.prof, args.profile)
    return 1 if failures else 0


def _cmd_stats(args) -> int:
    """Observability-first entrypoint: run kernels, print the report."""
    kernels = args.kernel or None
    records, failures, stats, _obs = _run_kernel_suite(
        _require_isa(args.isa), args.buildset,
        "json" if args.json else "text", kernels,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "isa": args.isa,
                    "buildset": args.buildset,
                    "kernels": [
                        {**r, "mips": round(r["mips"], 3)} for r in records
                    ],
                    "failures": failures,
                    "stats": stats,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if failures else 0
    executed = sum(r["instructions"] for r in records)
    print(
        f"[{args.isa}/{args.buildset}] {len(records)} kernels, "
        f"{executed} instructions, {failures} failures"
    )
    _print_stats(stats, "text")
    return 1 if failures else 0


def _require_isa(name: str) -> str:
    """Exit 2 with the known-ISA list instead of a traceback (or argparse
    usage noise) when a static-analysis command names an unknown ISA."""
    known = available_isas()
    if name not in known:
        print(
            f"repro: unknown ISA {name!r}; known ISAs: {', '.join(known)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return name


def _cmd_profile(args) -> int:
    """Profiling-first entrypoint: run kernels, print the profile."""
    isa = _require_isa(args.isa)
    records, failures, _stats, obs = _run_kernel_suite(
        isa, args.buildset, None, args.kernel or None, profile=True
    )
    prof = obs.prof
    if args.trace_out:
        write_chrome_trace(args.trace_out, prof)
        print(f"[profile] wrote Chrome trace to {args.trace_out}",
              file=sys.stderr)
    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(folded_stacks(prof))
        print(f"[profile] wrote folded stacks to {args.folded}",
              file=sys.stderr)
    if args.json:
        doc = profile_document(prof)
        doc["kernels"] = [
            {**r, "mips": round(r["mips"], 3)} for r in records
        ]
        doc["failures"] = failures
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        executed = sum(r["instructions"] for r in records)
        print(
            f"[{isa}/{args.buildset}] {len(records)} kernels, "
            f"{executed} instructions, {failures} failures"
        )
        print(render_profile_text(prof))
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    """Bench-artifact tooling: ``bench diff`` and ``bench trail``."""
    from repro.prof.bench import (
        bench_trail,
        diff_bench,
        load_bench,
        render_diff,
        render_trail,
    )

    if args.bench_command == "diff":
        try:
            old = load_bench(args.old)
            new = load_bench(args.new)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro bench diff: {exc}", file=sys.stderr)
            return 2
        diff = diff_bench(old, new, args.threshold)
        if args.json:
            print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
        else:
            print(render_diff(diff))
        return 0 if args.warn_only else diff.exit_code
    rows = bench_trail(args.dir)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    elif not rows:
        print(f"no BENCH_*.json artifacts under {args.dir}")
    else:
        print(render_trail(rows))
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import render_json, render_text as render_lint_text
    from repro.lint.runner import lint_paths

    bundle = get_bundle(_require_isa(args.isa))
    result = lint_paths([str(p) for p in bundle.description_paths()])
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_lint_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code


def _cmd_check(args) -> int:
    from repro.check import check_isa, cost_report
    from repro.check import render_json as render_check_json
    from repro.check import render_text as render_check_text

    isa = _require_isa(args.isa)
    result = check_isa(isa, buildsets=args.buildset or None)
    if args.format == "json":
        doc = json.loads(render_check_json(result))
        if args.costs:
            doc["cost_model"] = cost_report(isa)
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            render_check_text(result, show_suppressed=args.show_suppressed)
        )
        if args.costs:
            report = cost_report(isa)
            rows = [
                [name, c["entry"], c["body"], c["total"]]
                for name, c in report["predictions"].items()
            ]
            print(
                render_table(
                    f"Static host-op predictions for {isa} "
                    f"(bytecode-length model)",
                    ["buildset", "entry", "body", "total"],
                    rows,
                )
            )
            deltas = ", ".join(
                f"{k}: {v:+.2f}" for k, v in report["deltas"].items()
            )
            print(f"Table III-style deltas: {deltas}")
    return result.exit_code


def _cmd_table1(args) -> int:
    characteristics = table1()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "isa": c.isa,
                        "isa_description_lines": c.isa_description_lines,
                        "os_support_lines": c.os_support_lines,
                        "buildset_lines": c.buildset_lines,
                        "buildsets": c.buildsets,
                        "lines_per_buildset": round(c.lines_per_buildset, 2),
                        "instructions": c.instructions,
                    }
                    for c in characteristics
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = [
        [
            c.isa,
            c.isa_description_lines,
            c.os_support_lines,
            c.buildset_lines,
            c.buildsets,
            round(c.lines_per_buildset, 1),
            c.instructions,
        ]
        for c in characteristics
    ]
    print(
        render_table(
            "Table I (analogue): instruction set characteristics",
            ["ISA", "ISA descr", "OS support", "buildsets", "#ifaces",
             "lines/iface", "#instr"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-specification simulator synthesis "
        "(ISPASS 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("isas", help="list supported instruction sets")

    p_ifaces = sub.add_parser("interfaces", help="list an ISA's buildsets")
    p_ifaces.add_argument("isa", choices=available_isas())

    def add_stats_flag(p):
        p.add_argument(
            "--stats",
            nargs="?",
            const="text",
            choices=("text", "json"),
            default=None,
            help="synthesize with observability and report statistics "
            "(--stats or --stats=json)",
        )

    def add_profile_flag(p):
        p.add_argument(
            "--profile",
            nargs="?",
            const="-",
            default=None,
            metavar="OUT.json",
            help="profile the run (span tracing + guest attribution); "
            "bare --profile prints the text report, --profile=OUT.json "
            "writes a Chrome Trace Event file instead",
        )

    p_run = sub.add_parser("run", help="assemble and run a guest program")
    p_run.add_argument("isa", choices=available_isas())
    p_run.add_argument("program", help="assembly source file")
    p_run.add_argument("--buildset", default="one_min")
    p_run.add_argument("--origin", type=lambda x: int(x, 0), default=0x1000)
    p_run.add_argument("--max", type=int, default=100_000_000)
    p_run.add_argument("--stdin", action="store_true",
                       help="pass host stdin to the guest")
    add_block_flags(p_run)
    add_stats_flag(p_run)
    add_profile_flag(p_run)

    p_dis = sub.add_parser("disasm", help="assemble and disassemble a program")
    p_dis.add_argument("isa", choices=available_isas())
    p_dis.add_argument("program")
    p_dis.add_argument("--origin", type=lambda x: int(x, 0), default=0x1000)

    p_kern = sub.add_parser("kernels", help="run the benchmark kernel suite")
    p_kern.add_argument("isa", choices=available_isas())
    p_kern.add_argument("buildset", nargs="?", default="one_min")
    p_kern.add_argument("--json", action="store_true",
                        help="emit results as JSON instead of a table")
    add_block_flags(p_kern)
    add_stats_flag(p_kern)
    add_profile_flag(p_kern)

    p_stats = sub.add_parser(
        "stats",
        help="run kernels with observability enabled, print the stats report",
    )
    p_stats.add_argument("isa")
    p_stats.add_argument("buildset", nargs="?", default="block_min")
    p_stats.add_argument(
        "--kernel",
        action="append",
        choices=kernel_names(),
        help="restrict to one kernel (repeatable); default: the whole suite",
    )
    p_stats.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")

    p_prof = sub.add_parser(
        "profile",
        help="run kernels with profiling enabled: span tree, hot guest "
        "blocks, Chrome-trace and flamegraph exports",
    )
    p_prof.add_argument("isa")
    p_prof.add_argument("buildset", nargs="?", default="block_min")
    p_prof.add_argument(
        "--kernel",
        action="append",
        choices=kernel_names(),
        help="restrict to one kernel (repeatable); default: the whole suite",
    )
    p_prof.add_argument("--json", action="store_true",
                        help="emit the profile document as JSON")
    p_prof.add_argument(
        "--trace-out", metavar="OUT.json",
        help="also write a Chrome Trace Event file (Perfetto-loadable)",
    )
    p_prof.add_argument(
        "--folded", metavar="OUT.txt",
        help="also write folded stacks for flamegraph.pl",
    )

    p_bench = sub.add_parser(
        "bench",
        help="bench-artifact tooling: regression diff and trajectory",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_diff = bench_sub.add_parser(
        "diff", help="compare two BENCH_*.json artifacts cell by cell"
    )
    p_diff.add_argument("old", help="baseline BENCH_*.json")
    p_diff.add_argument("new", help="candidate BENCH_*.json")
    p_diff.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="F",
        help="relative MIPS loss that counts as a regression "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    p_diff.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )
    p_diff.add_argument("--json", action="store_true",
                        help="emit the diff as JSON")
    p_trail = bench_sub.add_parser(
        "trail", help="summarize every BENCH_*.json in a results directory"
    )
    p_trail.add_argument(
        "--dir", default="benchmarks/_results",
        help="results directory (default: benchmarks/_results)",
    )
    p_trail.add_argument("--json", action="store_true",
                         help="emit the trajectory as JSON")

    p_lint = sub.add_parser(
        "lint", help="run static analysis over an ISA's specification files"
    )
    p_lint.add_argument("isa")
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed diagnostics in text output",
    )

    p_check = sub.add_parser(
        "check",
        help="validate every synthesized interface module of an ISA "
        "against its specification (translation validation)",
    )
    p_check.add_argument("isa")
    p_check.add_argument(
        "--buildset",
        action="append",
        help="restrict to one buildset (repeatable); default: all",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    p_check.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed diagnostics in text output",
    )
    p_check.add_argument(
        "--costs",
        action="store_true",
        help="also report the static host-op cost predictions",
    )

    p_t1 = sub.add_parser("table1", help="print the Table I analogue")
    p_t1.add_argument("--json", action="store_true",
                      help="emit the table as JSON")
    return parser


_COMMANDS = {
    "isas": _cmd_isas,
    "interfaces": _cmd_interfaces,
    "run": _cmd_run,
    "disasm": _cmd_disasm,
    "kernels": _cmd_kernels,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "stats": _cmd_stats,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "table1": _cmd_table1,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
