"""Command-line interface.

::

    python -m repro isas                          # list instruction sets
    python -m repro interfaces alpha              # list buildsets + detail
    python -m repro run alpha prog.s              # assemble + run a program
    python -m repro run alpha prog.s --buildset block_min --max 1000000
    python -m repro kernels alpha one_min         # run the kernel suite
    python -m repro disasm alpha prog.s           # assemble + disassemble
    python -m repro table1                        # Table I analogue
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.loc import table1
from repro.harness.tables import render_table
from repro.iface import InformationalDetail, SemanticDetail
from repro.isa.base import available_isas, get_bundle
from repro.isa.disasm import Disassembler
from repro.synth import synthesize
from repro.sysemu import OSEmulator, load_image
from repro.workloads import kernel_names, run_kernel


def _cmd_isas(_args) -> int:
    for isa in available_isas():
        spec = get_bundle(isa).load_spec()
        print(f"{isa:8s} {len(spec.instructions):3d} instructions, "
              f"{len(spec.buildsets)} interfaces, {spec.endian}-endian")
    return 0


def _cmd_interfaces(args) -> int:
    spec = get_bundle(args.isa).load_spec()
    rows = []
    for name, buildset in sorted(spec.buildsets.items()):
        rows.append(
            [
                name,
                SemanticDetail.of(buildset).value,
                InformationalDetail.of(buildset, spec).value,
                "yes" if buildset.speculation else "no",
                len(buildset.entrypoints),
            ]
        )
    print(
        render_table(
            f"Interfaces of {args.isa}",
            ["buildset", "semantic", "informational", "speculation", "#calls"],
            rows,
        )
    )
    return 0


def _load_program(args):
    bundle = get_bundle(args.isa)
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    image = bundle.make_assembler().assemble(source, origin=args.origin)
    return bundle, image


def _cmd_run(args) -> int:
    bundle, image = _load_program(args)
    generated = synthesize(bundle.load_spec(), args.buildset)
    os_emu = OSEmulator(bundle.abi, stdin=sys.stdin.buffer.read() if args.stdin else b"")
    sim = generated.make(syscall_handler=os_emu)
    load_image(sim.state, image, bundle.abi)
    result = sim.run(args.max)
    sys.stdout.write(bytes(os_emu.stdout).decode("latin-1"))
    sys.stderr.write(bytes(os_emu.stderr).decode("latin-1"))
    print(
        f"\n[{args.isa}/{args.buildset}] executed {result.executed} "
        f"instructions; "
        + (f"exit status {result.exit_status}" if result.exited
           else "instruction budget exhausted")
    )
    return (result.exit_status or 0) if result.exited else 2


def _cmd_disasm(args) -> int:
    bundle, image = _load_program(args)
    spec = bundle.load_spec()
    disasm = Disassembler(spec)
    for addr, data in image.segments:
        for offset in range(0, len(data) - len(data) % spec.ilen, spec.ilen):
            word = int.from_bytes(
                data[offset : offset + spec.ilen], spec.endian
            )
            print(f"{addr + offset:#8x}:  {disasm.disassemble(word)}")
    return 0


def _cmd_kernels(args) -> int:
    generated = synthesize(get_bundle(args.isa).load_spec(), args.buildset)
    rows = []
    failures = 0
    for name in kernel_names():
        run = run_kernel(generated, args.isa, name)
        rows.append(
            [
                name,
                run.executed,
                f"{run.result:#x}",
                "ok" if run.correct else "WRONG",
                f"{run.executed / max(run.elapsed, 1e-9) / 1e6:.2f}",
            ]
        )
        failures += 0 if run.correct else 1
    print(
        render_table(
            f"Kernel suite on {args.isa}/{args.buildset}",
            ["kernel", "instructions", "result", "check", "MIPS"],
            rows,
        )
    )
    return 1 if failures else 0


def _cmd_table1(_args) -> int:
    rows = [
        [
            c.isa,
            c.isa_description_lines,
            c.os_support_lines,
            c.buildset_lines,
            c.buildsets,
            round(c.lines_per_buildset, 1),
            c.instructions,
        ]
        for c in table1()
    ]
    print(
        render_table(
            "Table I (analogue): instruction set characteristics",
            ["ISA", "ISA descr", "OS support", "buildsets", "#ifaces",
             "lines/iface", "#instr"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-specification simulator synthesis "
        "(ISPASS 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("isas", help="list supported instruction sets")

    p_ifaces = sub.add_parser("interfaces", help="list an ISA's buildsets")
    p_ifaces.add_argument("isa", choices=available_isas())

    p_run = sub.add_parser("run", help="assemble and run a guest program")
    p_run.add_argument("isa", choices=available_isas())
    p_run.add_argument("program", help="assembly source file")
    p_run.add_argument("--buildset", default="one_min")
    p_run.add_argument("--origin", type=lambda x: int(x, 0), default=0x1000)
    p_run.add_argument("--max", type=int, default=100_000_000)
    p_run.add_argument("--stdin", action="store_true",
                       help="pass host stdin to the guest")

    p_dis = sub.add_parser("disasm", help="assemble and disassemble a program")
    p_dis.add_argument("isa", choices=available_isas())
    p_dis.add_argument("program")
    p_dis.add_argument("--origin", type=lambda x: int(x, 0), default=0x1000)

    p_kern = sub.add_parser("kernels", help="run the benchmark kernel suite")
    p_kern.add_argument("isa", choices=available_isas())
    p_kern.add_argument("buildset", nargs="?", default="one_min")

    sub.add_parser("table1", help="print the Table I analogue")
    return parser


_COMMANDS = {
    "isas": _cmd_isas,
    "interfaces": _cmd_interfaces,
    "run": _cmd_run,
    "disasm": _cmd_disasm,
    "kernels": _cmd_kernels,
    "table1": _cmd_table1,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
