"""Diagnostics model for the LIS specification linter.

Every finding is a :class:`Diagnostic` carrying a stable code
(``LIS001`` …), a severity, a message and a source location.  The code
registry below is the single place severities and one-line titles are
defined; :mod:`docs/linting.md` documents each code with a minimal
triggering specification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.adl.errors import SourceLoc


class Severity(enum.Enum):
    """How bad a finding is.  Only unsuppressed errors fail a lint run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    severity: Severity
    title: str


_REGISTRY: tuple[CodeInfo, ...] = (
    # -- engine ----------------------------------------------------------------
    CodeInfo("LIS000", Severity.ERROR, "specification failed semantic analysis"),
    # -- decode space ----------------------------------------------------------
    CodeInfo("LIS001", Severity.ERROR, "identical decode patterns"),
    CodeInfo("LIS002", Severity.ERROR, "ambiguous decode-pattern overlap"),
    CodeInfo("LIS003", Severity.WARNING, "decode pattern specializes another"),
    CodeInfo("LIS004", Severity.INFO, "undecodable encodings in format match space"),
    CodeInfo("LIS005", Severity.WARNING, "format has no instructions"),
    # -- specification liveness ------------------------------------------------
    CodeInfo("LIS010", Severity.WARNING, "field is never written"),
    CodeInfo("LIS011", Severity.WARNING, "field is written but never consumable"),
    CodeInfo("LIS012", Severity.WARNING, "field may be read before it is written"),
    CodeInfo("LIS013", Severity.WARNING, "action outputs are dead in every buildset"),
    # -- buildset consistency --------------------------------------------------
    CodeInfo("LIS020", Severity.ERROR, "entrypoint references unknown action"),
    CodeInfo("LIS021", Severity.WARNING, "action unreachable from buildset"),
    CodeInfo("LIS022", Severity.WARNING, "visible field is never computed"),
    CodeInfo("LIS023", Severity.ERROR, "visibility list names unknown field"),
    CodeInfo("LIS024", Severity.WARNING, "partial decode-level visibility"),
    # -- speculation safety ----------------------------------------------------
    CodeInfo("LIS030", Severity.ERROR, "unjournaled side effect under speculation"),
    CodeInfo("LIS031", Severity.ERROR, "unjournaled container store under speculation"),
    # -- snippet hygiene -------------------------------------------------------
    CodeInfo("LIS040", Severity.ERROR, "snippet calls unknown function"),
    CodeInfo("LIS041", Severity.ERROR, "decode accessor has architectural effects"),
    CodeInfo("LIS042", Severity.WARNING, "snippet shadows a builtin or helper"),
    CodeInfo("LIS043", Severity.WARNING, "accessor is never used"),
)

CODES: dict[str, CodeInfo] = {info.code: info for info in _REGISTRY}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str
    message: str
    loc: SourceLoc | None = None
    severity: Severity | None = None
    suppressed: bool = False

    def __post_init__(self) -> None:
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code].severity)

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def sort_key(self) -> tuple:
        loc = self.loc
        return (
            loc.filename if loc else "~",
            loc.line if loc else 0,
            loc.column if loc else 0,
            self.code,
            self.message,
        )

    def as_suppressed(self) -> "Diagnostic":
        return replace(self, suppressed=True)


def make_diagnostic(
    code: str, message: str, loc: SourceLoc | None = None
) -> Diagnostic:
    """Create a diagnostic with the registry's default severity."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code=code, message=message, loc=loc)


@dataclass
class LintResult:
    """The outcome of linting one specification set."""

    paths: tuple[str, ...]
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def _active(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self._active() if d.severity is Severity.INFO]

    @property
    def suppressed(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def counts(self) -> dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "suppressed": len(self.suppressed),
        }
