"""Diagnostics catalogue for the LIS specification linter.

The shared machinery (severities, :class:`Diagnostic`, result
aggregation) lives in :mod:`repro.diag` and is used identically by the
generated-code checker (:mod:`repro.check`).  This module contributes
the linter's stable ``LIS0xx`` codes to the shared registry; the code
table below is the single place their severities and one-line titles
are defined.  :mod:`docs/linting.md` documents each code with a minimal
triggering specification.
"""

from __future__ import annotations

from repro.adl.errors import SourceLoc
from repro.diag.core import (
    CodeInfo,
    Diagnostic,
    DiagnosticResult,
    Severity,
    register_codes,
)

_REGISTRY: tuple[CodeInfo, ...] = (
    # -- engine ----------------------------------------------------------------
    CodeInfo("LIS000", Severity.ERROR, "specification failed semantic analysis"),
    # -- decode space ----------------------------------------------------------
    CodeInfo("LIS001", Severity.ERROR, "identical decode patterns"),
    CodeInfo("LIS002", Severity.ERROR, "ambiguous decode-pattern overlap"),
    CodeInfo("LIS003", Severity.WARNING, "decode pattern specializes another"),
    CodeInfo("LIS004", Severity.INFO, "undecodable encodings in format match space"),
    CodeInfo("LIS005", Severity.WARNING, "format has no instructions"),
    # -- specification liveness ------------------------------------------------
    CodeInfo("LIS010", Severity.WARNING, "field is never written"),
    CodeInfo("LIS011", Severity.WARNING, "field is written but never consumable"),
    CodeInfo("LIS012", Severity.WARNING, "field may be read before it is written"),
    CodeInfo("LIS013", Severity.WARNING, "action outputs are dead in every buildset"),
    # -- buildset consistency --------------------------------------------------
    CodeInfo("LIS020", Severity.ERROR, "entrypoint references unknown action"),
    CodeInfo("LIS021", Severity.WARNING, "action unreachable from buildset"),
    CodeInfo("LIS022", Severity.WARNING, "visible field is never computed"),
    CodeInfo("LIS023", Severity.ERROR, "visibility list names unknown field"),
    CodeInfo("LIS024", Severity.WARNING, "partial decode-level visibility"),
    # -- speculation safety ----------------------------------------------------
    CodeInfo("LIS030", Severity.ERROR, "unjournaled side effect under speculation"),
    CodeInfo("LIS031", Severity.ERROR, "unjournaled container store under speculation"),
    # -- snippet hygiene -------------------------------------------------------
    CodeInfo("LIS040", Severity.ERROR, "snippet calls unknown function"),
    CodeInfo("LIS041", Severity.ERROR, "decode accessor has architectural effects"),
    CodeInfo("LIS042", Severity.WARNING, "snippet shadows a builtin or helper"),
    CodeInfo("LIS043", Severity.WARNING, "accessor is never used"),
)

#: The linter's own codes (a view into the shared registry).
CODES: dict[str, CodeInfo] = register_codes(_REGISTRY)

#: Lint results are plain shared diagnostic results.
LintResult = DiagnosticResult


def make_diagnostic(
    code: str, message: str, loc: SourceLoc | None = None
) -> Diagnostic:
    """Create a lint diagnostic with the registry's default severity."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code=code, message=message, loc=loc)


__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintResult",
    "Severity",
    "make_diagnostic",
]
