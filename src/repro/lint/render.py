"""Rendering of lint results — shared with the checker via :mod:`repro.diag`.

Kept as an import shim so existing ``repro.lint.render`` consumers keep
working; the implementation (and the stable JSON document shape) lives
in :mod:`repro.diag.render`.
"""

from __future__ import annotations

from repro.diag.render import (
    JSON_FORMAT_VERSION,
    diagnostic_to_dict,
    render_json,
    render_text,
)

__all__ = [
    "JSON_FORMAT_VERSION",
    "diagnostic_to_dict",
    "render_json",
    "render_text",
]
