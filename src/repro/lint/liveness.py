"""Specification liveness diagnostics (LIS010-LIS013).

Built on the same read/write facts the synthesizer's dead-code
elimination uses (:mod:`repro.adl.snippets` / :mod:`repro.synth.dataflow`):
fields nothing ever writes, fields written but never consumable, fields
read before any action can have written them, and actions whose entire
output set is dead in every buildset.
"""

from __future__ import annotations

import ast

from repro.adl import snippets
from repro.adl.errors import SourceLoc
from repro.adl.spec import ALWAYS_VISIBLE, Instruction, IsaSpec
from repro.lint.core import Diagnostic, make_diagnostic
from repro.synth.dataflow import stmt_is_anchored

#: Builtin fields the harness defines before any action runs: ``pc`` /
#: ``phys_pc`` / ``instr_bits`` at fetch, ``next_pc = pc + ilen`` and the
#: ``fault`` reset injected at decode by the code generator.
_PRE_DEFINED = frozenset(
    {"pc", "phys_pc", "instr_bits", "next_pc", "fault"}
)


def _spec_globals(spec: IsaSpec) -> set[str]:
    return (
        set(spec.regfiles)
        | set(spec.sregs)
        | set(spec.helpers)
        | set(snippets.PURE_FUNCTIONS)
        | set(snippets.EFFECT_FUNCTIONS)
        | {"True", "False", "None"}
    )


def _field_reads_writes(spec: IsaSpec) -> tuple[dict[str, int], dict[str, int]]:
    """Per-field read/write occurrence counts across all action code."""
    field_names = set(spec.fields)
    reads: dict[str, int] = {}
    writes: dict[str, int] = {}
    for instr in spec.instructions:
        for stmts in instr.action_code.values():
            facts = snippets.analyze_stmts(list(stmts))
            for name in facts.reads & field_names:
                reads[name] = reads.get(name, 0) + 1
            for name in facts.writes & field_names:
                writes[name] = writes.get(name, 0) + 1
    return reads, writes


def check_field_liveness(spec: IsaSpec) -> list[Diagnostic]:
    """LIS010/LIS011: declared fields nothing writes or nothing consumes."""
    diags: list[Diagnostic] = []
    reads, writes = _field_reads_writes(spec)
    explicit_shows: set[str] = set()
    for buildset in spec.buildsets.values():
        explicit_shows |= buildset.explicit_shows
    predicate_field = spec.predicate[0] if spec.predicate else None
    for name, field in sorted(spec.fields.items()):
        if field.builtin:
            continue
        if name not in writes and name not in reads:
            diags.append(
                make_diagnostic(
                    "LIS010",
                    f"field {name!r} is never written (or read) by any "
                    f"action or accessor",
                    field.loc,
                )
            )
            continue
        if name not in writes:
            diags.append(
                make_diagnostic(
                    "LIS010",
                    f"field {name!r} is read but never written by any "
                    f"action or accessor",
                    field.loc,
                )
            )
            continue
        consumable = (
            name in reads
            or name == predicate_field
            or name in explicit_shows
        )
        if not consumable:
            diags.append(
                make_diagnostic(
                    "LIS011",
                    f"field {name!r} is written but never read by any "
                    f"action and never explicitly shown by any buildset; "
                    f"its computation is dead code in every interface",
                    field.loc,
                )
            )
    return diags


def _walk_reads_before_write(
    stmts: tuple[ast.stmt, ...] | list[ast.stmt],
    defined: set[str],
    known: set[str],
    undefined_reads: dict[str, None],
) -> set[str]:
    """Record field reads not dominated by a write; return the new defs.

    ``if`` branches are handled recursively and *optimistically*: writes
    on either branch count as definitions afterwards, so only reads that
    no path can have defined are reported (matching the code generator,
    which zero-initializes such names rather than crashing).
    """
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            test_reads = snippets.analyze_stmts(
                [ast.Expr(stmt.test)]
            ).reads
            for name in sorted(test_reads - defined - known):
                undefined_reads.setdefault(name)
            branch_defs = set(defined)
            for branch in (stmt.body, stmt.orelse):
                branch_defined = set(defined)
                _walk_reads_before_write(
                    branch, branch_defined, known, undefined_reads
                )
                branch_defs |= branch_defined
            defined |= branch_defs
            continue
        facts = snippets.analyze_stmt(stmt)
        for name in sorted(facts.reads - defined - known - facts.writes):
            undefined_reads.setdefault(name)
        defined |= facts.writes
    return defined


def _reached_action_sequences(spec: IsaSpec) -> list[tuple[str, ...]]:
    """Distinct ordered action subsets some buildset actually runs.

    Entrypoints invoke a subset of the declared actions, always in
    specification order; a field written only by an action a buildset
    never runs is undefined for that buildset even though the whole
    ``action_order`` would define it.  Specs without buildsets are
    checked over the full action order.
    """
    if not spec.buildsets:
        return [tuple(spec.action_order)]
    sequences: list[tuple[str, ...]] = []
    for buildset in spec.buildsets.values():
        reached = {a for ep in buildset.entrypoints for a in ep.actions}
        seq = tuple(a for a in spec.action_order if a in reached)
        if seq not in sequences:
            sequences.append(seq)
    return sequences


def check_read_before_write(spec: IsaSpec) -> list[Diagnostic]:
    """LIS012: fields an instruction may read before anything wrote them.

    Checked per buildset: the defined set is threaded across the actions
    that buildset's entrypoints actually invoke (in specification order),
    so a read served by an action only *other* buildsets run is still
    reported.  Only declared fields are reported — snippet locals are the
    code generator's business.
    """
    diags: list[Diagnostic] = []
    globals_ = _spec_globals(spec)
    field_names = set(spec.fields)
    reported: set[tuple[str, str, str]] = set()
    for instr in spec.instructions:
        known = globals_ | set(instr.format.bitfields)
        for sequence in _reached_action_sequences(spec):
            defined: set[str] = set(_PRE_DEFINED)
            for action in sequence:
                stmts = instr.action_code.get(action)
                if not stmts:
                    continue
                undefined: dict[str, None] = {}
                _walk_reads_before_write(stmts, defined, known, undefined)
                for name in undefined:
                    if name not in field_names:
                        continue
                    key = (instr.name, action, name)
                    if key in reported:
                        continue
                    reported.add(key)
                    diags.append(
                        make_diagnostic(
                            "LIS012",
                            f"instruction {instr.name!r}, action {action!r}: "
                            f"field {name!r} may be read before any action "
                            f"writes it (it would silently read as zero)",
                            instr.action_locs.get(action) or instr.loc,
                        )
                    )
    return diags


def _action_loc(spec: IsaSpec, action: str) -> SourceLoc | None:
    for instr in spec.instructions:
        loc = instr.action_locs.get(action)
        if loc is not None:
            return loc
    return None


def _action_is_anchored(instr: Instruction, action: str, spec: IsaSpec) -> bool:
    stmts = instr.action_code.get(action, ())
    pure_extra = frozenset(spec.helpers)
    facts = snippets.analyze_stmts(list(stmts))
    if stmt_is_anchored(facts, pure_extra):
        return True
    # Writes to special registers or control-flow builtins keep an action
    # alive regardless of field visibility.
    anchored_writes = set(spec.sregs) | {"next_pc", "fault"}
    return bool(facts.writes & anchored_writes)


def check_dead_actions(spec: IsaSpec) -> list[Diagnostic]:
    """LIS013: actions whose outputs are dead in every buildset.

    An action is dead when no instruction's code for it has architectural
    effects and every field it writes is (a) never read by another action
    and (b) hidden in every buildset that reaches the action.
    """
    diags: list[Diagnostic] = []
    field_names = set(spec.fields)
    # Field reads per action, so an action's outputs consumed by another
    # action (or the predicate) count as live.
    reads_elsewhere: dict[str, set[str]] = {}
    writes_by_action: dict[str, set[str]] = {}
    anchored_actions: set[str] = set()
    for instr in spec.instructions:
        for action, stmts in instr.action_code.items():
            facts = snippets.analyze_stmts(list(stmts))
            writes_by_action.setdefault(action, set()).update(
                facts.writes & field_names
            )
            for name in facts.reads & field_names:
                reads_elsewhere.setdefault(name, set()).add(action)
            if _action_is_anchored(instr, action, spec):
                anchored_actions.add(action)
    if spec.predicate:
        reads_elsewhere.setdefault(spec.predicate[0], set()).add("<predicate>")
    for action in spec.action_order:
        outputs = writes_by_action.get(action)
        if outputs is None or action in anchored_actions:
            continue
        consumed = any(
            reads_elsewhere.get(name, set()) - {action} for name in outputs
        )
        if consumed:
            continue
        reaching = [
            bs
            for bs in spec.buildsets.values()
            if action in {a for ep in bs.entrypoints for a in ep.actions}
        ]
        if not reaching:
            continue  # LIS021's department
        # ALWAYS_VISIBLE builtins stay in every interface, so writing one
        # (e.g. fetch writing instr_bits) always counts as consumed.
        visible_somewhere = any(outputs & bs.visible for bs in reaching)
        if visible_somewhere:
            continue
        diags.append(
            make_diagnostic(
                "LIS013",
                f"action {action!r} writes only "
                f"{sorted(outputs)} which no other action reads and every "
                f"buildset reaching it hides; its outputs are dead in "
                f"every interface",
                _action_loc(spec, action),
            )
        )
    return diags


def check_liveness(spec: IsaSpec) -> list[Diagnostic]:
    return (
        check_field_liveness(spec)
        + check_read_before_write(spec)
        + check_dead_actions(spec)
    )
