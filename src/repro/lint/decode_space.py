"""Decode-space diagnostics (LIS001-LIS005).

Pairwise mask/value intersection over ``Instruction.patterns`` finds
*overlapping* — not merely identical — encodings, and exact
disjoint-cube counting reports how much of each format's match space
actually decodes to an instruction.
"""

from __future__ import annotations

from repro.adl.spec import IsaSpec
from repro.lint.core import Diagnostic, make_diagnostic
from repro.lint.decode import find_pattern_conflicts, match_space_coverage


def check_decode_space(spec: IsaSpec) -> list[Diagnostic]:
    diags: list[Diagnostic] = []

    # -- LIS001/LIS002/LIS003: pairwise pattern overlaps --------------------
    for conflict in find_pattern_conflicts(spec.instructions):
        loc = conflict.b_loc or conflict.a_loc
        if conflict.kind == "identical":
            diags.append(
                make_diagnostic(
                    "LIS001",
                    f"instructions {conflict.a!r} and {conflict.b!r} have "
                    f"identical decode patterns (mask "
                    f"{conflict.pattern_a[0]:#x}, value "
                    f"{conflict.pattern_a[1]:#x}); only one can ever decode",
                    loc,
                )
            )
        elif conflict.kind == "ambiguous":
            diags.append(
                make_diagnostic(
                    "LIS002",
                    f"instructions {conflict.a!r} and {conflict.b!r} have "
                    f"overlapping decode patterns and neither is more "
                    f"specific; dispatch order for the shared encodings is "
                    f"arbitrary",
                    loc,
                )
            )
        else:  # specializes: a is the more specific instruction
            diags.append(
                make_diagnostic(
                    "LIS003",
                    f"decode pattern of {conflict.a!r} specializes "
                    f"{conflict.b!r}: every encoding of {conflict.a!r} also "
                    f"matches {conflict.b!r} (resolved deterministically, "
                    f"most specific first)",
                    conflict.a_loc or conflict.b_loc,
                )
            )

    # -- LIS004/LIS005: per-format coverage ---------------------------------
    by_format: dict[str, list[tuple[int, int]]] = {name: [] for name in spec.formats}
    for instr in spec.instructions:
        by_format.setdefault(instr.format.name, []).extend(instr.patterns)
    for name, patterns in sorted(by_format.items()):
        fmt = spec.formats.get(name)
        loc = fmt.loc if fmt else None
        if not patterns:
            diags.append(
                make_diagnostic(
                    "LIS005",
                    f"format {name!r} is declared but no instruction uses it",
                    loc,
                )
            )
            continue
        report = match_space_coverage(patterns)
        if report is None or report.uncovered == 0:
            continue
        diags.append(
            make_diagnostic(
                "LIS004",
                f"format {name!r}: {report.uncovered} of {report.space} "
                f"distinguishable encodings ({1 - report.covered_fraction:.1%}) "
                f"decode to no instruction",
                loc,
            )
        )
    return diags
