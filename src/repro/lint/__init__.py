"""Static analysis over LIS specifications.

The linter runs a suite of passes over the analyzed :class:`IsaSpec`
and its buildsets and reports :class:`Diagnostic` findings with stable
codes (``LIS001`` …), severities and source locations.  See
``docs/linting.md`` for the code catalogue.

Exports are resolved lazily (PEP 562) because :mod:`repro.adl.analyzer`
imports :mod:`repro.lint.decode` for its decode-conflict check — an
eager import of the runner here would close an import cycle.
"""

from __future__ import annotations

__all__ = [
    "CODES",
    "Diagnostic",
    "LintResult",
    "Severity",
    "lint_paths",
    "lint_source",
    "lint_spec",
    "render_json",
    "render_text",
]

_CORE = {"CODES", "Diagnostic", "LintResult", "Severity"}
_RUNNER = {"lint_paths", "lint_source", "lint_spec"}
_RENDER = {"render_json", "render_text"}


def __getattr__(name: str):
    if name in _CORE:
        from repro.lint import core

        return getattr(core, name)
    if name in _RUNNER:
        from repro.lint import runner

        return getattr(runner, name)
    if name in _RENDER:
        from repro.lint import render

        return getattr(render, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
