"""Decode-pattern set arithmetic: overlap classification and coverage.

An instruction's decode alternative is a *cube* over the instruction
word: a ``(mask, value)`` pair matching every word ``w`` with
``w & mask == value``.  Everything the decode-space diagnostics and the
analyzer's hard conflict check need reduces to three operations on
cubes: intersection tests, pairwise overlap classification, and exact
counting of a union of cubes (for coverage reports).

This module deliberately imports nothing from the rest of the package so
:mod:`repro.adl.analyzer` can share the conflict check without an import
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adl.errors import SourceLoc
    from repro.adl.spec import Instruction

Pattern = tuple[int, int]  # (mask, value)

#: Safety valve for the disjoint-cube union count: coverage reporting is
#: informational, so a pathological format simply loses its report.
_MAX_DISJOINT_CUBES = 8192


def patterns_intersect(a: Pattern, b: Pattern) -> bool:
    """True when at least one instruction word matches both patterns."""
    common = a[0] & b[0]
    return (a[1] ^ b[1]) & common == 0


def classify_overlap(a: Pattern, b: Pattern) -> str | None:
    """Classify the relationship between two decode patterns.

    Returns ``None`` when the patterns are disjoint, otherwise one of:

    * ``"identical"`` — same mask and value: every word matching one
      matches the other;
    * ``"a_specializes"`` / ``"b_specializes"`` — one mask is a strict
      superset of the other and the values agree on the common bits, so
      one match set strictly contains the other.  Popcount-ordered
      dispatch resolves this deterministically (most specific first);
    * ``"ambiguous"`` — the match sets intersect but neither contains
      the other: some words match both and dispatch order is arbitrary.
    """
    if not patterns_intersect(a, b):
        return None
    if a[0] == b[0]:
        return "identical"
    if a[0] & b[0] == b[0]:  # a's mask is a strict superset of b's
        return "a_specializes"
    if a[0] & b[0] == a[0]:
        return "b_specializes"
    return "ambiguous"


@dataclass(frozen=True)
class PatternConflict:
    """One overlapping pattern pair between two distinct instructions."""

    kind: str  # "identical" | "specializes" | "ambiguous"
    a: str  # the more specific instruction for "specializes"
    b: str
    pattern_a: Pattern
    pattern_b: Pattern
    a_loc: "SourceLoc | None" = None
    b_loc: "SourceLoc | None" = None


def find_pattern_conflicts(
    instructions: Sequence["Instruction"],
) -> list[PatternConflict]:
    """All pairwise decode-pattern overlaps between distinct instructions.

    Alternatives *within* one instruction may overlap freely (they are
    OR-ed).  One conflict is reported per (instruction pair, kind); for
    ``"specializes"`` the more specific instruction is ``a``.
    """
    conflicts: list[PatternConflict] = []
    seen: set[tuple[str, str, str]] = set()
    for i, first in enumerate(instructions):
        for second in instructions[i + 1 :]:
            for pa in first.patterns:
                for pb in second.patterns:
                    kind = classify_overlap(pa, pb)
                    if kind is None:
                        continue
                    # Orient into fresh names: pa/pb must stay bound to the
                    # original patterns for the remaining inner iterations.
                    if kind == "b_specializes":
                        a, b = second, first
                        pat_a, pat_b = pb, pa
                        kind = "specializes"
                    else:
                        a, b = first, second
                        pat_a, pat_b = pa, pb
                        if kind == "a_specializes":
                            kind = "specializes"
                    key = (a.name, b.name, kind)
                    if key in seen:
                        continue
                    seen.add(key)
                    conflicts.append(
                        PatternConflict(
                            kind=kind,
                            a=a.name,
                            b=b.name,
                            pattern_a=pat_a,
                            pattern_b=pat_b,
                            a_loc=getattr(a, "loc", None),
                            b_loc=getattr(b, "loc", None),
                        )
                    )
    return conflicts


def _subtract_cube(a: Pattern, b: Pattern) -> list[Pattern]:
    """``a \\ b`` as a list of disjoint cubes (standard decomposition)."""
    if not patterns_intersect(a, b):
        return [a]
    out: list[Pattern] = []
    mask, value = a
    split_bits = b[0] & ~a[0]
    bit = 1
    while bit <= split_bits:
        if split_bits & bit:
            # Fix this bit opposite to b; all later pieces agree with b on
            # the bits already processed, keeping the pieces disjoint.
            out.append((mask | bit, value | (bit & ~b[1])))
            mask |= bit
            value |= b[1] & bit
        bit <<= 1
    return out  # empty when a is entirely inside b


@dataclass(frozen=True)
class CoverageReport:
    """How much of a format's match-bit space decodes to something."""

    union_mask: int  # bits constrained by at least one pattern
    space: int  # 2 ** popcount(union_mask)
    covered: int  # encodings (within that space) matching some pattern

    @property
    def uncovered(self) -> int:
        return self.space - self.covered

    @property
    def covered_fraction(self) -> float:
        return self.covered / self.space if self.space else 1.0


def match_space_coverage(patterns: Iterable[Pattern]) -> CoverageReport | None:
    """Exact union size of the patterns, projected onto their match bits.

    Bits never constrained by any pattern are quotiented out: the report
    speaks about the ``2**popcount(union mask)`` distinguishable
    encodings.  Returns ``None`` for an empty pattern list or when the
    disjoint-cube union grows past a safety limit.
    """
    patterns = list(patterns)
    if not patterns:
        return None
    union_mask = 0
    for mask, _ in patterns:
        union_mask |= mask
    space = 1 << bin(union_mask).count("1")
    disjoint: list[Pattern] = []
    for cube in patterns:
        pieces = [cube]
        for existing in disjoint:
            pieces = [
                part for piece in pieces for part in _subtract_cube(piece, existing)
            ]
            if not pieces:
                break
        disjoint.extend(pieces)
        if len(disjoint) > _MAX_DISJOINT_CUBES:
            return None
    free_bits_total = bin(union_mask).count("1")
    covered = 0
    for mask, _ in disjoint:
        fixed = bin(mask).count("1")
        covered += 1 << (free_bits_total - fixed)
    return CoverageReport(union_mask=union_mask, space=space, covered=covered)
