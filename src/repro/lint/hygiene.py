"""Snippet-hygiene diagnostics (LIS040-LIS043).

Accessor-level checks the analyzer cannot make: an accessor is only
validated once it is instantiated for an instruction, so an unused
accessor with a broken snippet sails through analysis — until someone
binds it.  Plus shadowing checks over every snippet in the spec.
"""

from __future__ import annotations

from repro.adl import snippets
from repro.adl.errors import SourceLoc
from repro.adl.spec import IsaSpec
from repro.lint.core import Diagnostic, make_diagnostic


def _shadowable_names(spec: IsaSpec) -> set[str]:
    # Special registers are deliberately absent: assigning to an sreg name
    # is the normal (journaled) way to write one, not shadowing.
    return (
        set(snippets.PURE_FUNCTIONS)
        | set(snippets.EFFECT_FUNCTIONS)
        | set(spec.helpers)
        | set(spec.regfiles)
    )


def check_hygiene(spec: IsaSpec) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    known_calls = (
        set(snippets.PURE_FUNCTIONS)
        | set(snippets.EFFECT_FUNCTIONS)
        | set(spec.helpers)
    )
    shadowable = _shadowable_names(spec)

    used_accessors = {
        binding.accessor.name
        for instr in spec.instructions
        for binding in instr.operands
    }

    for name, accessor in sorted(spec.accessors.items()):
        parts = (
            ("decode", accessor.decode),
            ("read", accessor.read),
            ("write", accessor.write),
        )
        for part_name, stmts in parts:
            if not stmts:
                continue
            facts = snippets.analyze_stmts(list(stmts))
            # -- LIS040: calls that resolve to nothing ------------------------
            for call in sorted(facts.unknown_calls):
                diags.append(
                    make_diagnostic(
                        "LIS040",
                        f"accessor {name!r} ({part_name}) calls unknown "
                        f"function {call!r}",
                        accessor.loc,
                    )
                )
            # -- LIS041: decode must be pure ----------------------------------
            if part_name == "decode" and (facts.effects or facts.subscript_writes):
                what = sorted(facts.effects | facts.subscript_writes)
                diags.append(
                    make_diagnostic(
                        "LIS041",
                        f"accessor {name!r}: decode snippet has "
                        f"architectural effects ({', '.join(what)}); decode "
                        f"runs speculatively and repeatedly and must be pure",
                        accessor.loc,
                    )
                )
            # -- LIS042: shadowing builtins/helpers/registers ------------------
            for shadowed in sorted(facts.writes & shadowable):
                diags.append(
                    make_diagnostic(
                        "LIS042",
                        f"accessor {name!r} ({part_name}) assigns to "
                        f"{shadowed!r}, shadowing a builtin, helper or "
                        f"register name",
                        accessor.loc,
                    )
                )
        # -- LIS043: accessor never bound by any operand ----------------------
        if name not in used_accessors:
            diags.append(
                make_diagnostic(
                    "LIS043",
                    f"accessor {name!r} is never bound to an operand slot "
                    f"by any instruction or class",
                    accessor.loc,
                )
            )

    # -- LIS042 over instruction action snippets ------------------------------
    seen: set[tuple[object, ...]] = set()
    for instr in spec.instructions:
        for action, stmts in instr.action_code.items():
            facts = snippets.analyze_stmts(list(stmts))
            loc: SourceLoc | None = instr.action_locs.get(action) or instr.loc
            for shadowed in sorted(facts.writes & shadowable):
                # Dedup by snippet source location so a class-level snippet
                # shared by many instructions reports once; loc-less
                # snippets fall back to their (instruction, action) identity
                # so distinct snippets are not collapsed together.
                key = (
                    (loc.filename, loc.line, shadowed)
                    if loc is not None
                    else (instr.name, action, shadowed)
                )
                if key in seen:
                    continue
                seen.add(key)
                diags.append(
                    make_diagnostic(
                        "LIS042",
                        f"action snippet (instruction {instr.name!r}, "
                        f"action {action!r}) assigns to {shadowed!r}, "
                        f"shadowing a builtin, helper or register name",
                        loc,
                    )
                )
    return diags
