"""Inline suppression handling — shared with the checker via :mod:`repro.diag`.

Kept as an import shim so existing ``repro.lint.suppress`` consumers
keep working; the implementation lives in :mod:`repro.diag.suppress`.
Both ``# lint: disable=`` and ``# check: disable=`` comment forms are
accepted, identically, by the linter and the generated-code checker.
"""

from __future__ import annotations

from repro.diag.suppress import SuppressionIndex, loc_line, parse_disables

__all__ = ["SuppressionIndex", "loc_line", "parse_disables"]
