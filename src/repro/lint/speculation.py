"""Speculation-safety diagnostics (LIS030/LIS031).

A ``speculation on`` buildset lets the timing model execute down a wrong
path and roll back.  The synthesizer journals register-file subscript
stores, special-register writes and ``__mem_write`` so they can be
undone; anything else with an architectural effect — ``__syscall`` above
all — escapes the journal and survives a rollback.  These checks flag
every snippet reachable from a speculative buildset whose effects the
journal cannot undo.
"""

from __future__ import annotations

from repro.adl.snippets import analyze_stmts
from repro.adl.spec import IsaSpec
from repro.lint.core import Diagnostic, make_diagnostic

#: Effect functions the speculation journal can undo. ``__raise`` only
#: writes the per-instruction ``fault`` field, which is context-local and
#: rolled back for free.
_JOURNALED_EFFECTS = frozenset({"__mem_write", "__raise"})


def check_speculation(spec: IsaSpec) -> list[Diagnostic]:
    spec_buildsets = [bs for bs in spec.buildsets.values() if bs.speculation]
    if not spec_buildsets:
        return []
    reachable: dict[str, list[str]] = {}
    for buildset in spec_buildsets:
        for entrypoint in buildset.entrypoints:
            for action in entrypoint.actions:
                reachable.setdefault(action, []).append(buildset.name)

    diags: list[Diagnostic] = []
    seen: set[tuple[str, str, str, str]] = set()
    for instr in spec.instructions:
        for action, stmts in instr.action_code.items():
            buildsets = reachable.get(action)
            if not buildsets:
                continue
            facts = analyze_stmts(list(stmts))
            loc = instr.action_locs.get(action) or instr.loc
            names = ", ".join(sorted(set(buildsets)))
            for effect in sorted(facts.effects - _JOURNALED_EFFECTS):
                key = ("LIS030", instr.name, action, effect)
                if key in seen:
                    continue
                seen.add(key)
                diags.append(
                    make_diagnostic(
                        "LIS030",
                        f"instruction {instr.name!r}, action {action!r} "
                        f"calls {effect} but is reachable from speculative "
                        f"buildset(s) {names}; its effects cannot be "
                        f"rolled back",
                        loc,
                    )
                )
            unjournaled = facts.subscript_writes - set(spec.regfiles)
            for container in sorted(unjournaled):
                key = ("LIS031", instr.name, action, container)
                if key in seen:
                    continue
                seen.add(key)
                diags.append(
                    make_diagnostic(
                        "LIS031",
                        f"instruction {instr.name!r}, action {action!r} "
                        f"stores into {container!r}, which is not a "
                        f"journaled register file, under speculative "
                        f"buildset(s) {names}",
                        loc,
                    )
                )
    return diags
