"""Lint orchestration: sources -> declarations -> spec -> diagnostics.

Three entry points:

* :func:`lint_paths` — what ``repro lint <isa>`` uses: parse + analyze a
  set of ``.lis`` files and run every pass.
* :func:`lint_source` — same for one in-memory source (tests).
* :func:`lint_spec` — passes that need only the analyzed spec; this is
  the ``synthesize(strict=True)`` gate, which has no declarations left.

Declaration-level checks run first so that a spec the analyzer rejects
still yields located diagnostics; the analyzer itself runs with
``check_decode=False`` because the decode-space pass reports overlaps
with more nuance (LIS001/LIS002/LIS003) than the single hard error.
"""

from __future__ import annotations

from repro.adl import syntax as syn
from repro.adl.analyzer import analyze
from repro.adl.errors import ADLError
from repro.adl.parser import parse_source
from repro.adl.spec import IsaSpec
from repro.lint.buildsets import check_buildset_decls, check_buildsets
from repro.lint.core import Diagnostic, LintResult
from repro.lint.decode_space import check_decode_space
from repro.lint.hygiene import check_hygiene
from repro.lint.liveness import check_liveness
from repro.lint.speculation import check_speculation
from repro.lint.suppress import SuppressionIndex

_SPEC_PASSES = (
    check_decode_space,
    check_liveness,
    check_buildsets,
    check_speculation,
    check_hygiene,
)


def lint_spec(spec: IsaSpec) -> list[Diagnostic]:
    """Run every spec-level pass; unsorted, unsuppressed diagnostics."""
    diags: list[Diagnostic] = []
    for check in _SPEC_PASSES:
        diags.extend(check(spec))
    return diags


def lint_decls(
    decls: list[syn.Decl],
) -> tuple[list[Diagnostic], IsaSpec | None]:
    """Declaration checks, then analysis, then spec passes."""
    diags = check_buildset_decls(decls)
    try:
        spec = analyze(decls, check_decode=False)
    except ADLError as exc:
        if not any(d.severity.value == "error" for d in diags):
            diags.append(
                Diagnostic(
                    code="LIS000",
                    message=f"specification failed analysis: {exc.message}",
                    loc=exc.loc,
                )
            )
        return diags, None
    diags.extend(lint_spec(spec))
    return diags, spec


def _finish(
    paths: tuple[str, ...],
    diags: list[Diagnostic],
    suppressions: SuppressionIndex,
) -> LintResult:
    marked = suppressions.apply(diags)
    marked.sort(key=Diagnostic.sort_key)
    return LintResult(paths=paths, diagnostics=marked)


def lint_paths(paths: list[str]) -> LintResult:
    """Lint a set of ``.lis`` files (parsed in order, as ``load_isa`` does)."""
    decls: list[syn.Decl] = []
    sources: dict[str, str] = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        sources[path] = text
        try:
            decls.extend(parse_source(text, path))
        except ADLError as exc:
            return _finish(
                tuple(paths),
                [_parse_failure(exc)],
                SuppressionIndex(sources),
            )
    diags, _spec = lint_decls(decls)
    return _finish(tuple(paths), diags, SuppressionIndex(sources))


def lint_source(text: str, filename: str = "<lint>") -> LintResult:
    """Lint one in-memory ADL source (unit tests and tooling)."""
    suppressions = SuppressionIndex({filename: text})
    try:
        decls = parse_source(text, filename)
    except ADLError as exc:
        return _finish((filename,), [_parse_failure(exc)], suppressions)
    diags, _spec = lint_decls(decls)
    return _finish((filename,), diags, suppressions)


def _parse_failure(exc: ADLError) -> Diagnostic:
    return Diagnostic(
        code="LIS000",
        message=f"specification failed to parse: {exc.message}",
        loc=exc.loc,
    )


def lint_analyzed_spec(spec: IsaSpec) -> LintResult:
    """Lint an already-analyzed spec (the ``synthesize(strict=True)`` gate).

    Suppressions still work: diagnostics carry source locations into the
    ``.lis`` files, and the index reads those files from disk on demand.
    """
    return _finish((spec.name,), lint_spec(spec), SuppressionIndex())
