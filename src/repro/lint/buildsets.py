"""Buildset-consistency diagnostics (LIS020-LIS024).

Two layers: declaration-level checks that run *before* semantic analysis
(so a broken buildset is reported with its own location instead of one
opaque analysis failure), and spec-level checks over the analyzed
:class:`IsaSpec`.
"""

from __future__ import annotations

from repro.adl import syntax as syn
from repro.adl.spec import ALWAYS_VISIBLE, BUILTIN_FIELDS, IsaSpec
from repro.adl.snippets import analyze_stmts
from repro.lint.core import Diagnostic, make_diagnostic

#: Fields the timing-model taxonomy treats as decode-level information:
#: operand identifiers plus the dependence/control hints (paper §III's
#: "DecodeInfo" column).
_DECODE_HINT_FIELDS = ("effective_addr", "branch_taken", "branch_target")


def check_buildset_decls(decls: list[syn.Decl]) -> list[Diagnostic]:
    """LIS020/LIS023 on raw declarations.

    A light collection pass (names only) stands in for the analyzer so
    these fire even when analysis would abort on the same problem.
    """
    actions: set[str] = set()
    groups: set[str] = set()
    fields: set[str] = set(BUILTIN_FIELDS)
    for decl in decls:
        if isinstance(decl, syn.ActionsOrderDecl):
            actions.update(decl.names)
        elif isinstance(decl, syn.GroupDecl):
            groups.add(decl.name)
        elif isinstance(decl, syn.FieldDecl):
            fields.add(decl.name)
        elif isinstance(decl, syn.OperandNameDecl):
            fields.add(f"{decl.name}_id")
            fields.add(decl.value_field)

    diags: list[Diagnostic] = []
    for decl in decls:
        if isinstance(decl, syn.GroupDecl):
            for name in decl.actions:
                if name not in actions and name not in groups:
                    diags.append(
                        make_diagnostic(
                            "LIS020",
                            f"group {decl.name!r} references unknown action "
                            f"or group {name!r}",
                            decl.loc,
                        )
                    )
            continue
        if not isinstance(decl, syn.BuildsetDecl):
            continue
        for stmt in decl.statements:
            if isinstance(stmt, syn.EntrypointStmt):
                for name in stmt.actions:
                    if name not in actions and name not in groups:
                        diags.append(
                            make_diagnostic(
                                "LIS020",
                                f"buildset {decl.name!r}, entrypoint "
                                f"{stmt.name!r} references unknown action "
                                f"or group {name!r}",
                                stmt.loc,
                            )
                        )
            elif isinstance(stmt, syn.VisibilityStmt):
                for name in stmt.names:
                    if name not in fields:
                        diags.append(
                            make_diagnostic(
                                "LIS023",
                                f"buildset {decl.name!r}: visibility list "
                                f"names unknown field {name!r}",
                                stmt.loc,
                            )
                        )
    return diags


def check_buildsets(spec: IsaSpec) -> list[Diagnostic]:
    """LIS021/LIS022/LIS024 over the analyzed specification."""
    diags: list[Diagnostic] = []
    field_names = set(spec.fields)

    # Field writes per action, across all instructions.
    writes_by_action: dict[str, set[str]] = {}
    for instr in spec.instructions:
        for action, stmts in instr.action_code.items():
            writes_by_action.setdefault(action, set()).update(
                analyze_stmts(list(stmts)).writes & field_names
            )

    # -- LIS021: actions no buildset's entrypoints ever reach ----------------
    reachable: set[str] = set()
    for buildset in spec.buildsets.values():
        for entrypoint in buildset.entrypoints:
            reachable.update(entrypoint.actions)
    for action in spec.action_order:
        if action in reachable:
            continue
        loc = None
        for instr in spec.instructions:
            loc = instr.action_locs.get(action)
            if loc is not None:
                break
        diags.append(
            make_diagnostic(
                "LIS021",
                f"action {action!r} is unreachable: no entrypoint of any "
                f"buildset ever invokes it",
                loc,
            )
        )

    decode_fields = {f for f in field_names if f.endswith("_id") and spec.fields[f].slot}
    decode_fields |= set(_DECODE_HINT_FIELDS) & field_names

    for name, buildset in sorted(spec.buildsets.items()):
        bs_reachable = {
            action
            for entrypoint in buildset.entrypoints
            for action in entrypoint.actions
        }
        written = set()
        for action in bs_reachable:
            written |= writes_by_action.get(action, set())

        # -- LIS022: explicitly-shown fields nothing reachable computes ------
        for field in sorted(buildset.explicit_shows - ALWAYS_VISIBLE):
            if field not in written:
                diags.append(
                    make_diagnostic(
                        "LIS022",
                        f"buildset {name!r} shows field {field!r} but no "
                        f"action reachable from its entrypoints writes it",
                        buildset.loc,
                    )
                )

        # -- LIS024: partial decode-level visibility -------------------------
        if buildset.explicit_shows and decode_fields:
            shown = buildset.explicit_shows & decode_fields
            if shown and shown != decode_fields:
                missing = sorted(decode_fields - shown)
                diags.append(
                    make_diagnostic(
                        "LIS024",
                        f"buildset {name!r} shows some decode-level fields "
                        f"but hides {missing}; a timing model at the "
                        f"DecodeInfo level needs the full set",
                        buildset.loc,
                    )
                )
    return diags
