"""The interface-detail taxonomy of paper §II.

Two orthogonal axes describe a functional-to-timing interface:

* **informational detail** — how much information about instruction
  execution the interface reports (fields made visible);
* **semantic detail** — how much control over *when* functionality is
  performed the timing simulator gets (how instruction execution is
  split across interface calls).

This module names the levels used in the evaluation and records which
organization of Figure 1 needs which levels, so tooling (and tests) can
check that a buildset is adequate for an organization before running it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.adl.spec import Buildset, IsaSpec


class SemanticDetail(enum.Enum):
    """How many interface calls execute one instruction."""

    BLOCK = "block"  # one call per basic block
    ONE = "one"  # one call per instruction
    STEP = "step"  # several calls (fetch/decode/.../writeback) per instruction

    @classmethod
    def of(cls, buildset: Buildset) -> "SemanticDetail":
        return cls(buildset.semantic_detail)


class InformationalDetail(enum.Enum):
    """How much execution information the interface reports."""

    MIN = "min"  # address, encoding, next PC, faults, context
    DECODE = "decode"  # + operand identifiers, branch info, effective addrs
    ALL = "all"  # + every field and operand value

    @classmethod
    def of(cls, buildset: Buildset, spec: IsaSpec) -> "InformationalDetail":
        visible = buildset.visible
        all_fields = set(spec.fields)
        if visible >= all_fields:
            return cls.ALL
        decode_fields = {
            f for f in all_fields if f.endswith("_id")
        } | {"effective_addr"}
        if decode_fields & visible == decode_fields & all_fields:
            return cls.DECODE
        return cls.MIN


@dataclass(frozen=True)
class OrganizationRequirements:
    """Interface levels an organization needs (paper §II discussion)."""

    name: str
    semantic: tuple[SemanticDetail, ...]
    informational: InformationalDetail
    needs_speculation: bool
    notes: str


ORGANIZATIONS: dict[str, OrganizationRequirements] = {
    "functional-first": OrganizationRequirements(
        name="functional-first",
        semantic=(SemanticDetail.BLOCK, SemanticDetail.ONE),
        informational=InformationalDetail.DECODE,
        needs_speculation=False,
        notes="low semantic detail, moderate information: decoded operand "
              "identifiers, branch resolution, effective addresses",
    ),
    "timing-directed": OrganizationRequirements(
        name="timing-directed",
        semantic=(SemanticDetail.STEP,),
        informational=InformationalDetail.ALL,
        needs_speculation=False,
        notes="very high semantic detail; individual operand fetch and "
              "writeback under timing control",
    ),
    "timing-first": OrganizationRequirements(
        name="timing-first",
        semantic=(SemanticDetail.ONE,),
        informational=InformationalDetail.MIN,
        needs_speculation=False,
        notes="one call per instruction; the timing model queries "
              "architectural state directly for checking",
    ),
    "speculative-functional-first": OrganizationRequirements(
        name="speculative-functional-first",
        semantic=(SemanticDetail.ONE, SemanticDetail.BLOCK),
        informational=InformationalDetail.DECODE,
        needs_speculation=True,
        notes="functional-first information plus rollback support",
    ),
    "fast-forward": OrganizationRequirements(
        name="fast-forward",
        semantic=(SemanticDetail.BLOCK,),
        informational=InformationalDetail.MIN,
        needs_speculation=False,
        notes="sampling helper: execute many instructions per call, report "
              "almost nothing",
    ),
}


def check_adequate(
    spec: IsaSpec, buildset: Buildset, organization: str
) -> list[str]:
    """Return a list of problems using ``buildset`` for ``organization``.

    Empty list means the interface provides at least the detail the
    organization requires.  This is advisory — the paper deliberately
    allows over-detailed interfaces, they are just slower.
    """
    req = ORGANIZATIONS[organization]
    problems: list[str] = []
    semantic = SemanticDetail.of(buildset)
    if semantic not in req.semantic:
        expected = "/".join(s.value for s in req.semantic)
        problems.append(
            f"{organization} needs {expected} semantic detail, "
            f"buildset {buildset.name!r} is {semantic.value}"
        )
    info = InformationalDetail.of(buildset, spec)
    order = [InformationalDetail.MIN, InformationalDetail.DECODE,
             InformationalDetail.ALL]
    if order.index(info) < order.index(req.informational):
        problems.append(
            f"{organization} needs {req.informational.value} information, "
            f"buildset {buildset.name!r} provides {info.value}"
        )
    if req.needs_speculation and not buildset.speculation:
        problems.append(
            f"{organization} needs speculation support, buildset "
            f"{buildset.name!r} was built without it"
        )
    return problems
