"""Interface-detail taxonomy (paper SII)."""

from repro.iface.detail import (
    ORGANIZATIONS,
    InformationalDetail,
    OrganizationRequirements,
    SemanticDetail,
    check_adequate,
)

__all__ = [
    "ORGANIZATIONS",
    "InformationalDetail",
    "OrganizationRequirements",
    "SemanticDetail",
    "check_adequate",
]
