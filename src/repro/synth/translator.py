"""Runtime basic-block translation (the Block semantic detail level).

The paper accelerates its synthesized simulators with an LLVM-based
binary translator whose key property is *optimization scope*: "At the
block level of detail, optimizations can be performed across several
simulated instructions.  For example, if a simulated register value is
generated in one simulated instruction and used in a later instruction,
the binary translator may register-allocate the value." (§V.E)

Our translator reproduces that structure in Python:

* instructions are decoded at translate time, so format bitfields and
  operand identifiers become compile-time constants
  (:func:`repro.adl.snippets.propagate_constants`);
* register values are cached in Python locals across the instructions of
  a block, with dirty values flushed once at block exit
  (:class:`RegisterCache`);
* information hidden by the buildset is removed by the same dead-code
  elimination used for One/Step interfaces;
* translated blocks are memoized in a per-simulator code cache.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass

from repro.adl.snippets import analyze_stmt, propagate_constants
from repro.adl.spec import Instruction
from repro.arch.faults import IllegalInstruction
from repro.obs.events import BLOCK_TRANSLATE
from repro.obs.probe import NULL_OBS
from repro.prof.spans import TRANSLATE as TRANSLATE_SPAN
from repro.ops import PURE_NAMESPACE
from repro.synth.codegen import (
    BuildPlan,
    SourceWriter,
    assemble_instruction_stmts,
    predecode_stmts,
)
from repro.synth.dataflow import (
    TaggedStmt,
    assigned_names,
    eliminate_dead,
    forward_copies,
)
from repro.synth.errors import SynthesisError
from repro.synth.rewrite import RewriteContext, peephole_stmts, rewrite_stmts


#: Sentinel "length" of an unlinked chain cell: larger than any budget, so
#: the generated fast path rejects an unlinked cell and a too-long
#: successor with the same single comparison.
CHAIN_NEVER = 1 << 62


def new_chain_cell() -> list:
    """A per-exit successor slot: ``[successor fn, its length, its pc]``.

    Cells are mutable lists patched in place by
    :meth:`repro.synth.runtime.SynthesizedSimulator._chain_link` so every
    translated unit holding the cell in its globals sees updates (and
    unlinks) immediately.
    """
    return [None, CHAIN_NEVER, -1]


def reset_chain_cell(cell: list) -> None:
    cell[0] = None
    cell[1] = CHAIN_NEVER
    cell[2] = -1


def _instr_writes_next_pc(instr: Instruction, post_actions: tuple[str, ...]) -> bool:
    for action in post_actions:
        for stmt in instr.action_code.get(action, ()):
            if "next_pc" in analyze_stmt(stmt).writes:
                return True
    return False


def _static_const_next_pc(stmts: list[ast.stmt]) -> int | None:
    """The constant target of a single unconditional ``next_pc`` write.

    Returns None when ``next_pc`` is written more than once, written
    conditionally, or assigned a non-constant — i.e. whenever the
    successor is not a compile-time certainty.
    """
    writes = 0
    value: int | None = None
    for stmt in stmts:
        if "next_pc" not in analyze_stmt(stmt).writes:
            continue
        writes += 1
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "next_pc"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
        ):
            value = stmt.value.value
        else:
            value = None
    return value if writes == 1 else None


def _next_pc_arm_consts(stmts: list[ast.stmt]) -> frozenset[int]:
    """Constant values any arm of this instruction may give ``next_pc``.

    Collects direct constant assignments and the constant arms of
    conditional expressions.  Superblock formation uses this to tell a
    conditional branch (one arm is the textual fall-through, so the unit
    may continue across it with a guarded side exit) from an indirect
    jump, whose successor is not any compile-time constant.
    """
    consts: set[int] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "next_pc"
            ):
                continue
            value = node.value
            arms = (
                (value.body, value.orelse)
                if isinstance(value, ast.IfExp)
                else (value,)
            )
            for arm in arms:
                if isinstance(arm, ast.Constant) and isinstance(arm.value, int):
                    consts.add(arm.value)
    return frozenset(consts)


def _instr_has_syscall(instr: Instruction, post_actions: tuple[str, ...]) -> bool:
    for action in post_actions:
        for stmt in instr.action_code.get(action, ()):
            if "__syscall" in analyze_stmt(stmt).effects:
                return True
    return False


class RegisterCache:
    """Caches register-file elements in locals across a block.

    A cached register ``R[5]`` lives in local ``__R_R_5``.  Reads load it
    on first use; writes mark it dirty; :meth:`flush` stores dirty values
    back.  Accesses with non-constant indices conservatively flush (and,
    for writes, invalidate) the whole file.
    """

    def __init__(self, regfiles: frozenset[str]) -> None:
        self.regfiles = regfiles
        self.loaded: set[tuple[str, int]] = set()
        self.dirty: set[tuple[str, int]] = set()

    @staticmethod
    def local(file: str, index: int) -> str:
        return f"__R_{file}_{index}"

    def _load_stmt(self, file: str, index: int) -> ast.stmt:
        return ast.parse(f"{self.local(file, index)} = {file}[{index}]").body[0]

    def _store_stmt(self, file: str, index: int) -> ast.stmt:
        return ast.parse(f"{file}[{index}] = {self.local(file, index)}").body[0]

    def flush(self, files: set[str] | None = None) -> list[ast.stmt]:
        """Stores for dirty registers (all files, or just ``files``)."""
        out = []
        for file, index in sorted(self.dirty):
            if files is None or file in files:
                out.append(self._store_stmt(file, index))
        if files is None:
            self.dirty.clear()
        else:
            self.dirty = {k for k in self.dirty if k[0] not in files}
        return out

    def spill(self) -> list[ast.stmt]:
        """Stores for dirty registers *without* clearing the dirty set.

        Used for superblock side exits: the stores commit current values
        on the exiting path, while the fall-through path keeps its cached
        locals (and the final flush) intact.
        """
        return [self._store_stmt(file, index) for file, index in sorted(self.dirty)]

    def invalidate(self, files: set[str] | None = None) -> None:
        if files is None:
            self.loaded.clear()
            self.dirty.clear()
        else:
            self.loaded = {k for k in self.loaded if k[0] not in files}
            self.dirty = {k for k in self.dirty if k[0] not in files}

    # -- statement transformation -------------------------------------------

    def transform(self, stmts: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in stmts:
            out.extend(self._transform_stmt(stmt))
        return out

    def _transform_stmt(self, stmt: ast.stmt) -> list[ast.stmt]:
        if isinstance(stmt, ast.If):
            return self._transform_if(stmt)
        prelude: list[ast.stmt] = []
        # Handle a direct register store target.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if self._is_reg_subscript(target):
                file = target.value.id
                index = target.slice
                new_value, more = self._transform_expr(stmt.value)
                prelude.extend(more)
                if isinstance(index, ast.Constant):
                    key = (file, index.value)
                    if key not in self.loaded:
                        self.loaded.add(key)
                    self.dirty.add(key)
                    assign = ast.parse(
                        f"{self.local(file, index.value)} = 0"
                    ).body[0]
                    assign.value = new_value
                    return prelude + [ast.fix_missing_locations(assign)]
                # Non-constant store: flush + invalidate the file.
                prelude.extend(self.flush({file}))
                self.invalidate({file})
                new_index, more = self._transform_expr(index)
                prelude.extend(more)
                assign = ast.Assign(
                    [ast.Subscript(ast.Name(file, ast.Load()), new_index, ast.Store())],
                    new_value,
                )
                return prelude + [ast.fix_missing_locations(assign)]
        # Generic statement: rewrite contained loads.
        new_stmt, more = self._transform_reads_in_stmt(stmt)
        return more + [new_stmt]

    def _is_reg_subscript(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.regfiles
        )

    def _reads_transformer(self, prelude: list[ast.stmt]) -> ast.NodeTransformer:
        cache = self

        class Reads(ast.NodeTransformer):
            def visit_Subscript(self, node: ast.Subscript):
                self.generic_visit(node)
                if not isinstance(node.ctx, ast.Load):
                    return node
                if not cache._is_reg_subscript(node):
                    return node
                file = node.value.id
                index = node.slice
                if isinstance(index, ast.Constant):
                    key = (file, index.value)
                    if key not in cache.loaded:
                        prelude.append(cache._load_stmt(file, index.value))
                        cache.loaded.add(key)
                    return ast.copy_location(
                        ast.Name(cache.local(file, index.value), ast.Load()), node
                    )
                # Non-constant read: dirty values must reach the list first.
                prelude.extend(cache.flush({file}))
                return node

        return Reads()

    def _transform_expr(self, expr: ast.expr) -> tuple[ast.expr, list[ast.stmt]]:
        prelude: list[ast.stmt] = []
        new_expr = ast.fix_missing_locations(
            self._reads_transformer(prelude).visit(expr)
        )
        return new_expr, prelude

    def _transform_reads_in_stmt(self, stmt: ast.stmt) -> tuple[ast.stmt, list[ast.stmt]]:
        prelude: list[ast.stmt] = []
        new_stmt = ast.fix_missing_locations(
            self._reads_transformer(prelude).visit(stmt)
        )
        return new_stmt, prelude

    def _transform_if(self, stmt: ast.If) -> list[ast.stmt]:
        # Hoist loads for every constant register access in either branch so
        # cached locals exist regardless of the path taken; writes inside
        # branches then dirty the local, and the final flush stores either
        # the new or the (reloaded) old value - both correct.
        prelude: list[ast.stmt] = []
        nonconst = False
        const_keys: list[tuple[str, int]] = []
        for node in ast.walk(stmt):
            if self._is_reg_subscript(node):
                index = node.slice
                if isinstance(index, ast.Constant):
                    const_keys.append((node.value.id, index.value))
                else:
                    nonconst = True
        if nonconst:
            # Bail out of caching around this statement entirely.
            prelude.extend(self.flush())
            self.invalidate()
            return prelude + [stmt]
        for key in const_keys:
            if key not in self.loaded:
                prelude.append(self._load_stmt(*key))
                self.loaded.add(key)

        cache = self

        class Rename(ast.NodeTransformer):
            def visit_Subscript(self, node: ast.Subscript):
                self.generic_visit(node)
                if cache._is_reg_subscript(node) and isinstance(
                    node.slice, ast.Constant
                ):
                    key = (node.value.id, node.slice.value)
                    if isinstance(node.ctx, ast.Store):
                        cache.dirty.add(key)
                        return ast.copy_location(
                            ast.Name(cache.local(*key), ast.Store()), node
                        )
                    return ast.copy_location(
                        ast.Name(cache.local(*key), ast.Load()), node
                    )
                return node

        new_if = ast.fix_missing_locations(Rename().visit(stmt))
        return prelude + [new_if]


@dataclass
class CodeCacheStats:
    """Public statistics of one simulator's block code cache.

    ``hits``/``misses`` count :meth:`do_block` lookups (only on the
    observed path — the unobserved fast path does not count), ``blocks``
    is the current cache population, ``evictions`` counts capacity
    evictions and ``flushes`` whole-cache invalidations.

    Chaining bookkeeping: ``chain_links`` counts successor slots patched
    to a translated unit, ``chain_unlinks`` slots severed by eviction or
    flush, and ``chained`` direct unit-to-unit transfers taken (observed
    path only — on the fast path chained transfers are uncounted, like
    hits).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    blocks: int = 0
    chain_links: int = 0
    chain_unlinks: int = 0
    chained: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "blocks": self.blocks,
            "chain_links": self.chain_links,
            "chain_unlinks": self.chain_unlinks,
            "chained": self.chained,
        }


class BlockTranslator:
    """Translates basic blocks into specialized Python functions."""

    def __init__(self, plan: BuildPlan, obs=None) -> None:
        self.plan = plan
        self.obs = obs if obs is not None else NULL_OBS
        self.cache_stats = CodeCacheStats()
        #: statements dropped by DCE during the most recent translation
        self._dce_dropped = 0
        self._last_block_len = 0
        #: basic blocks merged into the most recent translation unit
        self._last_parts = 1
        #: chain cells created for the most recent unit: (global name, cell)
        self._last_cells: list[tuple[str, list]] = []
        #: memoized decode-time front half of piece translation,
        #: keyed by (addr, word) — see :meth:`_instruction_core`
        self._piece_cache: dict[tuple[int, int], dict] = {}
        #: compile-time-constant exit targets of the most recent unit
        #: (consumed by the static block walk in :mod:`repro.check`)
        self.last_exit_targets: tuple[int, ...] = ()
        spec = plan.spec
        self._fold_funcs = dict(PURE_NAMESPACE)
        self._fold_funcs.update(spec.helpers)
        self._control = {
            instr.name: _instr_writes_next_pc(instr, plan.post_actions)
            for instr in spec.instructions
        }
        self._syscalls = {
            instr.name: _instr_has_syscall(instr, plan.post_actions)
            for instr in spec.instructions
        }

    #: Host ops charged per generated op for the (one-time) act of
    #: translating a block; amortized over block executions exactly as the
    #: paper amortizes its binary-translation cost into Table III.
    TRANSLATE_COST_FACTOR = 30

    # -- public API -------------------------------------------------------------

    def translate(self, sim, start_pc: int, limit: int | None = None):
        """Translate the unit at ``start_pc`` against current memory.

        ``limit`` caps the unit at that many instructions and suppresses
        chaining; the run driver uses it for the final partial unit of a
        bounded execution.
        """
        if not self.obs.enabled:
            return self._translate(sim, start_pc, limit)
        prof = self.obs.prof
        if prof.enabled:
            with prof.spans.span(TRANSLATE_SPAN):
                return self._translate_counted(sim, start_pc, limit)
        return self._translate_counted(sim, start_pc, limit)

    def _translate_counted(self, sim, start_pc: int, limit: int | None = None):
        """Counting body of :meth:`translate` (observability enabled)."""
        start = time.perf_counter()
        fn = self._translate(sim, start_pc, limit)
        elapsed_us = int((time.perf_counter() - start) * 1e6)
        length = self._last_block_len
        parts = self._last_parts
        counters = self.obs.counters
        counters.inc("translate.blocks")
        counters.inc("translate.instructions", length)
        counters.inc("translate.elapsed_us", elapsed_us)
        counters.inc("translate.dce_eliminated", self._dce_dropped)
        if parts > 1:
            counters.inc("translate.superblocks")
            counters.inc("translate.superblock_instructions", length)
        self.obs.events.emit(
            BLOCK_TRANSLATE,
            pc=start_pc,
            instructions=length,
            parts=parts,
            elapsed_us=elapsed_us,
            dce_eliminated=self._dce_dropped,
        )
        return fn

    def _translate(self, sim, start_pc: int, limit: int | None = None):
        source, name = self.block_source(sim, start_pc, limit)
        cells = self._last_cells
        namespace = dict(sim.module_namespace)
        for cell_name, cell in cells:
            namespace[cell_name] = cell
        code = compile(source, f"<block {start_pc:#x}>", "exec")
        exec(code, namespace)
        fn = namespace[name]
        fn.__block_source__ = source
        fn.__block_len__ = self._last_block_len
        fn.__block_pc__ = start_pc
        fn.__block_parts__ = self._last_parts
        fn.__chain_cells__ = tuple(cell for _cell_name, cell in cells)
        if self.plan.options.profile:
            import dis

            cost = sum(1 for _ in dis.get_instructions(fn.__code__))
            lines = source.splitlines(keepends=True)
            source = lines[0] + f"    self._hops += {cost + 6}\n" + "".join(lines[1:])
            exec(compile(source, f"<block {start_pc:#x}>", "exec"), namespace)
            fn = namespace[name]
            fn.__block_source__ = source
            fn.__block_len__ = self._last_block_len
            fn.__block_pc__ = start_pc
            fn.__block_parts__ = self._last_parts
            fn.__chain_cells__ = tuple(cell for _cell_name, cell in cells)
            sim._hops += cost * self.TRANSLATE_COST_FACTOR
        return fn

    # -- translation ---------------------------------------------------------------

    def block_source(
        self, sim, start_pc: int, limit: int | None = None
    ) -> tuple[str, str]:
        plan = self.plan
        spec = plan.spec
        mem = sim.state.mem
        options = plan.options
        speculate = plan.buildset.speculation
        regcache = (
            RegisterCache(frozenset(spec.regfiles))
            if options.regcache
            else None
        )

        self._dce_dropped = 0
        self._last_cells = []
        pieces: list[list[ast.stmt]] = []
        trace_consts: list[str | None] = []
        #: per-piece guarded side exit (superblocks across conditionals)
        side_exits: list[dict | None] = []
        side_targets: set[int] = set()
        sreg_reads_all: set[str] = set()
        sreg_writes_all: set[str] = set()
        mem_used = False
        reg_files_used: set[str] = set()
        addr = start_pc
        count = 0
        block_count = 0  # instructions in the current basic block
        parts = 1  # basic blocks merged into this unit
        final_next_pc: object = None  # int const or "runtime"
        unroll_len = 0  # length of one iteration when self-loop unrolling
        ended_by_syscall = False
        chain = options.chain and limit is None

        # Unit budget: one basic block (capped at max_block) classically;
        # with superblock formation on, compile-time-constant control
        # transfers may be followed up to the superblock budget, each
        # constituent basic block still capped at max_block.
        unit_budget = options.superblock if options.superblock > 0 else options.max_block
        if limit is not None:
            unit_budget = min(unit_budget, limit)

        while count < unit_budget and block_count < options.max_block:
            word = mem.read(addr, spec.ilen)
            index = spec.decode(word)
            if index is None:
                if count == 0:
                    raise IllegalInstruction(addr, word)
                last_exit = side_exits[-1]
                if last_exit is not None and last_exit["count"] == count:
                    # The conditional we just crossed falls through into
                    # untranslatable bytes: revert to a classic runtime
                    # exit so the guard costs nothing on real code paths.
                    side_exits[-1] = None
                    parts -= 1
                    final_next_pc = "runtime"
                break
            instr = spec.instructions[index]
            stmts, env, info = self._translate_instruction(
                sim, instr, addr, word, regcache, count, sreg_writes_all
            )
            pieces.append(stmts)
            trace_consts.append(info["trace_const"])
            side_exits.append(None)
            sreg_reads_all |= info["sreg_reads"]
            sreg_writes_all |= info["sreg_writes"]
            mem_used = mem_used or info["mem_used"]
            reg_files_used |= info["regfiles"]
            count += 1
            if self._syscalls[instr.name]:
                ended_by_syscall = True
                final_next_pc = env.get("next_pc", "runtime")
                break
            if info["control"]:
                next_const = info["next_const"]
                if (
                    options.superblock > 0
                    and isinstance(next_const, int)
                    and count < unit_budget
                ):
                    # Superblock formation: the transfer target is a
                    # compile-time constant, so translation continues into
                    # the successor block and the optimizers see one
                    # straight-line multi-block region.
                    final_next_pc = next_const
                    addr = next_const
                    block_count = 0
                    parts += 1
                    continue
                # Superblock formation across a *conditional* branch: pick
                # one constant arm to follow in-line; every other successor
                # becomes a guarded side exit (spill + chain attempt +
                # return).  A back edge to this unit's own entry is
                # followed preferentially — that unrolls the hot loop body,
                # in complete iterations only, so the fall-off exit lands
                # exactly on the unit's own entry and self-chains.
                # Otherwise the textual fall-through is followed, merging
                # forward diamonds and multi-block loop bodies into one
                # straight-line region.
                fallthrough = addr + spec.ilen
                arm_consts = info["arm_consts"]
                follow = None
                if options.superblock > 0 and count < unit_budget:
                    if start_pc in arm_consts:
                        iter_len = unroll_len if unroll_len else count
                        if count + iter_len <= unit_budget:
                            unroll_len = iter_len
                            follow = start_pc
                    if follow is None and fallthrough in arm_consts:
                        follow = fallthrough
                if follow is not None:
                    side_exits[-1] = {
                        "follow": follow,
                        "count": count,
                        "spill": regcache.spill() if regcache is not None else [],
                        "sregs": tuple(sorted(sreg_writes_all)),
                    }
                    side_targets |= arm_consts - {follow}
                    final_next_pc = follow
                    addr = follow
                    block_count = 0
                    parts += 1
                    continue
                final_next_pc = env.get("next_pc", "runtime")
                break
            block_count += 1
            next_const = env.get("next_pc")
            if not isinstance(next_const, int):
                final_next_pc = "runtime"
                break
            addr = next_const
            final_next_pc = next_const

        # -- assemble the function ------------------------------------------------
        flush_stmts = regcache.flush() if regcache is not None else []
        all_stmts = [s for piece in pieces for s in piece] + flush_stmts
        names_used = {
            node.id
            for stmt in all_stmts
            for node in ast.walk(stmt)
            if isinstance(node, ast.Name)
        }
        reg_files_bind = names_used & set(spec.regfiles)
        mem_used = mem_used or "__mem" in names_used

        name = f"_blk_{start_pc:x}"
        writer = SourceWriter()
        writer.line(f"def {name}(self, di):")
        writer.indent()
        writer.line("__state = self.state")
        if mem_used:
            writer.line("__mem = __state.mem")
        for file in sorted(reg_files_bind):
            writer.line(f"{file} = __state.rf[{file!r}]")
        for sreg in sorted(sreg_reads_all | sreg_writes_all):
            writer.line(f"{sreg} = __state.sr[{sreg!r}]")
        writer.line("__trace = di.trace")
        writer.line("__trace.clear()")

        # Instructions whose whole trace record folded to a constant have
        # the record hoisted out of the piece (it is the piece's final
        # statement) and appended in batches: one ``+=`` of a constant
        # tuple-of-tuples replaces one allocation + method call per
        # instruction.  Nothing inside a unit reads ``__trace`` and block
        # statements cannot fault, so batching at the end of each constant
        # run preserves the interface-visible contents exactly.
        pending_trace: list[str] = []

        def _flush_trace() -> None:
            if not pending_trace:
                return
            if len(pending_trace) == 1:
                writer.line(f"__trace.append({pending_trace[0]})")
            else:
                writer.line(f"__trace += ({', '.join(pending_trace)},)")
            pending_trace.clear()

        cells: list[tuple[str, list]] = []

        def _new_cell() -> str:
            cell_name = f"__chain_{len(cells)}"
            cells.append((cell_name, new_chain_cell()))
            return cell_name

        def _emit_side_exit(exit_info: dict) -> None:
            # Guarded exit for the non-fall-through arm of a crossed
            # conditional.  Mirrors the final chain epilogue: dirty
            # registers and special registers written so far are committed,
            # then the per-exit successor slots are tried; ``state.pc`` and
            # ``di.count`` are only materialized when control returns to
            # the dispatcher.
            _flush_trace()
            taken = exit_info["count"]
            writer.line(f"if next_pc != {exit_info['follow']}:")
            writer.indent()
            writer.stmts(exit_info["spill"])
            for sreg in exit_info["sregs"]:
                writer.line(f"__state.sr[{sreg!r}] = {sreg}")
            if chain:
                writer.line(f"__b = di.budget - {taken}")
                writer.line("di.budget = __b")
                c0 = _new_cell()
                c1 = _new_cell()
                for var in (c0, c1):
                    writer.line(f"__c = {var}")
                    writer.line("if __c[2] == next_pc and __c[1] <= __b:")
                    writer.indent()
                    writer.line("return __c[0]")
                    writer.dedent()
                writer.line("__state.pc = next_pc")
                writer.line(f"di.count = {taken}")
                writer.line("if __b > 0:")
                writer.indent()
                writer.line(f"return self._chain_resolve({c0}, {c1}, next_pc, __b)")
                writer.dedent()
                writer.line("return None")
            else:
                writer.line("__state.pc = next_pc")
                writer.line(f"di.count = {taken}")
                writer.line("return None")
            writer.dedent()

        for stmts, tconst, side_exit in zip(pieces, trace_consts, side_exits):
            if tconst is not None:
                writer.stmts(stmts[:-1])
                pending_trace.append(tconst)
            else:
                _flush_trace()
                writer.stmts(stmts)
            if side_exit is not None:
                _emit_side_exit(side_exit)
        _flush_trace()
        writer.stmts(flush_stmts)
        for sreg in sorted(sreg_writes_all):
            writer.line(f"__state.sr[{sreg!r}] = {sreg}")
        runtime_exit = final_next_pc == "runtime"
        if not chain:
            if runtime_exit:
                writer.line("__state.pc = next_pc")
            else:
                writer.line(f"__state.pc = {final_next_pc}")
            writer.line(f"di.count = {count}")
        else:
            # Chain epilogue: debit the dispatch budget, then try the
            # per-exit successor slot(s).  An unlinked cell fails the same
            # ``[1] <= __b`` test as a too-long successor, so the hot path
            # is a single comparison per slot.  The slow paths translate,
            # patch and register the edge.  Bookkeeping a chained transfer
            # never needs — the ``state.pc`` commit and ``di.count`` — is
            # deferred off the hot path: the successor's pc is baked into
            # its code, and :meth:`do_block` recovers the count from the
            # budget debit (``di.count`` is set here only when execution
            # actually returns to the dispatcher).
            writer.line(f"__b = di.budget - {count}")
            writer.line("di.budget = __b")
            if runtime_exit:
                c0 = _new_cell()
                c1 = _new_cell()
                for var in (c0, c1):
                    writer.line(f"__c = {var}")
                    writer.line("if __c[2] == next_pc and __c[1] <= __b:")
                    writer.indent()
                    writer.line("return __c[0]")
                    writer.dedent()
                writer.line("__state.pc = next_pc")
                writer.line(f"di.count = {count}")
                writer.line("if __b > 0:")
                writer.indent()
                writer.line(
                    f"return self._chain_resolve({c0}, {c1}, next_pc, __b)"
                )
                writer.dedent()
            else:
                c0 = _new_cell()
                writer.line(f"__c = {c0}")
                writer.line("if __c[1] <= __b:")
                writer.indent()
                writer.line("return __c[0]")
                writer.dedent()
                writer.line(f"__state.pc = {final_next_pc}")
                writer.line(f"di.count = {count}")
                writer.line("if __b > 0:")
                writer.indent()
                writer.line(
                    f"return self._chain_link(__c, {final_next_pc}, __b)"
                )
                writer.dedent()
        self._last_cells = cells
        self._last_block_len = count
        self._last_parts = parts
        self.last_exit_targets = self._exit_targets(
            final_next_pc, pieces, side_targets
        )
        return writer.source(), name

    @staticmethod
    def _exit_targets(final_next_pc, pieces, side_targets=frozenset()) -> tuple[int, ...]:
        """Compile-time-constant successor pcs of the unit just built."""
        targets: set[int] = set(side_targets)
        if isinstance(final_next_pc, int):
            targets.add(final_next_pc)
        elif pieces:
            # Runtime exit: collect the constant arms of the final
            # instruction (e.g. both sides of a conditional branch).
            for stmt in pieces[-1]:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and node.targets[0].id == "next_pc"
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)
                    ):
                        targets.add(node.value.value)
        return tuple(sorted(targets))

    def _instruction_core(self, instr: Instruction, addr: int, word: int) -> dict:
        """The decode-time-deterministic front half of piece translation.

        Everything up to (and including) the shared rewrites depends only
        on ``(addr, word)`` and the plan, so it is memoized per translator:
        superblock formation re-visits the same instruction once per
        unrolled loop iteration, and constant folding dominates translation
        cost.  The statements are cached as source text — the register
        cache and the peephole passes mutate ASTs in place, so each use
        re-parses a fresh tree.  A changed memory word changes the key,
        which keeps the cache trivially coherent with self-modifying code.
        """
        key = (addr, word)
        cached = self._piece_cache.get(key)
        if cached is not None:
            return cached
        plan = self.plan
        spec = plan.spec
        speculate = plan.buildset.speculation

        env: dict[str, object] = {"pc": addr, "instr_bits": word}
        # Fold the pre-decode actions (translate_pc, fetch) symbolically.
        pre = predecode_stmts(plan)[1:]  # drop `pc = __state.pc`
        pre_folded, env = propagate_constants(pre, env, self._fold_funcs)
        env["instr_bits"] = word  # __fetch cannot fold; we already fetched
        for stmt in pre_folded:
            facts = analyze_stmt(stmt)
            unresolved = facts.writes - set(env)
            if unresolved:
                raise SynthesisError(
                    "block interfaces require pre-decode actions that fold "
                    f"to constants; {sorted(unresolved)} did not"
                )

        tagged = assemble_instruction_stmts(plan, instr)
        stmts = [t.stmt for t in tagged]
        stmts, env = propagate_constants(stmts, env, self._fold_funcs)

        # Liveness: visible fields assigned at runtime must survive;
        # constants are embedded into the trace record directly.
        assigned = assigned_names([TaggedStmt("x", s) for s in stmts])
        sregs_assigned = assigned & set(spec.sregs)
        live_targets = (
            (assigned & plan.buildset.visible)
            | {"next_pc", "fault"}
            | sregs_assigned
        )
        # Promoted constants are embedded rather than kept live — EXCEPT
        # special registers: their assignment IS the architectural effect
        # (e.g. a link register set to a constant return address), so it
        # must survive even when the value folded.
        live_out = {
            f for f in live_targets if f not in env or f in sregs_assigned
        }
        dce_dropped = 0
        if plan.options.dce:
            kept = eliminate_dead(
                [TaggedStmt("x", s) for s in stmts], live_out, plan.pure_names
            )
            dce_dropped = len(stmts) - len(kept)
            stmts = [t.stmt for t in kept]

        # Control transfer is a per-encoding fact: an ARM data-processing
        # instruction writes next_pc only when its destination is R15, and
        # decode-time constant folding has already resolved that here.
        next_const = env.get("next_pc")
        is_control = (
            "next_pc" in assigned_names([TaggedStmt("x", s) for s in stmts])
            or (isinstance(next_const, int) and next_const != addr + spec.ilen)
        )
        if not isinstance(next_const, int):
            # Unconditional direct branches keep a runtime `next_pc = K`
            # statement (two writes defeat env promotion: the synthetic
            # fall-through plus their own), yet the target is a constant;
            # superblock formation needs to see through that.
            next_const = _static_const_next_pc(stmts)

        sregs = set(spec.sregs)
        sreg_reads: set[str] = set()
        sreg_writes: set[str] = set()
        for stmt in stmts:
            facts = analyze_stmt(stmt)
            sreg_reads |= facts.reads & sregs
            sreg_writes |= facts.writes & sregs

        ctx = RewriteContext(
            ilen=spec.ilen, speculate=speculate, regfiles=frozenset(spec.regfiles)
        )
        stmts = rewrite_stmts(stmts, ctx)

        # Defensive defaults for conditionally-assigned runtime fields.
        defaults: list[str] = []
        maybe_unset = self._conditionally_assigned(stmts) & live_out
        for field_name in sorted(maybe_unset):
            default = env.get(field_name, 0)
            if field_name == "next_pc":
                default = addr + spec.ilen
            if isinstance(default, (int, bool)):
                defaults.append(f"{field_name} = {int(default)}")

        cached = {
            "src": "\n".join(ast.unparse(s) for s in stmts),
            "env": env,
            "sreg_reads": frozenset(sreg_reads),
            "sreg_writes": frozenset(sreg_writes),
            "next_const": next_const if isinstance(next_const, int) else None,
            "is_control": is_control,
            "defaults": tuple(defaults),
            "trace_values": self._trace_tuple(instr, env, assigned, live_out),
            "dce_dropped": dce_dropped,
        }
        self._piece_cache[key] = cached
        return cached

    def _translate_instruction(
        self,
        sim,
        instr: Instruction,
        addr: int,
        word: int,
        regcache: RegisterCache | None,
        position: int,
        sregs_so_far: set[str] = frozenset(),
    ):
        plan = self.plan
        speculate = plan.buildset.speculation
        core = self._instruction_core(instr, addr, word)
        stmts = ast.parse(core["src"]).body
        env = core["env"]
        sreg_writes = core["sreg_writes"]
        trace_values = core["trace_values"]
        self._dce_dropped += core["dce_dropped"]

        has_syscall = self._syscalls[instr.name]
        out: list[ast.stmt] = []

        if speculate:
            out.append(ast.parse(f"__j = [('p', {addr})]").body[0])
            for sreg in sorted(sreg_writes):
                out.append(ast.parse(f"__j.append(('s', {sreg!r}, {sreg}))").body[0])

        for default_line in core["defaults"]:
            out.append(ast.parse(default_line).body[0])

        if has_syscall:
            # Handler may mutate registers/memory and may raise ExitProgram:
            # flush cached state and record the trace entry and progress
            # count first so a guest exit leaves the interface consistent.
            if regcache is not None:
                out.extend(regcache.flush())
                regcache.invalidate()
            # Special registers written earlier in the unit live in
            # locals; the handler (and a guest exit unwinding past the
            # unit epilogue) must see them architecturally.
            for sreg in sorted(sregs_so_far):
                out.append(ast.parse(f"__state.sr[{sreg!r}] = {sreg}").body[0])
            out.append(ast.parse(f"__state.pc = {addr}").body[0])
            out.append(ast.parse(f"__trace.append({trace_values})").body[0])
            out.append(ast.parse(f"di.count = {position + 1}").body[0])

        body = regcache.transform(stmts) if regcache is not None else stmts
        out.extend(body)

        if speculate:
            out.append(ast.parse("__state.journal.append(__j)").body[0])
        if not has_syscall:
            out.append(ast.parse(f"__trace.append({trace_values})").body[0])

        spec = plan.spec
        if plan.options.peephole:
            # Copy forwarding: the statements above still thread values
            # through per-operand temporaries; collapse single-use ones so
            # a typical ALU instruction becomes one Python statement.
            protected = frozenset(
                set(spec.sregs) | set(spec.regfiles) | {"next_pc", "pc", "instr_bits"}
            )
            pure = plan.pure_names | frozenset(PURE_NAMESPACE)
            out = forward_copies(out, protected, pure)
            out = peephole_stmts(out)

        # A compile-time-constant trace record can be hoisted out of the
        # instruction and batch-appended by the unit assembler.
        trace_const = None
        if not has_syscall:
            try:
                ast.literal_eval(trace_values)
                trace_const = trace_values
            except (ValueError, SyntaxError):
                trace_const = None

        info = {
            "control": core["is_control"],
            "trace_const": trace_const,
            "next_const": core["next_const"],
            "arm_consts": _next_pc_arm_consts(out),
            "sreg_reads": core["sreg_reads"],
            "sreg_writes": sreg_writes,
            "mem_used": any(
                isinstance(n, ast.Name) and n.id == "__mem"
                for s in out
                for n in ast.walk(s)
            ),
            "regfiles": {
                n.id
                for s in out
                for n in ast.walk(s)
                if isinstance(n, ast.Name) and n.id in spec.regfiles
            },
        }
        out = [s for s in out if not isinstance(s, ast.Pass)]
        return out, env, info

    def _conditionally_assigned(self, stmts: list[ast.stmt]) -> set[str]:
        sure: set[str] = set()
        conditional: set[str] = set()
        for stmt in stmts:
            facts = analyze_stmt(stmt)
            if isinstance(stmt, ast.If):
                conditional |= facts.writes - sure
            else:
                sure |= facts.writes
        return conditional - sure

    def _trace_tuple(
        self,
        instr: Instruction,
        env: dict[str, object],
        assigned: set[str],
        live_out: set[str],
    ) -> str:
        values: list[str] = []
        for field_name in self.plan.trace_fields:
            if field_name in env:
                values.append(repr(env[field_name]))
            elif field_name in assigned:
                values.append(field_name)
            else:
                values.append("None")
        inner = ", ".join(values)
        if len(values) == 1:
            inner += ","
        return f"({inner})"
