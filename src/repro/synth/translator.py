"""Runtime basic-block translation (the Block semantic detail level).

The paper accelerates its synthesized simulators with an LLVM-based
binary translator whose key property is *optimization scope*: "At the
block level of detail, optimizations can be performed across several
simulated instructions.  For example, if a simulated register value is
generated in one simulated instruction and used in a later instruction,
the binary translator may register-allocate the value." (§V.E)

Our translator reproduces that structure in Python:

* instructions are decoded at translate time, so format bitfields and
  operand identifiers become compile-time constants
  (:func:`repro.adl.snippets.propagate_constants`);
* register values are cached in Python locals across the instructions of
  a block, with dirty values flushed once at block exit
  (:class:`RegisterCache`);
* information hidden by the buildset is removed by the same dead-code
  elimination used for One/Step interfaces;
* translated blocks are memoized in a per-simulator code cache.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass

from repro.adl.snippets import analyze_stmt, propagate_constants
from repro.adl.spec import Instruction
from repro.arch.faults import IllegalInstruction
from repro.obs.events import BLOCK_TRANSLATE
from repro.obs.probe import NULL_OBS
from repro.ops import PURE_NAMESPACE
from repro.synth.codegen import (
    BuildPlan,
    SourceWriter,
    assemble_instruction_stmts,
    predecode_stmts,
)
from repro.synth.dataflow import TaggedStmt, assigned_names, eliminate_dead
from repro.synth.errors import SynthesisError
from repro.synth.rewrite import RewriteContext, rewrite_stmts


def _instr_writes_next_pc(instr: Instruction, post_actions: tuple[str, ...]) -> bool:
    for action in post_actions:
        for stmt in instr.action_code.get(action, ()):
            if "next_pc" in analyze_stmt(stmt).writes:
                return True
    return False


def _instr_has_syscall(instr: Instruction, post_actions: tuple[str, ...]) -> bool:
    for action in post_actions:
        for stmt in instr.action_code.get(action, ()):
            if "__syscall" in analyze_stmt(stmt).effects:
                return True
    return False


class RegisterCache:
    """Caches register-file elements in locals across a block.

    A cached register ``R[5]`` lives in local ``__R_R_5``.  Reads load it
    on first use; writes mark it dirty; :meth:`flush` stores dirty values
    back.  Accesses with non-constant indices conservatively flush (and,
    for writes, invalidate) the whole file.
    """

    def __init__(self, regfiles: frozenset[str]) -> None:
        self.regfiles = regfiles
        self.loaded: set[tuple[str, int]] = set()
        self.dirty: set[tuple[str, int]] = set()

    @staticmethod
    def local(file: str, index: int) -> str:
        return f"__R_{file}_{index}"

    def _load_stmt(self, file: str, index: int) -> ast.stmt:
        return ast.parse(f"{self.local(file, index)} = {file}[{index}]").body[0]

    def _store_stmt(self, file: str, index: int) -> ast.stmt:
        return ast.parse(f"{file}[{index}] = {self.local(file, index)}").body[0]

    def flush(self, files: set[str] | None = None) -> list[ast.stmt]:
        """Stores for dirty registers (all files, or just ``files``)."""
        out = []
        for file, index in sorted(self.dirty):
            if files is None or file in files:
                out.append(self._store_stmt(file, index))
        if files is None:
            self.dirty.clear()
        else:
            self.dirty = {k for k in self.dirty if k[0] not in files}
        return out

    def invalidate(self, files: set[str] | None = None) -> None:
        if files is None:
            self.loaded.clear()
            self.dirty.clear()
        else:
            self.loaded = {k for k in self.loaded if k[0] not in files}
            self.dirty = {k for k in self.dirty if k[0] not in files}

    # -- statement transformation -------------------------------------------

    def transform(self, stmts: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in stmts:
            out.extend(self._transform_stmt(stmt))
        return out

    def _transform_stmt(self, stmt: ast.stmt) -> list[ast.stmt]:
        if isinstance(stmt, ast.If):
            return self._transform_if(stmt)
        prelude: list[ast.stmt] = []
        # Handle a direct register store target.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if self._is_reg_subscript(target):
                file = target.value.id
                index = target.slice
                new_value, more = self._transform_expr(stmt.value)
                prelude.extend(more)
                if isinstance(index, ast.Constant):
                    key = (file, index.value)
                    if key not in self.loaded:
                        self.loaded.add(key)
                    self.dirty.add(key)
                    assign = ast.parse(
                        f"{self.local(file, index.value)} = 0"
                    ).body[0]
                    assign.value = new_value
                    return prelude + [ast.fix_missing_locations(assign)]
                # Non-constant store: flush + invalidate the file.
                prelude.extend(self.flush({file}))
                self.invalidate({file})
                new_index, more = self._transform_expr(index)
                prelude.extend(more)
                assign = ast.Assign(
                    [ast.Subscript(ast.Name(file, ast.Load()), new_index, ast.Store())],
                    new_value,
                )
                return prelude + [ast.fix_missing_locations(assign)]
        # Generic statement: rewrite contained loads.
        new_stmt, more = self._transform_reads_in_stmt(stmt)
        return more + [new_stmt]

    def _is_reg_subscript(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.regfiles
        )

    def _reads_transformer(self, prelude: list[ast.stmt]) -> ast.NodeTransformer:
        cache = self

        class Reads(ast.NodeTransformer):
            def visit_Subscript(self, node: ast.Subscript):
                self.generic_visit(node)
                if not isinstance(node.ctx, ast.Load):
                    return node
                if not cache._is_reg_subscript(node):
                    return node
                file = node.value.id
                index = node.slice
                if isinstance(index, ast.Constant):
                    key = (file, index.value)
                    if key not in cache.loaded:
                        prelude.append(cache._load_stmt(file, index.value))
                        cache.loaded.add(key)
                    return ast.copy_location(
                        ast.Name(cache.local(file, index.value), ast.Load()), node
                    )
                # Non-constant read: dirty values must reach the list first.
                prelude.extend(cache.flush({file}))
                return node

        return Reads()

    def _transform_expr(self, expr: ast.expr) -> tuple[ast.expr, list[ast.stmt]]:
        prelude: list[ast.stmt] = []
        new_expr = ast.fix_missing_locations(
            self._reads_transformer(prelude).visit(expr)
        )
        return new_expr, prelude

    def _transform_reads_in_stmt(self, stmt: ast.stmt) -> tuple[ast.stmt, list[ast.stmt]]:
        prelude: list[ast.stmt] = []
        new_stmt = ast.fix_missing_locations(
            self._reads_transformer(prelude).visit(stmt)
        )
        return new_stmt, prelude

    def _transform_if(self, stmt: ast.If) -> list[ast.stmt]:
        # Hoist loads for every constant register access in either branch so
        # cached locals exist regardless of the path taken; writes inside
        # branches then dirty the local, and the final flush stores either
        # the new or the (reloaded) old value - both correct.
        prelude: list[ast.stmt] = []
        nonconst = False
        const_keys: list[tuple[str, int]] = []
        for node in ast.walk(stmt):
            if self._is_reg_subscript(node):
                index = node.slice
                if isinstance(index, ast.Constant):
                    const_keys.append((node.value.id, index.value))
                else:
                    nonconst = True
        if nonconst:
            # Bail out of caching around this statement entirely.
            prelude.extend(self.flush())
            self.invalidate()
            return prelude + [stmt]
        for key in const_keys:
            if key not in self.loaded:
                prelude.append(self._load_stmt(*key))
                self.loaded.add(key)

        cache = self

        class Rename(ast.NodeTransformer):
            def visit_Subscript(self, node: ast.Subscript):
                self.generic_visit(node)
                if cache._is_reg_subscript(node) and isinstance(
                    node.slice, ast.Constant
                ):
                    key = (node.value.id, node.slice.value)
                    if isinstance(node.ctx, ast.Store):
                        cache.dirty.add(key)
                        return ast.copy_location(
                            ast.Name(cache.local(*key), ast.Store()), node
                        )
                    return ast.copy_location(
                        ast.Name(cache.local(*key), ast.Load()), node
                    )
                return node

        new_if = ast.fix_missing_locations(Rename().visit(stmt))
        return prelude + [new_if]


@dataclass
class CodeCacheStats:
    """Public statistics of one simulator's block code cache.

    ``hits``/``misses`` count :meth:`do_block` lookups (only on the
    observed path — the unobserved fast path does not count), ``blocks``
    is the current cache population, ``evictions`` counts capacity
    evictions and ``flushes`` whole-cache invalidations.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    blocks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "blocks": self.blocks,
        }


class BlockTranslator:
    """Translates basic blocks into specialized Python functions."""

    def __init__(self, plan: BuildPlan, obs=None) -> None:
        self.plan = plan
        self.obs = obs if obs is not None else NULL_OBS
        self.cache_stats = CodeCacheStats()
        #: statements dropped by DCE during the most recent translation
        self._dce_dropped = 0
        self._last_block_len = 0
        spec = plan.spec
        self._fold_funcs = dict(PURE_NAMESPACE)
        self._fold_funcs.update(spec.helpers)
        self._control = {
            instr.name: _instr_writes_next_pc(instr, plan.post_actions)
            for instr in spec.instructions
        }
        self._syscalls = {
            instr.name: _instr_has_syscall(instr, plan.post_actions)
            for instr in spec.instructions
        }

    #: Host ops charged per generated op for the (one-time) act of
    #: translating a block; amortized over block executions exactly as the
    #: paper amortizes its binary-translation cost into Table III.
    TRANSLATE_COST_FACTOR = 30

    # -- public API -------------------------------------------------------------

    def translate(self, sim, start_pc: int):
        """Translate the block at ``start_pc`` against current memory."""
        if not self.obs.enabled:
            return self._translate(sim, start_pc)
        start = time.perf_counter()
        fn = self._translate(sim, start_pc)
        elapsed_us = int((time.perf_counter() - start) * 1e6)
        length = self._last_block_len
        counters = self.obs.counters
        counters.inc("translate.blocks")
        counters.inc("translate.instructions", length)
        counters.inc("translate.elapsed_us", elapsed_us)
        counters.inc("translate.dce_eliminated", self._dce_dropped)
        self.obs.events.emit(
            BLOCK_TRANSLATE,
            pc=start_pc,
            instructions=length,
            elapsed_us=elapsed_us,
            dce_eliminated=self._dce_dropped,
        )
        return fn

    def _translate(self, sim, start_pc: int):
        source, name = self.block_source(sim, start_pc)
        namespace = dict(sim.module_namespace)
        code = compile(source, f"<block {start_pc:#x}>", "exec")
        exec(code, namespace)
        fn = namespace[name]
        fn.__block_source__ = source
        if self.plan.options.profile:
            import dis

            cost = sum(1 for _ in dis.get_instructions(fn.__code__))
            lines = source.splitlines(keepends=True)
            source = lines[0] + f"    self._hops += {cost + 6}\n" + "".join(lines[1:])
            exec(compile(source, f"<block {start_pc:#x}>", "exec"), namespace)
            fn = namespace[name]
            fn.__block_source__ = source
            sim._hops += cost * self.TRANSLATE_COST_FACTOR
        return fn

    # -- translation ---------------------------------------------------------------

    def block_source(self, sim, start_pc: int) -> tuple[str, str]:
        plan = self.plan
        spec = plan.spec
        mem = sim.state.mem
        speculate = plan.buildset.speculation
        regcache = (
            RegisterCache(frozenset(spec.regfiles))
            if plan.options.regcache
            else None
        )

        self._dce_dropped = 0
        pieces: list[list[ast.stmt]] = []
        sreg_reads_all: set[str] = set()
        sreg_writes_all: set[str] = set()
        mem_used = False
        reg_files_used: set[str] = set()
        addr = start_pc
        count = 0
        final_next_pc: object = None  # int const or "runtime"
        ended_by_syscall = False

        while count < plan.options.max_block:
            word = mem.read(addr, spec.ilen)
            index = spec.decode(word)
            if index is None:
                if count == 0:
                    raise IllegalInstruction(addr, word)
                break
            instr = spec.instructions[index]
            stmts, env, info = self._translate_instruction(
                sim, instr, addr, word, regcache, count
            )
            pieces.append(stmts)
            sreg_reads_all |= info["sreg_reads"]
            sreg_writes_all |= info["sreg_writes"]
            mem_used = mem_used or info["mem_used"]
            reg_files_used |= info["regfiles"]
            count += 1
            if self._syscalls[instr.name]:
                ended_by_syscall = True
                final_next_pc = env.get("next_pc", "runtime")
                break
            if info["control"]:
                final_next_pc = env.get("next_pc", "runtime")
                break
            next_const = env.get("next_pc")
            if not isinstance(next_const, int):
                final_next_pc = "runtime"
                break
            addr = next_const
            final_next_pc = next_const

        # -- assemble the function ------------------------------------------------
        flush_stmts = regcache.flush() if regcache is not None else []
        all_stmts = [s for piece in pieces for s in piece] + flush_stmts
        names_used = {
            node.id
            for stmt in all_stmts
            for node in ast.walk(stmt)
            if isinstance(node, ast.Name)
        }
        reg_files_bind = names_used & set(spec.regfiles)
        mem_used = mem_used or "__mem" in names_used

        name = f"_blk_{start_pc:x}"
        writer = SourceWriter()
        writer.line(f"def {name}(self, di):")
        writer.indent()
        writer.line("__state = self.state")
        if mem_used:
            writer.line("__mem = __state.mem")
        for file in sorted(reg_files_bind):
            writer.line(f"{file} = __state.rf[{file!r}]")
        for sreg in sorted(sreg_reads_all | sreg_writes_all):
            writer.line(f"{sreg} = __state.sr[{sreg!r}]")
        writer.line("__trace = di.trace")
        writer.line("__trace.clear()")
        for stmts in pieces:
            writer.stmts(stmts)
        writer.stmts(flush_stmts)
        for sreg in sorted(sreg_writes_all):
            writer.line(f"__state.sr[{sreg!r}] = {sreg}")
        if final_next_pc == "runtime":
            writer.line("__state.pc = next_pc")
        else:
            writer.line(f"__state.pc = {final_next_pc}")
        writer.line(f"di.count = {count}")
        self._last_block_len = count
        return writer.source(), name

    def _translate_instruction(
        self,
        sim,
        instr: Instruction,
        addr: int,
        word: int,
        regcache: RegisterCache | None,
        position: int,
    ):
        plan = self.plan
        spec = plan.spec
        speculate = plan.buildset.speculation

        env: dict[str, object] = {"pc": addr, "instr_bits": word}
        # Fold the pre-decode actions (translate_pc, fetch) symbolically.
        pre = predecode_stmts(plan)[1:]  # drop `pc = __state.pc`
        pre_folded, env = propagate_constants(pre, env, self._fold_funcs)
        env["instr_bits"] = word  # __fetch cannot fold; we already fetched
        for stmt in pre_folded:
            facts = analyze_stmt(stmt)
            unresolved = facts.writes - set(env)
            if unresolved:
                raise SynthesisError(
                    "block interfaces require pre-decode actions that fold "
                    f"to constants; {sorted(unresolved)} did not"
                )

        tagged = assemble_instruction_stmts(plan, instr)
        stmts = [t.stmt for t in tagged]
        stmts, env = propagate_constants(stmts, env, self._fold_funcs)

        # Liveness: visible fields assigned at runtime must survive;
        # constants are embedded into the trace record directly.
        assigned = assigned_names([TaggedStmt("x", s) for s in stmts])
        sregs_assigned = assigned & set(spec.sregs)
        live_targets = (
            (assigned & plan.buildset.visible)
            | {"next_pc", "fault"}
            | sregs_assigned
        )
        # Promoted constants are embedded rather than kept live — EXCEPT
        # special registers: their assignment IS the architectural effect
        # (e.g. a link register set to a constant return address), so it
        # must survive even when the value folded.
        live_out = {
            f for f in live_targets if f not in env or f in sregs_assigned
        }
        if plan.options.dce:
            kept = eliminate_dead(
                [TaggedStmt("x", s) for s in stmts], live_out, plan.pure_names
            )
            self._dce_dropped += len(stmts) - len(kept)
            stmts = [t.stmt for t in kept]

        # Control transfer is a per-encoding fact: an ARM data-processing
        # instruction writes next_pc only when its destination is R15, and
        # decode-time constant folding has already resolved that here.
        next_const = env.get("next_pc")
        is_control = (
            "next_pc" in assigned_names([TaggedStmt("x", s) for s in stmts])
            or (isinstance(next_const, int) and next_const != addr + spec.ilen)
        )

        sregs = set(spec.sregs)
        sreg_reads: set[str] = set()
        sreg_writes: set[str] = set()
        for stmt in stmts:
            facts = analyze_stmt(stmt)
            sreg_reads |= facts.reads & sregs
            sreg_writes |= facts.writes & sregs

        ctx = RewriteContext(
            ilen=spec.ilen, speculate=speculate, regfiles=frozenset(spec.regfiles)
        )
        stmts = rewrite_stmts(stmts, ctx)

        has_syscall = self._syscalls[instr.name]
        out: list[ast.stmt] = []

        if speculate:
            out.append(ast.parse(f"__j = [('p', {addr})]").body[0])
            for sreg in sorted(sreg_writes):
                out.append(ast.parse(f"__j.append(('s', {sreg!r}, {sreg}))").body[0])

        # Defensive defaults for conditionally-assigned runtime fields.
        maybe_unset = self._conditionally_assigned(stmts) & live_out
        for field_name in sorted(maybe_unset):
            default = env.get(field_name, 0)
            if field_name == "next_pc":
                default = addr + spec.ilen
            if isinstance(default, (int, bool)):
                out.append(ast.parse(f"{field_name} = {int(default)}").body[0])

        trace_values = self._trace_tuple(instr, env, assigned, live_out)

        if has_syscall:
            # Handler may mutate registers/memory and may raise ExitProgram:
            # flush cached state and record the trace entry and progress
            # count first so a guest exit leaves the interface consistent.
            if regcache is not None:
                out.extend(regcache.flush())
                regcache.invalidate()
            out.append(ast.parse(f"__trace.append({trace_values})").body[0])
            out.append(ast.parse(f"di.count = {position + 1}").body[0])

        body = regcache.transform(stmts) if regcache is not None else stmts
        out.extend(body)

        if speculate:
            out.append(ast.parse("__state.journal.append(__j)").body[0])
        if not has_syscall:
            out.append(ast.parse(f"__trace.append({trace_values})").body[0])

        info = {
            "control": is_control,
            "sreg_reads": sreg_reads,
            "sreg_writes": sreg_writes,
            "mem_used": any(
                isinstance(n, ast.Name) and n.id == "__mem"
                for s in out
                for n in ast.walk(s)
            ),
            "regfiles": {
                n.id
                for s in out
                for n in ast.walk(s)
                if isinstance(n, ast.Name) and n.id in spec.regfiles
            },
        }
        out = [s for s in out if not isinstance(s, ast.Pass)]
        return out, env, info

    def _conditionally_assigned(self, stmts: list[ast.stmt]) -> set[str]:
        sure: set[str] = set()
        conditional: set[str] = set()
        for stmt in stmts:
            facts = analyze_stmt(stmt)
            if isinstance(stmt, ast.If):
                conditional |= facts.writes - sure
            else:
                sure |= facts.writes
        return conditional - sure

    def _trace_tuple(
        self,
        instr: Instruction,
        env: dict[str, object],
        assigned: set[str],
        live_out: set[str],
    ) -> str:
        values: list[str] = []
        for field_name in self.plan.trace_fields:
            if field_name in env:
                values.append(repr(env[field_name]))
            elif field_name in assigned:
                values.append(field_name)
            else:
                values.append("None")
        inner = ", ".join(values)
        if len(values) == 1:
            inner += ","
        return f"({inner})"
