"""Errors raised by the simulator synthesizer."""

from __future__ import annotations


class SynthesisError(Exception):
    """A specification cannot be synthesized for the requested buildset."""
