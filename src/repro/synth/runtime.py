"""Runtime wrapper around a generated simulator module.

A :class:`SynthesizedSimulator` owns the architectural state, binds the
generated entrypoints as methods, hosts the block code cache, dispatches
syscalls to the configured OS-emulation handler, and provides a generic
``run`` driver so tests and benchmarks can execute workloads without
caring which interface shape (One / Step / Block) was synthesized.
"""

from __future__ import annotations

import types
from dataclasses import dataclass

from repro.arch.faults import ExitProgram
from repro.arch.memory import Memory
from repro.arch.state import ArchState
from repro.obs.events import CACHE_EVICT, CACHE_FLUSH
from repro.obs.probe import NULL_OBS
from repro.synth.errors import SynthesisError


@dataclass
class RunResult:
    """Outcome of a :meth:`SynthesizedSimulator.run` call."""

    executed: int
    exited: bool
    exit_status: int | None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = f" status={self.exit_status}" if self.exited else ""
        return f"<RunResult executed={self.executed} exited={self.exited}{status}>"


class ProfilingMemory(Memory):
    """Memory that charges host-operation costs to a counter holder.

    Used only for Table III-style host-cost accounting; never in speed
    benchmarks (the accounting itself would perturb them).
    """

    __slots__ = ("owner", "read_cost", "write_cost")

    def __init__(self, endian: str, owner, read_cost: int, write_cost: int) -> None:
        super().__init__(endian)
        self.owner = owner
        self.read_cost = read_cost
        self.write_cost = write_cost

    def read(self, addr: int, size: int) -> int:
        self.owner._hops += self.read_cost
        return super().read(addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        self.owner._hops += self.write_cost
        super().write(addr, size, value)


class SynthesizedSimulator:
    """One executable instance of a synthesized functional simulator."""

    def __init__(
        self,
        generated,
        state: ArchState | None = None,
        syscall_handler=None,
        obs=None,
    ) -> None:
        self.generated = generated
        self.plan = generated.plan
        self.spec = generated.plan.spec
        self.buildset = generated.plan.buildset
        self.state = state if state is not None else self.spec.make_state()
        self.module_namespace = generated.namespace
        self.syscall_handler = syscall_handler
        self._hops = 0
        self.obs = obs if obs is not None else NULL_OBS
        self.entry_names = generated.entry_names
        #: per-entrypoint invocation counts, incremented only by probes
        #: that exist when the module was synthesized with observe=True
        #: (or by the observed do_block path)
        self._obs_ep = {name: 0 for name in generated.entry_names}
        for name in generated.entry_names:
            fn = generated.namespace.get(name)
            if fn is not None:
                setattr(self, name, types.MethodType(fn, self))
        self._cache: dict[int, object] = {}
        self._translator = None
        if self.buildset.semantic_detail == "block":
            from repro.synth.translator import BlockTranslator

            self._translator = BlockTranslator(self.plan, obs=self.obs)
            if self.obs.enabled or self.plan.options.cache_limit is not None:
                # Select the counting/evicting lookup once, here, so the
                # default path keeps its original (probe-free) bytecode.
                self.do_block = self._do_block_observed
        if self.plan.options.profile:
            profiled = ProfilingMemory(
                self.spec.endian, self, generated.mem_read_cost,
                generated.mem_write_cost,
            )
            profiled.restore(self.state.mem.snapshot())
            self.state.mem = profiled
        self.di = self.new_dinst()

    # -- interface plumbing -----------------------------------------------------

    def new_dinst(self):
        """Create a dynamic-instruction record for this interface."""
        return self.generated.di_class()

    def _do_syscall(self, di) -> None:
        if self.syscall_handler is None:
            raise SynthesisError(
                f"{self.spec.name}: guest executed a syscall but no handler is "
                f"configured"
            )
        self.syscall_handler(self.state, di)

    # -- block-mode support --------------------------------------------------------

    def do_block(self, di) -> None:
        """Execute one basic block (generated lazily, memoized)."""
        pc = self.state.pc
        fn = self._cache.get(pc)
        if fn is None:
            fn = self._translator.translate(self, pc)
            self._cache[pc] = fn
        fn(self, di)

    def _do_block_observed(self, di) -> None:
        """Counting/evicting variant of :meth:`do_block`.

        Bound over ``do_block`` at construction time when observability
        is enabled or a code-cache capacity limit is configured, so the
        default path never pays for either.
        """
        pc = self.state.pc
        cache = self._cache
        fn = cache.get(pc)
        stats = self._translator.cache_stats
        if fn is None:
            stats.misses += 1
            fn = self._translator.translate(self, pc)
            limit = self.plan.options.cache_limit
            if limit is not None and len(cache) >= limit:
                victim = next(iter(cache))
                del cache[victim]
                stats.evictions += 1
                self.obs.events.emit(CACHE_EVICT, pc=victim)
            cache[pc] = fn
            stats.blocks = len(cache)
        else:
            stats.hits += 1
        self._obs_ep["do_block"] += 1
        fn(self, di)

    def flush_code_cache(self) -> None:
        """Drop every translated block (e.g. after loading new code)."""
        if self._translator is not None:
            stats = self._translator.cache_stats
            stats.flushes += 1
            stats.blocks = 0
            self.obs.events.emit(CACHE_FLUSH, dropped=len(self._cache))
        self._cache.clear()

    def block_source(self, pc: int) -> str:
        """Source of the translated block at ``pc`` (for inspection/tests)."""
        fn = self._cache.get(pc)
        if fn is None:
            fn = self._translator.translate(self, pc)
            self._cache[pc] = fn
        return fn.__block_source__

    # -- speculation -------------------------------------------------------------------

    def rollback(self, count: int = 1) -> int:
        """Undo the last ``count`` speculatively executed instructions."""
        if not self.buildset.speculation:
            raise SynthesisError(
                f"buildset {self.buildset.name!r} was synthesized without "
                f"speculation support"
            )
        return self.state.rollback(count)

    def commit(self, count: int = 1) -> int:
        """Retire undo records for the oldest ``count`` instructions."""
        return self.state.commit(count)

    # -- generic driver ------------------------------------------------------------------

    def run(self, max_instructions: int) -> RunResult:
        """Execute up to ``max_instructions``, stopping early on guest exit."""
        detail = self.buildset.semantic_detail
        di = self.di
        executed = 0
        try:
            if detail == "block":
                do_block = self.do_block
                while executed < max_instructions:
                    di.count = 0
                    do_block(di)
                    executed += di.count
            elif detail == "one":
                entry = getattr(self, self.entry_names[0])
                while executed < max_instructions:
                    entry(di)
                    executed += 1
            else:
                entries = [getattr(self, name) for name in self.entry_names]
                while executed < max_instructions:
                    for entry in entries:
                        entry(di)
                    executed += 1
        except ExitProgram as exc:
            if detail == "block":
                executed += di.count
            else:
                executed += 1
            return RunResult(executed, True, exc.status)
        return RunResult(executed, False, None)

    @property
    def hostops(self) -> int:
        """Host operations charged so far (profile builds only)."""
        return self._hops

    def reset_hostops(self) -> None:
        self._hops = 0
