"""Runtime wrapper around a generated simulator module.

A :class:`SynthesizedSimulator` owns the architectural state, binds the
generated entrypoints as methods, hosts the block code cache, dispatches
syscalls to the configured OS-emulation handler, and provides a generic
``run`` driver so tests and benchmarks can execute workloads without
caring which interface shape (One / Step / Block) was synthesized.
"""

from __future__ import annotations

import time
import types
from dataclasses import dataclass

from repro.arch.faults import ExitProgram
from repro.arch.memory import Memory
from repro.arch.state import ArchState
from repro.obs.events import CACHE_EVICT, CACHE_FLUSH
from repro.obs.probe import NULL_OBS
from repro.prof.spans import CHAIN_PATCH, EXECUTE, ROLLBACK, SYSCALL
from repro.synth.errors import SynthesisError


@dataclass
class RunResult:
    """Outcome of a :meth:`SynthesizedSimulator.run` call."""

    executed: int
    exited: bool
    exit_status: int | None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = f" status={self.exit_status}" if self.exited else ""
        return f"<RunResult executed={self.executed} exited={self.exited}{status}>"


class ProfilingMemory(Memory):
    """Memory that charges host-operation costs to a counter holder.

    Used only for Table III-style host-cost accounting; never in speed
    benchmarks (the accounting itself would perturb them).
    """

    __slots__ = ("owner", "read_cost", "write_cost")

    def __init__(self, endian: str, owner, read_cost: int, write_cost: int) -> None:
        super().__init__(endian)
        self.owner = owner
        self.read_cost = read_cost
        self.write_cost = write_cost

    def read(self, addr: int, size: int) -> int:
        self.owner._hops += self.read_cost
        return super().read(addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        self.owner._hops += self.write_cost
        super().write(addr, size, value)


class SynthesizedSimulator:
    """One executable instance of a synthesized functional simulator."""

    def __init__(
        self,
        generated,
        state: ArchState | None = None,
        syscall_handler=None,
        obs=None,
    ) -> None:
        self.generated = generated
        self.plan = generated.plan
        self.spec = generated.plan.spec
        self.buildset = generated.plan.buildset
        self.state = state if state is not None else self.spec.make_state()
        self.module_namespace = generated.namespace
        self.syscall_handler = syscall_handler
        self._hops = 0
        #: per-guest-PC hit counts, written only by probes that exist
        #: when the module was synthesized with trace=True
        self._prof_hits: dict[int, int] = {}
        self.obs = obs if obs is not None else NULL_OBS
        profiling = self.obs.prof.enabled
        self.entry_names = generated.entry_names
        #: per-entrypoint invocation counts, incremented only by probes
        #: that exist when the module was synthesized with observe=True
        #: (or by the observed do_block path)
        self._obs_ep = {name: 0 for name in generated.entry_names}
        for name in generated.entry_names:
            fn = generated.namespace.get(name)
            if fn is not None:
                setattr(self, name, types.MethodType(fn, self))
        self._cache: dict[int, object] = {}
        self._translator = None
        if self.buildset.semantic_detail == "block":
            from repro.synth.translator import BlockTranslator

            self._translator = BlockTranslator(self.plan, obs=self.obs)
            #: chain edges into each cached unit: target pc -> {id: cell}
            self._chains: dict[int, dict[int, list]] = {}
            #: whether cache statistics are being maintained (observed
            #: path selected); gates counting in the chain slow paths
            self._counting = (
                self.obs.enabled or self.plan.options.cache_limit is not None
            )
            #: LRU ordering is maintained only when a capacity limit exists
            self._lru = self.plan.options.cache_limit is not None
            if profiling:
                # Profiling subsumes counting: the profiled lookup keeps
                # the observed path's cache statistics and adds per-unit
                # wall-clock attribution.
                self._counting = True
                self.do_block = self._do_block_profiled
                self._chain_link = self._chain_link_profiled
            elif self._counting:
                # Select the counting/evicting lookup once, here, so the
                # default path keeps its original (probe-free) bytecode.
                self.do_block = self._do_block_observed
        if profiling:
            # Span-wrapped twins, instance-bound once so the unprofiled
            # methods keep their original bytecode.
            self._do_syscall = self._do_syscall_profiled
            self.run = self._run_profiled
            if self.buildset.speculation:
                self.rollback = self._rollback_profiled
        if self.plan.options.profile:
            profiled = ProfilingMemory(
                self.spec.endian, self, generated.mem_read_cost,
                generated.mem_write_cost,
            )
            profiled.restore(self.state.mem.snapshot())
            self.state.mem = profiled
        self.di = self.new_dinst()

    # -- interface plumbing -----------------------------------------------------

    def new_dinst(self):
        """Create a dynamic-instruction record for this interface."""
        return self.generated.di_class()

    def _do_syscall(self, di) -> None:
        if self.syscall_handler is None:
            raise SynthesisError(
                f"{self.spec.name}: guest executed a syscall but no handler is "
                f"configured"
            )
        self.syscall_handler(self.state, di)

    def _do_syscall_profiled(self, di) -> None:
        """Span-wrapped twin of :meth:`_do_syscall` (profiling builds)."""
        with self.obs.prof.spans.span(SYSCALL):
            SynthesizedSimulator._do_syscall(self, di)

    # -- block-mode support --------------------------------------------------------

    def do_block(self, di) -> None:
        """Execute one translation unit (generated lazily, memoized).

        With chaining enabled, a translated unit returns its successor's
        function when the successor is linked and fits the remaining
        ``di.budget``; the loop below is the trampoline that keeps
        execution inside generated code until the chain breaks.  Direct
        callers (e.g. timing models) that never set ``di.budget`` keep
        classic one-unit-per-call semantics: the budget stays at zero, so
        every unit declines to chain.
        """
        pc = self.state.pc
        fn = self._cache.get(pc)
        if fn is None:
            fn = self._translator.translate(self, pc)
            self._install_block(pc, fn)
        budget = di.budget
        if 0 < budget < fn.__block_len__:
            # Final partial unit of a bounded run: translate (uncached,
            # unchained) at most ``budget`` instructions so the executed
            # count is exact.  Bypasses the counting wrapper: truncated
            # units are an accounting artifact, not real translations.
            self._translator._translate(self, pc, limit=budget)(self, di)
            di.budget = budget - di.count
            return
        nxt = fn(self, di)
        while nxt is not None:
            nxt = nxt(self, di)

    def _do_block_observed(self, di) -> None:
        """Counting/evicting variant of :meth:`do_block`.

        Bound over ``do_block`` at construction time when observability
        is enabled or a code-cache capacity limit is configured, so the
        default path never pays for either.  Chained transfers count as
        cache hits (the lookup they replace) plus ``chained``.
        """
        pc = self.state.pc
        cache = self._cache
        fn = cache.get(pc)
        stats = self._translator.cache_stats
        if fn is None:
            stats.misses += 1
            fn = self._translator.translate(self, pc)
            self._install_block(pc, fn)
        else:
            stats.hits += 1
            if self._lru:
                cache[pc] = cache.pop(pc)  # move-to-end: most recently used
        self._obs_ep["do_block"] += 1
        budget = di.budget
        if 0 < budget < fn.__block_len__:
            self._translator._translate(self, pc, limit=budget)(self, di)
            di.budget = budget - di.count
            return
        nxt = fn(self, di)
        while nxt is not None:
            stats.hits += 1
            stats.chained += 1
            nxt = nxt(self, di)

    def _do_block_profiled(self, di) -> None:
        """Profiled variant of :meth:`_do_block_observed`.

        Keeps the observed path's cache statistics and additionally
        charges each translation unit's wall-clock time and executed
        instruction count to its guest entry PC in ``obs.prof.guest``,
        including every chained hop the trampoline takes.  A unit that
        raises (guest exit, syscall unwinding) is not charged: one
        partial unit per run is below measurement noise.
        """
        pc = self.state.pc
        cache = self._cache
        fn = cache.get(pc)
        stats = self._translator.cache_stats
        if fn is None:
            stats.misses += 1
            fn = self._translator.translate(self, pc)
            self._install_block(pc, fn)
        else:
            stats.hits += 1
            if self._lru:
                cache[pc] = cache.pop(pc)  # move-to-end: most recently used
        self._obs_ep["do_block"] += 1
        guest = self.obs.prof.guest
        ns = time.perf_counter_ns
        budget = di.budget
        if 0 < budget < fn.__block_len__:
            part = self._translator._translate(self, pc, limit=budget)
            t0 = ns()
            part(self, di)
            guest.add_unit_time(pc, ns() - t0, di.count)
            di.budget = budget - di.count
            return
        # The chain slow path (patch + successor translation) runs inside
        # the unit's epilogue; its wrapper accumulates that time into
        # ``foreign_ns`` so the delta can be deducted here and the unit is
        # charged only for executing guest code.
        t0 = ns()
        f0 = guest.foreign_ns
        nxt = fn(self, di)
        guest.add_unit_time(pc, ns() - t0 - (guest.foreign_ns - f0), di.count)
        while nxt is not None:
            stats.hits += 1
            stats.chained += 1
            hop_pc = nxt.__block_pc__
            t0 = ns()
            f0 = guest.foreign_ns
            cur = nxt(self, di)
            guest.add_unit_time(
                hop_pc, ns() - t0 - (guest.foreign_ns - f0), di.count,
                chained=True,
            )
            nxt = cur

    def _install_block(self, pc: int, fn) -> None:
        """Insert a translated unit, evicting (LRU) at the capacity limit."""
        cache = self._cache
        limit = self.plan.options.cache_limit
        if limit is not None:
            while len(cache) >= limit:
                self._evict_block(next(iter(cache)))
        cache[pc] = fn
        if self._counting:
            self._translator.cache_stats.blocks = len(cache)
            prof = self.obs.prof
            if prof.enabled:
                prof.guest.register_unit(
                    pc, fn.__block_len__, getattr(fn, "__block_parts__", 1)
                )

    def _evict_block(self, victim: int) -> None:
        fn = self._cache.pop(victim)
        self._unlink_block(victim, fn)
        stats = self._translator.cache_stats
        stats.evictions += 1
        stats.blocks = len(self._cache)
        self.obs.events.emit(CACHE_EVICT, pc=victim)

    def _unlink_block(self, pc: int, fn) -> None:
        """Sever every chain edge into and out of one translated unit."""
        from repro.synth.translator import reset_chain_cell

        stats = self._translator.cache_stats
        incoming = self._chains.pop(pc, None)
        if incoming:
            for cell in incoming.values():
                reset_chain_cell(cell)
            stats.chain_unlinks += len(incoming)
        for cell in getattr(fn, "__chain_cells__", ()):
            target = cell[2]
            if target != -1:
                registry = self._chains.get(target)
                if registry is not None:
                    registry.pop(id(cell), None)
                reset_chain_cell(cell)
                stats.chain_unlinks += 1

    def _chain_link(self, cell: list, target: int, budget: int):
        """Patch ``cell`` to transfer directly to the unit at ``target``.

        Slow path of the generated chain epilogue: looks up (translating
        on a miss) the successor, records the edge so eviction/flush can
        sever it, and returns the successor's function when it fits the
        remaining budget — the trampoline then calls it directly.
        """
        fn = self._cache.get(target)
        if fn is None:
            if self._counting:
                self._translator.cache_stats.misses += 1
            fn = self._translator.translate(self, target)
            self._install_block(target, fn)
        old = cell[2]
        if old != target:
            if old != -1:
                registry = self._chains.get(old)
                if registry is not None:
                    registry.pop(id(cell), None)
            cell[2] = target
            self._chains.setdefault(target, {})[id(cell)] = cell
            self._translator.cache_stats.chain_links += 1
        cell[0] = fn
        length = fn.__block_len__
        cell[1] = length
        return fn if length <= budget else None

    def _chain_link_profiled(self, cell: list, target: int, budget: int):
        """Span-wrapped twin of :meth:`_chain_link` (profiling builds).

        Besides the span, the elapsed time is credited to
        ``guest.foreign_ns``: this slow path runs nested inside the
        calling unit's timed window, and the dispatch loop deducts it so
        units are charged only for guest execution.
        """
        prof = self.obs.prof
        t0 = time.perf_counter_ns()
        prof.spans.begin(CHAIN_PATCH)
        try:
            return SynthesizedSimulator._chain_link(self, cell, target, budget)
        finally:
            prof.spans.end()
            prof.guest.foreign_ns += time.perf_counter_ns() - t0

    def _chain_resolve(self, c0: list, c1: list, target: int, budget: int):
        """Pick a successor slot for a runtime-computed exit and link it.

        The first slot is sticky (it keeps the first target it ever saw,
        typically the hot loop edge); other targets churn the second.
        """
        cell = c0 if (c0[2] == target or c0[2] == -1) else c1
        return self._chain_link(cell, target, budget)

    def flush_code_cache(self) -> None:
        """Drop every translated block (e.g. after loading new code)."""
        if self._translator is not None:
            from repro.synth.translator import reset_chain_cell

            stats = self._translator.cache_stats
            stats.flushes += 1
            stats.blocks = 0
            self.obs.events.emit(CACHE_FLUSH, dropped=len(self._cache))
            unlinked = 0
            for registry in self._chains.values():
                for cell in registry.values():
                    reset_chain_cell(cell)
                    unlinked += 1
            stats.chain_unlinks += unlinked
            self._chains.clear()
        self._cache.clear()

    def block_source(self, pc: int) -> str:
        """Source of the translated block at ``pc`` (for inspection/tests)."""
        fn = self._cache.get(pc)
        if fn is None:
            fn = self._translator.translate(self, pc)
            self._install_block(pc, fn)
        return fn.__block_source__

    # -- speculation -------------------------------------------------------------------

    def rollback(self, count: int = 1) -> int:
        """Undo the last ``count`` speculatively executed instructions."""
        if not self.buildset.speculation:
            raise SynthesisError(
                f"buildset {self.buildset.name!r} was synthesized without "
                f"speculation support"
            )
        return self.state.rollback(count)

    def _rollback_profiled(self, count: int = 1) -> int:
        """Span-wrapped twin of :meth:`rollback` (profiling builds)."""
        with self.obs.prof.spans.span(ROLLBACK):
            return SynthesizedSimulator.rollback(self, count)

    def commit(self, count: int = 1) -> int:
        """Retire undo records for the oldest ``count`` instructions."""
        return self.state.commit(count)

    # -- generic driver ------------------------------------------------------------------

    def run(self, max_instructions: int) -> RunResult:
        """Execute up to ``max_instructions``, stopping early on guest exit."""
        detail = self.buildset.semantic_detail
        di = self.di
        executed = 0
        try:
            if detail == "block":
                do_block = self.do_block
                # With chaining, every completed unit debits ``di.budget``,
                # so progress is read back from the budget rather than
                # accumulated per hop inside the trampoline (``di.count``
                # only holds the *last* unit's count, which is exactly
                # what a partial syscall exit needs).
                budgeted = self.plan.options.chain
                remaining = 0
                while executed < max_instructions:
                    di.count = 0
                    remaining = max_instructions - executed
                    di.budget = remaining
                    do_block(di)
                    executed += remaining - di.budget if budgeted else di.count
            elif detail == "one":
                entry = getattr(self, self.entry_names[0])
                while executed < max_instructions:
                    entry(di)
                    executed += 1
            else:
                entries = [getattr(self, name) for name in self.entry_names]
                while executed < max_instructions:
                    for entry in entries:
                        entry(di)
                    executed += 1
        except ExitProgram as exc:
            if detail == "block":
                # Completed chained units debited the budget; the unit the
                # guest exited from set ``di.count`` before its handler ran.
                if self.plan.options.chain:
                    executed += (remaining - di.budget) + di.count
                else:
                    executed += di.count
            else:
                executed += 1
            return RunResult(executed, True, exc.status)
        finally:
            if detail == "block":
                # A stale budget would let a later direct do_block call
                # chain past its caller's one-unit expectation.
                di.budget = 0
        return RunResult(executed, False, None)

    def _run_profiled(self, max_instructions: int) -> RunResult:
        """Span-wrapped twin of :meth:`run` (profiling builds)."""
        with self.obs.prof.spans.span(EXECUTE):
            return SynthesizedSimulator.run(self, max_instructions)

    @property
    def hostops(self) -> int:
        """Host operations charged so far (profile builds only)."""
        return self._hops

    def reset_hostops(self) -> None:
        self._hops = 0
