"""Interpreted-style execution (the paper's footnote 5 baseline).

The paper reports that an interpreted rather than binary-translated
execution style roughly doubles the base cost per instruction (205.5 vs
104.0 host instructions for Alpha).  Our equivalent: instead of compiling
each instruction body into a Python *function* (locals in fast slots,
direct call dispatch), the interpreter compiles each body as a code
object executed with ``exec`` against a fresh dictionary namespace every
instruction — the classic decode-dispatch-interpret structure.

Semantics are identical to the One-detail synthesized simulator for the
same buildset: the same assembly, dead-code elimination and visibility
specialization run first, so this is a fair speed comparison of execution
styles, not of interface detail.
"""

from __future__ import annotations

from repro.adl.spec import IsaSpec
from repro.arch.faults import ExitProgram, IllegalInstruction
from repro.synth.codegen import (
    SourceWriter,
    SynthOptions,
    assemble_instruction_stmts,
    instruction_live_out,
    make_plan,
    optimize_stmts,
    predecode_defined,
    zero_init_names,
    _mem_used,
    _regfiles_used,
    _sregs_read_written,
    _visible_assigned,
)
from repro.synth.errors import SynthesisError
from repro.synth.rewrite import RewriteContext, rewrite_stmts
from repro.synth.runtime import RunResult
from repro.synth.synthesizer import _base_namespace


class InterpretedSimulator:
    """Decode-and-``exec`` functional simulator for a One-style buildset."""

    def __init__(self, spec: IsaSpec, buildset_name: str, syscall_handler=None):
        buildset = spec.buildsets[buildset_name]
        if buildset.semantic_detail != "one":
            raise SynthesisError(
                "the interpreter models one-call-per-instruction interfaces; "
                f"buildset {buildset_name!r} is {buildset.semantic_detail!r}"
            )
        self.spec = spec
        self.buildset = buildset
        self.plan = make_plan(spec, buildset, SynthOptions())
        self.state = spec.make_state()
        self.syscall_handler = syscall_handler
        self.module_namespace = _base_namespace(spec)
        self._codes = [
            self._compile_instruction(instr, index)
            for index, instr in enumerate(spec.instructions)
        ]
        self._decode_groups = spec.decode_groups()
        self.di = _InterpDynInst()

    def _compile_instruction(self, instr, index):
        plan = self.plan
        pre_defined = predecode_defined(plan)
        full = assemble_instruction_stmts(plan, instr)
        live_out = instruction_live_out(plan, full)
        kept = optimize_stmts(plan, full, live_out)
        visible_stores = _visible_assigned(plan, kept)
        sreg_reads, sreg_writes = _sregs_read_written(plan, kept)
        sregs_bound = sorted(sreg_reads | sreg_writes)
        predefined = {"pc", "instr_bits", "self", "di"} | set(sregs_bound)
        zero_inits = zero_init_names(
            plan, kept, full, predefined, set(visible_stores) | {"next_pc"}
        )
        ctx = RewriteContext(
            ilen=plan.spec.ilen,
            speculate=plan.buildset.speculation,
            regfiles=frozenset(plan.spec.regfiles),
        )
        body = rewrite_stmts([t.stmt for t in kept], ctx)

        writer = SourceWriter()
        if _mem_used(body):
            writer.line("__mem = __state.mem")
        for regfile in _regfiles_used(plan, body):
            writer.line(f"{regfile} = __state.rf[{regfile!r}]")
        for sreg in sregs_bound:
            writer.line(f"{sreg} = __state.sr[{sreg!r}]")
        if plan.buildset.speculation:
            writer.line("__j = [('p', pc)]")
            for sreg in sorted(sreg_writes):
                writer.line(f"__j.append(('s', {sreg!r}, {sreg}))")
        for name in zero_inits:
            writer.line(f"{name} = 0")
        writer.stmts(body)
        for sreg in sorted(sreg_writes):
            writer.line(f"__state.sr[{sreg!r}] = {sreg}")
        if plan.buildset.speculation:
            writer.line("__state.journal.append(__j)")
        for name in visible_stores:
            writer.line(f"di.{name} = {name}")
        writer.line("__state.pc = next_pc")
        return compile(
            writer.source(), f"<interp {self.spec.name}/{instr.name}>", "exec"
        )

    def _do_syscall(self, di) -> None:
        if self.syscall_handler is None:
            raise SynthesisError("guest executed a syscall but no handler is set")
        self.syscall_handler(self.state, di)

    def step(self) -> None:
        """Interpret a single instruction."""
        state = self.state
        pc = state.pc
        word = state.mem.read(pc, self.spec.ilen)
        index = None
        for mask, table in self._decode_groups:
            index = table.get(word & mask)
            if index is not None:
                break
        if index is None:
            raise IllegalInstruction(pc, word)
        di = self.di
        di.pc = pc
        di.instr_bits = word
        namespace = {
            "self": self,
            "di": di,
            "pc": pc,
            "instr_bits": word,
            "__state": state,
        }
        exec(self._codes[index], self.module_namespace, namespace)

    def run(self, max_instructions: int) -> RunResult:
        """Interpret up to ``max_instructions`` guest instructions."""
        executed = 0
        try:
            while executed < max_instructions:
                self.step()
                executed += 1
        except ExitProgram as exc:
            return RunResult(executed + 1, True, exc.status)
        return RunResult(executed, False, None)


class _InterpDynInst:
    """Open-slot record: the interpreter stores any visible field on it."""

    def __init__(self) -> None:
        self.pc = 0
        self.instr_bits = 0
        self.next_pc = 0
        self.fault = 0
        self.trace: list = []
        self.count = 0
