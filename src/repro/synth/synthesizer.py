"""Public synthesis API: (IsaSpec, buildset) -> executable simulator.

``synthesize(spec, "one_all")`` compiles a generated module once; its
result can then stamp out any number of independent simulator instances
(:meth:`GeneratedSimulator.make`), each with its own architectural state
and code cache.
"""

from __future__ import annotations

import dis
import re
from dataclasses import dataclass, field

from repro.adl.spec import IsaSpec
from repro.arch.faults import ExitProgram, Fault, IllegalInstruction
from repro.arch.memory import Memory
from repro.ops import PURE_NAMESPACE
from repro.synth.codegen import (
    BuildPlan,
    SynthOptions,
    decode_tables,
    emit_dyninst_class,
    generate_one_module,
    generate_step_module,
    make_plan,
    SourceWriter,
)
from repro.synth.errors import SynthesisError
from repro.synth.runtime import SynthesizedSimulator


def _static_cost(fn) -> int:
    """Static bytecode length: our proxy for host instructions."""
    return sum(1 for _ in dis.get_instructions(fn.__code__))


@dataclass
class GeneratedSimulator:
    """A compiled simulator module for one (spec, buildset) pair."""

    plan: BuildPlan
    source: str
    namespace: dict = field(repr=False)
    entry_names: tuple[str, ...]
    di_class: type
    mem_read_cost: int = 0
    mem_write_cost: int = 0

    def make(
        self, state=None, syscall_handler=None, obs=None
    ) -> SynthesizedSimulator:
        """Instantiate a runnable simulator.

        ``obs`` is an :class:`repro.obs.Observability` to aggregate this
        instance's runtime statistics into; omit it (the default null
        instance) for zero-overhead execution.
        """
        return SynthesizedSimulator(self, state, syscall_handler, obs)

    @property
    def spec(self) -> IsaSpec:
        return self.plan.spec

    @property
    def buildset_name(self) -> str:
        return self.plan.buildset.name


def _base_namespace(spec: IsaSpec) -> dict:
    namespace: dict = {"__builtins__": __builtins__}
    namespace.update(PURE_NAMESPACE)
    namespace.update(spec.helpers)
    namespace["IllegalInstruction"] = IllegalInstruction
    namespace["ExitProgram"] = ExitProgram
    namespace["Fault"] = Fault
    return namespace


def _generate_block_module(plan: BuildPlan) -> str:
    """Block buildsets generate code lazily; the module only holds DynInst."""
    writer = SourceWriter()
    writer.line(
        f'"""Synthesized simulator: {plan.spec.name}/{plan.buildset.name} (block)."""'
    )
    writer.line()
    # ``budget`` is block-only: translated units decrement it so chained
    # execution respects the run driver's instruction limit.
    emit_dyninst_class(writer, plan, carry_slots=[], extra_slots=("budget",))
    writer.line("ENTRYPOINTS = ('do_block',)")
    return writer.source()


_PLACEHOLDER = re.compile(r"__(?:EP_COST(?:_\d+)?|BODY_COST_\d+|SBODY_COST_\d+_\d+)__")


def _resolve_profile_placeholders(source: str, namespace: dict) -> str:
    """Replace cost placeholders with measured static bytecode counts.

    The module is compiled once with placeholders treated as globals (they
    are never executed), each generated function is measured with ``dis``,
    and the source is re-rendered with literal costs.
    """
    fn_costs = {
        name: _static_cost(obj)
        for name, obj in namespace.items()
        if callable(obj) and hasattr(obj, "__code__")
    }

    def replace(match: re.Match) -> str:
        token = match.group(0)
        if token == "__EP_COST__":
            # single-entry (One) module: cost of its entry function
            entries = namespace.get("ENTRYPOINTS", ())
            return str(fn_costs.get(entries[0], 0))
        body = re.fullmatch(r"__BODY_COST_(\d+)__", token)
        if body:
            return str(fn_costs.get(f"_b_{body.group(1)}", 0))
        ep = re.fullmatch(r"__EP_COST_(\d+)__", token)
        if ep:
            entries = namespace.get("ENTRYPOINTS", ())
            return str(fn_costs.get(entries[int(ep.group(1))], 0))
        sbody = re.fullmatch(r"__SBODY_COST_(\d+)_(\d+)__", token)
        if sbody:
            return str(fn_costs.get(f"_sb_{sbody.group(1)}_{sbody.group(2)}", 0))
        return "0"  # pragma: no cover

    return _PLACEHOLDER.sub(replace, source)


def synthesize(
    spec: IsaSpec,
    buildset_name: str,
    options: SynthOptions | None = None,
    *,
    strict: bool = False,
) -> GeneratedSimulator:
    """Synthesize a functional simulator for one interface definition.

    Parameters
    ----------
    spec:
        The analyzed single specification.
    buildset_name:
        Which of the spec's buildsets (interfaces) to generate.
    options:
        Ablation/measurement knobs (DCE, register caching, profiling).
    strict:
        Run the specification linter first and refuse to synthesize while
        any unsuppressed error-severity diagnostic stands; then run the
        generated-code checker (:mod:`repro.check`) over the synthesized
        module and refuse if the translation itself is invalid.
    """
    if buildset_name not in spec.buildsets:
        raise SynthesisError(
            f"spec {spec.name!r} has no buildset {buildset_name!r}; "
            f"available: {sorted(spec.buildsets)}"
        )
    if strict:
        # Imported lazily: repro.lint pulls in the ADL front end, which the
        # synthesizer itself never needs.
        from repro.lint.runner import lint_analyzed_spec

        result = lint_analyzed_spec(spec)
        if result.errors:
            first = result.errors[0]
            raise SynthesisError(
                f"strict synthesis refused: {len(result.errors)} unsuppressed "
                f"lint error(s), first: {first.code}: {first.message}"
            )
    buildset = spec.buildsets[buildset_name]
    options = options or SynthOptions()
    plan = make_plan(spec, buildset, options)

    detail = buildset.semantic_detail
    if detail == "block":
        source = _generate_block_module(plan)
    elif detail == "one":
        source = generate_one_module(plan)
    else:
        source = generate_step_module(plan)

    namespace = _base_namespace(spec)
    for table_name, table in decode_tables(plan).items():
        namespace[table_name] = table
    exec(compile(source, f"<synth {spec.name}/{buildset_name}>", "exec"), namespace)
    _bind_body_tables(plan, namespace)

    if options.profile and detail != "block":
        source = _resolve_profile_placeholders(source, namespace)
        namespace = _base_namespace(spec)
        for table_name, table in decode_tables(plan).items():
            namespace[table_name] = table
        exec(
            compile(source, f"<synth {spec.name}/{buildset_name}>", "exec"), namespace
        )
        _bind_body_tables(plan, namespace)

    entry_names = tuple(namespace["ENTRYPOINTS"])
    generated = GeneratedSimulator(
        plan=plan,
        source=source,
        namespace=namespace,
        entry_names=entry_names if detail != "block" else ("do_block",),
        di_class=namespace["DynInst"],
        mem_read_cost=_static_cost(Memory.read),
        mem_write_cost=_static_cost(Memory.write),
    )
    if strict:
        # Translation validation (lazy import: repro.check imports this
        # module's products, not the other way around).
        from repro.check.runner import check_generated

        check = check_generated(generated)
        if check.errors:
            first = check.errors[0]
            raise SynthesisError(
                f"strict synthesis refused: generated module failed "
                f"validation with {len(check.errors)} error(s), first: "
                f"{first.code}: {first.message}"
            )
    return generated


def _bind_body_tables(plan: BuildPlan, namespace: dict) -> None:
    """Build the per-instruction dispatch tables referenced by entries."""
    n = len(plan.spec.instructions)
    if plan.buildset.semantic_detail == "one":
        namespace["_B"] = tuple(namespace[f"_b_{i}"] for i in range(n))
