"""AST rewrites applied to kept statements during code generation.

Three concerns live here:

* binding the ADL's abstract primitives (``__fetch``, ``__mem_read``,
  ``__mem_write``, ``__syscall``, ``__raise``) to the concrete runtime
  (a :class:`repro.arch.memory.Memory` local and simulator methods);
* inlining fixed-width truncations (``u64(x)`` -> ``x & 0xFF..F``) so hot
  generated code avoids a Python call per ALU result;
* speculation support: journaling register-file and memory writes so
  :meth:`repro.arch.state.ArchState.rollback` can undo them, the ADL's
  "instruction information structure carries enough information to roll
  back the architectural effects of each instruction".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

_MASKS = {"u8": 0xFF, "u16": 0xFFFF, "u32": 0xFFFFFFFF, "u64": (1 << 64) - 1}


def _name(identifier: str) -> ast.Name:
    return ast.Name(identifier, ast.Load())


def _store(identifier: str) -> ast.Name:
    return ast.Name(identifier, ast.Store())


def _call_method(obj: str, method: str, args: list[ast.expr]) -> ast.Call:
    return ast.Call(ast.Attribute(_name(obj), method, ast.Load()), args, [])


@dataclass
class RewriteContext:
    """Settings for one generated body."""

    ilen: int
    speculate: bool
    regfiles: frozenset[str]
    mem_var: str = "__mem"
    journal_var: str = "__j"
    #: mutable counter for unique temporaries within one body
    temp_counter: list[int] = field(default_factory=lambda: [0])

    def fresh_temp(self) -> str:
        self.temp_counter[0] += 1
        return f"__t{self.temp_counter[0]}"


class _ExprRewriter(ast.NodeTransformer):
    """Rewrites nested expressions: primitives and width masks."""

    def __init__(self, ctx: RewriteContext) -> None:
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> ast.expr:
        self.generic_visit(node)
        if not isinstance(node.func, ast.Name):
            return node
        fn = node.func.id
        if fn == "__fetch":
            return ast.copy_location(
                _call_method(
                    self.ctx.mem_var, "read", [node.args[0], ast.Constant(self.ctx.ilen)]
                ),
                node,
            )
        if fn in ("__mem_read", "__mem_read_s"):
            call = _call_method(self.ctx.mem_var, "read", list(node.args[:2]))
            if fn == "__mem_read_s":
                # signed read: sext(mem.read(a, s), s * 8); size must be constant
                size = node.args[1]
                bits = (
                    ast.Constant(size.value * 8)
                    if isinstance(size, ast.Constant)
                    else ast.BinOp(size, ast.Mult(), ast.Constant(8))
                )
                call = ast.Call(_name("sext"), [call, bits], [])
            return ast.copy_location(call, node)
        if fn in _MASKS and len(node.args) == 1 and not node.keywords:
            return ast.copy_location(
                ast.BinOp(node.args[0], ast.BitAnd(), ast.Constant(_MASKS[fn])), node
            )
        return node


def rewrite_expr(expr: ast.expr, ctx: RewriteContext) -> ast.expr:
    """Apply expression-level rewrites, returning a new expression."""
    return ast.fix_missing_locations(_ExprRewriter(ctx).visit(expr))


def _is_call_to(stmt: ast.stmt, fn: str) -> ast.Call | None:
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == fn
    ):
        return stmt.value
    return None


def _is_simple(expr: ast.expr) -> bool:
    return isinstance(expr, (ast.Name, ast.Constant))


def _journaled_mem_write(call: ast.Call, ctx: RewriteContext) -> list[ast.stmt]:
    addr, size, value = call.args
    out: list[ast.stmt] = []
    if not _is_simple(addr):
        temp = ctx.fresh_temp()
        out.append(ast.Assign([_store(temp)], addr))
        addr = _name(temp)
    old = _call_method(ctx.mem_var, "read", [addr, size])
    record = ast.Tuple([ast.Constant("m"), addr, size, old], ast.Load())
    out.append(
        ast.Expr(_call_method(ctx.journal_var, "append", [record]))
    )
    out.append(ast.Expr(_call_method(ctx.mem_var, "write", [addr, size, value])))
    return out


def _journaled_regfile_store(
    target: ast.Subscript, value: ast.expr, ctx: RewriteContext, aug_op=None
) -> list[ast.stmt]:
    regfile = target.value.id  # checked by caller
    index = target.slice
    out: list[ast.stmt] = []
    if not _is_simple(index):
        temp = ctx.fresh_temp()
        out.append(ast.Assign([_store(temp)], index))
        index = _name(temp)
    old = ast.Subscript(_name(regfile), index, ast.Load())
    record = ast.Tuple(
        [ast.Constant("r"), ast.Constant(regfile), index, old], ast.Load()
    )
    out.append(ast.Expr(_call_method(ctx.journal_var, "append", [record])))
    new_target = ast.Subscript(_name(regfile), index, ast.Store())
    if aug_op is None:
        out.append(ast.Assign([new_target], value))
    else:
        out.append(ast.AugAssign(new_target, aug_op, value))
    return out


def rewrite_stmt(stmt: ast.stmt, ctx: RewriteContext) -> list[ast.stmt]:
    """Rewrite one statement into its generated form (possibly several).

    Handles statement-level primitives (``__syscall``, ``__raise``,
    ``__mem_write``), speculation journaling of architectural writes, and
    recurses into ``if`` bodies.  Expression-level rewrites are applied to
    every contained expression.
    """
    # __syscall() -> self._do_syscall(di)
    if _is_call_to(stmt, "__syscall") is not None:
        return [ast.Expr(_call_method("self", "_do_syscall", [_name("di")]))]
    # __raise(code) -> fault = code
    raise_call = _is_call_to(stmt, "__raise")
    if raise_call is not None:
        code = rewrite_expr(raise_call.args[0], ctx)
        return [ast.Assign([_store("fault")], code)]
    # __mem_write(a, s, v)
    write_call = _is_call_to(stmt, "__mem_write")
    if write_call is not None:
        args = [rewrite_expr(arg, ctx) for arg in write_call.args]
        call = ast.Call(write_call.func, args, [])
        if ctx.speculate:
            return [ast.fix_missing_locations(s) for s in _journaled_mem_write(call, ctx)]
        return [
            ast.fix_missing_locations(
                ast.Expr(_call_method(ctx.mem_var, "write", args))
            )
        ]
    if isinstance(stmt, ast.If):
        new_if = ast.If(
            rewrite_expr(stmt.test, ctx),
            _rewrite_body(stmt.body, ctx),
            _rewrite_body(stmt.orelse, ctx) if stmt.orelse else [],
        )
        return [ast.fix_missing_locations(ast.copy_location(new_if, stmt))]
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        value = rewrite_expr(stmt.value, ctx)
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in ctx.regfiles
        ):
            target = ast.Subscript(
                target.value, rewrite_expr(target.slice, ctx), ast.Store()
            )
            if ctx.speculate:
                return [
                    ast.fix_missing_locations(s)
                    for s in _journaled_regfile_store(target, value, ctx)
                ]
        return [ast.fix_missing_locations(ast.Assign([target], value))]
    if isinstance(stmt, ast.AugAssign):
        value = rewrite_expr(stmt.value, ctx)
        target = stmt.target
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in ctx.regfiles
        ):
            target = ast.Subscript(
                target.value, rewrite_expr(target.slice, ctx), ast.Store()
            )
            if ctx.speculate:
                return [
                    ast.fix_missing_locations(s)
                    for s in _journaled_regfile_store(target, value, ctx, stmt.op)
                ]
        return [ast.fix_missing_locations(ast.AugAssign(target, stmt.op, value))]
    if isinstance(stmt, ast.Expr):
        return [ast.fix_missing_locations(ast.Expr(rewrite_expr(stmt.value, ctx)))]
    if isinstance(stmt, ast.Pass):
        return []
    return [ast.fix_missing_locations(stmt)]


def _rewrite_body(body: list[ast.stmt], ctx: RewriteContext) -> list[ast.stmt]:
    out: list[ast.stmt] = []
    for stmt in body:
        out.extend(rewrite_stmt(stmt, ctx))
    return out or [ast.Pass()]


def rewrite_stmts(stmts: list[ast.stmt], ctx: RewriteContext) -> list[ast.stmt]:
    """Rewrite a statement list (top-level entry point)."""
    return _rewrite_body(stmts, ctx)


#: signed reinterpretation helpers and their widths (see repro.ops)
_SIGNED_BITS = {"i8": 8, "i16": 16, "i32": 32, "i64": 64}

_IDENTITY_RIGHT_ZERO = (
    ast.Add,
    ast.Sub,
    ast.BitOr,
    ast.BitXor,
    ast.LShift,
    ast.RShift,
)


class _BlockPeephole(ast.NodeTransformer):
    """Expression-level peephole used only by the block translator.

    One/Step modules keep calling the helpers (their shape is pinned by
    golden tests and byte-identity guarantees); translated blocks inline
    them because a CPython call per ALU result dominates block runtime:

    * ``sext(e, k)`` / ``i8..i64(e)`` become ``((e & M) ^ S) - S`` — the
      branch-free closed form of two's-complement reinterpretation;
    * ``if 1 if c else 0:`` becomes ``if c:`` (ADL booleans are 0/1, so
      truthiness is unchanged);
    * ``e + 0``, ``e | 0``, ``e ^ 0``, ``e << 0``, ``e >> 0``, ``e - 0``
      and ``e * 1`` collapse to ``e`` (constant folding of operand
      immediates leaves these behind).
    """

    def visit_Call(self, node: ast.Call):  # noqa: N802 - ast API
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Name) or node.keywords:
            return node
        bits = None
        if func.id in _SIGNED_BITS and len(node.args) == 1:
            bits = _SIGNED_BITS[func.id]
        elif (
            func.id == "sext"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, int)
            and node.args[1].value > 0
        ):
            bits = node.args[1].value
        if bits is None:
            return node
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        masked = ast.BinOp(node.args[0], ast.BitAnd(), ast.Constant(mask))
        flipped = ast.BinOp(masked, ast.BitXor(), ast.Constant(sign))
        return ast.BinOp(flipped, ast.Sub(), ast.Constant(sign))

    def visit_BinOp(self, node: ast.BinOp):  # noqa: N802 - ast API
        self.generic_visit(node)
        right = node.right
        if isinstance(right, ast.Constant) and isinstance(right.value, int):
            if right.value == 0 and isinstance(node.op, _IDENTITY_RIGHT_ZERO):
                return node.left
            if right.value == 1 and isinstance(node.op, ast.Mult):
                return node.left
        left = node.left
        if isinstance(left, ast.Constant) and isinstance(left.value, int):
            if left.value == 0 and isinstance(node.op, (ast.Add, ast.BitOr, ast.BitXor)):
                return node.right
            if left.value == 1 and isinstance(node.op, ast.Mult):
                return node.right
        return node

    @staticmethod
    def _as_bool_test(test: ast.expr) -> ast.expr:
        if (
            isinstance(test, ast.IfExp)
            and isinstance(test.body, ast.Constant)
            and test.body.value == 1
            and isinstance(test.orelse, ast.Constant)
            and test.orelse.value == 0
        ):
            return test.test
        return test

    def visit_If(self, node: ast.If):  # noqa: N802 - ast API
        self.generic_visit(node)
        node.test = self._as_bool_test(node.test)
        return node

    def visit_IfExp(self, node: ast.IfExp):  # noqa: N802 - ast API
        self.generic_visit(node)
        node.test = self._as_bool_test(node.test)
        return node


def peephole_stmts(stmts: list[ast.stmt]) -> list[ast.stmt]:
    """Apply the block-only expression peephole to a statement list."""
    transformer = _BlockPeephole()
    out = []
    for stmt in stmts:
        out.append(ast.fix_missing_locations(transformer.visit(stmt)))
    return out
