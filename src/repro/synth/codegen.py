"""Generation of specialized functional simulators (One and Step detail).

Given an :class:`~repro.adl.spec.IsaSpec` and one of its buildsets, this
module emits Python source implementing exactly the paper's Figure 4
transformation:

* instruction semantics are inlined into each interface function, so no
  "aggressive inlining in the compiler" is needed (§V.C);
* hidden fields are plain locals; visible fields are stored into the
  dynamic-instruction record;
* information that is neither visible nor semantically needed is removed
  by dead-code elimination (:mod:`repro.synth.dataflow`);
* with speculation enabled, every architectural write is journaled.

Block-level semantic detail is produced at runtime by
:mod:`repro.synth.translator`, which shares the assembly helpers here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field

from repro.adl.snippets import analyze_stmt
from repro.adl.spec import Buildset, Entrypoint, Instruction, IsaSpec
from repro.synth.dataflow import TaggedStmt, assigned_names, eliminate_dead
from repro.synth.errors import SynthesisError
from repro.synth.provenance import Provenance, SpecOrigin
from repro.synth.rewrite import RewriteContext, rewrite_stmt, rewrite_stmts


@dataclass(frozen=True)
class SynthOptions:
    """Knobs used by the ablation benchmarks and the observability layer."""

    dce: bool = True
    regcache: bool = True
    profile: bool = False
    max_block: int = 32
    #: emit observability probes (per-entrypoint counters) into generated
    #: code; off by default so the disabled path carries zero extra bytecode
    observe: bool = False
    #: emit profiling probes (per-guest-PC hit counts feeding the
    #: :mod:`repro.prof` hot-PC attribution) into generated code; off by
    #: default under the same zero-overhead-when-off contract, proved
    #: structurally by ``repro check``'s CHK040 residue pass
    trace: bool = False
    #: maximum translated blocks kept in the code cache (None = unbounded)
    cache_limit: int | None = None
    #: total instruction budget of one translation unit; when positive the
    #: block translator follows compile-time-constant unconditional control
    #: transfers across basic-block boundaries up to this many instructions
    #: (each constituent basic block still capped at ``max_block``);
    #: 0 restores classic single-basic-block units
    superblock: int = 256
    #: patch translated units to transfer directly to their successors
    #: (QEMU-style lazy block chaining) instead of returning to the
    #: dispatch loop after every unit
    chain: bool = True
    #: post-translation peephole optimizations inside translated blocks:
    #: copy forwarding of single-use temporaries (``src1_val = __R_R_4;
    #: dest_val = op(src1_val)`` becomes ``dest_val = op(__R_R_4)``),
    #: inline expansion of signed-cast helpers (``sext``/``i8``..``i64``),
    #: and branch-test simplification; block translator only
    peephole: bool = True


@dataclass
class BuildPlan:
    """Pre-computed facts shared by the generators and the translator."""

    spec: IsaSpec
    buildset: Buildset
    options: SynthOptions
    decode_action: str
    #: entrypoint containing the decode action
    decode_ep_index: int
    #: actions that run before decode (instruction-independent)
    pre_actions: tuple[str, ...]
    #: actions from decode onward, in interface order
    post_actions: tuple[str, ...]
    #: entrypoint index for each post action
    ep_of_action: dict[str, int] = dc_field(default_factory=dict)
    #: canonical order of visible fields (trace record layout)
    trace_fields: tuple[str, ...] = ()
    #: static observability metadata: per-action [total, eliminated]
    #: statement counts accumulated while generating this plan's module
    dce_stats: dict[str, list[int]] = dc_field(default_factory=dict)
    #: generated-line -> spec-construct side-table filled during generation
    #: (consumed by :mod:`repro.check` for diagnostic attribution)
    provenance: Provenance = dc_field(default_factory=Provenance)

    @property
    def pure_names(self) -> frozenset[str]:
        return frozenset(self.spec.helpers)


def make_plan(spec: IsaSpec, buildset: Buildset, options: SynthOptions) -> BuildPlan:
    """Validate the buildset against the spec and precompute layout facts."""
    if not spec.instructions:
        raise SynthesisError("specification has no instructions")
    decode_actions = {slot.decode_action for slot in spec.operand_slots.values()}
    if len(decode_actions) > 1:
        raise SynthesisError(
            f"operand slots disagree on the decode action: {sorted(decode_actions)}"
        )
    if decode_actions:
        decode_action = next(iter(decode_actions))
    else:
        raise SynthesisError("specification declares no operand slots")

    ep_of_action: dict[str, int] = {}
    for index, ep in enumerate(buildset.entrypoints):
        for action in ep.actions:
            if action in ep_of_action:
                raise SynthesisError(
                    f"action {action!r} appears in more than one entrypoint"
                )
            ep_of_action[action] = index
    if decode_action not in ep_of_action:
        raise SynthesisError(
            f"buildset {buildset.name!r} never performs the decode action "
            f"{decode_action!r}"
        )
    decode_ep = ep_of_action[decode_action]

    pre: list[str] = []
    post: list[str] = []
    for index, ep in enumerate(buildset.entrypoints):
        for action in ep.actions:
            if index < decode_ep:
                pre.append(action)
            elif index == decode_ep:
                ep_actions = list(ep.actions)
                if ep_actions.index(action) < ep_actions.index(decode_action):
                    pre.append(action)
                else:
                    post.append(action)
            else:
                post.append(action)

    _validate_pre_actions(spec, pre)
    trace_fields = tuple(
        name for name in spec.fields if name in buildset.visible
    )
    return BuildPlan(
        spec=spec,
        buildset=buildset,
        options=options,
        decode_action=decode_action,
        decode_ep_index=decode_ep,
        pre_actions=tuple(pre),
        post_actions=tuple(post),
        ep_of_action=ep_of_action,
        trace_fields=trace_fields,
    )


def _validate_pre_actions(spec: IsaSpec, pre: list[str]) -> None:
    """Pre-decode actions must not vary per instruction (nothing is decoded)."""
    for action in pre:
        rendered = {
            "\n".join(ast.unparse(s) for s in instr.action_code.get(action, ()))
            for instr in spec.instructions
        }
        if len(rendered) > 1:
            raise SynthesisError(
                f"action {action!r} runs before decode but differs between "
                f"instructions"
            )


# -- statement assembly ---------------------------------------------------------


def _copy_stmt(stmt: ast.stmt) -> ast.stmt:
    return ast.parse(ast.unparse(stmt)).body[0]


def _extraction_stmt(bitfield, word_var: str = "instr_bits") -> ast.stmt:
    """``name = (instr_bits >> lo) & mask`` with optional sign extension."""
    mask = (1 << bitfield.width) - 1
    expr: ast.expr = ast.Name(word_var, ast.Load())
    if bitfield.lo:
        expr = ast.BinOp(expr, ast.RShift(), ast.Constant(bitfield.lo))
    expr = ast.BinOp(expr, ast.BitAnd(), ast.Constant(mask))
    if bitfield.signed:
        expr = ast.Call(
            ast.Name("sext", ast.Load()), [expr, ast.Constant(bitfield.width)], []
        )
    assign = ast.Assign([ast.Name(bitfield.name, ast.Store())], expr)
    return ast.fix_missing_locations(assign)


def _assign_const(name: str, value: object) -> ast.stmt:
    return ast.fix_missing_locations(
        ast.Assign([ast.Name(name, ast.Store())], ast.Constant(value))
    )


def _parse_one(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


def assemble_instruction_stmts(
    plan: BuildPlan, instr: Instruction
) -> list[TaggedStmt]:
    """Ordered post-decode statements for one instruction.

    Includes synthetic statements: format bitfield extraction, the
    ``next_pc`` fall-through default and the ``fault = 0`` reset, all
    tagged with the decode action so step splitting places them there.
    Post-predicate actions are wrapped in ``if <predicate>:`` blocks.
    """
    spec = plan.spec
    out: list[TaggedStmt] = []
    decode = plan.decode_action
    for bitfield in instr.format.bitfields.values():
        out.append(TaggedStmt(decode, _extraction_stmt(bitfield)))
    out.append(
        TaggedStmt(decode, _parse_one(f"next_pc = pc + {spec.ilen}"))
    )
    out.append(TaggedStmt(decode, _assign_const("fault", 0)))

    predicate_field: str | None = None
    predicate_after = ""
    if spec.predicate is not None:
        predicate_field, predicate_after = spec.predicate

    for action in plan.post_actions:
        stmts = [_copy_stmt(s) for s in instr.action_code.get(action, ())]
        if not stmts:
            continue
        guarded = (
            predicate_field is not None
            and spec.action_index(action) > spec.action_index(predicate_after)
        )
        if guarded:
            wrapper = ast.If(
                ast.Name(predicate_field, ast.Load()), stmts, []
            )
            out.append(TaggedStmt(action, ast.fix_missing_locations(wrapper)))
        else:
            out.extend(TaggedStmt(action, s) for s in stmts)
    return out


def instruction_live_out(plan: BuildPlan, stmts: list[TaggedStmt]) -> set[str]:
    """Names this instruction must leave correct: interface-visible
    fields, the control outputs, and any special registers it writes
    (those are architectural state regardless of visibility)."""
    assigned = assigned_names(stmts)
    live = assigned & plan.buildset.visible
    live |= {"next_pc", "fault"}  # always control the simulator
    live |= assigned & set(plan.spec.sregs)
    return live


def optimize_stmts(
    plan: BuildPlan, stmts: list[TaggedStmt], live_out: set[str]
) -> list[TaggedStmt]:
    """Apply (optional) dead-code elimination."""
    if not plan.options.dce:
        return stmts
    kept = eliminate_dead(stmts, live_out, plan.pure_names)
    record_dce_stats(plan, stmts, kept)
    return kept


def record_dce_stats(
    plan: BuildPlan, full: list[TaggedStmt], kept: list[TaggedStmt]
) -> None:
    """Accumulate per-action statement/eliminated counts on the plan.

    This is the "DCE-eliminated action counts emitted as static
    metadata" observability feed: it costs nothing at run time because
    it is computed once, during generation.
    """
    kept_per_action: dict[str, int] = {}
    for tagged in kept:
        kept_per_action[tagged.action] = kept_per_action.get(tagged.action, 0) + 1
    totals: dict[str, int] = {}
    for tagged in full:
        totals[tagged.action] = totals.get(tagged.action, 0) + 1
    for action, total in totals.items():
        entry = plan.dce_stats.setdefault(action, [0, 0])
        entry[0] += total
        entry[1] += total - kept_per_action.get(action, 0)


def _definitely_assigned_walk(
    stmts: list[TaggedStmt], predefined: set[str], domain: set[str]
) -> set[str]:
    """Names in ``domain`` read before any sure assignment (need 0-init)."""
    defined = set(predefined)
    needs: set[str] = set()
    for tagged in stmts:
        facts = analyze_stmt(tagged.stmt)
        unknown = (facts.reads & domain) - defined
        needs |= unknown
        if isinstance(tagged.stmt, ast.Assign) and not isinstance(
            tagged.stmt, ast.If
        ):
            defined |= facts.writes
        elif not isinstance(tagged.stmt, ast.If):
            defined |= facts.writes
        else:
            # conditional writes do not count as definite assignment, but
            # later reads should not be flagged twice
            needs |= set()
    return needs


def zero_init_names(
    plan: BuildPlan,
    kept: list[TaggedStmt],
    full: list[TaggedStmt],
    predefined: set[str],
    extra_reads: set[str],
) -> list[str]:
    """Names needing a defensive ``= 0`` before the body runs.

    ``extra_reads`` covers reads performed by epilogue code (visible-field
    stores, carries).  The domain of candidate names is everything any
    statement of the *unoptimized* body could write — i.e. fields and
    snippet locals — so globals and helpers are never shadowed.
    """
    domain = assigned_names(full) | set(plan.spec.fields)
    needs = _definitely_assigned_walk(kept, predefined, domain)
    # Epilogue reads of names that no kept statement surely assigned.
    defined = set(predefined)
    for tagged in kept:
        if not isinstance(tagged.stmt, ast.If):
            defined |= analyze_stmt(tagged.stmt).writes
    needs |= (extra_reads & domain) - defined
    return sorted(needs)


# -- source rendering -------------------------------------------------------------


class SourceWriter:
    """Tiny indentation-aware source accumulator.

    When constructed with a :class:`Provenance`, every emitted line may
    carry a :class:`SpecOrigin` recorded against its 1-based line number.
    """

    def __init__(self, provenance: Provenance | None = None) -> None:
        self._lines: list[str] = []
        self._indent = 0
        self.provenance = provenance

    def line(self, text: str = "", origin: SpecOrigin | None = None) -> None:
        self._lines.append(("    " * self._indent) + text if text else "")
        if origin is not None and self.provenance is not None:
            self.provenance.record_line(len(self._lines), origin)

    def stmts(
        self, stmts: list[ast.stmt], origin: SpecOrigin | None = None
    ) -> None:
        for stmt in stmts:
            for line in ast.unparse(stmt).splitlines():
                self.line(line, origin)

    def mark_function(self, name: str, origin: SpecOrigin) -> None:
        if self.provenance is not None:
            self.provenance.record_function(name, origin)

    def merge(self, sub: "SourceWriter") -> None:
        """Append a sub-writer's lines (at current indent), keeping provenance."""
        offset = len(self._lines)
        prefix = "    " * self._indent
        for line in sub._lines:
            self._lines.append(prefix + line if line else line)
        if self.provenance is not None and sub.provenance is not None:
            self.provenance.merge_offset(sub.provenance, offset)

    def indent(self) -> None:
        self._indent += 1

    def dedent(self) -> None:
        self._indent -= 1

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


def _sregs_read_written(
    plan: BuildPlan, stmts: list[TaggedStmt]
) -> tuple[set[str], set[str]]:
    reads: set[str] = set()
    writes: set[str] = set()
    sregs = set(plan.spec.sregs)
    for tagged in stmts:
        facts = analyze_stmt(tagged.stmt)
        reads |= facts.reads & sregs
        writes |= facts.writes & sregs
    return reads, writes


def _regfiles_used(plan: BuildPlan, stmts: list[ast.stmt]) -> list[str]:
    used: set[str] = set()
    names = set(plan.spec.regfiles)
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id in names:
                used.add(node.id)
    return sorted(used)


def _mem_used(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == "__mem":
                return True
    return False


def _visible_assigned(plan: BuildPlan, stmts: list[TaggedStmt]) -> list[str]:
    assigned = assigned_names(stmts)
    return [f for f in plan.spec.fields if f in assigned and f in plan.buildset.visible]


# -- decode dispatch ---------------------------------------------------------------


def emit_decode_dispatch(writer: SourceWriter, plan: BuildPlan, word: str) -> None:
    """Emit inline mask/table decode; leaves ``__op`` holding the index."""
    groups = plan.spec.decode_groups()
    for position, (mask, _table) in enumerate(groups):
        lookup = f"_T{position}.get({word} & {mask:#x})"
        if position == 0:
            writer.line(f"__op = {lookup}")
        else:
            writer.line("if __op is None:")
            writer.indent()
            writer.line(f"__op = {lookup}")
            writer.dedent()


def decode_tables(plan: BuildPlan) -> dict[str, dict[int, int]]:
    return {
        f"_T{position}": table
        for position, (_mask, table) in enumerate(plan.spec.decode_groups())
    }


# -- dynamic instruction class -------------------------------------------------------


def emit_dyninst_class(
    writer: SourceWriter,
    plan: BuildPlan,
    carry_slots: list[str],
    extra_slots: tuple[str, ...] = (),
) -> None:
    slots = (
        list(plan.trace_fields)
        + ["trace", "count", "_op"]
        + carry_slots
        + list(extra_slots)
    )
    writer.line("class DynInst:")
    writer.indent()
    writer.line('"""Dynamic-instruction record for this interface."""')
    writer.line(f"__slots__ = {tuple(slots)!r}")
    writer.line("def __init__(self):")
    writer.indent()
    for name in plan.trace_fields:
        writer.line(f"self.{name} = 0")
    writer.line("self.trace = []")
    writer.line("self.count = 0")
    writer.line("self._op = 0")
    for name in carry_slots:
        writer.line(f"self.{name} = 0")
    for name in extra_slots:
        writer.line(f"self.{name} = 0")
    writer.dedent()
    writer.dedent()
    writer.line()


# -- pre-decode code -----------------------------------------------------------------


def predecode_stmts(plan: BuildPlan) -> list[ast.stmt]:
    """Instruction-independent statements before decode, plus pc read."""
    instr = plan.spec.instructions[0]
    stmts: list[ast.stmt] = [_parse_one("pc = __state.pc")]
    for action in plan.pre_actions:
        stmts.extend(_copy_stmt(s) for s in instr.action_code.get(action, ()))
    return stmts


def predecode_defined(plan: BuildPlan) -> set[str]:
    out = {"pc"}
    instr = plan.spec.instructions[0]
    for action in plan.pre_actions:
        for stmt in instr.action_code.get(action, ()):
            out |= analyze_stmt(stmt).writes
    return out


# -- One-call-per-instruction generator ------------------------------------------------


def generate_one_module(plan: BuildPlan) -> str:
    """Source for a buildset with a single (non-block) entrypoint."""
    spec = plan.spec
    buildset = plan.buildset
    entry = buildset.entrypoints[0]
    writer = SourceWriter(plan.provenance)
    writer.line(f'"""Synthesized simulator: {spec.name}/{buildset.name} (one)."""')
    writer.line()
    emit_dyninst_class(writer, plan, carry_slots=[])

    pre_defined = predecode_defined(plan)
    for index, instr in enumerate(spec.instructions):
        _emit_one_body(writer, plan, instr, index, pre_defined)

    # Entry function.
    entry_origin = SpecOrigin(kind="entry", detail=entry.name, loc=buildset.loc)
    writer.mark_function(entry.name, entry_origin)
    writer.line(f"def {entry.name}(self, di):", entry_origin)
    writer.indent()
    if plan.options.observe:
        writer.line(f"self._obs_ep[{entry.name!r}] += 1")
    writer.line("__state = self.state")
    pre = predecode_stmts(plan)
    ctx = RewriteContext(
        ilen=spec.ilen, speculate=False, regfiles=frozenset(spec.regfiles)
    )
    pre = rewrite_stmts(pre, ctx)
    if _mem_used(pre):
        writer.line("__mem = __state.mem")
    writer.stmts(pre, SpecOrigin(kind="predecode", loc=buildset.loc))
    emit_decode_dispatch(writer, plan, "instr_bits")
    writer.line("if __op is None:")
    writer.indent()
    writer.line("raise IllegalInstruction(pc, instr_bits)")
    writer.dedent()
    for name in sorted(pre_defined & buildset.visible):
        writer.line(
            f"di.{name} = {name}",
            SpecOrigin(kind="store", detail=name, loc=_field_loc(spec, name)),
        )
    if plan.options.profile:
        writer.line("self._hops += __EP_COST__")
    if plan.options.trace:
        writer.line("_ph = self._prof_hits")
        writer.line("_ph[pc] = _ph.get(pc, 0) + 1")
    writer.line("_B[__op](self, di, pc, instr_bits)", SpecOrigin(kind="dispatch"))
    writer.dedent()
    writer.line()
    writer.line(f"ENTRYPOINTS = {(entry.name,)!r}")
    return writer.source()


def _field_loc(spec: IsaSpec, name: str):
    field = spec.fields.get(name)
    return field.loc if field is not None else None


def _action_origin(instr: Instruction, tagged: TaggedStmt, step: int | None = None):
    """Origin for one kept statement: its action's snippet, else the instr."""
    return SpecOrigin(
        instr=instr.name,
        action=tagged.action,
        kind="semantics",
        step=step,
        loc=instr.action_locs.get(tagged.action, instr.loc),
    )


def _rewrite_tagged(
    kept: list[TaggedStmt], ctx: RewriteContext, instr: Instruction,
    step: int | None = None,
) -> list[tuple[SpecOrigin, list[ast.stmt]]]:
    """Rewrite kept statements one by one, keeping their origins."""
    return [
        (_action_origin(instr, tagged, step), rewrite_stmt(tagged.stmt, ctx))
        for tagged in kept
    ]


def _emit_one_body(
    writer: SourceWriter,
    plan: BuildPlan,
    instr: Instruction,
    index: int,
    pre_defined: set[str],
) -> None:
    spec = plan.spec
    speculate = plan.buildset.speculation
    full = assemble_instruction_stmts(plan, instr)
    live_out = instruction_live_out(plan, full)
    kept = optimize_stmts(plan, full, live_out)

    visible_stores = _visible_assigned(plan, kept)
    sreg_reads, sreg_writes = _sregs_read_written(plan, kept)
    sregs_bound = sorted(sreg_reads | sreg_writes)

    predefined = {"pc", "instr_bits", "self", "di"} | set(sregs_bound)
    extra_reads = set(visible_stores) | {"next_pc"}
    zero_inits = zero_init_names(plan, kept, full, predefined, extra_reads)

    # Reads of values produced before decode (e.g. phys_pc) load from di.
    reads_of_pre = set()
    for tagged in kept:
        reads_of_pre |= analyze_stmt(tagged.stmt).reads
    di_loads = sorted((reads_of_pre & pre_defined) - {"pc", "instr_bits"})

    ctx = RewriteContext(
        ilen=spec.ilen, speculate=speculate, regfiles=frozenset(spec.regfiles)
    )
    rewritten = _rewrite_tagged(kept, ctx, instr)
    body_stmts = [s for _origin, stmts in rewritten for s in stmts]

    body_origin = SpecOrigin(instr=instr.name, kind="body", loc=instr.loc)
    writer.mark_function(f"_b_{index}", body_origin)
    writer.line(f"def _b_{index}(self, di, pc, instr_bits):", body_origin)
    writer.indent()
    writer.line(f"# {instr.name}")
    if plan.options.profile:
        writer.line(f"self._hops += __BODY_COST_{index}__")
    writer.line("__state = self.state")
    if _mem_used(body_stmts):
        writer.line("__mem = __state.mem")
    for regfile in _regfiles_used(plan, body_stmts):
        writer.line(f"{regfile} = __state.rf[{regfile!r}]")
    for sreg in sregs_bound:
        writer.line(
            f"{sreg} = __state.sr[{sreg!r}]",
            SpecOrigin(instr=instr.name, kind="sreg", detail=sreg),
        )
    for name in di_loads:
        writer.line(f"{name} = di.{name}")
    if speculate:
        journal = SpecOrigin(instr=instr.name, kind="journal", loc=instr.loc)
        writer.line("__j = [('p', pc)]", journal)
        for sreg in sorted(sreg_writes):
            writer.line(f"__j.append(('s', {sreg!r}, {sreg}))", journal)
    for name in zero_inits:
        writer.line(
            f"{name} = 0", SpecOrigin(instr=instr.name, kind="zero_init", detail=name)
        )
    for origin, stmts in rewritten:
        writer.stmts(stmts, origin)
    for sreg in sorted(sreg_writes):
        writer.line(
            f"__state.sr[{sreg!r}] = {sreg}",
            SpecOrigin(instr=instr.name, kind="sreg", detail=sreg, loc=instr.loc),
        )
    if speculate:
        writer.line(
            "__state.journal.append(__j)",
            SpecOrigin(instr=instr.name, kind="journal", loc=instr.loc),
        )
    for name in visible_stores:
        writer.line(
            f"di.{name} = {name}",
            SpecOrigin(
                instr=instr.name, kind="store", detail=name,
                loc=_field_loc(spec, name) or instr.loc,
            ),
        )
    writer.line(
        "__state.pc = next_pc",
        SpecOrigin(instr=instr.name, kind="commit", loc=instr.loc),
    )
    writer.dedent()
    writer.line()


# -- Step (multi-call) generator ----------------------------------------------------------


def generate_step_module(plan: BuildPlan) -> str:
    """Source for a buildset whose entrypoints split instruction steps."""
    spec = plan.spec
    buildset = plan.buildset
    writer = SourceWriter(plan.provenance)
    writer.line(f'"""Synthesized simulator: {spec.name}/{buildset.name} (step)."""')
    writer.line()

    carry_slots: set[str] = set()
    bodies_src: list[SourceWriter] = []

    pre_defined = predecode_defined(plan)
    n_eps = len(buildset.entrypoints)

    # Generate per-instruction, per-step bodies.
    step_tables: dict[int, list[str]] = {
        index: [] for index in range(plan.decode_ep_index, n_eps)
    }
    for index, instr in enumerate(spec.instructions):
        sources, slots = _emit_step_bodies(plan, instr, index, pre_defined)
        carry_slots |= slots
        for ep_index, sub in sources.items():
            bodies_src.append(sub)
            step_tables[ep_index].append(f"_sb_{ep_index}_{index}")

    emit_dyninst_class(writer, plan, sorted(carry_slots))
    for sub in bodies_src:
        writer.merge(sub)
        writer.line()

    for ep_index in range(plan.decode_ep_index, n_eps):
        names = ", ".join(step_tables[ep_index])
        writer.line(f"_S{ep_index} = ({names},)")
    writer.line()

    # Entry functions.
    ctx = RewriteContext(
        ilen=spec.ilen, speculate=False, regfiles=frozenset(spec.regfiles)
    )
    for ep_index, ep in enumerate(buildset.entrypoints):
        entry_origin = SpecOrigin(
            kind="entry", detail=ep.name, step=ep_index, loc=buildset.loc
        )
        writer.mark_function(ep.name, entry_origin)
        writer.line(f"def {ep.name}(self, di):", entry_origin)
        writer.indent()
        if plan.options.observe:
            writer.line(f"self._obs_ep[{ep.name!r}] += 1")
        if plan.options.profile:
            writer.line(f"self._hops += __EP_COST_{ep_index}__")
        predecode = SpecOrigin(kind="predecode", step=ep_index, loc=buildset.loc)
        if ep_index < plan.decode_ep_index:
            writer.line("__state = self.state")
            pre = rewrite_stmts(predecode_stmts(plan), ctx)
            if _mem_used(pre):
                writer.line("__mem = __state.mem")
            writer.stmts(pre, predecode)
            for name in sorted(predecode_defined(plan) & buildset.visible):
                writer.line(
                    f"di.{name} = {name}",
                    SpecOrigin(kind="store", detail=name,
                               loc=_field_loc(spec, name)),
                )
            if plan.options.trace and ep_index == 0:
                writer.line("_ph = self._prof_hits")
                writer.line("_ph[pc] = _ph.get(pc, 0) + 1")
        elif ep_index == plan.decode_ep_index:
            if plan.decode_ep_index == 0:
                # decode entry also performs the pre-decode work
                writer.line("__state = self.state")
                pre = rewrite_stmts(predecode_stmts(plan), ctx)
                if _mem_used(pre):
                    writer.line("__mem = __state.mem")
                writer.stmts(pre, predecode)
                for name in sorted(predecode_defined(plan) & buildset.visible):
                    writer.line(
                        f"di.{name} = {name}",
                        SpecOrigin(kind="store", detail=name,
                                   loc=_field_loc(spec, name)),
                    )
                if plan.options.trace:
                    writer.line("_ph = self._prof_hits")
                    writer.line("_ph[pc] = _ph.get(pc, 0) + 1")
            else:
                writer.line("instr_bits = di.instr_bits")
            emit_decode_dispatch(writer, plan, "instr_bits")
            writer.line("if __op is None:")
            writer.indent()
            writer.line("raise IllegalInstruction(di.pc, instr_bits)")
            writer.dedent()
            writer.line("di._op = __op")
            writer.line(f"_S{ep_index}[__op](self, di)", SpecOrigin(kind="dispatch"))
        else:
            writer.line(
                f"_S{ep_index}[di._op](self, di)", SpecOrigin(kind="dispatch")
            )
        writer.dedent()
        writer.line()
    writer.line(f"ENTRYPOINTS = {tuple(ep.name for ep in buildset.entrypoints)!r}")
    return writer.source()


def _emit_step_bodies(
    plan: BuildPlan,
    instr: Instruction,
    index: int,
    pre_defined: set[str],
) -> tuple[dict[int, "SourceWriter"], set[str]]:
    """Bodies for one instruction, one per post-decode entrypoint.

    Returns per-entrypoint sub-writers (merged into the module writer by
    the caller, provenance included) plus the carry slots they need.
    """
    spec = plan.spec
    buildset = plan.buildset
    speculate = buildset.speculation
    full = assemble_instruction_stmts(plan, instr)
    live_out = instruction_live_out(plan, full)
    kept = optimize_stmts(plan, full, live_out)

    n_eps = len(buildset.entrypoints)
    last_ep = n_eps - 1
    by_step: dict[int, list[TaggedStmt]] = {
        ep: [] for ep in range(plan.decode_ep_index, n_eps)
    }
    for tagged in kept:
        by_step[plan.ep_of_action[tagged.action]].append(tagged)

    # Dataflow between steps: definitions (any write), sure definitions
    # (unconditional writes) and upward-exposed uses per step.  A name
    # written only under an `if` does not satisfy later reads: those must
    # reload the carried value.
    defs_per_step: dict[int, set[str]] = {}
    sure_defs_per_step: dict[int, set[str]] = {}
    uses_per_step: dict[int, set[str]] = {}
    for ep, stmts in by_step.items():
        defs: set[str] = set()
        sure: set[str] = set()
        uses: set[str] = set()
        for tagged in stmts:
            facts = analyze_stmt(tagged.stmt)
            uses |= facts.reads - sure
            defs |= facts.writes
            if not isinstance(tagged.stmt, ast.If):
                sure |= facts.writes
        defs_per_step[ep] = defs
        sure_defs_per_step[ep] = sure
        uses_per_step[ep] = uses

    sources: dict[int, SourceWriter] = {}
    carry_slots: set[str] = set()
    carried_defined: set[str] = set(pre_defined)  # names available via di
    domain = assigned_names(full) | set(spec.fields) | pre_defined
    sregs = set(spec.sregs)

    for ep in range(plan.decode_ep_index, n_eps):
        stmts = by_step[ep]
        writer = SourceWriter(Provenance())
        body_origin = SpecOrigin(
            instr=instr.name, kind="body", step=ep, loc=instr.loc
        )
        writer.mark_function(f"_sb_{ep}_{index}", body_origin)
        writer.line(f"def _sb_{ep}_{index}(self, di):", body_origin)
        writer.indent()
        writer.line(f"# {instr.name} step {ep}")

        facts_reads = uses_per_step[ep] & domain
        later_uses: set[str] = set()
        for later in range(ep + 1, n_eps):
            later_uses |= uses_per_step[later]
        visible_now = [
            f
            for f in spec.fields
            if f in defs_per_step[ep] and f in buildset.visible
        ]
        carries_out = sorted(
            (defs_per_step[ep] & later_uses & domain) - sregs
        )
        needs_state = True  # pc commit, sregs, regfiles, mem all need it
        writer.line("__state = self.state")

        sreg_reads, sreg_writes = _sregs_read_written(plan, stmts)
        ctx = RewriteContext(
            ilen=spec.ilen,
            speculate=speculate,
            regfiles=frozenset(spec.regfiles),
        )
        rewritten = _rewrite_tagged(stmts, ctx, instr, step=ep)
        body_stmts = [s for _origin, body in rewritten for s in body]
        if _mem_used(body_stmts):
            writer.line("__mem = __state.mem")
        for regfile in _regfiles_used(plan, body_stmts):
            writer.line(f"{regfile} = __state.rf[{regfile!r}]")
        for sreg in sorted(sreg_reads | sreg_writes):
            writer.line(
                f"{sreg} = __state.sr[{sreg!r}]",
                SpecOrigin(instr=instr.name, kind="sreg", detail=sreg, step=ep),
            )

        # Loads of values produced by earlier steps: upward-exposed reads,
        # plus anything this step stores (visible/carry) but only assigns
        # conditionally - the store must then forward the earlier value.
        epilogue_needs = (set(visible_now) | set(carries_out)) - sure_defs_per_step[ep]
        loads = sorted(
            ((facts_reads | epilogue_needs) & carried_defined)
            - sregs
            - {"self", "di"}
        )
        for name in loads:
            slot = name if name in buildset.visible else f"_c_{name}"
            if name not in buildset.visible:
                carry_slots.add(slot)
            writer.line(
                f"{name} = di.{slot}",
                SpecOrigin(instr=instr.name, kind="carry", detail=name, step=ep),
            )

        journal = SpecOrigin(
            instr=instr.name, kind="journal", step=ep, loc=instr.loc
        )
        if speculate and ep == plan.decode_ep_index:
            # One journal entry per instruction, created at decode time and
            # carried through the remaining steps via the record.
            writer.line("__j = [('p', di.pc)]", journal)
            writer.line("di._c___j = __j", journal)
            carry_slots.add("_c___j")
        elif speculate and (_step_has_journaled_writes(stmts) or sreg_writes):
            writer.line("__j = di._c___j", journal)
            carry_slots.add("_c___j")
        if speculate and sreg_writes:
            for sreg in sorted(sreg_writes):
                writer.line(f"__j.append(('s', {sreg!r}, {sreg}))", journal)

        predefined_step = (
            set(loads) | {"self", "di"} | sreg_reads | sreg_writes | {"pc", "instr_bits"} & set(loads)
        )
        zero_inits = zero_init_names(
            plan,
            stmts,
            full,
            predefined_step | set(loads),
            set(visible_now) | set(carries_out),
        )
        for name in zero_inits:
            writer.line(
                f"{name} = 0",
                SpecOrigin(instr=instr.name, kind="zero_init", detail=name, step=ep),
            )

        for origin, body in rewritten:
            writer.stmts(body, origin)

        for sreg in sorted(sreg_writes):
            writer.line(
                f"__state.sr[{sreg!r}] = {sreg}",
                SpecOrigin(instr=instr.name, kind="sreg", detail=sreg, step=ep,
                           loc=instr.loc),
            )
        for name in visible_now:
            writer.line(
                f"di.{name} = {name}",
                SpecOrigin(instr=instr.name, kind="store", detail=name, step=ep,
                           loc=_field_loc(spec, name) or instr.loc),
            )
        for name in carries_out:
            if name in buildset.visible:
                continue  # already stored above
            slot = f"_c_{name}"
            carry_slots.add(slot)
            writer.line(
                f"di.{slot} = {name}",
                SpecOrigin(instr=instr.name, kind="carry", detail=name, step=ep),
            )
        if ep == last_ep:
            if speculate:
                writer.line(
                    "__state.journal.append(di._c___j)",
                    SpecOrigin(instr=instr.name, kind="journal", step=ep,
                               loc=instr.loc),
                )
                carry_slots.add("_c___j")
            writer.line(
                "__state.pc = di.next_pc",
                SpecOrigin(instr=instr.name, kind="commit", step=ep,
                           loc=instr.loc),
            )
        if plan.options.profile:
            writer.line(f"self._hops += __SBODY_COST_{ep}_{index}__")
        sources[ep] = writer
        carried_defined |= defs_per_step[ep]

    return sources, carry_slots


def _instr_has_journaled_writes(kept: list[TaggedStmt]) -> bool:
    for tagged in kept:
        facts = analyze_stmt(tagged.stmt)
        if facts.subscript_writes or "__mem_write" in facts.effects:
            return True
    return False


def _step_has_journaled_writes(stmts: list[TaggedStmt]) -> bool:
    return _instr_has_journaled_writes(stmts)
