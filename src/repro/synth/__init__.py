"""Simulator synthesis: the single-specification principle, executable.

The public surface is :func:`synthesize` plus the option/record types it
returns; everything else is generation machinery.
"""

from repro.synth.codegen import SynthOptions
from repro.synth.errors import SynthesisError
from repro.synth.runtime import RunResult, SynthesizedSimulator
from repro.synth.synthesizer import GeneratedSimulator, synthesize

__all__ = [
    "GeneratedSimulator",
    "RunResult",
    "SynthOptions",
    "SynthesisError",
    "SynthesizedSimulator",
    "synthesize",
]
