"""Provenance side-table: generated lines -> originating spec constructs.

The single-specification principle means users never read the generated
modules; tooling that reports problems *about* generated code therefore
has to translate findings back to the ``.lis`` constructs the user
actually wrote.  During generation the :class:`~repro.synth.codegen.
SourceWriter` records, for every emitted line, a :class:`SpecOrigin`
describing where that line came from: which instruction, which action,
what kind of synthetic statement (record store, journal append, commit,
zero-init, ...) and — when the spec model carries one — the ``.lis``
source location.  :mod:`repro.check` uses this table to attribute every
``CHK`` diagnostic to both the generated line and the spec construct.

The table is static metadata computed once at synthesis time; it adds
nothing to the generated module itself and costs nothing at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adl.errors import SourceLoc

#: Values for :attr:`SpecOrigin.kind`.
KINDS = (
    "entry",       # an interface entry function
    "body",        # a per-instruction (or per-step) body function
    "predecode",   # instruction-independent pre-decode statements
    "extract",     # format bitfield extraction / synthetic defaults
    "semantics",   # statements originating in spec action code
    "store",       # a visible-field store into the dynamic-instruction record
    "carry",       # a hidden-value carry store between step calls
    "sreg",        # special-register load/store plumbing
    "journal",     # speculation undo-journal plumbing
    "commit",      # the architectural pc commit
    "zero_init",   # defensive zero initialization
    "dispatch",    # decode dispatch / body-table plumbing
)


@dataclass(frozen=True)
class SpecOrigin:
    """Where one generated line (or function) came from."""

    instr: str | None = None
    action: str | None = None
    kind: str = "semantics"
    #: a field / register / function name the line concerns, if any
    detail: str | None = None
    #: entrypoint index for step-split bodies
    step: int | None = None
    #: the originating ``.lis`` construct, when the spec model carries one
    loc: SourceLoc | None = None

    def describe(self) -> str:
        parts: list[str] = [self.kind]
        if self.instr:
            parts.append(f"instruction {self.instr}")
        if self.action:
            parts.append(f"action {self.action}")
        if self.detail:
            parts.append(self.detail)
        if self.step is not None:
            parts.append(f"step {self.step}")
        return ", ".join(parts)


@dataclass
class Provenance:
    """Side-table for one generated module."""

    #: 1-based generated-source line -> origin
    lines: dict[int, SpecOrigin] = field(default_factory=dict)
    #: generated function name -> origin
    functions: dict[str, SpecOrigin] = field(default_factory=dict)

    def record_line(self, lineno: int, origin: SpecOrigin) -> None:
        self.lines[lineno] = origin

    def record_function(self, name: str, origin: SpecOrigin) -> None:
        self.functions[name] = origin

    def origin_at(
        self, lineno: int, function: str | None = None
    ) -> SpecOrigin | None:
        """Best origin for a generated line: the line's, else its function's."""
        origin = self.lines.get(lineno)
        if origin is not None:
            return origin
        if function is not None:
            return self.functions.get(function)
        return None

    def merge_offset(self, other: "Provenance", line_offset: int) -> None:
        """Fold a sub-writer's table in, shifting line numbers."""
        for lineno, origin in other.lines.items():
            self.lines[lineno + line_offset] = origin
        self.functions.update(other.functions)
