"""Liveness analysis and dead-code elimination over snippet statements.

This implements the paper's §IV observation that, once hidden fields
become locals, "the computation of information which is not actually
needed semantically and not part of the interface becomes dead code which
can be optimized away."  The compiler in the paper's C++ setting is gcc;
here the synthesizer is the compiler, so the elimination is explicit.

Statements are *anchored* (never removed) when they have architectural
side effects: register-file stores, memory writes, syscalls, calls to
unknown functions.  Everything else survives only while some later-kept
statement or interface-visible field reads its results.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.adl.snippets import StmtFacts, analyze_stmt


@dataclass(frozen=True)
class TaggedStmt:
    """A statement plus the action it came from (used for step splitting)."""

    action: str
    stmt: ast.stmt


def stmt_is_anchored(facts: StmtFacts, pure_extra: frozenset[str]) -> bool:
    """True when the statement must run regardless of liveness.

    ``pure_extra`` holds spec-level helper names (pure by contract) so that
    calls to them do not anchor a statement.
    """
    if facts.effects or facts.subscript_writes:
        return True
    return bool(facts.unknown_calls - pure_extra)


def eliminate_dead(
    stmts: list[TaggedStmt],
    live_out: set[str],
    pure_extra: frozenset[str] = frozenset(),
) -> list[TaggedStmt]:
    """Backward-liveness dead-code elimination.

    ``live_out`` is the set of names that must hold correct values when the
    statement list finishes (interface-visible fields, ``next_pc``,
    ``fault``, carried values).  Returns the kept statements in original
    order.  ``if`` statements are processed recursively with conservative
    kill sets: a write under a condition never removes a name from the
    live set of code above it.
    """
    kept_rev: list[TaggedStmt] = []
    live = set(live_out)
    for tagged in reversed(stmts):
        stmt = tagged.stmt
        if isinstance(stmt, ast.If):
            result = _eliminate_in_if(stmt, live, pure_extra, tagged.action)
            if result is not None:
                new_if, reads = result
                live |= reads
                kept_rev.append(TaggedStmt(tagged.action, new_if))
            continue
        if isinstance(stmt, ast.Pass):
            continue
        facts = analyze_stmt(stmt)
        anchored = stmt_is_anchored(facts, pure_extra)
        if not anchored and not (facts.writes & live):
            continue  # dead: writes nothing anyone needs
        if _is_unconditional_kill(stmt):
            live -= facts.writes
        live |= facts.reads
        kept_rev.append(tagged)
    return list(reversed(kept_rev))


def _is_unconditional_kill(stmt: ast.stmt) -> bool:
    """True for plain ``name = expr`` whose write definitely happens."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    )


def _eliminate_in_if(
    stmt: ast.If,
    live: set[str],
    pure_extra: frozenset[str],
    action: str,
) -> tuple[ast.If, set[str]] | None:
    """DCE inside one ``if``; returns (new statement, names it reads)."""
    body = eliminate_dead(
        [TaggedStmt(action, s) for s in stmt.body], live, pure_extra
    )
    orelse = eliminate_dead(
        [TaggedStmt(action, s) for s in stmt.orelse], live, pure_extra
    )
    if not body and not orelse:
        return None
    reads: set[str] = set()
    test_facts = _expr_reads(stmt.test)
    reads |= test_facts
    for tagged in body + orelse:
        facts = analyze_stmt(tagged.stmt)
        reads |= facts.reads
    new_body = [t.stmt for t in body] or [ast.Pass()]
    new_if = ast.If(stmt.test, new_body, [t.stmt for t in orelse])
    ast.copy_location(new_if, stmt)
    ast.fix_missing_locations(new_if)
    return new_if, reads


def _expr_reads(expr: ast.expr) -> set[str]:
    reads: set[str] = set()
    called: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            called.add(node.func.id)
    return reads - called


def assigned_names(stmts: list[TaggedStmt]) -> set[str]:
    """All names written anywhere in the statement list."""
    out: set[str] = set()
    for tagged in stmts:
        out |= analyze_stmt(tagged.stmt).writes
    return out


def read_names(stmts: list[TaggedStmt]) -> set[str]:
    """All names read anywhere in the statement list."""
    out: set[str] = set()
    for tagged in stmts:
        out |= analyze_stmt(tagged.stmt).reads
    return out
