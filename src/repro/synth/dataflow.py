"""Liveness analysis and dead-code elimination over snippet statements.

This implements the paper's §IV observation that, once hidden fields
become locals, "the computation of information which is not actually
needed semantically and not part of the interface becomes dead code which
can be optimized away."  The compiler in the paper's C++ setting is gcc;
here the synthesizer is the compiler, so the elimination is explicit.

Statements are *anchored* (never removed) when they have architectural
side effects: register-file stores, memory writes, syscalls, calls to
unknown functions.  Everything else survives only while some later-kept
statement or interface-visible field reads its results.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.adl.snippets import StmtFacts, analyze_stmt


@dataclass(frozen=True)
class TaggedStmt:
    """A statement plus the action it came from (used for step splitting)."""

    action: str
    stmt: ast.stmt


def stmt_is_anchored(facts: StmtFacts, pure_extra: frozenset[str]) -> bool:
    """True when the statement must run regardless of liveness.

    ``pure_extra`` holds spec-level helper names (pure by contract) so that
    calls to them do not anchor a statement.
    """
    if facts.effects or facts.subscript_writes:
        return True
    return bool(facts.unknown_calls - pure_extra)


def eliminate_dead(
    stmts: list[TaggedStmt],
    live_out: set[str],
    pure_extra: frozenset[str] = frozenset(),
) -> list[TaggedStmt]:
    """Backward-liveness dead-code elimination.

    ``live_out`` is the set of names that must hold correct values when the
    statement list finishes (interface-visible fields, ``next_pc``,
    ``fault``, carried values).  Returns the kept statements in original
    order.  ``if`` statements are processed recursively with conservative
    kill sets: a write under a condition never removes a name from the
    live set of code above it.
    """
    kept_rev: list[TaggedStmt] = []
    live = set(live_out)
    for tagged in reversed(stmts):
        stmt = tagged.stmt
        if isinstance(stmt, ast.If):
            result = _eliminate_in_if(stmt, live, pure_extra, tagged.action)
            if result is not None:
                new_if, reads = result
                live |= reads
                kept_rev.append(TaggedStmt(tagged.action, new_if))
            continue
        if isinstance(stmt, ast.Pass):
            continue
        facts = analyze_stmt(stmt)
        anchored = stmt_is_anchored(facts, pure_extra)
        if not anchored and not (facts.writes & live):
            continue  # dead: writes nothing anyone needs
        if _is_unconditional_kill(stmt):
            live -= facts.writes
        live |= facts.reads
        kept_rev.append(tagged)
    return list(reversed(kept_rev))


def _is_unconditional_kill(stmt: ast.stmt) -> bool:
    """True for plain ``name = expr`` whose write definitely happens."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    )


def _eliminate_in_if(
    stmt: ast.If,
    live: set[str],
    pure_extra: frozenset[str],
    action: str,
) -> tuple[ast.If, set[str]] | None:
    """DCE inside one ``if``; returns (new statement, names it reads)."""
    body = eliminate_dead(
        [TaggedStmt(action, s) for s in stmt.body], live, pure_extra
    )
    orelse = eliminate_dead(
        [TaggedStmt(action, s) for s in stmt.orelse], live, pure_extra
    )
    if not body and not orelse:
        return None
    reads: set[str] = set()
    test_facts = _expr_reads(stmt.test)
    reads |= test_facts
    for tagged in body + orelse:
        facts = analyze_stmt(tagged.stmt)
        reads |= facts.reads
    new_body = [t.stmt for t in body] or [ast.Pass()]
    new_if = ast.If(stmt.test, new_body, [t.stmt for t in orelse])
    ast.copy_location(new_if, stmt)
    ast.fix_missing_locations(new_if)
    return new_if, reads


def _expr_reads(expr: ast.expr) -> set[str]:
    reads: set[str] = set()
    called: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            called.add(node.func.id)
    return reads - called


class _NameSubst(ast.NodeTransformer):
    """Replace a single ``Name`` load with an expression (in place)."""

    def __init__(self, name: str, replacement: ast.expr) -> None:
        self.name = name
        self.replacement = replacement

    def visit_Name(self, node: ast.Name):  # noqa: N802 - ast API
        if isinstance(node.ctx, ast.Load) and node.id == self.name:
            import copy

            return copy.deepcopy(self.replacement)
        return node


def _expr_forwardable(
    expr: ast.expr, pure_extra: frozenset[str]
) -> tuple[bool, bool]:
    """Classify an expression for copy forwarding.

    Returns ``(forwardable, fragile)``.  Forwardable expressions are
    side-effect free: operators, comparisons, conditional expressions,
    constants, name/subscript loads, and calls to known-pure helpers or
    ``__mem`` reads.  *Fragile* expressions read mutable aggregate state
    (memory or a subscript), so they must not be moved across a statement
    with architectural effects.
    """
    fragile = False
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id not in pure_extra:
                    return False, fragile
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "__mem"
                and func.attr.startswith("read")
            ):
                fragile = True
            else:
                return False, fragile
        elif isinstance(node, ast.Subscript):
            if not isinstance(node.ctx, ast.Load):
                return False, fragile
            fragile = True
        elif isinstance(node, (ast.Lambda, ast.Await, ast.Yield, ast.YieldFrom)):
            return False, fragile
    return True, fragile


def _count_loads(stmts: list[ast.stmt], name: str) -> int:
    return sum(
        1
        for stmt in stmts
        for node in ast.walk(stmt)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and node.id == name
    )


def forward_copies(
    stmts: list[ast.stmt],
    protected: frozenset[str],
    pure_extra: frozenset[str] = frozenset(),
) -> list[ast.stmt]:
    """Substitute single-use temporaries into their sole use site.

    The block translator's pipeline (constant folding, register caching,
    DCE) leaves chains like ``src1_val = __R_R_4; dest_val = op(src1_val);
    __R_R_3 = dest_val`` — one Python store+load pair per link.  This pass
    collapses them: a top-level ``x = expr`` whose ``x`` is read exactly
    once afterwards (and never rewritten before that read) is inlined into
    the reader and the definition dropped, provided ``expr`` is pure and
    no intervening statement writes a name it reads.

    ``protected`` names (interface fields, special/architectural registers,
    dunder-prefixed locals) are never forwarded: their assignments *are*
    the architectural or interface effect.  Statements list is returned
    rewritten; input order of surviving statements is preserved.
    """
    stmts = list(stmts)
    changed = True
    while changed:
        changed = False
        for i, stmt in enumerate(stmts):
            if (
                not isinstance(stmt, ast.Assign)
                or len(stmt.targets) != 1
                or not isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            name = stmt.targets[0].id
            if name in protected or name.startswith("__"):
                continue
            ok, fragile = _expr_forwardable(stmt.value, pure_extra)
            if not ok:
                continue
            rest = stmts[i + 1 :]
            expr_reads = _expr_reads(stmt.value)
            expr_reads.discard(name)
            use_at = None
            blocked = False
            # The value is live only until ``name`` is redefined; count
            # reads within that window and require exactly one.
            for k, later in enumerate(rest):
                facts = analyze_stmt(later)
                n_loads = _count_loads([later], name)
                if n_loads:
                    if use_at is not None or n_loads > 1:
                        blocked = True
                        break
                    use_at = k
                if name in facts.writes:
                    if use_at == k and not _is_unconditional_kill(later):
                        # e.g. an ``if`` both reading and (conditionally)
                        # rewriting the name: evaluation order is unclear
                        blocked = True
                    break
                if use_at is None:
                    if facts.writes & expr_reads:
                        blocked = True  # an input of expr changes first
                        break
                    if fragile and stmt_is_anchored(facts, pure_extra):
                        blocked = True  # aggregate read crosses an effect
                        break
            if blocked or use_at is None:
                continue
            user = rest[use_at]
            if isinstance(user, (ast.While, ast.For)):
                continue  # substitution would re-evaluate per iteration
            if fragile and not isinstance(user, (ast.Assign, ast.Expr)):
                # A compound use site (e.g. ``if``) may order an effect
                # before the read; don't move aggregate reads into it.
                continue
            _NameSubst(name, stmt.value).visit(user)
            ast.fix_missing_locations(user)
            del stmts[i]
            changed = True
            break
    return stmts


def assigned_names(stmts: list[TaggedStmt]) -> set[str]:
    """All names written anywhere in the statement list."""
    out: set[str] = set()
    for tagged in stmts:
        out |= analyze_stmt(tagged.stmt).writes
    return out


def read_names(stmts: list[TaggedStmt]) -> set[str]:
    """All names read anywhere in the statement list."""
    out: set[str] = set()
    for tagged in stmts:
        out |= analyze_stmt(tagged.stmt).reads
    return out
