"""Pure arithmetic helpers available to ADL semantics snippets.

These are the fixed-width operations an ISA manual assumes.  They are
bound into every generated simulator module and are also used by the
constant folder at block-translation time, so they must be pure functions
of their arguments.
"""

from __future__ import annotations

_M8 = 0xFF
_M16 = 0xFFFF
_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


def u8(x: int) -> int:
    """Truncate to unsigned 8-bit."""
    return x & _M8


def u16(x: int) -> int:
    """Truncate to unsigned 16-bit."""
    return x & _M16


def u32(x: int) -> int:
    """Truncate to unsigned 32-bit."""
    return x & _M32


def u64(x: int) -> int:
    """Truncate to unsigned 64-bit."""
    return x & _M64


def i8(x: int) -> int:
    """Reinterpret low 8 bits as signed."""
    x &= _M8
    return x - 0x100 if x & 0x80 else x


def i16(x: int) -> int:
    """Reinterpret low 16 bits as signed."""
    x &= _M16
    return x - 0x10000 if x & 0x8000 else x


def i32(x: int) -> int:
    """Reinterpret low 32 bits as signed."""
    x &= _M32
    return x - 0x100000000 if x & 0x80000000 else x


def i64(x: int) -> int:
    """Reinterpret low 64 bits as signed."""
    x &= _M64
    return x - 0x10000000000000000 if x & 0x8000000000000000 else x


def sext(x: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``x`` (result may be negative)."""
    x &= (1 << bits) - 1
    return x - (1 << bits) if x & (1 << (bits - 1)) else x


def rotl32(x: int, n: int) -> int:
    """Rotate a 32-bit value left by ``n``."""
    n &= 31
    x &= _M32
    return ((x << n) | (x >> (32 - n))) & _M32 if n else x


def rotr32(x: int, n: int) -> int:
    """Rotate a 32-bit value right by ``n``."""
    n &= 31
    x &= _M32
    return ((x >> n) | (x << (32 - n))) & _M32 if n else x


def rotl64(x: int, n: int) -> int:
    """Rotate a 64-bit value left by ``n``."""
    n &= 63
    x &= _M64
    return ((x << n) | (x >> (64 - n))) & _M64 if n else x


def rotr64(x: int, n: int) -> int:
    """Rotate a 64-bit value right by ``n``."""
    n &= 63
    x &= _M64
    return ((x >> n) | (x << (64 - n))) & _M64 if n else x


def clz32(x: int) -> int:
    """Count leading zeros of a 32-bit value (32 for zero)."""
    x &= _M32
    return 32 - x.bit_length()


def ctz32(x: int) -> int:
    """Count trailing zeros of a 32-bit value (32 for zero)."""
    x &= _M32
    return (x & -x).bit_length() - 1 if x else 32


def popcount(x: int) -> int:
    """Number of set bits."""
    return bin(x).count("1")


def carry_add32(a: int, b: int, cin: int = 0) -> int:
    """Carry-out of a 32-bit addition (0 or 1)."""
    return 1 if (a & _M32) + (b & _M32) + cin > _M32 else 0


def carry_add64(a: int, b: int, cin: int = 0) -> int:
    """Carry-out of a 64-bit addition (0 or 1)."""
    return 1 if (a & _M64) + (b & _M64) + cin > _M64 else 0


def borrow_sub32(a: int, b: int, bin_: int = 0) -> int:
    """Borrow-out of a 32-bit subtraction (0 or 1).

    Returns 1 when ``a - b - bin_`` underflows (i.e. NOT the ARM carry
    convention; ARM descriptions invert this themselves).
    """
    return 1 if (a & _M32) < (b & _M32) + bin_ else 0


def overflow_add32(a: int, b: int, r: int) -> int:
    """Signed-overflow flag of a 32-bit addition with result ``r``."""
    return 1 if (~(a ^ b) & (a ^ r)) & 0x80000000 else 0


def overflow_sub32(a: int, b: int, r: int) -> int:
    """Signed-overflow flag of a 32-bit subtraction with result ``r``."""
    return 1 if ((a ^ b) & (a ^ r)) & 0x80000000 else 0


def overflow_add64(a: int, b: int, r: int) -> int:
    """Signed-overflow flag of a 64-bit addition with result ``r``."""
    return 1 if (~(a ^ b) & (a ^ r)) & 0x8000000000000000 else 0


def overflow_sub64(a: int, b: int, r: int) -> int:
    """Signed-overflow flag of a 64-bit subtraction with result ``r``."""
    return 1 if ((a ^ b) & (a ^ r)) & 0x8000000000000000 else 0


#: Everything a snippet may call without being considered effectful,
#: excluding the simulator-state primitives bound at generation time.
PURE_NAMESPACE: dict[str, object] = {
    name: obj
    for name, obj in list(globals().items())
    if callable(obj) and not name.startswith("_")
}
PURE_NAMESPACE.update({"bool": bool, "int": int, "abs": abs, "min": min, "max": max})
