"""Translation validation for synthesized simulators (``repro check``).

The single-specification principle (PAPER.md) stands or falls on the
synthesizer: users only ever write the ``.lis`` description, so nobody
reads the generated interface modules — and nobody would notice if
generation quietly broke one of the paper's structural guarantees.
:mod:`repro.check` closes that gap with *translation validation*: a
static pass over each generated module (``ast`` + ``dis``, never
execution) that re-derives the guarantees from the specification and
verifies the emitted code exhibits them:

* the **visibility contract** — hidden fields never escape into the
  dynamic-instruction record, visible fields are stored exactly once
  per interface call (CHK001-CHK003);
* **dead-code-elimination soundness** — architectural effects anchored
  by the spec survive elimination (CHK010) and hidden, unread
  computation does not survive it (CHK011);
* **speculation undo coverage** — every architectural write in a
  speculative interface is dominated by an undo-journal append, and
  the journal lifecycle is intact (CHK020, CHK021);
* **detail monotonicity** — Min ⊆ Decode ⊆ All record-store sets per
  instruction across sibling interfaces (CHK030);
* **zero-overhead residue** — observability- and profiling-off modules
  contain no probe or counter residue (CHK040, CHK041).

Diagnostics carry *two* locations: the generated line, and — through
the provenance side-table emitted by :mod:`repro.synth.codegen` — the
originating ``.lis`` construct, so findings are actionable in the only
artifact the user edits.

:mod:`repro.check.costmodel` adds a static host-op cost estimator that
predicts each interface's per-instruction cost from bytecode lengths,
reproducing the *signs* of the paper's Table III deltas without running
a single guest instruction.
"""

from __future__ import annotations

from repro.check.codes import CODES, make_diagnostic
from repro.check.costmodel import cost_report, predict_costs
from repro.check.runner import CheckResult, check_generated, check_isa, check_spec
from repro.diag import (
    Diagnostic,
    DiagnosticResult,
    Severity,
    render_json,
    render_text,
)

__all__ = [
    "CODES",
    "CheckResult",
    "Diagnostic",
    "DiagnosticResult",
    "Severity",
    "check_generated",
    "check_isa",
    "check_spec",
    "cost_report",
    "make_diagnostic",
    "predict_costs",
    "render_json",
    "render_text",
]
