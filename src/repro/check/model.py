"""Static model of one synthesized simulator module.

:class:`ModuleModel` parses a generated module's source (never executes
it), classifies its top-level functions (interface entries, per
instruction bodies, step-split bodies), recovers the dynamic
instruction record layout from ``DynInst.__slots__``, and exposes the
small AST queries the checker passes share: attribute stores on the
record parameter, subscript stores on register files, call sites,
name definitions and uses.

The model also owns diagnostic attribution: every finding is anchored
to the generated line (``gen_loc``) and — via the provenance side-table
that :class:`repro.synth.codegen.SourceWriter` fills during generation
— to the originating ``.lis`` construct (``loc``), so ``repro check``
output is actionable in the specification the user actually edits.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field as dc_field

from repro.adl.errors import SourceLoc
from repro.check.codes import make_diagnostic
from repro.diag.core import Diagnostic
from repro.synth.provenance import SpecOrigin

#: Record attributes that are interface bookkeeping, not spec fields.
#: ``budget`` is the block interfaces' chaining allowance (how many more
#: instructions a translated unit may execute before returning control).
RECORD_BOOKKEEPING = frozenset({"trace", "count", "_op", "budget"})

#: Prefix of the mangled carry slots step interfaces use to pass hidden
#: values between calls without exposing them as plain visible fields.
CARRY_PREFIX = "_c_"

_BODY_RE = re.compile(r"^_b_(\d+)$")
_STEP_BODY_RE = re.compile(r"^_sb_(\d+)_(\d+)$")


@dataclass(frozen=True)
class FunctionModel:
    """One top-level function of a generated module."""

    name: str
    node: ast.FunctionDef
    #: ``entry`` (interface call), ``body`` (per-instruction), ``other``
    kind: str
    #: instruction index for body functions
    instr_index: int | None = None
    #: entrypoint index for step-split bodies
    step: int | None = None


@dataclass
class ModuleModel:
    """Everything the checker passes need to know about one module."""

    generated: "GeneratedSimulator"  # noqa: F821 - avoids an import cycle
    source: str
    tree: ast.Module
    functions: dict[str, FunctionModel] = dc_field(default_factory=dict)
    #: record layout recovered from ``DynInst.__slots__``
    di_slots: tuple[str, ...] = ()

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls, generated: "GeneratedSimulator", source: str | None = None  # noqa: F821
    ) -> "ModuleModel":
        """Parse a generated module (``source`` overrides, for tests)."""
        text = generated.source if source is None else source
        tree = ast.parse(text)
        model = cls(generated=generated, source=text, tree=tree)
        entry_names = set(generated.entry_names)
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "DynInst":
                model.di_slots = _class_slots(node)
            elif isinstance(node, ast.FunctionDef):
                model.functions[node.name] = _classify(node, entry_names)
        return model

    # -- convenience views -----------------------------------------------------

    @property
    def plan(self):
        return self.generated.plan

    @property
    def spec(self):
        return self.generated.plan.spec

    @property
    def buildset(self):
        return self.generated.plan.buildset

    @property
    def options(self):
        return self.generated.plan.options

    @property
    def gen_filename(self) -> str:
        """Matches the filename ``synthesize`` compiles the module under."""
        return f"<synth {self.spec.name}/{self.buildset.name}>"

    def entry_functions(self) -> list[FunctionModel]:
        return [f for f in self.functions.values() if f.kind == "entry"]

    def body_functions(self) -> list[FunctionModel]:
        return [f for f in self.functions.values() if f.kind == "body"]

    def functions_of_instruction(self, index: int) -> list[FunctionModel]:
        """All bodies of one instruction (one for One, one per step for Step)."""
        out = [
            f
            for f in self.body_functions()
            if f.instr_index == index
        ]
        out.sort(key=lambda f: (f.step if f.step is not None else 0))
        return out

    def field_slots(self) -> set[str]:
        """Record slots that claim to be specification fields."""
        return {
            s
            for s in self.di_slots
            if s not in RECORD_BOOKKEEPING and not s.startswith(CARRY_PREFIX)
        }

    # -- diagnostic attribution ------------------------------------------------

    def diagnostic(
        self,
        code: str,
        message: str,
        *,
        node: ast.AST | None = None,
        lineno: int | None = None,
        function: str | None = None,
        loc_override: SourceLoc | None = None,
    ) -> Diagnostic:
        """Attribute a finding to generated line + originating spec construct."""
        line = lineno if lineno is not None else getattr(node, "lineno", None)
        gen_loc = None
        if line is not None:
            column = getattr(node, "col_offset", 0) + 1 if node is not None else 1
            gen_loc = SourceLoc(self.gen_filename, line, column)
        origin = self._origin(line, function)
        loc = origin.loc if origin is not None and origin.loc is not None else None
        if loc is None:
            loc = loc_override
        if origin is not None and origin.loc is None:
            message = f"{message} (origin: {origin.describe()})"
        return make_diagnostic(code, message, loc=loc, gen_loc=gen_loc)

    def _origin(
        self, line: int | None, function: str | None
    ) -> SpecOrigin | None:
        provenance = self.plan.provenance
        if line is not None:
            origin = provenance.origin_at(line, function)
            if origin is not None:
                return origin
        if function is not None:
            return provenance.functions.get(function)
        return None


# -- AST helpers shared by the passes ------------------------------------------


def _class_slots(node: ast.ClassDef) -> tuple[str, ...]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            if "__slots__" in targets:
                value = ast.literal_eval(stmt.value)
                return tuple(value)
    return ()


def _classify(node: ast.FunctionDef, entry_names: set[str]) -> FunctionModel:
    if node.name in entry_names:
        return FunctionModel(node.name, node, "entry")
    match = _BODY_RE.match(node.name)
    if match:
        return FunctionModel(node.name, node, "body", instr_index=int(match[1]))
    match = _STEP_BODY_RE.match(node.name)
    if match:
        return FunctionModel(
            node.name, node, "body", instr_index=int(match[2]), step=int(match[1])
        )
    return FunctionModel(node.name, node, "other")


def attribute_stores(
    fn: ast.FunctionDef, obj: str
) -> list[tuple[str, ast.stmt]]:
    """``obj.attr = ...`` / ``obj.attr += ...`` statements, in source order."""
    out: list[tuple[str, ast.stmt]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_attr_on(target, obj):
                    out.append((target.attr, node))
        elif isinstance(node, ast.AugAssign) and _is_attr_on(node.target, obj):
            out.append((node.target.attr, node))
    out.sort(key=lambda pair: pair[1].lineno)
    return out


def attribute_loads(fn: ast.FunctionDef, obj: str) -> list[tuple[str, ast.expr]]:
    """``obj.attr`` reads, in source order."""
    out = [
        (node.attr, node)
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
        and isinstance(node.value, ast.Name)
        and node.value.id == obj
    ]
    out.sort(key=lambda pair: pair[1].lineno)
    return out


def _is_attr_on(node: ast.AST, obj: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == obj
    )


def name_assignments(fn: ast.FunctionDef) -> list[tuple[str, ast.Assign]]:
    """Plain ``name = ...`` assignments anywhere in the function."""
    out: list[tuple[str, ast.Assign]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.append((target.id, node))
    out.sort(key=lambda pair: pair[1].lineno)
    return out


def names_loaded(fn: ast.FunctionDef) -> list[tuple[str, int]]:
    """Every ``Name`` read with its line, in source order."""
    out = [
        (node.id, node.lineno)
        for node in ast.walk(fn)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    ]
    out.sort(key=lambda pair: pair[1])
    return out


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call site (``__mem.write``, ``self._do_syscall``)."""
    func = node.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def calls(fn: ast.FunctionDef) -> list[tuple[str, ast.Call]]:
    out = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                out.append((name, node))
    out.sort(key=lambda pair: pair[1].lineno)
    return out


def subscript_stores(fn: ast.FunctionDef) -> list[tuple[str, ast.stmt]]:
    """``base[...] = ...`` statements keyed by dotted base name."""
    out: list[tuple[str, ast.stmt]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = _subscript_base(target)
                if base is not None:
                    out.append((base, node))
    out.sort(key=lambda pair: pair[1].lineno)
    return out


def _subscript_base(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Subscript):
        return None
    value = node.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        return f"{value.value.id}.{value.attr}"
    return None


def statement_blocks(fn: ast.FunctionDef):
    """Yield every statement list (function body, if/else/loop arms)."""
    stack: list[list[ast.stmt]] = [fn.body]
    while stack:
        block = stack.pop()
        yield block
        for stmt in block:
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if sub:
                    stack.append(sub)
