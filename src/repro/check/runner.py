"""Check orchestration: generated modules -> diagnostics.

Three entry points, mirroring :mod:`repro.lint.runner`:

* :func:`check_generated` — validate one synthesized module (this is
  also the ``synthesize(strict=True)`` gate).
* :func:`check_spec` — synthesize and validate every buildset of an
  analyzed spec, including the cross-interface monotonicity pass.
* :func:`check_isa` — what ``repro check <isa>`` uses: load the
  bundle, check the whole spec, honor ``// check: disable=`` inline
  suppressions in the ``.lis`` sources.

Everything here is static: modules are parsed, never executed.  A pass
crashing on a module is itself a finding (CHK000), not a checker
crash — a malformed generated module is precisely what this tool
exists to catch.
"""

from __future__ import annotations

from repro.check.codes import make_diagnostic
from repro.check.model import ModuleModel
from repro.check.passes import MODULE_PASSES, check_monotonicity
from repro.diag.core import Diagnostic, DiagnosticResult
from repro.diag.suppress import SuppressionIndex

#: Check results are plain shared diagnostic results.
CheckResult = DiagnosticResult


def check_module(model: ModuleModel) -> list[Diagnostic]:
    """Run every per-module pass; unsorted, unsuppressed diagnostics."""
    diags: list[Diagnostic] = []
    for check in MODULE_PASSES:
        try:
            diags.extend(check(model))
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            diags.append(_engine_failure(model, check.__name__, exc))
    return diags


def check_generated(
    generated, source: str | None = None
) -> CheckResult:
    """Validate one :class:`~repro.synth.synthesizer.GeneratedSimulator`.

    ``source`` overrides the module text (injected-defect tests verify
    each check catches its defect class by mutating a clean module).
    """
    name = f"{generated.plan.spec.name}/{generated.plan.buildset.name}"
    try:
        model = ModuleModel.build(generated, source)
    except SyntaxError as exc:
        return _finish(
            (name,),
            [
                make_diagnostic(
                    "CHK000",
                    f"generated module {name} failed to parse: {exc}",
                )
            ],
        )
    return _finish((name,), check_module(model))


def check_spec(spec, options=None, buildsets=None) -> CheckResult:
    """Synthesize and validate every buildset of an analyzed spec."""
    from repro.synth import SynthOptions, synthesize

    options = options or SynthOptions()
    names = list(buildsets) if buildsets is not None else sorted(spec.buildsets)
    diags: list[Diagnostic] = []
    models: list[ModuleModel] = []
    for name in names:
        try:
            generated = synthesize(spec, name, options)
            model = ModuleModel.build(generated)
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            diags.append(
                make_diagnostic(
                    "CHK000",
                    f"buildset {name!r} failed to synthesize or parse: {exc}",
                    loc=spec.buildsets[name].loc if name in spec.buildsets else None,
                )
            )
            continue
        models.append(model)
        diags.extend(check_module(model))
    try:
        diags.extend(check_monotonicity(models))
    except Exception as exc:  # noqa: BLE001
        diags.append(
            make_diagnostic(
                "CHK000", f"monotonicity pass failed on {spec.name}: {exc}"
            )
        )
    paths = tuple(f"{spec.name}/{name}" for name in names)
    return _finish(paths, diags)


def check_isa(isa: str, options=None, buildsets=None) -> CheckResult:
    """Check every synthesized interface of one instruction set.

    Inline ``// check: disable=CHKxxx`` comments in the ``.lis``
    sources suppress findings attributed to that spec line, exactly as
    ``// lint: disable=`` does for the linter.

    Block buildsets additionally get their *runtime-translated* units
    walked and checked (:mod:`repro.check.blockwalk`): superblock and
    chaining code exists only after translation, so the static module
    passes cannot see it.
    """
    from repro.check.blockwalk import check_translated_units
    from repro.isa.base import get_bundle

    spec = get_bundle(isa).load_spec()
    result = check_spec(spec, options=options, buildsets=buildsets)
    try:
        extra = check_translated_units(
            isa, spec, options=options, buildsets=buildsets
        )
    except Exception as exc:  # noqa: BLE001 - a crash is a finding
        extra = [
            make_diagnostic(
                "CHK000", f"translated-unit walk failed on {isa}: {exc}"
            )
        ]
    if not extra:
        return result
    return _finish(result.paths, list(result.diagnostics) + extra)


def _finish(paths: tuple[str, ...], diags: list[Diagnostic]) -> CheckResult:
    # The on-demand index reads the .lis files the diagnostics point at,
    # so ``// check: disable=`` works without threading sources through.
    marked = SuppressionIndex().apply(diags)
    marked.sort(key=Diagnostic.sort_key)
    return CheckResult(paths=paths, diagnostics=marked)


def _engine_failure(
    model: ModuleModel, pass_name: str, exc: Exception
) -> Diagnostic:
    name = f"{model.spec.name}/{model.buildset.name}"
    return make_diagnostic(
        "CHK000",
        f"pass {pass_name} failed on {name}: {type(exc).__name__}: {exc}",
    )
