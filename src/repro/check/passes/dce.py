"""Dead-code-elimination soundness and effectiveness (CHK010, CHK011).

The synthesizer removes computation that is neither visible nor needed
(PAPER.md §V.C); :mod:`repro.synth.dataflow` anchors statements with
architectural effects so elimination can never remove them.  This pass
validates both directions against the *generated* code:

* **CHK010 (soundness)** — for every instruction, re-derive the set of
  anchored effects from the assembled spec statements (memory writes,
  syscalls, register-file stores) and verify each survives in the
  instruction's generated body or bodies, along with exactly one
  architectural ``pc`` commit.
* **CHK011 (effectiveness)** — no effect-free computation of a hidden
  field survives when its result is never read again: such a statement
  should have been eliminated.  Warning severity: a stale value is
  wasted work, not wrong execution.
"""

from __future__ import annotations

import ast

from repro.adl.snippets import analyze_stmt
from repro.check.model import (
    CARRY_PREFIX,
    FunctionModel,
    ModuleModel,
    calls,
    name_assignments,
    names_loaded,
    subscript_stores,
)
from repro.diag.core import Diagnostic
from repro.synth.codegen import assemble_instruction_stmts

#: spec-level effect primitive -> call site it must compile to
_EFFECT_CALLS = {
    "__mem_write": "__mem.write",
    "__syscall": "self._do_syscall",
}


def check_dce(model: ModuleModel) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if not model.body_functions():
        return diags  # block modules translate bodies at run time
    for index, instr in enumerate(model.spec.instructions):
        bodies = model.functions_of_instruction(index)
        if not bodies:
            diags.append(
                model.diagnostic(
                    "CHK010",
                    f"instruction {instr.name} has no generated body in "
                    f"buildset {model.buildset.name!r}",
                )
            )
            continue
        _check_anchored_effects(model, instr, bodies, diags)
    for fn in model.body_functions():
        _check_dead_computation(model, fn, diags)
    return diags


# -- CHK010: anchored effects survive ------------------------------------------


def _expected_effects(model: ModuleModel, instr) -> tuple[set[str], set[str]]:
    """(effect primitives, regfiles written) the spec anchors for ``instr``."""
    effects: set[str] = set()
    regfile_writes: set[str] = set()
    regfiles = set(model.spec.regfiles)
    for tagged in assemble_instruction_stmts(model.plan, instr):
        facts = analyze_stmt(tagged.stmt)
        effects |= facts.effects & set(_EFFECT_CALLS)
        regfile_writes |= facts.subscript_writes & regfiles
    return effects, regfile_writes


def _check_anchored_effects(
    model: ModuleModel,
    instr,
    bodies: list[FunctionModel],
    diags: list[Diagnostic],
) -> None:
    effects, regfile_writes = _expected_effects(model, instr)
    generated_calls = {
        name for fn in bodies for name, _node in calls(fn.node)
    }
    generated_substores = {
        base for fn in bodies for base, _stmt in subscript_stores(fn.node)
    }
    anchor = bodies[0]
    for primitive in sorted(effects):
        call = _EFFECT_CALLS[primitive]
        if call not in generated_calls:
            diags.append(
                model.diagnostic(
                    "CHK010",
                    f"instruction {instr.name}: anchored effect "
                    f"{primitive} ({call}) was eliminated from the "
                    f"generated body",
                    function=anchor.name,
                    loc_override=instr.loc,
                )
            )
    for regfile in sorted(regfile_writes):
        if regfile not in generated_substores:
            diags.append(
                model.diagnostic(
                    "CHK010",
                    f"instruction {instr.name}: anchored register-file "
                    f"store to {regfile!r} was eliminated from the "
                    f"generated body",
                    function=anchor.name,
                    loc_override=instr.loc,
                )
            )
    commits = _pc_commits(bodies)
    if len(commits) != 1:
        diags.append(
            model.diagnostic(
                "CHK010",
                f"instruction {instr.name}: expected exactly one "
                f"architectural pc commit, found {len(commits)}",
                lineno=commits[1].lineno if len(commits) > 1 else None,
                function=anchor.name,
                loc_override=instr.loc,
            )
        )


def _pc_commits(bodies: list[FunctionModel]) -> list[ast.stmt]:
    out: list[ast.stmt] = []
    for fn in bodies:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "pc"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "__state"
                    ):
                        out.append(node)
    return out


# -- CHK011: dead hidden computation does not survive --------------------------


def _check_dead_computation(
    model: ModuleModel, fn: FunctionModel, diags: list[Diagnostic]
) -> None:
    hidden = set(model.spec.fields) - set(model.buildset.visible)
    pure = set(model.plan.pure_names) | {"sext"}
    loads = names_loaded(fn.node)
    stores = [
        (name, stmt)
        for name, stmt in name_assignments(fn.node)
        if name in hidden
    ]
    carried = _carried_names(fn.node)
    for name, stmt in stores:
        if name in carried:
            continue  # carried to a later step call: live by construction
        if not _is_pure_expr(stmt.value, pure):
            continue  # the right-hand side has (or may have) effects
        if any(load == name and line > stmt.lineno for load, line in loads):
            continue  # read later in this function
        diags.append(
            model.diagnostic(
                "CHK011",
                f"{fn.name} computes hidden field {name!r} which is "
                f"never read afterwards; elimination should have "
                f"removed it",
                node=stmt,
                function=fn.name,
            )
        )


def _carried_names(fn: ast.FunctionDef) -> set[str]:
    """Locals stored into mangled ``di._c_*`` carry slots."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr.startswith(CARRY_PREFIX)
                ):
                    out.add(target.attr[len(CARRY_PREFIX):])
    return out


def _is_pure_expr(node: ast.expr, pure: set[str]) -> bool:
    """Conservative: every call must be to a known-pure helper."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if not (isinstance(func, ast.Name) and func.id in pure):
                return False
    return True
