"""Speculation undo coverage at the codegen level (CHK020, CHK021).

A speculative interface (``speculation: true`` in the buildset) must be
able to roll back any architectural write (§IV.B): the generated code
journals the overwritten value immediately before each store.  The
specification linter (LIS030/LIS031) proves the *spec* only writes
through journalable primitives; this pass proves the *generated code*
actually emits the journal plumbing:

* **CHK020** — every register-file store is immediately preceded by an
  ``__j.append(('r', ...))`` undo entry in the same block; every
  ``__mem.write`` by an ``('m', ...)`` entry; every special-register
  commit is covered by an ``('s', ...)`` entry in the same function.
* **CHK021** — the journal lifecycle is intact: per instruction there
  is exactly one journal creation (``[('p', pc)]``) and exactly one
  publication (``__state.journal.append``); a non-speculative module
  must contain no journal machinery at all.
"""

from __future__ import annotations

import ast

from repro.check.model import (
    FunctionModel,
    ModuleModel,
    statement_blocks,
    subscript_stores,
)
from repro.diag.core import Diagnostic


def check_speculation(model: ModuleModel) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if not model.body_functions():
        return diags  # block modules journal inside the runtime translator
    if not model.buildset.speculation:
        _check_no_journal_machinery(model, diags)
        return diags
    regfiles = set(model.spec.regfiles)
    for fn in model.body_functions():
        _check_write_coverage(model, fn, regfiles, diags)
    for index, instr in enumerate(model.spec.instructions):
        bodies = model.functions_of_instruction(index)
        if bodies:
            _check_lifecycle(model, instr, bodies, diags)
    return diags


# -- CHK020: every architectural write is dominated by an undo append ----------


def _check_write_coverage(
    model: ModuleModel,
    fn: FunctionModel,
    regfiles: set[str],
    diags: list[Diagnostic],
) -> None:
    for block in statement_blocks(fn.node):
        for position, stmt in enumerate(block):
            kind = _arch_write_kind(stmt, regfiles)
            if kind is None:
                continue
            prev = block[position - 1] if position else None
            tag = {"regfile": "r", "memory": "m"}[kind]
            if _journal_append_tag(prev) != tag:
                diags.append(
                    model.diagnostic(
                        "CHK020",
                        f"{fn.name}: {kind} write is not immediately "
                        f"preceded by a journal {tag!r} undo entry",
                        node=stmt,
                        function=fn.name,
                    )
                )
    _check_sreg_coverage(model, fn, diags)


def _arch_write_kind(stmt: ast.stmt, regfiles: set[str]) -> str | None:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in regfiles
            ):
                return "regfile"
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "write"
        and isinstance(stmt.value.func.value, ast.Name)
        and stmt.value.func.value.id == "__mem"
    ):
        return "memory"
    return None


def _journal_append_tag(stmt: ast.stmt | None) -> str | None:
    """The undo tag of a ``__j.append(('x', ...))`` statement, if any."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "append"
        and isinstance(stmt.value.func.value, ast.Name)
        and stmt.value.func.value.id == "__j"
        and stmt.value.args
        and isinstance(stmt.value.args[0], ast.Tuple)
        and stmt.value.args[0].elts
        and isinstance(stmt.value.args[0].elts[0], ast.Constant)
    ):
        return stmt.value.args[0].elts[0].value
    return None


def _check_sreg_coverage(
    model: ModuleModel, fn: FunctionModel, diags: list[Diagnostic]
) -> None:
    """``__state.sr[...] = x`` needs an ``('s', name, ...)`` entry somewhere."""
    sreg_stores = [
        stmt
        for base, stmt in subscript_stores(fn.node)
        if base == "__state.sr"
    ]
    if not sreg_stores:
        return
    covered = {
        _sreg_entry_name(node)
        for node in ast.walk(fn.node)
        if isinstance(node, ast.stmt) and _journal_append_tag(node) == "s"
    }
    for stmt in sreg_stores:
        name = _sreg_store_name(stmt)
        if name not in covered:
            diags.append(
                model.diagnostic(
                    "CHK020",
                    f"{fn.name}: special-register write to {name!r} has "
                    f"no journal 's' undo entry",
                    node=stmt,
                    function=fn.name,
                )
            )


def _sreg_store_name(stmt: ast.Assign) -> str | None:
    for target in stmt.targets:
        if isinstance(target, ast.Subscript) and isinstance(
            target.slice, ast.Constant
        ):
            return target.slice.value
    return None


def _sreg_entry_name(stmt: ast.stmt) -> str | None:
    tup = stmt.value.args[0]
    if len(tup.elts) > 1 and isinstance(tup.elts[1], ast.Constant):
        return tup.elts[1].value
    return None


# -- CHK021: journal lifecycle -------------------------------------------------


def _check_lifecycle(
    model: ModuleModel,
    instr,
    bodies: list[FunctionModel],
    diags: list[Diagnostic],
) -> None:
    creations: list[ast.stmt] = []
    publications: list[ast.stmt] = []
    for fn in bodies:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and _is_journal_creation(node):
                creations.append(node)
            elif isinstance(node, ast.stmt) and _is_journal_publication(node):
                publications.append(node)
    anchor = bodies[0]
    if len(creations) != 1:
        diags.append(
            model.diagnostic(
                "CHK021",
                f"instruction {instr.name}: expected exactly one journal "
                f"creation, found {len(creations)}",
                function=anchor.name,
                loc_override=instr.loc,
            )
        )
    if len(publications) != 1:
        diags.append(
            model.diagnostic(
                "CHK021",
                f"instruction {instr.name}: expected exactly one "
                f"__state.journal.append publication, found "
                f"{len(publications)}",
                function=anchor.name,
                loc_override=instr.loc,
            )
        )


def _is_journal_creation(stmt: ast.Assign) -> bool:
    """``__j = [('p', ...)]`` — the per-instruction journal entry."""
    return (
        isinstance(stmt.value, ast.List)
        and len(stmt.value.elts) == 1
        and isinstance(stmt.value.elts[0], ast.Tuple)
        and stmt.value.elts[0].elts
        and isinstance(stmt.value.elts[0].elts[0], ast.Constant)
        and stmt.value.elts[0].elts[0].value == "p"
    )


def _is_journal_publication(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "append"
        and isinstance(stmt.value.func.value, ast.Attribute)
        and stmt.value.func.value.attr == "journal"
    )


def _check_no_journal_machinery(
    model: ModuleModel, diags: list[Diagnostic]
) -> None:
    for fn in model.functions.values():
        if fn.kind == "other":
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and node.id == "__j":
                diags.append(
                    model.diagnostic(
                        "CHK021",
                        f"{fn.name}: journal machinery present in "
                        f"non-speculative buildset "
                        f"{model.buildset.name!r}",
                        node=node,
                        function=fn.name,
                    )
                )
                return  # one finding per module is enough
