"""Checker passes.

Module-level passes (``MODULE_PASSES``) take one :class:`~repro.check.
model.ModuleModel` and return diagnostics about that module alone.
The family-level monotonicity pass (:func:`repro.check.passes.
monotonic.check_monotonicity`) compares sibling modules of one spec and
is invoked separately by the runner.
"""

from __future__ import annotations

from repro.check.passes.dce import check_dce
from repro.check.passes.monotonic import check_monotonicity
from repro.check.passes.residue import check_residue
from repro.check.passes.speculation import check_speculation
from repro.check.passes.visibility import check_visibility

#: Every per-module pass, in report order.
MODULE_PASSES = (
    check_visibility,
    check_dce,
    check_speculation,
    check_residue,
)

__all__ = [
    "MODULE_PASSES",
    "check_dce",
    "check_monotonicity",
    "check_residue",
    "check_speculation",
    "check_visibility",
]
