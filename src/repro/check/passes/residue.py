"""Zero-overhead residue (CHK040, CHK041).

Both the observability layer (:mod:`repro.obs`) and the host-op
profiler promise *zero overhead when off*: a module synthesized without
``observe``/``profile`` must be byte-identical to one that never heard
of those features.  The runtime tests sample that promise; this pass
proves it structurally for every module:

* **CHK040** — an observe-off module contains no ``_obs*`` probe
  identifiers anywhere, and a trace-off module contains no ``_prof*``
  guest-PC probe identifiers (the :mod:`repro.prof` hit counters).
* **CHK041** — a profile-off module contains no ``_hops`` counter
  plumbing; a profile-on module has all its static cost placeholders
  resolved to constants (an unresolved ``__BODY_COST_n__`` would crash
  at run time, or worse, silently count nothing).
"""

from __future__ import annotations

import ast
import re

from repro.check.model import ModuleModel
from repro.diag.core import Diagnostic

#: Matches the synthesizer's unresolved static-cost placeholders
#: (kept in sync with ``repro.synth.synthesizer._PLACEHOLDER``).
_PLACEHOLDER = re.compile(
    r"__(?:EP_COST(?:_\d+)?|BODY_COST_\d+|SBODY_COST_\d+_\d+)__"
)

_OBS_PREFIX = "_obs"
_PROF_PREFIX = "_prof"


def check_residue(model: ModuleModel) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    _check_obs_residue(model, diags)
    _check_trace_residue(model, diags)
    _check_profile_residue(model, diags)
    return diags


def _check_obs_residue(model: ModuleModel, diags: list[Diagnostic]) -> None:
    if model.options.observe:
        return
    for node in ast.walk(model.tree):
        name = _identifier(node)
        if name is not None and name.startswith(_OBS_PREFIX):
            diags.append(
                model.diagnostic(
                    "CHK040",
                    f"observability probe residue {name!r} in a module "
                    f"synthesized with observe=False",
                    node=node,
                )
            )
            return  # the first occurrence identifies the defect


def _check_trace_residue(model: ModuleModel, diags: list[Diagnostic]) -> None:
    if getattr(model.options, "trace", False):
        return
    for node in ast.walk(model.tree):
        name = _identifier(node)
        if name is not None and name.startswith(_PROF_PREFIX):
            diags.append(
                model.diagnostic(
                    "CHK040",
                    f"guest-PC profiling probe residue {name!r} in a module "
                    f"synthesized with trace=False",
                    node=node,
                )
            )
            return


def _check_profile_residue(model: ModuleModel, diags: list[Diagnostic]) -> None:
    if not model.options.profile:
        for node in ast.walk(model.tree):
            name = _identifier(node)
            if name == "_hops" or (name and _PLACEHOLDER.fullmatch(name)):
                diags.append(
                    model.diagnostic(
                        "CHK041",
                        f"profiling residue {name!r} in a module "
                        f"synthesized with profile=False",
                        node=node,
                    )
                )
                return
        return
    match = _PLACEHOLDER.search(model.source)
    if match:
        lineno = model.source.count("\n", 0, match.start()) + 1
        diags.append(
            model.diagnostic(
                "CHK041",
                f"unresolved static-cost placeholder {match.group(0)!r} "
                f"in a profile module",
                lineno=lineno,
            )
        )


def _identifier(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
