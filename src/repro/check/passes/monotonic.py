"""Detail monotonicity across sibling interfaces (CHK030).

Table II's informational-detail ladder (Min ⊂ Decode ⊂ All) is a
*subset* relation on visibility: a higher-detail interface shows a
superset of what a lower-detail one shows.  Because all interfaces are
synthesized from the one specification, the generated record-store sets
must nest the same way — per instruction, everything a Min module
stores must also be stored by the sibling Decode module, and so on.  A
violation means two interfaces disagree about the same instruction's
observable facts, which is exactly the divergence the single
specification principle exists to prevent.

The pass induces the partial order from the buildsets' visible sets
(naming-independent), compares per-instruction ``di.<field>`` store
sets for One/Step modules, and compares record layouts (``__slots__``)
for all semantic details including Block, whose bodies are translated
at run time.
"""

from __future__ import annotations

from repro.check.model import (
    CARRY_PREFIX,
    RECORD_BOOKKEEPING,
    ModuleModel,
    attribute_stores,
)
from repro.diag.core import Diagnostic


def check_monotonicity(models: list[ModuleModel]) -> list[Diagnostic]:
    """Compare sibling modules of one spec; order-insensitive."""
    diags: list[Diagnostic] = []
    groups: dict[tuple[str, bool], list[ModuleModel]] = {}
    for model in models:
        key = (model.buildset.semantic_detail, model.buildset.speculation)
        groups.setdefault(key, []).append(model)
    for siblings in groups.values():
        for narrow in siblings:
            for wide in siblings:
                if narrow is wide:
                    continue
                nv = set(narrow.buildset.visible)
                wv = set(wide.buildset.visible)
                if nv < wv:
                    _check_pair(narrow, wide, diags)
    return diags


def _check_pair(
    narrow: ModuleModel, wide: ModuleModel, diags: list[Diagnostic]
) -> None:
    missing_slots = narrow.field_slots() - wide.field_slots()
    for slot in sorted(missing_slots):
        diags.append(
            narrow.diagnostic(
                "CHK030",
                f"record slot {slot!r} exists in "
                f"{narrow.buildset.name!r} but not in the higher-detail "
                f"sibling {wide.buildset.name!r}",
            )
        )
    for index, instr in enumerate(narrow.spec.instructions):
        stores_narrow = _store_set(narrow, index)
        stores_wide = _store_set(wide, index)
        if stores_narrow is None or stores_wide is None:
            continue  # block modules have no static per-instruction bodies
        for name in sorted(stores_narrow - stores_wide):
            diags.append(
                narrow.diagnostic(
                    "CHK030",
                    f"instruction {instr.name}: field {name!r} is stored "
                    f"by {narrow.buildset.name!r} but not by the "
                    f"higher-detail sibling {wide.buildset.name!r}",
                    loc_override=instr.loc,
                )
            )


def _store_set(model: ModuleModel, index: int) -> set[str] | None:
    """Spec fields one instruction's interface calls store, entries included."""
    bodies = model.functions_of_instruction(index)
    if not bodies:
        return None
    stored: set[str] = set()
    for fn in bodies:
        stored |= _record_fields(model, fn)
    for fn in model.entry_functions():
        stored |= _record_fields(model, fn)
    return stored


def _record_fields(model: ModuleModel, fn) -> set[str]:
    return {
        attr
        for attr, _stmt in attribute_stores(fn.node, "di")
        if attr not in RECORD_BOOKKEEPING
        and not attr.startswith(CARRY_PREFIX)
        and attr in model.spec.fields
    }
