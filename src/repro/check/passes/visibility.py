"""Visibility contract (CHK001, CHK002, CHK003).

The paper's interface definition is a *visibility* partition: fields the
buildset shows become dynamic-instruction record slots, everything else
stays a hidden local inside the generated function (§IV).  This pass
re-derives the partition from the spec and verifies the generated
module respects it:

* **CHK001** — no hidden value escapes into the record: neither as a
  ``DynInst`` slot claiming to be a spec field, nor as a ``di.<field>``
  store in any function.  (Step interfaces may carry hidden values
  between calls, but only through mangled ``_c_*`` slots that are
  explicitly not part of the visible surface.)
* **CHK002** — every visible field the module computes is actually
  stored: a visible spec field assigned as a local must reach a
  ``di.<field>`` store in the same function, and every visible field
  must have a record slot at all.
* **CHK003** — visible fields are stored at most once per interface
  call: no duplicate ``di.<field>`` stores within a function, and no
  field stored both by an entry and by the bodies it dispatches to.
"""

from __future__ import annotations

from repro.check.model import (
    CARRY_PREFIX,
    RECORD_BOOKKEEPING,
    FunctionModel,
    ModuleModel,
    attribute_stores,
    name_assignments,
)
from repro.diag.core import Diagnostic

#: The record parameter name every generated interface function uses.
RECORD_PARAM = "di"


def check_visibility(model: ModuleModel) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    visible = set(model.buildset.visible)
    spec_fields = set(model.spec.fields)

    _check_slots(model, visible, spec_fields, diags)
    entry_stored: dict[str, list[tuple[str, int]]] = {}
    body_stored: dict[str, list[tuple[str, int]]] = {}
    for fn in model.functions.values():
        if fn.kind == "other":
            continue
        stores = [
            (attr, stmt)
            for attr, stmt in attribute_stores(fn.node, RECORD_PARAM)
            if attr not in RECORD_BOOKKEEPING
        ]
        _check_escapes(model, fn, stores, visible, diags)
        _check_duplicates(model, fn, stores, diags)
        _check_computed_stored(model, fn, stores, visible, diags)
        sink = entry_stored if fn.kind == "entry" else body_stored
        for attr, stmt in stores:
            if not attr.startswith(CARRY_PREFIX):
                sink.setdefault(attr, []).append((fn.name, stmt.lineno))
    _check_entry_body_overlap(model, entry_stored, body_stored, diags)
    return diags


def _check_slots(
    model: ModuleModel,
    visible: set[str],
    spec_fields: set[str],
    diags: list[Diagnostic],
) -> None:
    """The record layout itself must match the visibility partition."""
    for slot in model.field_slots():
        if slot in spec_fields and slot not in visible:
            diags.append(
                model.diagnostic(
                    "CHK001",
                    f"hidden field {slot!r} has a dynamic-instruction "
                    f"record slot in buildset {model.buildset.name!r}",
                )
            )
    for name in model.plan.trace_fields:
        if name not in model.di_slots:
            diags.append(
                model.diagnostic(
                    "CHK002",
                    f"visible field {name!r} has no dynamic-instruction "
                    f"record slot in buildset {model.buildset.name!r}",
                )
            )


def _check_escapes(
    model: ModuleModel,
    fn: FunctionModel,
    stores: list[tuple[str, object]],
    visible: set[str],
    diags: list[Diagnostic],
) -> None:
    for attr, stmt in stores:
        if attr.startswith(CARRY_PREFIX):
            continue  # mangled carry slot: hidden by construction
        if attr not in visible:
            diags.append(
                model.diagnostic(
                    "CHK001",
                    f"{fn.name} stores hidden value {attr!r} into the "
                    f"dynamic-instruction record",
                    node=stmt,
                    function=fn.name,
                )
            )


def _check_duplicates(
    model: ModuleModel,
    fn: FunctionModel,
    stores: list[tuple[str, object]],
    diags: list[Diagnostic],
) -> None:
    seen: dict[str, object] = {}
    for attr, stmt in stores:
        if attr.startswith(CARRY_PREFIX):
            continue
        if attr in seen:
            diags.append(
                model.diagnostic(
                    "CHK003",
                    f"{fn.name} stores visible field {attr!r} more than "
                    f"once (first at line {seen[attr].lineno})",
                    node=stmt,
                    function=fn.name,
                )
            )
        else:
            seen[attr] = stmt


def _check_computed_stored(
    model: ModuleModel,
    fn: FunctionModel,
    stores: list[tuple[str, object]],
    visible: set[str],
    diags: list[Diagnostic],
) -> None:
    """A visible field computed as a local must reach the record."""
    stored = {attr for attr, _stmt in stores}
    flagged: set[str] = set()
    for name, stmt in name_assignments(fn.node):
        if name not in visible or name in stored or name in flagged:
            continue
        if _is_record_load(stmt):
            continue  # re-materialized from the record, not a new value
        flagged.add(name)
        diags.append(
            model.diagnostic(
                "CHK002",
                f"{fn.name} computes visible field {name!r} but never "
                f"stores it into the dynamic-instruction record",
                node=stmt,
                function=fn.name,
            )
        )


def _is_record_load(stmt) -> bool:
    import ast

    value = stmt.value
    return (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == RECORD_PARAM
    )


def _check_entry_body_overlap(
    model: ModuleModel,
    entry_stored: dict[str, list[tuple[str, int]]],
    body_stored: dict[str, list[tuple[str, int]]],
    diags: list[Diagnostic],
) -> None:
    """One interface call = one entry + one body; stores must not overlap."""
    for attr in sorted(set(entry_stored) & set(body_stored)):
        entry_fn, entry_line = entry_stored[attr][0]
        body_fn, body_line = body_stored[attr][0]
        diags.append(
            model.diagnostic(
                "CHK003",
                f"visible field {attr!r} is stored both by entry "
                f"{entry_fn} (line {entry_line}) and by body {body_fn}",
                lineno=body_line,
                function=body_fn,
            )
        )
