"""Static walk of runtime-translated units (superblocks and chaining).

The module-level checker passes validate what ``synthesize`` writes to
disk, but Block interfaces generate most of their code at *run* time:
the translator emits one specialized function per unit, shaped by
superblock formation (merged basic blocks, guarded side exits, unrolled
self-loops) and by direct chaining (budget debits, successor slots).
This module extends the checker's structural guarantees to that code.

The walk is static in the same sense as the rest of ``repro.check``:
units are translated — which only *reads* guest memory — then parsed
and analyzed; no guest instruction is ever executed.  Reachability
follows each unit's compile-time-constant exit targets, starting from a
workload image's entry point.

Per-unit guarantees:

* the unit parses and declares exit accounting (``CHK050``): every
  ``di.count`` store and every ``di.budget`` debit names a constant
  between 1 and the unit's instruction count;
* the unit appends exactly one trace record per translated instruction
  on its main path (``CHK051``) — batched constant records count by
  tuple arity;
* chain bookkeeping is consistent (``CHK052``): the successor slots the
  source references are exactly the cells attached to the function, and
  a chaining-off unit carries no chain residue at all;
* the zero-overhead-when-off contract (``CHK040``) extends to
  translated code: an observe-off unit never references the
  observability layer, and a trace-off unit never references the
  guest-PC profiling hit counters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.arch.faults import IllegalInstruction
from repro.check.codes import make_diagnostic
from repro.diag.core import Diagnostic

#: kernels walked per block buildset (small, loop-heavy, syscall-using)
WALK_KERNELS = ("checksum", "sieve")

#: per-image cap on translated units (reachability closures are small,
#: but a malformed exit-target sweep must not run away)
MAX_UNITS = 24


@dataclass(frozen=True)
class UnitInfo:
    """One translated unit, as seen by the static walk."""

    pc: int
    source: str
    length: int
    cells: int
    exit_targets: tuple[int, ...]


def walk_units(generated, image, abi, max_units: int = MAX_UNITS) -> list[UnitInfo]:
    """Translate every unit statically reachable from ``image``'s entry."""
    from repro.sysemu.loader import load_image

    sim = generated.make()
    load_image(sim.state, image, abi)
    translator = sim._translator
    seen: set[int] = set()
    frontier = [sim.state.pc]
    units: list[UnitInfo] = []
    while frontier and len(units) < max_units:
        pc = frontier.pop()
        if pc in seen:
            continue
        seen.add(pc)
        try:
            fn = translator.translate(sim, pc)
        except IllegalInstruction:
            continue  # an exit target pointing at data, e.g. past a loop
        units.append(
            UnitInfo(
                pc=pc,
                source=fn.__block_source__,
                length=fn.__block_len__,
                cells=len(fn.__chain_cells__),
                exit_targets=translator.last_exit_targets,
            )
        )
        frontier.extend(t for t in translator.last_exit_targets if t not in seen)
    return units


def _trace_records_on_main_path(fn: ast.FunctionDef) -> int:
    """Trace records appended at the unit's top level (its main path)."""
    total = 0
    for stmt in fn.body:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "append"
            and isinstance(stmt.value.func.value, ast.Name)
            and stmt.value.func.value.id == "__trace"
        ):
            total += 1
        elif (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__trace"
            and isinstance(stmt.value, ast.Tuple)
        ):
            total += len(stmt.value.elts)
    return total


def _record_constants(tree: ast.AST, attr: str) -> list[object]:
    """Constants stored into ``di.<attr>`` anywhere in the unit."""
    out: list[object] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == attr
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "di"
        ):
            value = node.value
            out.append(value.value if isinstance(value, ast.Constant) else value)
    return out


def _budget_debits(tree: ast.AST) -> list[object]:
    """Constants ``K`` in ``di.budget - K`` debit expressions."""
    out: list[object] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Sub)
            and isinstance(node.left, ast.Attribute)
            and node.left.attr == "budget"
            and isinstance(node.left.value, ast.Name)
            and node.left.value.id == "di"
        ):
            right = node.right
            out.append(right.value if isinstance(right, ast.Constant) else right)
    return out


def check_unit(
    unit: UnitInfo,
    context: str,
    *,
    chain: bool,
    observe: bool,
    trace: bool = False,
) -> list[Diagnostic]:
    """Structural checks over one translated unit's source."""
    where = f"{context} unit at {unit.pc:#x}"
    try:
        tree = ast.parse(unit.source)
    except SyntaxError as exc:
        return [make_diagnostic("CHK050", f"{where} failed to parse: {exc}")]
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return [
            make_diagnostic(
                "CHK050", f"{where} is not a single function definition"
            )
        ]
    fn = tree.body[0]
    diags: list[Diagnostic] = []

    counts = _record_constants(tree, "count")
    if not counts:
        diags.append(
            make_diagnostic(
                "CHK050", f"{where} never stores ``di.count`` on any exit path"
            )
        )
    for value in counts:
        if not isinstance(value, int) or not 1 <= value <= unit.length:
            diags.append(
                make_diagnostic(
                    "CHK050",
                    f"{where} stores di.count = {value!r}, outside "
                    f"[1, {unit.length}]",
                )
            )
    for value in _budget_debits(tree):
        if not isinstance(value, int) or not 1 <= value <= unit.length:
            diags.append(
                make_diagnostic(
                    "CHK050",
                    f"{where} debits di.budget by {value!r}, outside "
                    f"[1, {unit.length}]",
                )
            )

    records = _trace_records_on_main_path(fn)
    if records != unit.length:
        diags.append(
            make_diagnostic(
                "CHK051",
                f"{where} appends {records} trace record(s) on its main "
                f"path but translated {unit.length} instruction(s)",
            )
        )

    referenced = {
        node.id
        for node in ast.walk(fn)
        if isinstance(node, ast.Name) and node.id.startswith("__chain_")
    }
    expected = {f"__chain_{i}" for i in range(unit.cells)}
    if chain:
        if referenced != expected:
            diags.append(
                make_diagnostic(
                    "CHK052",
                    f"{where} references chain slots {sorted(referenced)} "
                    f"but carries cells {sorted(expected)}",
                )
            )
    else:
        residue = sorted(referenced) + (
            ["di.budget"] if _budget_debits(tree) else []
        )
        if unit.cells or residue:
            diags.append(
                make_diagnostic(
                    "CHK052",
                    f"{where} was translated with chaining off but carries "
                    f"chain residue: {residue or unit.cells}",
                )
            )
    if not observe and "self.obs" in unit.source:
        diags.append(
            make_diagnostic(
                "CHK040",
                f"{where} references the observability layer in an "
                f"observe-off translation",
            )
        )
    if not trace and "_prof" in unit.source:
        diags.append(
            make_diagnostic(
                "CHK040",
                f"{where} references the guest-PC profiling layer in a "
                f"trace-off translation",
            )
        )
    return diags


def check_translated_units(
    isa: str,
    spec,
    options=None,
    buildsets=None,
    kernels: tuple[str, ...] = WALK_KERNELS,
) -> list[Diagnostic]:
    """Walk and check the Block buildsets of one ISA over small kernels."""
    from repro.isa.base import get_bundle
    from repro.synth import SynthOptions, synthesize
    from repro.workloads import SUITE, assemble_kernel

    options = options or SynthOptions()
    names = [
        name
        for name in (buildsets if buildsets is not None else sorted(spec.buildsets))
        if spec.buildsets[name].semantic_detail == "block"
    ]
    if not names:
        return []
    bundle = get_bundle(isa)
    diags: list[Diagnostic] = []
    for name in names:
        try:
            generated = synthesize(spec, name, options)
        except Exception:  # noqa: BLE001 - check_spec already reported it
            continue
        for kernel in kernels:
            if kernel not in SUITE:
                continue
            image = assemble_kernel(isa, SUITE[kernel], 4)
            context = f"{spec.name}/{name} [{kernel}]"
            try:
                units = walk_units(generated, image, bundle.abi)
            except Exception as exc:  # noqa: BLE001 - a crash is a finding
                diags.append(
                    make_diagnostic(
                        "CHK050",
                        f"{context}: block walk failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            for unit in units:
                diags.extend(
                    check_unit(
                        unit,
                        context,
                        chain=options.chain,
                        observe=options.observe,
                        trace=getattr(options, "trace", False),
                    )
                )
    return diags
