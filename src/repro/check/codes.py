"""Diagnostics catalogue for the generated-code checker.

The shared machinery (severities, :class:`~repro.diag.Diagnostic`,
result aggregation, rendering, suppression) lives in :mod:`repro.diag`
and is used identically by the specification linter (:mod:`repro.lint`).
This module contributes the checker's stable ``CHK0xx`` codes to the
shared registry; the table below is the single place their severities
and one-line titles are defined.  :mod:`docs/checking.md` documents
each code with the structural guarantee it validates.

Code blocks mirror the guarantees:

* ``CHK00x`` — engine
* ``CHK01x`` — dead-code-elimination soundness / effectiveness
* ``CHK02x`` — speculation undo coverage
* ``CHK03x`` — cross-interface monotonicity
* ``CHK04x`` — zero-overhead residue
* ``CHK05x`` — translated-unit shape (superblocks and chaining)
"""

from __future__ import annotations

from repro.adl.errors import SourceLoc
from repro.diag.core import CodeInfo, Diagnostic, Severity, register_codes

_REGISTRY: tuple[CodeInfo, ...] = (
    # -- engine ----------------------------------------------------------------
    CodeInfo("CHK000", Severity.ERROR, "generated module failed static analysis"),
    # -- visibility contract ---------------------------------------------------
    CodeInfo("CHK001", Severity.ERROR,
             "hidden value escapes into the dynamic-instruction record"),
    CodeInfo("CHK002", Severity.ERROR, "visible field computed but never stored"),
    CodeInfo("CHK003", Severity.ERROR,
             "visible field stored more than once per interface call"),
    # -- dead-code elimination -------------------------------------------------
    CodeInfo("CHK010", Severity.ERROR, "anchored architectural effect eliminated"),
    CodeInfo("CHK011", Severity.WARNING,
             "dead hidden computation survives elimination"),
    # -- speculation undo coverage ---------------------------------------------
    CodeInfo("CHK020", Severity.ERROR,
             "architectural write not covered by an undo-journal entry"),
    CodeInfo("CHK021", Severity.ERROR, "speculation journal lifecycle broken"),
    # -- cross-interface monotonicity ------------------------------------------
    CodeInfo("CHK030", Severity.ERROR,
             "record detail not monotonic across sibling interfaces"),
    # -- zero-overhead residue -------------------------------------------------
    CodeInfo("CHK040", Severity.ERROR,
             "observability or profiling probe residue in a module "
             "synthesized with that layer off"),
    CodeInfo("CHK041", Severity.ERROR, "profiling residue in generated module"),
    # -- translated-unit shape (superblocks and chaining) ----------------------
    CodeInfo("CHK050", Severity.ERROR,
             "translated unit failed static analysis"),
    CodeInfo("CHK051", Severity.ERROR,
             "translated unit's trace records disagree with its length"),
    CodeInfo("CHK052", Severity.ERROR,
             "translated unit's chain bookkeeping is inconsistent"),
)

#: The checker's own codes (a view into the shared registry).
CODES: dict[str, CodeInfo] = register_codes(_REGISTRY)


def make_diagnostic(
    code: str,
    message: str,
    loc: SourceLoc | None = None,
    gen_loc: SourceLoc | None = None,
) -> Diagnostic:
    """Create a checker diagnostic with the registry's default severity."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code=code, message=message, loc=loc, gen_loc=gen_loc)


__all__ = ["CODES", "make_diagnostic"]
