"""Static host-op cost model for synthesized interfaces.

The paper's Table III measures the *costs of detail*: how many extra
host operations per guest instruction each step up in semantic,
informational, or speculative detail buys.  The measured numbers come
from profile builds (:mod:`repro.harness.hostops`) that count executed
bytecode.  This module predicts the same quantities *statically*, from
the generated modules alone:

* every interface entry function executes once per guest instruction,
  so its full static bytecode length is charged;
* each per-instruction body is charged weighted by how often its
  instruction is expected to execute — with no workload in hand, the
  weight of an instruction is the fraction of the decode space its
  patterns occupy (``2**free_bits`` per pattern, normalized), a crude
  but spec-derived proxy for dynamic frequency;
* memory primitive calls (``__mem.read`` / ``__mem.write``) execute
  host ops *inside* the runtime, invisible to the module's own
  bytecode, so each static call site is charged the primitive's
  bytecode length.

The absolute numbers are not the point — the *deltas* between sibling
interfaces are, and :func:`cost_report` lays them out the way Table III
does (decode-, full-, multi-call- and speculation-detail increments).
``benchmarks/test_check_costmodel.py`` confirms the predicted deltas
agree in sign with the measured ones.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field as dc_field

from repro.check.model import ModuleModel, calls

#: Table III rows: (label, minuend buildset, subtrahend buildset).
DELTA_ROWS = (
    ("decode", "one_decode", "one_min"),
    ("full", "one_all", "one_min"),
    ("multi_call", "step_all", "one_all"),
    ("speculation", "one_all_spec", "one_all"),
)


@dataclass
class CostPrediction:
    """Static host-ops-per-instruction estimate for one interface."""

    isa: str
    buildset: str
    #: once-per-instruction cost of the entry functions
    entry_cost: float
    #: decode-weighted mean cost of the per-instruction bodies
    body_cost: float
    #: per-instruction weights used for the body mean
    weights: dict[str, float] = dc_field(default_factory=dict, repr=False)

    @property
    def total(self) -> float:
        return self.entry_cost + self.body_cost


def _bytecode_length(fn) -> int:
    return sum(1 for _ in dis.get_instructions(fn.__code__))


def instruction_weights(spec) -> dict[str, float]:
    """Decode-space occupancy as a proxy for dynamic frequency.

    Each pattern matches ``2**free_bits`` encodings (free = bits the
    mask leaves unconstrained); an instruction's weight is its share of
    the total matched space.  Purely spec-derived: no workload needed.
    """
    word_bits = spec.ilen * 8
    raw: dict[str, float] = {}
    for instr in spec.instructions:
        size = 0.0
        for mask, _value in instr.patterns:
            free = word_bits - bin(mask).count("1")
            size += 2.0 ** free
        raw[instr.name] = size
    total = sum(raw.values()) or 1.0
    return {name: size / total for name, size in raw.items()}


def predict_costs(generated) -> CostPrediction:
    """Predict one interface's static host-ops-per-instruction."""
    model = ModuleModel.build(generated)
    spec = generated.plan.spec
    weights = instruction_weights(spec)
    namespace = generated.namespace

    def cost_of(fn_model) -> float:
        fn = namespace.get(fn_model.name)
        if fn is None:
            return 0.0
        cost = float(_bytecode_length(fn))
        for name, _node in calls(fn_model.node):
            if name == "__mem.read":
                cost += generated.mem_read_cost
            elif name == "__mem.write":
                cost += generated.mem_write_cost
        return cost

    entry_cost = sum(cost_of(fn) for fn in model.entry_functions())
    body_cost = 0.0
    for index, instr in enumerate(spec.instructions):
        bodies = model.functions_of_instruction(index)
        if bodies:
            body_cost += weights[instr.name] * sum(
                cost_of(fn) for fn in bodies
            )
    return CostPrediction(
        isa=spec.name,
        buildset=generated.plan.buildset.name,
        entry_cost=entry_cost,
        body_cost=body_cost,
        weights=weights,
    )


def predict_block_costs(generated, image, abi) -> CostPrediction:
    """Predict a Block interface's host-ops-per-instruction over an image.

    Block bodies exist only after run-time translation, so the static
    module has nothing to measure; instead the translated units reachable
    from ``image``'s entry are walked (:mod:`repro.check.blockwalk`) and
    each unit's compiled bytecode length — plus the memory-primitive
    charges the One/Step model applies — is amortized over the unit's
    instruction count.  Units are weighted by their length: a superblock
    that covers more of the program also covers more of its execution, a
    workload-free proxy in the same spirit as the decode-space weights.
    """
    import ast as _ast

    from repro.check.blockwalk import walk_units

    spec = generated.plan.spec
    total_cost = 0.0
    total_instructions = 0
    for unit in walk_units(generated, image, abi):
        code = compile(unit.source, f"<unit {unit.pc:#x}>", "exec")
        unit_cost = float(
            sum(
                1
                for const in code.co_consts
                if hasattr(const, "co_code")
                for _ in dis.get_instructions(const)
            )
        )
        for node in _ast.walk(_ast.parse(unit.source)):
            if (
                isinstance(node, _ast.Call)
                and isinstance(node.func, _ast.Attribute)
                and isinstance(node.func.value, _ast.Name)
                and node.func.value.id == "__mem"
            ):
                if node.func.attr.startswith("read"):
                    unit_cost += generated.mem_read_cost
                elif node.func.attr.startswith("write"):
                    unit_cost += generated.mem_write_cost
        total_cost += unit_cost
        total_instructions += unit.length
    body_cost = total_cost / total_instructions if total_instructions else 0.0
    return CostPrediction(
        isa=spec.name,
        buildset=generated.plan.buildset.name,
        entry_cost=0.0,  # do_block dispatch amortizes away under chaining
        body_cost=body_cost,
        weights={},
    )


def predict_spec(spec, buildsets=None) -> dict[str, CostPrediction]:
    """Predictions for every One/Step buildset of a spec.

    Block interfaces are skipped here: their bodies are translated at
    run time, so they need a workload image — see
    :func:`predict_block_costs`.
    """
    from repro.synth import SynthOptions, synthesize

    out: dict[str, CostPrediction] = {}
    names = list(buildsets) if buildsets is not None else sorted(spec.buildsets)
    for name in names:
        if spec.buildsets[name].semantic_detail == "block":
            continue
        out[name] = predict_costs(synthesize(spec, name, SynthOptions()))
    return out


def cost_report(isa: str) -> dict:
    """Predicted per-interface costs and Table III-style deltas."""
    from repro.isa.base import get_bundle

    spec = get_bundle(isa).load_spec()
    predictions = predict_spec(spec)
    deltas = {}
    for label, minuend, subtrahend in DELTA_ROWS:
        if minuend in predictions and subtrahend in predictions:
            deltas[label] = round(
                predictions[minuend].total - predictions[subtrahend].total, 2
            )
    return {
        "isa": isa,
        "model": "static bytecode length, decode-space-weighted",
        "predictions": {
            name: {
                "entry": round(p.entry_cost, 2),
                "body": round(p.body_cost, 2),
                "total": round(p.total, 2),
            }
            for name, p in sorted(predictions.items())
        },
        "deltas": deltas,
    }


def compare_with_measured(isa: str, measured: dict[str, float]) -> dict:
    """Sign-agreement report: static prediction vs measured Table III.

    ``measured`` maps delta labels (see :data:`DELTA_ROWS`) to measured
    host-op deltas from :class:`repro.harness.hostops.CostsOfDetail`.
    """
    predicted = cost_report(isa)["deltas"]
    rows = {}
    agreements = 0
    comparable = 0
    for label, value in predicted.items():
        if label not in measured:
            continue
        comparable += 1
        agree = (value > 0) == (measured[label] > 0)
        agreements += agree
        rows[label] = {
            "predicted": value,
            "measured": round(measured[label], 2),
            "sign_agreement": agree,
        }
    return {
        "isa": isa,
        "rows": rows,
        "agreements": agreements,
        "comparable": comparable,
    }
