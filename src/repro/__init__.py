"""repro: single-specification functional-to-timing simulator synthesis.

A from-scratch reproduction of Penry, "A Single-Specification Principle
for Functional-to-Timing Simulator Interface Design" (ISPASS 2011).

Quickstart::

    from repro import get_bundle, synthesize, OSEmulator, load_image

    bundle = get_bundle("alpha")            # ADL spec + assembler + ABI
    spec = bundle.load_spec()               # the single specification
    generated = synthesize(spec, "one_all") # pick an interface (buildset)
    os_emu = OSEmulator(bundle.abi)
    sim = generated.make(syscall_handler=os_emu)
    image = bundle.make_assembler().assemble(SOURCE, origin=0x1000)
    load_image(sim.state, image, bundle.abi)
    sim.run(1_000_000)
"""

from repro.adl import IsaSpec, load_isa, load_isa_source
from repro.arch import ArchState, ExitProgram
from repro.isa import available_isas, get_bundle
from repro.synth import (
    GeneratedSimulator,
    RunResult,
    SynthOptions,
    SynthesisError,
    SynthesizedSimulator,
    synthesize,
)
from repro.sysemu import OSEmulator, ProgramImage, load_image

__version__ = "1.0.0"

__all__ = [
    "ArchState",
    "ExitProgram",
    "GeneratedSimulator",
    "IsaSpec",
    "OSEmulator",
    "ProgramImage",
    "RunResult",
    "SynthOptions",
    "SynthesisError",
    "SynthesizedSimulator",
    "available_isas",
    "get_bundle",
    "load_image",
    "load_isa",
    "load_isa_source",
    "synthesize",
]
