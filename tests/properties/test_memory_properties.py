"""Property-based tests: sparse memory behaves like a dict of bytes."""

from hypothesis import given, settings, strategies as st

from repro.arch.memory import Memory

addr_st = st.integers(min_value=0, max_value=1 << 20)
size_st = st.sampled_from([1, 2, 4, 8])

write_op = st.tuples(addr_st, size_st, st.integers(min_value=0))


@st.composite
def write_sequences(draw):
    return draw(st.lists(write_op, min_size=0, max_size=40))


class TestMemoryModel:
    @given(write_sequences(), st.sampled_from(["little", "big"]))
    @settings(max_examples=60)
    def test_matches_byte_dict_model(self, writes, endian):
        mem = Memory(endian)
        model: dict[int, int] = {}
        for addr, size, value in writes:
            mem.write(addr, size, value)
            data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, endian)
            for offset, byte in enumerate(data):
                model[addr + offset] = byte
        for addr in {a for a, _, _ in writes}:
            for offset in range(8):
                assert mem.read_u8(addr + offset) == model.get(addr + offset, 0)

    @given(write_sequences())
    @settings(max_examples=40)
    def test_snapshot_restore_is_identity(self, writes):
        mem = Memory()
        for addr, size, value in writes[: len(writes) // 2]:
            mem.write(addr, size, value)
        snap = mem.snapshot()
        before = {a: mem.read_u64(a) for a, _, _ in writes}
        for addr, size, value in writes[len(writes) // 2 :]:
            mem.write(addr, size, value ^ 0xFF)
        mem.restore(snap)
        for addr, _, _ in writes:
            assert mem.read_u64(addr) == before[addr]

    @given(addr_st, size_st, st.integers(min_value=0))
    def test_read_back_write(self, addr, size, value):
        mem = Memory()
        mem.write(addr, size, value)
        assert mem.read(addr, size) == value & ((1 << (size * 8)) - 1)

    @given(addr_st, st.binary(min_size=0, max_size=300))
    @settings(max_examples=40)
    def test_bulk_roundtrip(self, addr, data):
        mem = Memory()
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data
