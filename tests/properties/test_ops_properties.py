"""Property-based tests for the fixed-width arithmetic helpers."""

from hypothesis import given, strategies as st

from repro import ops

u64s = st.integers(min_value=0, max_value=(1 << 64) - 1)
u32s = st.integers(min_value=0, max_value=(1 << 32) - 1)
anyints = st.integers(min_value=-(1 << 80), max_value=1 << 80)
bits = st.integers(min_value=1, max_value=64)


class TestTruncation:
    @given(anyints)
    def test_u64_range(self, x):
        assert 0 <= ops.u64(x) < (1 << 64)

    @given(anyints)
    def test_u32_idempotent(self, x):
        assert ops.u32(ops.u32(x)) == ops.u32(x)

    @given(u32s)
    def test_i32_roundtrip(self, x):
        assert ops.u32(ops.i32(x)) == x

    @given(u64s)
    def test_i64_roundtrip(self, x):
        assert ops.u64(ops.i64(x)) == x

    @given(u32s)
    def test_i32_sign(self, x):
        signed = ops.i32(x)
        assert (signed < 0) == bool(x & 0x80000000)

    @given(anyints, bits)
    def test_sext_range(self, x, b):
        value = ops.sext(x, b)
        assert -(1 << (b - 1)) <= value < (1 << (b - 1))

    @given(anyints, bits)
    def test_sext_preserves_low_bits(self, x, b):
        assert ops.sext(x, b) & ((1 << b) - 1) == x & ((1 << b) - 1)


class TestRotates:
    @given(u32s, st.integers(min_value=0, max_value=100))
    def test_rotl_rotr_inverse(self, x, n):
        assert ops.rotr32(ops.rotl32(x, n), n) == x

    @given(u64s, st.integers(min_value=0, max_value=200))
    def test_rot64_inverse(self, x, n):
        assert ops.rotr64(ops.rotl64(x, n), n) == x

    @given(u32s, st.integers(min_value=0, max_value=100))
    def test_rotl_preserves_popcount(self, x, n):
        assert ops.popcount(ops.rotl32(x, n)) == ops.popcount(x)

    @given(u32s)
    def test_rot_by_32_identity(self, x):
        assert ops.rotl32(x, 32) == x


class TestBitCounts:
    @given(u32s)
    def test_clz_ctz_consistent(self, x):
        if x:
            assert ops.clz32(x) + x.bit_length() == 32
            assert x >> ops.ctz32(x) & 1 == 1
        else:
            assert ops.clz32(x) == 32
            assert ops.ctz32(x) == 32

    @given(u32s)
    def test_popcount_matches_bin(self, x):
        assert ops.popcount(x) == bin(x).count("1")


class TestCarryOverflow:
    @given(u32s, u32s, st.integers(min_value=0, max_value=1))
    def test_carry_add32_matches_wide_math(self, a, b, cin):
        wide = a + b + cin
        assert ops.carry_add32(a, b, cin) == (1 if wide >= (1 << 32) else 0)

    @given(u64s, u64s)
    def test_carry_add64(self, a, b):
        assert ops.carry_add64(a, b) == (1 if a + b >= (1 << 64) else 0)

    @given(u32s, u32s)
    def test_borrow_matches_comparison(self, a, b):
        assert ops.borrow_sub32(a, b) == (1 if a < b else 0)

    @given(u32s, u32s)
    def test_overflow_add32_matches_signed_math(self, a, b):
        result = ops.u32(a + b)
        true_sum = ops.i32(a) + ops.i32(b)
        expected = 0 if -(1 << 31) <= true_sum < (1 << 31) else 1
        assert ops.overflow_add32(a, b, result) == expected

    @given(u32s, u32s)
    def test_overflow_sub32_matches_signed_math(self, a, b):
        result = ops.u32(a - b)
        true_diff = ops.i32(a) - ops.i32(b)
        expected = 0 if -(1 << 31) <= true_diff < (1 << 31) else 1
        assert ops.overflow_sub32(a, b, result) == expected
