"""Decode-space uniqueness, tested with Hypothesis.

For each shipped ISA: take any instruction's decode pattern, fill the
don't-care bits with random data, and the resulting word must (a) match
exactly that one instruction across every pattern of every instruction
and (b) round-trip through the spec's decode dispatch tables back to the
same instruction.  This dynamically cross-checks what the linter's
decode-space pass (LIS001/LIS002/LIS003) establishes statically — the
two model overlap differently, so a divergence in either shows up here.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.base import available_isas, get_bundle


@lru_cache(maxsize=None)
def _spec(isa: str):
    return get_bundle(isa).load_spec()


@pytest.mark.parametrize("isa", available_isas())
@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_every_encodable_word_decodes_to_exactly_one_instruction(isa, data):
    spec = _spec(isa)
    index = data.draw(
        st.integers(0, len(spec.instructions) - 1), label="instruction"
    )
    instr = spec.instructions[index]
    mask, value = data.draw(st.sampled_from(list(instr.patterns)), label="pattern")
    word_bits = spec.ilen * 8
    fill = data.draw(st.integers(0, (1 << word_bits) - 1), label="fill")
    word = (value | (fill & ~mask)) & ((1 << word_bits) - 1)

    matches = [
        i
        for i, candidate in enumerate(spec.instructions)
        if any(word & m == v for m, v in candidate.patterns)
    ]
    assert matches == [index], (
        f"word {word:#x} matches "
        f"{[spec.instructions[i].name for i in matches]}"
    )
    assert spec.decode(word) == index
