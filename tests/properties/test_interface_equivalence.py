"""The paper's central correctness property, tested with Hypothesis.

For random programs, every interface synthesized from the single
specification — any semantic detail, any informational detail, with or
without speculation, compiled or interpreted — must produce identical
architectural results.  This generalizes the paper's §V.D rotating
validation with randomized instruction sequences.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.faults import ExitProgram
from repro.synth import synthesize
from repro.synth.interp import InterpretedSimulator

from tests.synth import toyasm

BUILDSETS = [
    "one_all",
    "one_min",
    "one_all_spec",
    "step_all",
    "block_min",
    "block_all",
    "block_min_spec",
]

SCRATCH = 0x4000  # data region for random loads/stores

regs = st.integers(min_value=0, max_value=15)
small_imm = st.integers(min_value=-100, max_value=100)
mem_off = st.integers(min_value=0, max_value=255).map(lambda x: x * 8)


@st.composite
def random_program(draw):
    """A terminating toy program: forward branches only, then SYS."""
    length = draw(st.integers(min_value=1, max_value=25))
    words = [toyasm.addi(14, 0, SCRATCH)]  # scratch base pointer
    for position in range(length):
        # A branch at body position p may skip at most to the final SYS:
        # its target index is p+2+d, the SYS sits at index length+1.
        max_disp = length - position - 1
        choice = draw(st.integers(min_value=0, max_value=7))
        if choice == 7 and max_disp < 1:
            choice = 0  # no room left for a forward branch
        if choice <= 3:  # register ALU
            op = draw(st.sampled_from([0x01, 0x02, 0x03, 0x04, 0x05, 0x08]))
            words.append(
                toyasm.rform(op, draw(regs), draw(regs), draw(regs))
            )
        elif choice == 4:
            words.append(toyasm.addi(draw(regs), draw(regs), draw(small_imm)))
        elif choice == 5:
            words.append(toyasm.ldw(draw(regs), 14, draw(mem_off)))
        elif choice == 6:
            words.append(toyasm.stw(draw(regs), 14, draw(mem_off)))
        else:  # forward branch (guarantees termination)
            disp = draw(st.integers(min_value=1, max_value=max_disp))
            op = draw(st.sampled_from(["beq", "bne"]))
            encode = toyasm.beq if op == "beq" else toyasm.bne
            words.append(encode(draw(regs), draw(regs), disp))
    words.append(toyasm.sys())
    return words


@pytest.fixture(scope="module")
def generators(toy_spec):
    return {name: synthesize(toy_spec, name) for name in BUILDSETS}


def _final_state(sim_runner, words):
    sim = sim_runner()
    toyasm.load_words(sim.state, words)
    # seed registers deterministically so ALU ops have varied inputs
    for index in range(16):
        sim.state.rf["R"][index] = (index * 0x0101) & 0xFFFF
    result = sim.run(10_000)
    assert result.exited, "random program must terminate via SYS"
    return (
        result.executed,
        list(sim.state.rf["R"]),
        dict(sim.state.sr),
        dict(sim.state.mem.iter_nonzero_pages()),
    )


class TestInterfaceEquivalence:
    @given(random_program())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_all_interfaces_agree(self, generators, toy_spec, words):
        handler = toyasm.exit_handler()
        reference = _final_state(
            lambda: generators["one_all"].make(syscall_handler=handler), words
        )
        for name in BUILDSETS[1:]:
            outcome = _final_state(
                lambda: generators[name].make(syscall_handler=handler), words
            )
            assert outcome == reference, f"{name} diverged from one_all"

    @given(random_program())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_interpreter_agrees(self, generators, toy_spec, words):
        handler = toyasm.exit_handler()
        reference = _final_state(
            lambda: generators["one_all"].make(syscall_handler=handler), words
        )
        outcome = _final_state(
            lambda: InterpretedSimulator(
                toy_spec, "one_all", syscall_handler=handler
            ),
            words,
        )
        assert outcome == reference


class TestRollbackProperties:
    @given(random_program(), st.integers(min_value=1, max_value=30))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_full_rollback_restores_initial_state(
        self, generators, words, steps
    ):
        sim = generators["one_all_spec"].make(
            syscall_handler=toyasm.exit_handler()
        )
        toyasm.load_words(sim.state, words)
        snapshot = sim.state.snapshot()
        result = sim.run(steps)
        # An exiting SYS raises before its journal entry is committed, so
        # one fewer rollback record exists in that case.
        journaled = result.executed - (1 if result.exited else 0)
        rolled = sim.rollback(result.executed)
        assert rolled == journaled
        after = sim.state.snapshot()
        assert after.rf == snapshot.rf
        assert after.sr == snapshot.sr
        assert after.pc == snapshot.pc
        assert after.mem == snapshot.mem

    @given(
        random_program(),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_rollback_reexecute_equals_straight_run(
        self, generators, words, run_len, rollback_len
    ):
        handler = toyasm.exit_handler()
        straight = _final_state(
            lambda: generators["one_all_spec"].make(syscall_handler=handler),
            words,
        )

        def wandering():
            sim = generators["one_all_spec"].make(syscall_handler=handler)

            original_run = sim.run

            def run_with_detour(limit):
                result = original_run(run_len)
                if not result.exited:
                    sim.rollback(min(rollback_len, result.executed))
                return original_run(limit)

            sim.run = run_with_detour
            return sim

        detoured = _final_state(wandering, words)
        # executed counts differ (re-execution); architectural state must not
        assert detoured[1:] == straight[1:]
