"""Unit tests for the measurement harness."""

import pytest

from repro.harness import (
    INTERFACE_GRID,
    count_adl_lines,
    hostops_per_instruction,
    measure_buildset,
    render_table,
    table1,
)
from repro.harness.loc import IsaCharacteristics


class TestLoc:
    def test_count_excludes_comments_and_blanks(self, tmp_path):
        path = tmp_path / "x.lis"
        path.write_text(
            "// comment\n\nfield a u64;\n/* block\ncomment */\nfield b u64;\n"
        )
        assert count_adl_lines(str(path)) == 2

    def test_inline_comment_line_still_counts(self, tmp_path):
        path = tmp_path / "x.lis"
        path.write_text("field a u64; // trailing\n")
        assert count_adl_lines(str(path)) == 1

    def test_table1_measures_all_isas(self):
        rows = table1()
        assert [c.isa for c in rows] == ["alpha", "arm", "ppc"]
        for c in rows:
            assert c.isa_description_lines > 100
            assert 0 < c.lines_per_buildset < 20

    def test_characteristics_single_isa(self):
        c = IsaCharacteristics.measure("alpha")
        assert c.buildsets == 12


class TestInterfaceGrid:
    def test_twelve_interfaces(self):
        assert len(INTERFACE_GRID) == 12

    def test_grid_covers_paper_axes(self):
        semantics = {row[1] for row in INTERFACE_GRID}
        infos = {row[2] for row in INTERFACE_GRID}
        specs = {row[3] for row in INTERFACE_GRID}
        assert semantics == {"Block", "One", "Step"}
        assert infos == {"Min", "Decode", "All"}
        assert specs == {"Yes", "No"}

    def test_grid_buildsets_exist_everywhere(self):
        from repro.isa.base import get_bundle

        for isa in ("alpha", "arm", "ppc"):
            spec = get_bundle(isa).load_spec()
            for buildset, *_ in INTERFACE_GRID:
                assert buildset in spec.buildsets, (isa, buildset)


class TestMeasurement:
    def test_measure_buildset_smoke(self):
        m = measure_buildset("alpha", "one_min", kernels=("fib",), scale=0.05)
        assert m.mips > 0
        assert m.instructions > 0

    def test_hostops_smoke(self):
        ops = hostops_per_instruction(
            "alpha", "one_min", kernels=("fib",), scale=0.2
        )
        assert 50 < ops < 5000


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table("T", ["name", "v"], [["row", 1.5], ["loooong", 2]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.50" in text and "loooong" in text

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "a" in text
