"""Tests for the rotating-interface validation utility (paper §V-D)."""

import pytest

from repro.harness.validate import rotate_interfaces
from repro.isa.base import get_bundle
from repro.sysemu import OSEmulator, load_image
from repro.timing.branch import GsharePredictor
from repro.workloads import SUITE, assemble_kernel


class TestRotatingValidation:
    @pytest.mark.parametrize("isa", ["alpha", "arm", "ppc"])
    def test_rotation_reaches_reference_result(self, isa):
        bundle = get_bundle(isa)
        spec = bundle.load_spec()
        kernel = SUITE["checksum"]
        image = assemble_kernel(isa, kernel, kernel.test_n)
        result = rotate_interfaces(
            spec,
            ["one_all", "block_min", "step_all", "one_decode_spec", "block_all"],
            setup=lambda state: load_image(state, image, bundle.abi),
            syscall_handler=OSEmulator(bundle.abi),
        )
        assert result.exited
        value = result.state.mem.read_u32(image.symbol("result"))
        assert value == kernel.reference(kernel.test_n) & 0xFFFFFFFF
        # every interface in the rotation actually got called
        assert all(count > 0 for count in result.calls_per_interface.values())

    def test_empty_rotation_rejected(self):
        spec = get_bundle("alpha").load_spec()
        with pytest.raises(ValueError):
            rotate_interfaces(spec, [], setup=lambda state: None)


class TestGshare:
    def test_learns_alternating_pattern(self):
        """Gshare separates taken/not-taken by history; bimodal cannot."""
        predictor = GsharePredictor(256, history_bits=4)
        # warm up on a strict alternation at one pc
        for i in range(64):
            predictor.update(0x40, i % 2 == 0)
        correct = 0
        for i in range(64, 128):
            taken = i % 2 == 0
            if predictor.predict(0x40) == taken:
                correct += 1
            predictor.update(0x40, taken)
        assert correct > 55  # near-perfect once history locks in

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            GsharePredictor(100)
