"""Tests for the interface-detail taxonomy (paper §II)."""

import pytest

from repro.iface import (
    ORGANIZATIONS,
    InformationalDetail,
    SemanticDetail,
    check_adequate,
)
from repro.isa.base import get_bundle


@pytest.fixture(scope="module")
def alpha_spec():
    return get_bundle("alpha").load_spec()


class TestClassification:
    def test_semantic_detail(self, alpha_spec):
        assert SemanticDetail.of(alpha_spec.buildsets["block_min"]) is SemanticDetail.BLOCK
        assert SemanticDetail.of(alpha_spec.buildsets["one_all"]) is SemanticDetail.ONE
        assert SemanticDetail.of(alpha_spec.buildsets["step_all"]) is SemanticDetail.STEP

    def test_informational_detail(self, alpha_spec):
        classify = lambda name: InformationalDetail.of(
            alpha_spec.buildsets[name], alpha_spec
        )
        assert classify("one_min") is InformationalDetail.MIN
        assert classify("one_decode") is InformationalDetail.DECODE
        assert classify("one_all") is InformationalDetail.ALL


class TestAdequacy:
    def test_functional_first_needs_decode_info(self, alpha_spec):
        assert not check_adequate(
            alpha_spec, alpha_spec.buildsets["block_decode"], "functional-first"
        )
        problems = check_adequate(
            alpha_spec, alpha_spec.buildsets["block_min"], "functional-first"
        )
        assert any("information" in p for p in problems)

    def test_timing_directed_needs_step(self, alpha_spec):
        assert not check_adequate(
            alpha_spec, alpha_spec.buildsets["step_all"], "timing-directed"
        )
        problems = check_adequate(
            alpha_spec, alpha_spec.buildsets["one_all"], "timing-directed"
        )
        assert any("semantic" in p for p in problems)

    def test_speculative_ff_needs_rollback(self, alpha_spec):
        problems = check_adequate(
            alpha_spec,
            alpha_spec.buildsets["one_decode"],
            "speculative-functional-first",
        )
        assert any("speculation" in p for p in problems)
        assert not check_adequate(
            alpha_spec,
            alpha_spec.buildsets["one_decode_spec"],
            "speculative-functional-first",
        )

    def test_over_detailed_is_fine(self, alpha_spec):
        # the paper allows over-detailed interfaces; they are just slower
        assert not check_adequate(
            alpha_spec, alpha_spec.buildsets["one_all"], "timing-first"
        )

    def test_every_organization_documented(self):
        for name, req in ORGANIZATIONS.items():
            assert req.notes
            assert req.semantic
