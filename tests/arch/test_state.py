"""Unit tests for ArchState: snapshots, rollback journal, comparisons."""

import pytest

from repro.arch import ArchState, RegisterFileDef, SpecialRegisterDef
from repro.arch.registers import width_of


def make_state() -> ArchState:
    return ArchState(
        regfiles=[RegisterFileDef("R", 32, "u64")],
        sregs=[SpecialRegisterDef("lr", "u32"), SpecialRegisterDef("flags", "u32")],
    )


class TestRegisterMetadata:
    def test_width_of(self):
        assert width_of("u8") == 8
        assert width_of("u64") == 64

    def test_width_of_unknown(self):
        with pytest.raises(ValueError):
            width_of("f32")

    def test_regfile_mask_and_create(self):
        rf = RegisterFileDef("R", 4, "u32")
        assert rf.mask == 0xFFFFFFFF
        assert rf.create() == [0, 0, 0, 0]

    def test_sreg_mask(self):
        assert SpecialRegisterDef("lr", "u16").mask == 0xFFFF


class TestStateBasics:
    def test_initial_state_zeroed(self):
        st = make_state()
        assert st.pc == 0
        assert st.rf["R"] == [0] * 32
        assert st.sr == {"lr": 0, "flags": 0}

    def test_defs_accessible(self):
        st = make_state()
        assert st.regfile_def("R").count == 32
        assert st.sreg_def("lr").width == 32

    def test_snapshot_restore_roundtrip(self):
        st = make_state()
        st.pc = 0x1000
        st.rf["R"][3] = 42
        st.sr["lr"] = 7
        st.mem.write_u64(0x2000, 99)
        snap = st.snapshot()
        st.pc = 0
        st.rf["R"][3] = 0
        st.sr["lr"] = 0
        st.mem.write_u64(0x2000, 0)
        st.restore(snap)
        assert st.pc == 0x1000
        assert st.rf["R"][3] == 42
        assert st.sr["lr"] == 7
        assert st.mem.read_u64(0x2000) == 99

    def test_copy_architectural_state_from(self):
        a, b = make_state(), make_state()
        a.pc = 0x40
        a.rf["R"][1] = 5
        b.copy_architectural_state_from(a)
        assert b.pc == 0x40
        assert b.rf["R"][1] == 5


class TestRollback:
    def test_rollback_register_write(self):
        st = make_state()
        st.rf["R"][2] = 10
        st.journal.append([("r", "R", 2, 10)])
        st.rf["R"][2] = 20
        assert st.rollback() == 1
        assert st.rf["R"][2] == 10

    def test_rollback_applies_records_newest_first(self):
        st = make_state()
        # One instruction that wrote R1 twice: undo must land on the oldest value.
        st.journal.append([("r", "R", 1, 0), ("r", "R", 1, 5)])
        st.rf["R"][1] = 9
        st.rollback()
        assert st.rf["R"][1] == 0

    def test_rollback_memory_and_sreg_and_pc(self):
        st = make_state()
        st.mem.write_u32(0x100, 1)
        st.journal.append([("m", 0x100, 4, 1), ("s", "lr", 3), ("p", 0x500)])
        st.mem.write_u32(0x100, 2)
        st.sr["lr"] = 4
        st.pc = 0x504
        st.rollback()
        assert st.mem.read_u32(0x100) == 1
        assert st.sr["lr"] == 3
        assert st.pc == 0x500

    def test_rollback_multiple_instructions(self):
        st = make_state()
        for i in range(5):
            st.journal.append([("r", "R", 0, i)])
            st.rf["R"][0] = i + 1
        assert st.rollback(3) == 3
        assert st.rf["R"][0] == 2
        assert len(st.journal) == 2

    def test_rollback_bounded_by_journal_depth(self):
        st = make_state()
        st.journal.append([("r", "R", 0, 1)])
        assert st.rollback(10) == 1
        assert st.journal == []

    def test_commit_discards_oldest(self):
        st = make_state()
        st.journal.append([("r", "R", 0, 1)])
        st.journal.append([("r", "R", 0, 2)])
        assert st.commit(1) == 1
        assert st.journal == [[("r", "R", 0, 2)]]

    def test_unknown_record_kind_rejected(self):
        st = make_state()
        st.journal.append([("x", 1, 2)])
        with pytest.raises(ValueError):
            st.rollback()


class TestComparison:
    def test_same_state_true(self):
        a, b = make_state(), make_state()
        for st in (a, b):
            st.pc = 4
            st.rf["R"][0] = 1
            st.mem.write_u8(0x10, 9)
        assert a.same_architectural_state(b)

    def test_differs_on_register(self):
        a, b = make_state(), make_state()
        a.rf["R"][5] = 1
        assert not a.same_architectural_state(b)

    def test_differs_on_memory(self):
        a, b = make_state(), make_state()
        a.mem.write_u8(0, 1)
        assert not a.same_architectural_state(b)

    def test_zero_page_allocation_does_not_differ(self):
        a, b = make_state(), make_state()
        a.mem.write_u8(0, 0)  # allocates an all-zero page
        assert a.same_architectural_state(b)
