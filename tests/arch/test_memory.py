"""Unit tests for the sparse paged guest memory."""

import pytest

from repro.arch.memory import PAGE_SIZE, Memory


class TestScalarAccess:
    def test_read_unwritten_is_zero(self):
        mem = Memory()
        assert mem.read_u64(0x1234) == 0
        assert mem.read_u8(0) == 0

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_write_read_roundtrip(self, size):
        mem = Memory()
        value = 0xA5A5A5A5A5A5A5A5 & ((1 << (size * 8)) - 1)
        mem.write(0x4000, size, value)
        assert mem.read(0x4000, size) == value

    def test_write_truncates_to_size(self):
        mem = Memory()
        mem.write(0x10, 2, 0x12345678)
        assert mem.read(0x10, 2) == 0x5678

    def test_little_endian_layout(self):
        mem = Memory("little")
        mem.write_u32(0x100, 0x11223344)
        assert mem.read_u8(0x100) == 0x44
        assert mem.read_u8(0x103) == 0x11

    def test_big_endian_layout(self):
        mem = Memory("big")
        mem.write_u32(0x100, 0x11223344)
        assert mem.read_u8(0x100) == 0x11
        assert mem.read_u8(0x103) == 0x44

    def test_bad_endian_rejected(self):
        with pytest.raises(ValueError):
            Memory("middle")

    def test_page_crossing_access(self):
        mem = Memory()
        addr = PAGE_SIZE - 2  # 4-byte access straddling a page boundary
        mem.write_u32(addr, 0xDEADBEEF)
        assert mem.read_u32(addr) == 0xDEADBEEF
        assert mem.pages_allocated() == 2

    def test_page_crossing_read_of_unwritten_page(self):
        mem = Memory()
        mem.write_u8(PAGE_SIZE - 1, 0xFF)
        assert mem.read_u16(PAGE_SIZE - 1) == 0x00FF

    def test_adjacent_writes_do_not_interfere(self):
        mem = Memory()
        mem.write_u32(0x200, 0xAAAAAAAA)
        mem.write_u32(0x204, 0xBBBBBBBB)
        assert mem.read_u32(0x200) == 0xAAAAAAAA
        assert mem.read_u32(0x204) == 0xBBBBBBBB


class TestBulkAccess:
    def test_bytes_roundtrip(self):
        mem = Memory()
        data = bytes(range(256))
        mem.write_bytes(0x8000, data)
        assert mem.read_bytes(0x8000, 256) == data

    def test_bytes_roundtrip_across_pages(self):
        mem = Memory()
        data = bytes((i * 7) & 0xFF for i in range(PAGE_SIZE + 100))
        mem.write_bytes(PAGE_SIZE - 50, data)
        assert mem.read_bytes(PAGE_SIZE - 50, len(data)) == data

    def test_read_bytes_unwritten_region(self):
        mem = Memory()
        assert mem.read_bytes(0x9999, 10) == b"\x00" * 10

    def test_read_cstring(self):
        mem = Memory()
        mem.write_bytes(0x300, b"hello\x00world")
        assert mem.read_cstring(0x300) == b"hello"

    def test_read_cstring_limit(self):
        mem = Memory()
        mem.write_bytes(0x300, b"a" * 64)
        assert mem.read_cstring(0x300, limit=8) == b"a" * 8

    def test_read_cstring_crosses_page_boundary(self):
        mem = Memory()
        start = PAGE_SIZE - 3
        mem.write_bytes(start, b"abcdef\x00")
        assert mem.read_cstring(start) == b"abcdef"

    def test_read_cstring_nul_at_page_boundary(self):
        mem = Memory()
        start = PAGE_SIZE - 4
        mem.write_bytes(start, b"abcd\x00")
        assert mem.read_cstring(start) == b"abcd"

    def test_read_cstring_ends_at_unmapped_page(self):
        # The string runs off the end of its (only) mapped page; the
        # demand-zero next page supplies the terminator.
        mem = Memory()
        mem.write_bytes(PAGE_SIZE - 2, b"xy")
        assert mem.read_cstring(PAGE_SIZE - 2) == b"xy"

    def test_read_cstring_limit_across_pages(self):
        mem = Memory()
        start = PAGE_SIZE - 5
        mem.write_bytes(start, b"b" * 32)
        assert mem.read_cstring(start, limit=12) == b"b" * 12


class TestSnapshots:
    def test_snapshot_restore(self):
        mem = Memory()
        mem.write_u64(0x100, 123)
        snap = mem.snapshot()
        mem.write_u64(0x100, 456)
        mem.write_u64(0x900, 789)
        mem.restore(snap)
        assert mem.read_u64(0x100) == 123
        assert mem.read_u64(0x900) == 0

    def test_snapshot_is_deep(self):
        mem = Memory()
        mem.write_u8(0, 1)
        snap = mem.snapshot()
        mem.write_u8(0, 2)
        assert snap[0][0] == 1

    def test_clear(self):
        mem = Memory()
        mem.write_u64(0x100, 5)
        mem.clear()
        assert mem.read_u64(0x100) == 0
        assert mem.pages_allocated() == 0

    def test_iter_nonzero_pages_skips_zero_pages(self):
        mem = Memory()
        mem.write_u8(0x10, 7)
        mem.write_u8(PAGE_SIZE + 5, 0)  # allocates page, stays zero
        pages = dict(mem.iter_nonzero_pages())
        assert list(pages) == [0]
