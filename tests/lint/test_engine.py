"""Engine-level tests: suppressions, renderers, exit codes, strict gate."""

import json

import pytest

from repro.adl import load_isa_source
from repro.lint.core import CODES, Severity
from repro.lint.render import render_json, render_text
from repro.lint.runner import lint_source
from repro.synth import synthesize
from repro.synth.errors import SynthesisError

from tests.lint.test_codes import BASE


class TestRegistry:
    def test_all_codes_have_titles_and_severities(self):
        assert len(CODES) >= 10
        for code, info in CODES.items():
            assert code.startswith("LIS") and len(code) == 6
            assert info.title
            assert isinstance(info.severity, Severity)


class TestSuppressions:
    def test_inline_comment_suppresses(self):
        source = BASE.replace("field v u64;", "field v u64; // lint: disable=LIS011")
        result = lint_source(source, "<s>")
        lis011 = [d for d in result.diagnostics if d.code == "LIS011"]
        assert lis011 and all(d.suppressed for d in lis011)
        assert not any(d.code == "LIS011" for d in result.warnings)

    def test_suppressed_error_does_not_fail(self):
        source = (
            BASE
            + "instruction SYS format f { match opcode == 5; }\n"
            + "action SYS@evaluate = %{ __syscall()  # lint: disable=LIS030 %}\n"
            + "buildset sp { speculation on; "
            + "entrypoint go = translate, fetch, decode, read_s1, evaluate; }\n"
        )
        result = lint_source(source, "<s>")
        assert not any(d.code == "LIS030" for d in result.errors)
        assert any(d.code == "LIS030" for d in result.suppressed)
        assert result.exit_code == 0

    def test_unrelated_code_not_suppressed(self):
        source = BASE.replace("field v u64;", "field v u64; // lint: disable=LIS010")
        result = lint_source(source, "<s>")
        assert any(d.code == "LIS011" for d in result.warnings)

    def test_multiple_codes_one_comment(self):
        source = BASE.replace(
            "field v u64;", "field v u64; // lint: disable=LIS010, LIS011"
        )
        result = lint_source(source, "<s>")
        assert not any(d.code == "LIS011" for d in result.warnings)


class TestExitCode:
    def test_error_fails(self):
        result = lint_source(BASE + "buildset b { entrypoint go = zz; }\n", "<s>")
        assert result.errors
        assert result.exit_code == 1

    def test_warnings_do_not_fail(self):
        result = lint_source(BASE, "<s>")
        assert result.warnings and not result.errors
        assert result.exit_code == 0


class TestRenderers:
    def test_json_parseable_and_shaped(self):
        result = lint_source(BASE, "<s>")
        doc = json.loads(render_json(result))
        assert doc["version"] == 1
        assert doc["paths"] == ["<s>"]
        assert doc["exit_code"] == 0
        assert doc["counts"]["warnings"] == len(result.warnings)
        for entry in doc["diagnostics"]:
            assert entry["code"] in CODES
            assert entry["severity"] in ("error", "warning", "info")
            assert entry["file"] == "<s>"
            assert isinstance(entry["line"], int)

    def test_json_stable_across_runs(self):
        first = render_json(lint_source(BASE, "<s>"))
        second = render_json(lint_source(BASE, "<s>"))
        assert first == second

    def test_json_diagnostics_sorted(self):
        doc = json.loads(render_json(lint_source(BASE, "<s>")))
        keys = [(d["line"], d["code"]) for d in doc["diagnostics"]]
        assert keys == sorted(keys)

    def test_text_output(self):
        result = lint_source(BASE, "<s>")
        text = render_text(result)
        assert "LIS011" in text
        assert "<s>:" in text
        assert "warning(s)" in text

    def test_text_hides_suppressed_by_default(self):
        source = BASE.replace("field v u64;", "field v u64; // lint: disable=LIS011")
        result = lint_source(source, "<s>")
        assert "LIS011" not in render_text(result)
        assert "LIS011" in render_text(result, show_suppressed=True)


class TestStrictGate:
    def test_strict_refuses_on_lint_error(self):
        spec = load_isa_source(
            BASE
            + "instruction SYS format f { match opcode == 5; }\n"
            + "action SYS@evaluate = %{ __syscall() %}\n"
            + "buildset sp { speculation on; "
            + "entrypoint go = translate, fetch, decode, read_s1, evaluate; }\n"
        )
        with pytest.raises(SynthesisError, match="LIS030"):
            synthesize(spec, "sp", strict=True)

    def test_strict_passes_on_clean_spec(self):
        # BASE only has warnings/infos; strict gates on errors.
        generated = synthesize(load_isa_source(BASE), "bs", strict=True)
        assert generated.buildset_name == "bs"
