"""Unit tests for decode-pattern set arithmetic.

Regression coverage for multi-pattern instructions: the conflict walk
must compare every (alternative, alternative) pair against the original
patterns — an early overlap between one pair must not perturb the
comparisons of the remaining alternatives.
"""

from types import SimpleNamespace

from repro.lint.decode import (
    classify_overlap,
    find_pattern_conflicts,
    patterns_intersect,
)


def instr(name, *patterns):
    return SimpleNamespace(name=name, patterns=tuple(patterns), loc=None)


class TestClassifyOverlap:
    def test_disjoint(self):
        assert classify_overlap((0xFF, 0x12), (0xFF, 0x13)) is None

    def test_identical(self):
        assert classify_overlap((0xFF, 0x12), (0xFF, 0x12)) == "identical"

    def test_specializes_both_directions(self):
        assert classify_overlap((0x0F, 0x02), (0xFF, 0x12)) == "b_specializes"
        assert classify_overlap((0xFF, 0x12), (0x0F, 0x02)) == "a_specializes"

    def test_ambiguous(self):
        # Disjoint match bits, so every shared word matches both but
        # neither match set contains the other.
        assert classify_overlap((0x00F, 0x002), (0xFF0, 0x120)) == "ambiguous"


class TestFindPatternConflicts:
    def test_ambiguous_after_specializing_alternative_not_missed(self):
        # second's first alternative specializes first's pattern; its
        # second alternative is ambiguous against that same pattern.  A
        # walk that rebinds the loop pattern after the first overlap
        # would compare (0xFF, 0x12) vs (0xFF0, 0x120) — disjoint — and
        # silently miss the ambiguity.
        first = instr("first", (0x0F, 0x02))
        second = instr("second", (0xFF, 0x12), (0xFF0, 0x120))
        assert patterns_intersect((0x0F, 0x02), (0xFF0, 0x120))
        assert not patterns_intersect((0xFF, 0x12), (0xFF0, 0x120))
        kinds = {c.kind for c in find_pattern_conflicts([first, second])}
        assert kinds == {"specializes", "ambiguous"}

    def test_ambiguous_conflict_reports_original_patterns(self):
        first = instr("first", (0x0F, 0x02))
        second = instr("second", (0xFF, 0x12), (0xFF0, 0x120))
        conflicts = find_pattern_conflicts([first, second])
        ambiguous = [c for c in conflicts if c.kind == "ambiguous"]
        assert len(ambiguous) == 1
        assert ambiguous[0].pattern_a == (0x0F, 0x02)
        assert ambiguous[0].pattern_b == (0xFF0, 0x120)

    def test_within_instruction_alternatives_never_conflict(self):
        # second's alternatives overlap each other (legal: alternatives
        # are OR-ed).  A walk that rebinds the loop pattern would compare
        # second's alternatives against each other and misreport their
        # overlap as an "identical" conflict between the two
        # instructions.
        first = instr("first", (0x0F, 0x02))
        second = instr("second", (0xFF, 0x12), (0xFF, 0x12))
        conflicts = find_pattern_conflicts([first, second])
        assert [c.kind for c in conflicts] == ["specializes"]
        assert conflicts[0].a == "second"
        assert conflicts[0].b == "first"

    def test_specializes_orientation(self):
        # The more specific instruction is reported as ``a`` regardless
        # of declaration order.
        gen = instr("gen", (0x0F, 0x02))
        spc = instr("spc", (0xFF, 0x12))
        for order in ([gen, spc], [spc, gen]):
            (conflict,) = find_pattern_conflicts(order)
            assert conflict.kind == "specializes"
            assert conflict.a == "spc"
            assert conflict.b == "gen"
            assert conflict.pattern_a == (0xFF, 0x12)
            assert conflict.pattern_b == (0x0F, 0x02)
