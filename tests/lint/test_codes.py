"""One unit test per diagnostic code.

Each test lints a small inline ADL source that triggers exactly the
targeted defect and asserts the diagnostic's code, severity and source
location (file + line).
"""

from repro.lint.core import Severity
from repro.lint.runner import lint_source

FILENAME = "<case>"

# A clean-enough baseline: one instruction, one operand, one buildset.
# (It intentionally still triggers LIS004 — NOP covers one opcode of 64 —
# and LIS011 — v is written by read_s1 but consumed by nothing.)
BASE = """
isa mini;
endian little;
ilen 4;
regfile R 4 u64;
field v u64;
format f { opcode[31:26]; ra[25:21]; }
accessor R(n) {
  decode %{ index = n %}
  read %{ value = R[index] %}
  write %{ R[index] = value %}
}
operandname s1 source (decode, read_s1) = v;
actions translate, fetch, decode, read_s1, evaluate, writeback;
action *@translate = %{ phys_pc = pc %}
action *@fetch = %{ instr_bits = __fetch(phys_pc) %}
class alu;
operand alu s1 R(ra);
instruction NOP format f : alu { match opcode == 0x00; }
action NOP@evaluate = %{ pass %}
buildset bs {
  entrypoint go = translate, fetch, decode, read_s1, evaluate, writeback;
}
"""


def line_of(source: str, needle: str) -> int:
    for lineno, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"needle {needle!r} not in source")


def only(result, code):
    found = [d for d in result.diagnostics if d.code == code]
    assert found, f"expected a {code} diagnostic, got " + ", ".join(
        sorted({d.code for d in result.diagnostics})
    )
    return found


def assert_diag(source, code, severity, needle):
    """Lint ``source``; assert a ``code`` diagnostic on ``needle``'s line."""
    result = lint_source(source, FILENAME)
    found = only(result, code)
    expected_line = line_of(source, needle)
    located = [d for d in found if d.loc and d.loc.line == expected_line]
    assert located, (
        f"{code} found but not at line {expected_line}: "
        f"{[(d.loc.line if d.loc else None) for d in found]}"
    )
    diag = located[0]
    assert diag.severity is severity
    assert diag.loc.filename == FILENAME
    return diag


def test_lis000_analysis_failure():
    source = BASE + "field v u64; // dup\n"
    assert_diag(source, "LIS000", Severity.ERROR, "// dup")


def test_lis001_identical_patterns():
    source = BASE + "instruction DUP format f { match opcode == 0x00; }\n"
    assert_diag(source, "LIS001", Severity.ERROR, "instruction DUP")


def test_lis002_ambiguous_overlap():
    source = (
        BASE
        + "instruction A2 format f { match opcode == 1; }\n"
        + "instruction B2 format f { match ra == 2; }\n"
    )
    assert_diag(source, "LIS002", Severity.ERROR, "instruction B2")


def test_lis003_specialization():
    source = (
        BASE
        + "instruction GEN format f { match opcode == 2; }\n"
        + "instruction SPC format f { match opcode == 2, ra == 1; }\n"
    )
    diag = assert_diag(source, "LIS003", Severity.WARNING, "instruction SPC")
    assert "'GEN'" in diag.message


def test_lis004_undecodable_encodings():
    # NOP matches 1 of the 64 distinguishable opcode values.
    diag = assert_diag(BASE, "LIS004", Severity.INFO, "format f {")
    assert "63 of 64" in diag.message


def test_lis005_unused_format():
    source = BASE + "format g { x[3:0]; }\n"
    assert_diag(source, "LIS005", Severity.WARNING, "format g")


def test_lis010_field_never_written():
    source = BASE + "field w u32;\n"
    assert_diag(source, "LIS010", Severity.WARNING, "field w")


def test_lis011_field_never_consumed():
    # v is written by read_s1's accessor code but read by nothing and
    # never explicitly shown.
    assert_diag(BASE, "LIS011", Severity.WARNING, "field v")


def test_lis012_read_before_write():
    source = (
        BASE
        + "field w u32;\n"
        + "instruction RBW format f { match opcode == 4; }\n"
        + "action RBW@evaluate = %{ v = w + 1 %}\n"
        + "action RBW@writeback = %{ w = v %}\n"
    )
    diag = assert_diag(source, "LIS012", Severity.WARNING, "action RBW@evaluate")
    assert "'w'" in diag.message


def test_lis013_dead_action_outputs():
    # The only buildset hides everything, and nothing reads v.
    source = BASE.replace(
        "  entrypoint go =",
        "  visibility hide all;\n  entrypoint go =",
    ) + "action NOP@evaluate = %{ v = 7 %}\n"
    diag = assert_diag(
        source, "LIS013", Severity.WARNING, "action NOP@evaluate = %{ v = 7 %}"
    )
    assert "'evaluate'" in diag.message


def test_lis020_unknown_entrypoint_action():
    source = BASE + "buildset b2 { entrypoint go = nosuch; }\n"
    assert_diag(source, "LIS020", Severity.ERROR, "nosuch")


def test_lis021_unreachable_action():
    source = BASE.replace(
        "actions translate, fetch, decode, read_s1, evaluate, writeback;",
        "actions translate, fetch, decode, read_s1, evaluate, writeback, spare;",
    ) + "action NOP@spare = %{ pass %}\n"
    diag = assert_diag(source, "LIS021", Severity.WARNING, "action NOP@spare")
    assert "'spare'" in diag.message


def test_lis022_visible_field_never_computed():
    source = (
        BASE
        + "field q u32;\n"
        + "buildset b2 { visibility hide all; visibility show q; "
        + "entrypoint go = translate; }\n"
    )
    assert_diag(source, "LIS022", Severity.WARNING, "buildset b2")


def test_lis023_unknown_visibility_field():
    source = BASE + "buildset b3 { visibility show zz; entrypoint go = translate; }\n"
    assert_diag(source, "LIS023", Severity.ERROR, "zz")


def test_lis024_partial_decode_visibility():
    source = (
        BASE.replace(
            "actions translate, fetch, decode, read_s1, evaluate, writeback;",
            "actions translate, fetch, decode, read_s1, read_s2, evaluate, "
            "writeback;",
        )
        + "field v2 u32;\n"
        + "operandname s2 source (decode, read_s2) = v2;\n"
        + "buildset b4 { visibility hide all; visibility show s1_id; "
        + "entrypoint go = translate, fetch, decode, read_s1, evaluate; }\n"
    )
    diag = assert_diag(source, "LIS024", Severity.WARNING, "buildset b4")
    assert "s2_id" in diag.message


def test_lis030_syscall_under_speculation():
    source = (
        BASE
        + "instruction SYS format f { match opcode == 5; }\n"
        + "action SYS@evaluate = %{ __syscall() %}\n"
        + "buildset sp { speculation on; "
        + "entrypoint go = translate, fetch, decode, read_s1, evaluate; }\n"
    )
    diag = assert_diag(source, "LIS030", Severity.ERROR, "action SYS@evaluate")
    assert "__syscall" in diag.message
    assert "sp" in diag.message


def test_lis031_unjournaled_container_store():
    source = (
        BASE
        + "sreg y u32;\n"
        + "instruction STY format f { match opcode == 6; }\n"
        + "action STY@evaluate = %{ y[0] = 1 %}\n"
        + "buildset sp { speculation on; "
        + "entrypoint go = translate, fetch, decode, read_s1, evaluate; }\n"
    )
    diag = assert_diag(source, "LIS031", Severity.ERROR, "action STY@evaluate")
    assert "'y'" in diag.message


def test_lis040_unknown_call_in_accessor():
    source = (
        BASE
        + "accessor Bad(n) { decode %{ index = n %} "
        + "read %{ value = mystery(n) %} write %{ pass %} }\n"
    )
    diag = assert_diag(source, "LIS040", Severity.ERROR, "accessor Bad")
    assert "'mystery'" in diag.message


def test_lis041_effect_in_decode_accessor():
    source = (
        BASE
        + "accessor ED(n) { decode %{ __mem_write(n, 4, 0) %} "
        + "read %{ value = 0 %} write %{ pass %} }\n"
    )
    assert_diag(source, "LIS041", Severity.ERROR, "accessor ED")


def test_lis042_shadowed_builtin():
    source = (
        BASE
        + "instruction SH format f { match opcode == 7; }\n"
        + "action SH@evaluate = %{ sext = 1 %}\n"
    )
    diag = assert_diag(source, "LIS042", Severity.WARNING, "action SH@evaluate")
    assert "'sext'" in diag.message


def test_lis043_unused_accessor():
    source = (
        BASE
        + "accessor Unused(n) { decode %{ index = n %} "
        + "read %{ value = R[index] %} write %{ pass %} }\n"
    )
    assert_diag(source, "LIS043", Severity.WARNING, "accessor Unused")
