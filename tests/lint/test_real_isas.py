"""The shipped specifications must lint clean (acceptance criterion)."""

import json

import pytest

from repro.cli import main
from repro.isa.base import available_isas, get_bundle
from repro.lint.render import render_json
from repro.lint.runner import lint_paths


@pytest.mark.parametrize("isa", available_isas())
def test_isa_has_no_unsuppressed_errors(isa):
    paths = [str(p) for p in get_bundle(isa).description_paths()]
    result = lint_paths(paths)
    assert result.errors == [], render_json(result)
    assert result.exit_code == 0


@pytest.mark.parametrize("isa", available_isas())
def test_isa_has_no_unsuppressed_warnings(isa):
    paths = [str(p) for p in get_bundle(isa).description_paths()]
    result = lint_paths(paths)
    assert result.warnings == [], render_json(result)


@pytest.mark.parametrize("isa", available_isas())
def test_os_overlay_suppresses_syscall_speculation(isa):
    """Every ISA carries exactly the intentional LIS030 suppression."""
    paths = [str(p) for p in get_bundle(isa).description_paths()]
    result = lint_paths(paths)
    assert [d.code for d in result.suppressed] == ["LIS030"]


def test_cli_lint_text(capsys):
    assert main(["lint", "alpha"]) == 0
    out = capsys.readouterr().out
    assert "error(s)" in out


def test_cli_lint_json(capsys):
    assert main(["lint", "alpha", "--format=json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["exit_code"] == 0
    assert doc["counts"]["errors"] == 0
