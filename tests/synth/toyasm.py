"""Tiny hand assembler for the toy test ISA."""

from repro.arch.faults import ExitProgram


def iform(op, ra, rb, imm):
    return (op << 26) | (ra << 21) | (rb << 16) | (imm & 0xFFFF)


def rform(op, ra, rb, rc=0):
    return (op << 26) | (ra << 21) | (rb << 16) | (rc << 11)


def addi(rd, rs, imm):
    return iform(0x10, rs, rd, imm)


def add(rd, ra, rb):
    return rform(0x01, ra, rb, rd)


def sub(rd, ra, rb):
    return rform(0x02, ra, rb, rd)


def mul(rd, ra, rb):
    return rform(0x08, ra, rb, rd)


def ldw(rd, ra, imm):
    return iform(0x12, ra, rd, imm)


def stw(rs, ra, imm):
    return iform(0x13, ra, rs, imm)


def beq(ra, rb, disp):
    return iform(0x18, ra, rb, disp)


def bne(ra, rb, disp):
    return iform(0x19, ra, rb, disp)


def jal(disp):
    return iform(0x1A, 0, 0, disp)


def jr(ra):
    return rform(0x1B, ra, 0, 0)


def sys():
    return rform(0x3F, 0, 0, 0)


def exit_handler(result_reg=3):
    """Syscall handler raising ExitProgram with a register's value."""

    def handler(state, di):
        raise ExitProgram(int(state.rf["R"][result_reg]))

    return handler


def load_words(state, words, base=0):
    for index, word in enumerate(words):
        state.mem.write_u32(base + index * 4, word)


# A program exercising ALU ops, memory, and a loop:
# computes sum(1..10) into R3, stores it at 0x200, exits with it.
SUM_LOOP = [
    addi(1, 0, 10),     # 0x00: R1 = 10 (counter)
    addi(3, 0, 0),      # 0x04: R3 = 0 (sum)
    add(3, 3, 1),       # 0x08: loop: R3 += R1
    addi(1, 1, -1),     # 0x0c: R1 -= 1
    bne(1, 0, -3),      # 0x10: if R1 != 0 goto loop (0x08)
    stw(3, 0, 0x200),   # 0x14: mem[0x200] = R3
    sys(),              # 0x18: exit(R3)
]
SUM_LOOP_RESULT = 55
SUM_LOOP_INSTRS = 2 + 3 * 10 + 2  # init + 10 iterations + store + sys
