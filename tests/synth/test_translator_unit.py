"""Unit tests for the block translator's register cache and block shaping."""

import ast

import pytest

from repro.synth import SynthOptions, synthesize
from repro.synth.translator import RegisterCache

from tests.synth import toyasm


def parse(source):
    return ast.parse(source).body


def render(stmts):
    return "\n".join(ast.unparse(s) for s in stmts)


class TestRegisterCache:
    def make(self):
        return RegisterCache(frozenset({"R"}))

    def test_first_read_inserts_load(self):
        cache = self.make()
        out = cache.transform(parse("x = R[3] + 1"))
        assert render(out) == "__R_R_3 = R[3]\nx = __R_R_3 + 1"

    def test_second_read_reuses_local(self):
        cache = self.make()
        out = cache.transform(parse("x = R[3]\ny = R[3]"))
        assert render(out).count("R[3]") == 1

    def test_write_dirties_without_store(self):
        cache = self.make()
        out = cache.transform(parse("R[4] = v"))
        assert render(out) == "__R_R_4 = v"
        assert ("R", 4) in cache.dirty

    def test_flush_emits_stores_for_dirty_only(self):
        cache = self.make()
        cache.transform(parse("x = R[1]\nR[2] = x"))
        flush = cache.flush()
        assert render(flush) == "R[2] = __R_R_2"
        assert not cache.dirty

    def test_read_after_write_sees_new_value(self):
        cache = self.make()
        out = cache.transform(parse("R[5] = a\nz = R[5]"))
        assert render(out) == "__R_R_5 = a\nz = __R_R_5"

    def test_nonconstant_read_flushes_dirty(self):
        cache = self.make()
        out = cache.transform(parse("R[2] = a\nx = R[i]"))
        text = render(out)
        assert "R[2] = __R_R_2" in text  # flushed before dynamic access
        assert "x = R[i]" in text

    def test_nonconstant_write_invalidates(self):
        cache = self.make()
        cache.transform(parse("x = R[1]"))
        cache.transform(parse("R[j] = 5"))
        assert ("R", 1) not in cache.loaded

    def test_if_hoists_loads_and_marks_dirty(self):
        cache = self.make()
        out = cache.transform(
            parse("if c:\n    R[6] = R[7] + 1")
        )
        text = render(out)
        # loads hoisted above the if so both paths have the locals
        assert text.index("__R_R_7 = R[7]") < text.index("if c:")
        assert text.index("__R_R_6 = R[6]") < text.index("if c:")
        assert ("R", 6) in cache.dirty

    def test_non_regfile_subscripts_untouched(self):
        cache = self.make()
        out = cache.transform(parse("x = other[3]"))
        assert render(out) == "x = other[3]"


class TestBlockShaping:
    @pytest.fixture(scope="class")
    def gen(self, toy_spec):
        return synthesize(toy_spec, "block_min")

    def test_fallthrough_blocks_chain_across_straightline_code(self, gen):
        sim = gen.make()
        toyasm.load_words(
            sim.state,
            [toyasm.addi(1, 0, 1)] * 5 + [toyasm.beq(0, 0, 0)],
        )
        sim.do_block(sim.di)
        assert sim.di.count == 6  # all six in one translated block

    def test_block_reuse_across_loop_iterations(self, gen):
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)
        # the loop body block was translated once, then replayed
        assert len(sim._cache) <= 4

    def test_constant_folding_embeds_immediates(self, gen):
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 42), toyasm.beq(0, 0, 0)])
        source = sim.block_source(0)
        assert "42" in source
        assert "instr_bits" not in source  # decode fully resolved

    def test_taken_branch_target_constant(self, gen):
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.jal(3)])
        source = sim.block_source(0)
        # JAL target = 4 + 3*4 = 16, folded to a constant next_pc; the
        # link-register write survives folding (it is architectural).
        assert "next_pc = 16" in source
        assert "lr = 4" in source
        assert "__state.sr['lr'] = lr" in source

    def test_syscall_ends_block_and_flushes_first(self, gen, toy_spec):
        sim = gen.make()
        toyasm.load_words(
            sim.state, [toyasm.addi(1, 0, 5), toyasm.sys(), toyasm.addi(2, 0, 6)]
        )
        source = sim.block_source(0)
        body = source.split("_do_syscall")[0]
        assert "R[1] = " in body  # dirty register flushed before the trap
        assert "di.count = 2" in source  # block ends at the syscall
