"""Unit tests for liveness-based dead-code elimination."""

import ast

from repro.adl.snippets import parse_snippet
from repro.synth.dataflow import (
    TaggedStmt,
    assigned_names,
    eliminate_dead,
    read_names,
)


def tag(source, action="a"):
    return [TaggedStmt(action, s) for s in parse_snippet(source)]


def render(stmts):
    return "\n".join(ast.unparse(t.stmt) for t in stmts)


class TestEliminateDead:
    def test_keeps_live_chain(self):
        stmts = tag("\nx = a + 1\ny = x * 2\n")
        kept = eliminate_dead(stmts, {"y"})
        assert render(kept) == "x = a + 1\ny = x * 2"

    def test_drops_dead_tail(self):
        stmts = tag("\nx = a + 1\ny = x * 2\n")
        kept = eliminate_dead(stmts, {"x"})
        assert render(kept) == "x = a + 1"

    def test_drops_fully_dead(self):
        stmts = tag("info = a + b")
        assert eliminate_dead(stmts, set()) == []

    def test_anchored_memory_write_survives(self):
        stmts = tag("\nea = base + 4\n__mem_write(ea, 8, v)\n")
        kept = eliminate_dead(stmts, set())
        assert "ea = base + 4" in render(kept)
        assert "__mem_write" in render(kept)

    def test_anchored_regfile_store_survives(self):
        stmts = tag("\nd = a + b\nR[3] = d\n")
        kept = eliminate_dead(stmts, set())
        assert len(kept) == 2

    def test_unknown_call_is_anchored(self):
        stmts = tag("x = mystery()")
        assert len(eliminate_dead(stmts, set())) == 1

    def test_helper_call_not_anchored_when_pure(self):
        stmts = tag("x = my_helper(a)")
        assert eliminate_dead(stmts, set(), frozenset({"my_helper"})) == []

    def test_kill_releases_earlier_def(self):
        stmts = tag("\nx = expensive\nx = 5\ny = x\n")
        kept = eliminate_dead(stmts, {"y"})
        assert render(kept) == "x = 5\ny = x"

    def test_conditional_write_does_not_kill(self):
        stmts = tag("\nnext_pc = pc + 4\nif t:\n    next_pc = target\n")
        kept = eliminate_dead(stmts, {"next_pc"})
        # the default must survive because the overwrite is conditional
        assert "next_pc = pc + 4" in render(kept)
        assert "if t:" in render(kept)

    def test_dead_code_inside_if_removed(self):
        stmts = tag("\nif t:\n    info = a + b\n    R[1] = c\n")
        kept = eliminate_dead(stmts, set())
        out = render(kept)
        assert "R[1] = c" in out
        assert "info" not in out

    def test_fully_dead_if_removed(self):
        stmts = tag("\nif t:\n    info = a + b\n")
        assert eliminate_dead(stmts, set()) == []

    def test_if_with_live_else_branch(self):
        stmts = tag("\nif t:\n    x = 1\nelse:\n    x = 2\ny = x\n")
        kept = eliminate_dead(stmts, {"y"})
        out = render(kept)
        assert "x = 1" in out and "x = 2" in out

    def test_if_test_reads_kept_live(self):
        stmts = tag("\nt = a == b\nif t:\n    R[1] = 5\n")
        kept = eliminate_dead(stmts, set())
        assert "t = a == b" in render(kept)

    def test_pass_statements_dropped(self):
        stmts = tag("pass")
        assert eliminate_dead(stmts, set()) == []

    def test_augassign_keeps_self_dependence(self):
        stmts = tag("\nx = 1\nx += y\nz = x\n")
        kept = eliminate_dead(stmts, {"z"})
        assert render(kept) == "x = 1\nx += y\nz = x"


class TestHelpers:
    def test_assigned_names(self):
        stmts = tag("\na = 1\nif t:\n    b = 2\n")
        assert assigned_names(stmts) == {"a", "b"}

    def test_read_names(self):
        stmts = tag("\na = x\nb = y + a\n")
        assert read_names(stmts) == {"x", "y", "a"}
