"""Tests for the interpreted execution style (footnote 5 baseline)."""

import pytest

from repro.synth import SynthesisError, synthesize
from repro.synth.interp import InterpretedSimulator

from tests.synth import toyasm


class TestInterpreter:
    def test_runs_sum_loop(self, toy_spec):
        sim = InterpretedSimulator(
            toy_spec, "one_min", syscall_handler=toyasm.exit_handler()
        )
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        result = sim.run(10_000)
        assert result.exited
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        assert result.executed == toyasm.SUM_LOOP_INSTRS

    def test_matches_synthesized_state(self, toy_spec):
        interp = InterpretedSimulator(
            toy_spec, "one_all", syscall_handler=toyasm.exit_handler()
        )
        toyasm.load_words(interp.state, toyasm.SUM_LOOP)
        interp.run(10_000)

        gen = synthesize(toy_spec, "one_all")
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)

        assert interp.state.rf == sim.state.rf
        assert dict(interp.state.mem.iter_nonzero_pages()) == dict(
            sim.state.mem.iter_nonzero_pages()
        )

    def test_visible_fields_reported(self, toy_spec):
        sim = InterpretedSimulator(toy_spec, "one_all")
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 42)])
        sim.step()
        assert sim.di.dest_val == 42
        assert sim.di.next_pc == 4

    def test_rejects_non_one_buildsets(self, toy_spec):
        with pytest.raises(SynthesisError):
            InterpretedSimulator(toy_spec, "step_all")
        with pytest.raises(SynthesisError):
            InterpretedSimulator(toy_spec, "block_min")

    def test_interpreter_is_slower_than_synthesized(self, toy_spec):
        """Sanity: exec-per-instruction should not beat compiled bodies."""
        import time

        words = toyasm.SUM_LOOP
        interp = InterpretedSimulator(
            toy_spec, "one_min", syscall_handler=toyasm.exit_handler()
        )
        toyasm.load_words(interp.state, words)
        gen = synthesize(toy_spec, "one_min")
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, words)

        def timed(target, reset):
            best = float("inf")
            for _ in range(3):
                reset()
                start = time.perf_counter()
                target.run(10_000)
                best = min(best, time.perf_counter() - start)
            return best

        def reset_interp():
            interp.state.pc = 0
            interp.state.rf["R"][:] = [0] * 32

        def reset_sim():
            sim.state.pc = 0
            sim.state.rf["R"][:] = [0] * 32

        assert timed(interp, reset_interp) > timed(sim, reset_sim) * 0.8
