"""The paper's Figures 2-4, reproduced as generated-code structure.

Figure 2: the dynamic-instruction structure whose fields define the
informational level of detail.  Figure 3: an interface function executing
a whole instruction by calling the high-detail pieces.  Figure 4: the
less-informational variant where hidden values become locals.  Our
synthesizer *generates* these shapes; the tests pin them down.
"""

import ast

import pytest

from repro.synth import SynthOptions, synthesize


@pytest.fixture(scope="module")
def one_all(toy_spec):
    return synthesize(toy_spec, "one_all")


@pytest.fixture(scope="module")
def one_min(toy_spec):
    return synthesize(toy_spec, "one_min")


def body_of(generated, instr_name):
    spec = generated.plan.spec
    index = next(
        i for i, ins in enumerate(spec.instructions) if ins.name == instr_name
    )
    module = ast.parse(generated.source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef) and node.name == f"_b_{index}":
            return node
    raise AssertionError(f"no body for {instr_name}")


def assigned_locals(fn):
    out = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
    return out


def attribute_stores(fn):
    out = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "di"
                ):
                    out.add(target.attr)
    return out


class TestFigure2DynamicInstructionStructure:
    """Fields of the record define the informational detail level."""

    def test_all_detail_record_carries_operands_and_intermediates(self, one_all):
        slots = set(one_all.di_class.__slots__)
        # Figure 2's examples: source operands, destination, effective addr
        assert {"src1_val", "src2_val", "dest_val", "effective_addr"} <= slots

    def test_min_detail_record_is_minimal(self, one_min):
        slots = set(one_min.di_class.__slots__)
        assert {"pc", "phys_pc", "instr_bits", "next_pc", "fault"} <= slots
        assert "src1_val" not in slots
        assert "effective_addr" not in slots


class TestFigure3OneCallPerInstruction:
    """do_in_one performs every step of one instruction in one call."""

    def test_entry_dispatches_to_specialized_body(self, one_all):
        module = ast.parse(one_all.source)
        entry = next(
            node
            for node in module.body
            if isinstance(node, ast.FunctionDef) and node.name == "do_in_one"
        )
        source = ast.unparse(entry)
        assert "_B[__op](self, di" in source  # decode-dispatched body
        assert "IllegalInstruction" in source

    def test_body_contains_all_semantic_steps_inline(self, one_all):
        fn = body_of(one_all, "LDW")
        text = ast.unparse(fn)
        # operand decode, read, effective address, memory access, writeback
        assert "src1_id" in text
        assert "effective_addr = " in text
        assert "__mem.read(effective_addr" in text
        assert "R[dest1_id] = dest_val" in text
        assert "__state.pc = next_pc" in text


class TestFigure4HiddenFieldsBecomeLocals:
    """Less informational detail: same semantics, locals not record fields."""

    def test_min_body_computes_into_locals_only(self, one_min):
        fn = body_of(one_min, "LDW")
        # effective_addr still computed (semantically needed) but as a local
        assert "effective_addr" in assigned_locals(fn)
        assert "effective_addr" not in attribute_stores(fn)

    def test_all_body_stores_to_record(self, one_all):
        fn = body_of(one_all, "LDW")
        stores = attribute_stores(fn)
        assert {"effective_addr", "src1_val", "dest_val"} <= stores

    def test_min_and_all_share_semantic_core(self, one_all, one_min):
        """The single specification: identical semantics, different
        interface plumbing."""
        semantic = "dest_val = __mem.read(effective_addr, 8)"
        assert semantic in ast.unparse(body_of(one_all, "LDW"))
        assert semantic in ast.unparse(body_of(one_min, "LDW"))

    def test_information_only_work_eliminated_at_min(self, one_all, one_min):
        """JR never uses src2; at Min the read disappears entirely."""
        assert "src2_val" in ast.unparse(body_of(one_all, "JR"))
        assert "src2_val" not in ast.unparse(body_of(one_min, "JR"))


class TestStepDetailShape:
    def test_seven_entrypoints_generated(self, toy_spec):
        generated = synthesize(toy_spec, "step_all")
        assert len(generated.entry_names) == 7
        module = ast.parse(generated.source)
        names = {
            node.name for node in module.body
            if isinstance(node, ast.FunctionDef)
        }
        assert set(generated.entry_names) <= names

    def test_values_cross_steps_through_the_record(self, toy_spec):
        generated = synthesize(toy_spec, "step_all")
        # the memory step of LDW loads effective_addr computed earlier
        spec = generated.plan.spec
        index = next(
            i for i, ins in enumerate(spec.instructions) if ins.name == "LDW"
        )
        memory_step = generated.source.split(f"def _sb_4_{index}(")[1].split(
            "\ndef "
        )[0]
        assert "effective_addr = di.effective_addr" in memory_step


class TestSpeculationShape:
    def test_every_instruction_journals_exactly_once(self, toy_spec):
        generated = synthesize(toy_spec, "one_all_spec")
        module = ast.parse(generated.source)
        bodies = [
            node for node in module.body
            if isinstance(node, ast.FunctionDef) and node.name.startswith("_b_")
        ]
        for fn in bodies:
            text = ast.unparse(fn)
            assert text.count("__state.journal.append(__j)") == 1
            assert "__j = [('p', pc)]" in text


class TestShapesValidatedByChecker:
    """The structural claims above, re-asserted through repro.check.

    The hand-written AST assertions in this file each pin one example;
    the checker passes generalize them into per-module guarantees
    (every hidden field a local, every journal exactly once, ...).
    Running them here ties the two layers together: if a shape test
    above starts failing, the corresponding CHK pass should fail too,
    and vice versa.
    """

    def test_figure2_and_4_partition_via_visibility_pass(self, one_all, one_min):
        from repro.check.model import ModuleModel
        from repro.check.passes import check_visibility

        for generated in (one_all, one_min):
            assert check_visibility(ModuleModel.build(generated)) == []

    def test_figure3_semantics_survive_dce_via_soundness_pass(self, one_all):
        from repro.check.model import ModuleModel
        from repro.check.passes import check_dce

        assert check_dce(ModuleModel.build(one_all)) == []

    def test_speculation_journal_shape_via_coverage_pass(self, toy_spec):
        from repro.check.model import ModuleModel
        from repro.check.passes import check_speculation

        generated = synthesize(toy_spec, "one_all_spec")
        assert check_speculation(ModuleModel.build(generated)) == []

    def test_detail_ladder_via_monotonicity_pass(self, toy_spec):
        from repro.check.model import ModuleModel
        from repro.check.passes import check_monotonicity

        models = [
            ModuleModel.build(synthesize(toy_spec, name))
            for name in ("one_min", "one_all", "step_all", "block_min")
        ]
        assert check_monotonicity(models) == []

    def test_whole_toy_grid_passes_translation_validation(self, toy_spec):
        from repro.check import check_spec

        result = check_spec(toy_spec)
        assert [d for d in result.diagnostics if not d.suppressed] == []
