"""End-to-end tests of the synthesizer across every interface shape."""

import pytest

from repro.arch.faults import IllegalInstruction
from repro.synth import SynthOptions, SynthesisError, synthesize

from tests.synth import toyasm

ALL_BUILDSETS = [
    "one_all",
    "one_min",
    "one_all_spec",
    "step_all",
    "block_min",
    "block_all",
    "block_min_spec",
]


@pytest.fixture(scope="module")
def generators(toy_spec):
    return {name: synthesize(toy_spec, name) for name in ALL_BUILDSETS}


def run_program(gen, words, max_instrs=10_000):
    sim = gen.make(syscall_handler=toyasm.exit_handler())
    toyasm.load_words(sim.state, words)
    result = sim.run(max_instrs)
    return sim, result


class TestBasicExecution:
    @pytest.mark.parametrize("buildset", ALL_BUILDSETS)
    def test_sum_loop_runs_everywhere(self, generators, buildset):
        sim, result = run_program(generators[buildset], toyasm.SUM_LOOP)
        assert result.exited
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        assert sim.state.mem.read_u64(0x200) == toyasm.SUM_LOOP_RESULT
        assert result.executed == toyasm.SUM_LOOP_INSTRS

    @pytest.mark.parametrize("buildset", ALL_BUILDSETS)
    def test_final_states_identical(self, generators, buildset):
        """The paper's rotating-interface validation, in miniature."""
        reference, _ = run_program(generators["one_all"], toyasm.SUM_LOOP)
        sim, _ = run_program(generators[buildset], toyasm.SUM_LOOP)
        # pc after a guest exit is interface-dependent (the exiting syscall
        # never commits); registers and memory must match exactly.
        assert sim.state.rf == reference.state.rf
        assert sim.state.sr == reference.state.sr
        assert dict(sim.state.mem.iter_nonzero_pages()) == dict(
            reference.state.mem.iter_nonzero_pages()
        )

    def test_illegal_instruction_raises(self, generators):
        sim = generators["one_all"].make()
        sim.state.mem.write_u32(0, 0x3E << 26)  # unassigned opcode
        with pytest.raises(IllegalInstruction):
            sim.run(1)

    def test_illegal_instruction_raises_in_block_mode(self, generators):
        sim = generators["block_min"].make()
        sim.state.mem.write_u32(0, 0x3E << 26)  # unassigned opcode
        with pytest.raises(IllegalInstruction):
            sim.run(1)

    def test_missing_syscall_handler_is_an_error(self, generators):
        sim = generators["one_all"].make()
        toyasm.load_words(sim.state, [toyasm.sys()])
        with pytest.raises(SynthesisError):
            sim.run(1)

    def test_unknown_buildset_rejected(self, toy_spec):
        with pytest.raises(SynthesisError, match="no buildset"):
            synthesize(toy_spec, "nope")

    def test_run_stops_at_max_instructions(self, generators):
        sim = generators["one_all"].make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        result = sim.run(5)
        assert not result.exited
        assert result.executed == 5


class TestInterfaceInformation:
    def test_one_all_reports_operand_values(self, generators):
        sim = generators["one_all"].make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 42)])
        sim.do_in_one(sim.di)
        assert sim.di.pc == 0
        assert sim.di.next_pc == 4
        assert sim.di.dest_val == 42
        assert sim.di.dest1_id == 1
        assert sim.di.fault == 0

    def test_one_min_record_has_no_operand_slots(self, generators):
        di = generators["one_min"].make().new_dinst()
        assert not hasattr(di, "dest_val")
        assert not hasattr(di, "src1_id")
        assert hasattr(di, "pc") and hasattr(di, "next_pc")

    def test_effective_address_visible_at_all(self, generators):
        sim = generators["one_all"].make()
        sim.state.rf["R"][2] = 0x1000
        toyasm.load_words(sim.state, [toyasm.ldw(1, 2, 0x20)])
        sim.state.mem.write_u64(0x1020, 99)
        sim.do_in_one(sim.di)
        assert sim.di.effective_addr == 0x1020
        assert sim.di.dest_val == 99

    def test_branch_fields(self, generators):
        sim = generators["one_all"].make()
        toyasm.load_words(sim.state, [toyasm.beq(0, 0, 7)])
        sim.do_in_one(sim.di)
        assert sim.di.branch_taken == 1
        assert sim.di.next_pc == 4 + 7 * 4
        assert sim.state.pc == 4 + 7 * 4

    def test_block_trace_records(self, generators):
        gen = generators["block_all"]
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 5), toyasm.beq(0, 0, 3)])
        sim.do_block(sim.di)
        assert sim.di.count == 2
        assert len(sim.di.trace) == 2
        fields = gen.plan.trace_fields
        rec0 = dict(zip(fields, sim.di.trace[0]))
        rec1 = dict(zip(fields, sim.di.trace[1]))
        assert rec0["pc"] == 0 and rec0["next_pc"] == 4
        assert rec0["dest_val"] == 5 and rec0["dest1_id"] == 1
        assert rec1["pc"] == 4 and rec1["next_pc"] == 4 + 4 + 3 * 4
        assert rec1["branch_taken"] == 1

    def test_block_min_trace_is_narrow(self, generators):
        gen = generators["block_min"]
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 5), toyasm.beq(0, 0, 3)])
        sim.do_block(sim.di)
        assert len(sim.di.trace[0]) == 5  # pc, phys_pc, instr_bits, next_pc, fault


class TestGeneratedShape:
    """The paper's Figures 3/4: hidden fields become locals, visible
    fields become record stores, dead information disappears."""

    def test_min_has_no_record_stores_for_hidden_fields(self, toy_spec):
        src = synthesize(toy_spec, "one_min").source
        assert "di.src1_val" not in src
        assert "di.effective_addr" not in src
        assert "di.next_pc = next_pc" in src  # always-visible minimum

    def test_all_stores_visible_fields(self, toy_spec):
        src = synthesize(toy_spec, "one_all").source
        assert "di.src1_val = src1_val" in src
        assert "di.effective_addr = effective_addr" in src

    def test_dce_removes_unused_operand_read(self, toy_spec):
        # JR binds src2 via the branch class but never uses it; with Min
        # visibility the read must vanish.
        src = synthesize(toy_spec, "one_min").source
        jr_index = next(
            i for i, ins in enumerate(toy_spec.instructions) if ins.name == "JR"
        )
        body = src.split(f"def _b_{jr_index}(")[1].split("\ndef ")[0]
        assert "src2_val" not in body
        # but with All visibility the value is interface information:
        src_all = synthesize(toy_spec, "one_all").source
        body_all = src_all.split(f"def _b_{jr_index}(")[1].split("\ndef ")[0]
        assert "src2_val" in body_all

    def test_dce_can_be_disabled(self, toy_spec):
        src = synthesize(
            toy_spec, "one_min", SynthOptions(dce=False)
        ).source
        jr_index = next(
            i for i, ins in enumerate(toy_spec.instructions) if ins.name == "JR"
        )
        body = src.split(f"def _b_{jr_index}(")[1].split("\ndef ")[0]
        assert "src2_val" in body

    def test_dce_off_still_correct(self, toy_spec):
        gen = synthesize(toy_spec, "one_min", SynthOptions(dce=False))
        sim, result = run_program(gen, toyasm.SUM_LOOP)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT

    def test_speculation_adds_journal_code(self, toy_spec):
        src = synthesize(toy_spec, "one_all_spec").source
        assert "__j" in src and "journal.append" in src
        src_plain = synthesize(toy_spec, "one_all").source
        assert "journal.append" not in src_plain


class TestBlockTranslation:
    def test_code_cache_reused(self, generators):
        sim = generators["block_min"].make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)
        # loop head translated once despite 10 iterations
        assert 0x08 in sim._cache
        assert len(sim._cache) <= 4

    def test_flush_code_cache(self, generators):
        sim = generators["block_min"].make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)
        sim.flush_code_cache()
        assert not sim._cache

    def test_blocks_end_at_control_transfer(self, generators):
        sim = generators["block_min"].make()
        toyasm.load_words(
            sim.state,
            [toyasm.addi(1, 0, 1), toyasm.beq(0, 0, 2), toyasm.addi(2, 0, 2)],
        )
        sim.do_block(sim.di)
        assert sim.di.count == 2  # addi + beq; the branch ends the block

    def test_register_caching_in_source(self, generators):
        sim = generators["block_min"].make()
        toyasm.load_words(
            sim.state, [toyasm.addi(1, 0, 1), toyasm.add(2, 1, 1), toyasm.beq(0, 0, 0)]
        )
        src = sim.block_source(0)
        # R[1] written by addi and read twice by add: one cached local,
        # a single flush store at block end.
        assert src.count("R[1] =") == 1
        assert "__R_R_1" in src

    def test_regcache_can_be_disabled(self, toy_spec):
        gen = synthesize(toy_spec, "block_min", SynthOptions(regcache=False))
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        result = sim.run(10_000)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        src = sim.block_source(0x08)
        assert "__R_R_" not in src

    def test_long_straightline_block_capped(self, toy_spec):
        gen = synthesize(toy_spec, "block_min", SynthOptions(max_block=8))
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 1, 1)] * 40)
        sim.do_block(sim.di)
        assert sim.di.count == 8


class TestSpeculation:
    def test_rollback_restores_state(self, generators):
        gen = generators["one_all_spec"]
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        snap = sim.state.snapshot()
        sim.run(7)
        assert sim.rollback(7) == 7
        after = sim.state.snapshot()
        assert after.rf == snap.rf
        assert after.pc == snap.pc
        assert after.sr == snap.sr

    def test_rollback_block_mode(self, generators):
        gen = generators["block_min_spec"]
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        snap = sim.state.snapshot()
        result = sim.run(9)
        executed = result.executed
        assert sim.rollback(executed) == executed
        assert sim.state.snapshot().rf == snap.rf
        assert sim.state.pc == snap.pc

    def test_partial_rollback_then_reexecute(self, generators):
        gen = generators["one_all_spec"]
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10)
        sim.rollback(4)
        result = sim.run(10_000)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT

    def test_commit_bounds_journal(self, generators):
        gen = generators["one_all_spec"]
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10)
        assert len(sim.state.journal) == 10
        sim.commit(6)
        assert len(sim.state.journal) == 4

    def test_rollback_without_speculation_rejected(self, generators):
        sim = generators["one_all"].make()
        with pytest.raises(SynthesisError):
            sim.rollback()

    def test_memory_write_rolls_back(self, generators):
        gen = generators["one_all_spec"]
        sim = gen.make()
        sim.state.mem.write_u64(0x200, 111)
        sim.state.rf["R"][3] = 42
        toyasm.load_words(sim.state, [toyasm.stw(3, 0, 0x200)])
        sim.do_in_one(sim.di)
        assert sim.state.mem.read_u64(0x200) == 42
        sim.rollback()
        assert sim.state.mem.read_u64(0x200) == 111


class TestStepInterface:
    def test_individual_steps_drive_one_instruction(self, generators):
        gen = generators["step_all"]
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 9)])
        di = sim.di
        sim.step_fetch(di)
        assert di.pc == 0 and di.instr_bits == toyasm.addi(1, 0, 9)
        sim.step_decode(di)
        sim.step_operands(di)
        sim.step_execute(di)
        assert di.dest_val == 9
        sim.step_memory(di)
        sim.step_writeback(di)
        assert sim.state.rf["R"][1] == 9
        assert sim.state.pc == 0  # pc not committed until the last step
        sim.step_exception(di)
        assert sim.state.pc == 4

    def test_timing_simulator_controls_writeback_time(self, generators):
        """Semantic detail = control: delay writeback past another read."""
        gen = generators["step_all"]
        sim = gen.make()
        toyasm.load_words(sim.state, [toyasm.addi(1, 0, 9)])
        di = sim.di
        sim.step_fetch(di)
        sim.step_decode(di)
        sim.step_operands(di)
        sim.step_execute(di)
        # The timing model can observe state *before* writeback happens.
        assert sim.state.rf["R"][1] == 0
        sim.step_writeback(di)
        assert sim.state.rf["R"][1] == 9


class TestProfileMode:
    def test_hostops_counted(self, toy_spec):
        gen = synthesize(toy_spec, "one_min", SynthOptions(profile=True))
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)
        assert sim.hostops > 0

    def test_all_costs_more_than_min(self, toy_spec):
        costs = {}
        for name in ("one_min", "one_all"):
            gen = synthesize(toy_spec, name, SynthOptions(profile=True))
            sim = gen.make(syscall_handler=toyasm.exit_handler())
            toyasm.load_words(sim.state, toyasm.SUM_LOOP)
            result = sim.run(10_000)
            costs[name] = sim.hostops / result.executed
        assert costs["one_all"] > costs["one_min"]

    def test_profile_mode_preserves_semantics(self, toy_spec):
        gen = synthesize(toy_spec, "step_all", SynthOptions(profile=True))
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        result = sim.run(10_000)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        assert sim.hostops > 0
