"""Differential on-vs-off equivalence for superblocks + chaining.

Every Block buildset of every shipping ISA runs a kernel with the
optimizations on (the defaults) and off (``chain=False, superblock=0``)
and must land in the same architectural state: same registers, special
registers, memory, exit status and executed-instruction count.  The
program counter is deliberately excluded — translated units only
materialize ``state.pc`` on exits that need it, so its staleness
differs by design between unit shapes.
"""

import pytest

from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads import SUITE, assemble_kernel

OFF = SynthOptions(chain=False, superblock=0)

ISAS = ("alpha", "arm", "ppc", "sparc")

#: checksum touches memory, loops, and calls; small n keeps this fast
KERNEL, N = "checksum", 6


def block_buildsets(spec):
    return sorted(
        name
        for name, bs in spec.buildsets.items()
        if bs.semantic_detail == "block"
    )


def run_blocks(isa, bundle, spec, buildset, options):
    generated = synthesize(spec, buildset, options)
    image = assemble_kernel(isa, SUITE[KERNEL], N)
    sim = generated.make(syscall_handler=OSEmulator(bundle.abi))
    load_image(sim.state, image, bundle.abi)
    result = sim.run(50_000_000)
    assert result.exited, f"{isa}/{buildset}: did not finish"
    return sim, result


@pytest.mark.parametrize("isa", ISAS)
def test_on_off_equivalence_all_block_buildsets(isa):
    bundle = get_bundle(isa)
    spec = bundle.load_spec()
    names = block_buildsets(spec)
    assert names, f"{isa} defines no block buildsets"
    for buildset in names:
        sim_on, res_on = run_blocks(isa, bundle, spec, buildset, None)
        sim_off, res_off = run_blocks(isa, bundle, spec, buildset, OFF)
        context = f"{isa}/{buildset}"
        assert res_on.exit_status == res_off.exit_status, context
        assert res_on.executed == res_off.executed, context
        assert sim_on.state.rf == sim_off.state.rf, context
        assert sim_on.state.sr == sim_off.state.sr, context
        snap_on = sim_on.state.mem.snapshot()
        snap_off = sim_off.state.mem.snapshot()
        assert snap_on == snap_off, f"{context}: memory diverged"
