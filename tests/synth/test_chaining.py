"""Superblock formation and direct block chaining (toy ISA).

Covers the translation-unit shapes (`docs/performance.md`), the exact
``run()`` accounting contract under chaining, and the interplay with
code-cache eviction and flushing.
"""

import pytest

from repro.synth import SynthOptions, synthesize

from tests.synth import toyasm

#: both optimizations off; the classic one-basic-block translator
OFF = SynthOptions(chain=False, superblock=0)


@pytest.fixture(scope="module")
def gen(toy_spec):
    return synthesize(toy_spec, "block_min")


@pytest.fixture(scope="module")
def gen_off(toy_spec):
    return synthesize(toy_spec, "block_min", OFF)


def run_program(gen, words, max_instrs=10_000):
    sim = gen.make(syscall_handler=toyasm.exit_handler())
    toyasm.load_words(sim.state, words)
    result = sim.run(max_instrs)
    return sim, result


class TestSuperblockFormation:
    def test_constant_branch_crossed(self, gen):
        # JAL's target is a compile-time constant: the unit continues
        # there, skipping the dead word in between.
        sim = gen.make()
        toyasm.load_words(
            sim.state,
            [
                toyasm.addi(1, 0, 1),   # 0x00
                toyasm.jal(1),          # 0x04: goto 0x0c
                toyasm.addi(9, 0, 9),   # 0x08: skipped
                toyasm.addi(2, 0, 2),   # 0x0c
                toyasm.sys(),           # 0x10
            ],
        )
        sim.block_source(0)
        assert sim._cache[0].__block_len__ == 4  # 0x08 never translated

    def test_conditional_fallthrough_guarded_side_exit(self, gen):
        # A conditional whose not-taken arm is the fall-through crosses
        # it; the taken arm becomes a guarded side exit.
        sim = gen.make()
        toyasm.load_words(
            sim.state,
            [
                toyasm.addi(1, 0, 1),   # 0x00
                toyasm.beq(1, 0, 3),    # 0x04: if R1==0 goto 0x18
                toyasm.addi(2, 0, 2),   # 0x08: fall-through, crossed
                toyasm.sys(),           # 0x0c
            ],
        )
        source = sim.block_source(0)
        assert sim._cache[0].__block_len__ == 4
        assert "if next_pc != 8:" in source

    def test_side_exit_settles_partial_count(self, gen):
        # Taking the guarded arm must report only the instructions
        # actually executed, not the unit's full length.
        words = [
            toyasm.addi(1, 0, 1),   # 0x00
            toyasm.beq(1, 1, 3),    # 0x04: always taken, goto 0x18
            toyasm.addi(2, 0, 2),   # 0x08: crossed but never executed
            toyasm.sys(),           # 0x0c
            toyasm.sys(),           # 0x10
            toyasm.addi(3, 0, 7),   # 0x18: R3 = exit status
            toyasm.sys(),           # 0x1c
        ]
        sim, result = run_program(gen, words)
        assert result.exited and result.exit_status == 7
        assert result.executed == 4  # addi, beq, addi, sys
        assert sim.state.rf["R"][2] == 0  # the crossed arm never ran

    def test_self_loop_unrolled(self, gen, gen_off):
        # The SUM_LOOP body (3 instructions at 0x08) branches back to
        # itself: the superblock unroller widens that unit well past one
        # iteration, where the classic translator stops at the back-edge.
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.run(10_000)
        sim_off = gen_off.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim_off.state, toyasm.SUM_LOOP)
        sim_off.run(10_000)
        assert sim_off._cache[0x08].__block_len__ == 3
        unrolled = sim._cache[0x08].__block_len__
        assert unrolled > 3
        # every unrolled back-edge guards a return to the loop head, and
        # once another iteration no longer fits the budget the loop's
        # fall-through arm is crossed into the epilogue instead
        source = sim._cache[0x08].__block_source__
        assert source.count("if next_pc != 8:") >= 2
        assert "if next_pc != 20:" in source

    def test_crossing_reverted_when_fallthrough_undecodable(self, gen):
        # A conditional right before non-code bytes: the attempted
        # crossing must be undone, leaving the classic runtime exit with
        # no guard (the side exit would duplicate spills for nothing).
        sim = gen.make()
        toyasm.load_words(
            sim.state,
            [toyasm.addi(1, 0, 1), toyasm.beq(1, 0, 3), 0x30 << 26],
        )
        source = sim.block_source(0)
        assert sim._cache[0].__block_len__ == 2
        assert "if next_pc !=" not in source

    def test_superblock_budget_respected(self, toy_spec):
        gen = synthesize(toy_spec, "block_min", SynthOptions(superblock=4))
        sim = gen.make()
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        sim.block_source(0x08)
        assert sim._cache[0x08].__block_len__ <= 4


class TestChaining:
    def test_exits_link_to_successors(self, gen):
        sim, result = run_program(gen, toyasm.SUM_LOOP)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        cells = [
            cell
            for fn in sim._cache.values()
            for cell in fn.__chain_cells__
        ]
        linked = [cell for cell in cells if cell[2] != -1]
        assert linked, "no exit was ever patched to its successor"
        assert sim._chains  # the in-edge registry mirrors the links

    def test_no_chain_units_carry_no_residue(self, gen_off):
        sim, result = run_program(gen_off, toyasm.SUM_LOOP)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        for pc, fn in sim._cache.items():
            assert "__chain" not in fn.__block_source__, hex(pc)
            assert "di.budget" not in fn.__block_source__, hex(pc)

    @pytest.mark.parametrize("options", [None, OFF], ids=["chain", "classic"])
    def test_run_stops_at_exact_instruction_count(self, toy_spec, options):
        gen = synthesize(toy_spec, "block_min", options)
        for budget in (1, 2, 5, 13, toyasm.SUM_LOOP_INSTRS - 1):
            sim = gen.make(syscall_handler=toyasm.exit_handler())
            toyasm.load_words(sim.state, toyasm.SUM_LOOP)
            result = sim.run(budget)
            assert not result.exited
            assert result.executed == budget

    def test_exit_reports_exact_total(self, gen):
        _, result = run_program(gen, toyasm.SUM_LOOP)
        assert result.exited and result.exit_status == toyasm.SUM_LOOP_RESULT
        assert result.executed == toyasm.SUM_LOOP_INSTRS

    def test_resume_after_budget_stop(self, gen):
        # Stopping mid-superblock truncates the final unit; resuming must
        # pick up where it left off with nothing lost or double-counted.
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        first = sim.run(7)
        rest = sim.run(10_000)
        assert rest.exited and rest.exit_status == toyasm.SUM_LOOP_RESULT
        assert first.executed + rest.executed == toyasm.SUM_LOOP_INSTRS


class TestCacheInterplay:
    def test_eviction_unlinks_and_relinks(self, toy_spec):
        # A two-entry cache forces evict -> retranslate -> relink churn
        # while the workload loops; the answer must be unaffected and the
        # chain bookkeeping visible in the stats.
        gen = synthesize(toy_spec, "block_min", SynthOptions(cache_limit=2))
        sim, result = run_program(gen, toyasm.SUM_LOOP)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        assert result.executed == toyasm.SUM_LOOP_INSTRS
        stats = sim._translator.cache_stats
        assert stats.evictions > 0
        assert stats.chain_unlinks > 0
        assert stats.chain_links > 0
        assert len(sim._cache) <= 2

    def test_single_entry_cache_still_correct(self, toy_spec):
        gen = synthesize(toy_spec, "block_min", SynthOptions(cache_limit=1))
        sim, result = run_program(gen, toyasm.SUM_LOOP)
        assert result.exit_status == toyasm.SUM_LOOP_RESULT
        assert len(sim._cache) <= 1

    def test_evicted_unit_is_never_reentered_stale(self, gen):
        # Explicit unlink check: after evicting a chained-to unit, every
        # cell that pointed at it must be reset to the never-chain state.
        sim, _ = run_program(gen, toyasm.SUM_LOOP)
        victim = next(iter(sim._chains))
        incoming = list(sim._chains[victim].values())
        assert incoming
        sim._evict_block(victim)
        for cell in incoming:
            assert cell[2] == -1
            assert cell[1] > 10**9  # CHAIN_NEVER: fits no real budget

    def test_flush_mid_run_continues_correctly(self, gen):
        sim = gen.make(syscall_handler=toyasm.exit_handler())
        toyasm.load_words(sim.state, toyasm.SUM_LOOP)
        first = sim.run(10)
        sim.flush_code_cache()
        assert not sim._cache and not sim._chains
        rest = sim.run(10_000)
        assert rest.exited and rest.exit_status == toyasm.SUM_LOOP_RESULT
        assert first.executed + rest.executed == toyasm.SUM_LOOP_INSTRS


class TestDifferential:
    BLOCK_BUILDSETS = ("block_min", "block_all", "block_min_spec")

    @pytest.mark.parametrize("buildset", BLOCK_BUILDSETS)
    def test_on_off_state_equivalence(self, toy_spec, buildset):
        sims = []
        for options in (None, OFF):
            gen = synthesize(toy_spec, buildset, options)
            sim, result = run_program(gen, toyasm.SUM_LOOP)
            sims.append((sim, result))
        (sim_on, res_on), (sim_off, res_off) = sims
        assert res_on.exit_status == res_off.exit_status
        assert res_on.executed == res_off.executed
        assert sim_on.state.rf == sim_off.state.rf
        assert sim_on.state.sr == sim_off.state.sr
        assert (
            sim_on.state.mem.read_u32(0x200) == sim_off.state.mem.read_u32(0x200)
        )

    def test_one_and_step_modules_byte_identical(self, toy_spec):
        # The optimizations are block-translator features; the static
        # One/Step module sources must not depend on them at all.
        for buildset in ("one_min", "one_all", "step_all"):
            on = synthesize(toy_spec, buildset)
            off = synthesize(toy_spec, buildset, OFF)
            assert on.source == off.source, buildset
