"""Unit tests for cache and branch-predictor timing components."""

import pytest

from repro.timing import BimodalPredictor, Cache
from repro.timing.branch import AlwaysTakenPredictor


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache("L1", size=1024, line=32, assoc=2, hit_latency=1,
                      miss_penalty=10)
        assert cache.access(0x100) == 11
        assert cache.access(0x104) == 1  # same line
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = Cache("L1", size=64, line=32, assoc=2, hit_latency=1,
                      miss_penalty=10)  # one set, two ways
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000)  # touch to make 0x100 LRU
        cache.access(0x200)  # evicts 0x100
        assert cache.access(0x000) == 1
        assert cache.access(0x100) == 11

    def test_two_levels(self):
        l2 = Cache("L2", size=4096, line=32, assoc=4, hit_latency=5,
                   miss_penalty=50)
        l1 = Cache("L1", size=1024, line=32, assoc=2, hit_latency=1,
                   next_level=l2)
        assert l1.access(0x40) == 1 + 5 + 50  # miss everywhere
        assert l1.access(0x40) == 1
        l1.flush()
        assert l1.access(0x40) == 1 + 5  # hits in L2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", size=100, line=32, assoc=2)

    def test_miss_rate(self):
        cache = Cache("L1", size=1024, line=32, assoc=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5


class TestBimodal:
    def test_learns_taken_loop(self):
        predictor = BimodalPredictor(64)
        for _ in range(10):
            predictor.update(0x40, True)
        assert predictor.predict(0x40)
        assert predictor.stats.accuracy > 0.7

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(64)
        for _ in range(10):
            predictor.update(0x40, False)
        assert not predictor.predict(0x40)

    def test_hysteresis(self):
        predictor = BimodalPredictor(64)
        for _ in range(5):
            predictor.update(0x40, True)
        predictor.update(0x40, False)  # single anomaly
        assert predictor.predict(0x40)  # still predicts taken

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0)
        predictor.update(0, False)
        assert predictor.stats.mispredicted == 1
