"""Integration tests: the five decoupled organizations of Figure 1."""

import pytest

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.timing import (
    FunctionalFirstSimulator,
    IntegratedSimulator,
    SamplingSimulator,
    SpeculativeFunctionalFirstSimulator,
    TimingDirectedSimulator,
    TimingFirstSimulator,
)
from repro.timing.classify import (
    ALU,
    BRANCH,
    LOAD,
    STORE,
    SYSCALL,
    InstructionClassifier,
)
from repro.workloads import SUITE, assemble_kernel

ISA = "alpha"
KERNEL = SUITE["sieve"]

_CACHE = {}


def gen(buildset, isa=ISA):
    key = (isa, buildset)
    if key not in _CACHE:
        _CACHE[key] = synthesize(get_bundle(isa).load_spec(), buildset)
    return _CACHE[key]


@pytest.fixture()
def loaded_image():
    return assemble_kernel(ISA, KERNEL, KERNEL.test_n)


@pytest.fixture()
def expected():
    return KERNEL.reference(KERNEL.test_n) & 0xFFFFFFFF


def handler():
    return OSEmulator(get_bundle(ISA).abi)


class TestClassifier:
    def test_kinds(self):
        spec = get_bundle(ISA).load_spec()
        classifier = InstructionClassifier(spec)
        bundle = get_bundle(ISA)
        asm = bundle.make_assembler()

        def word(src):
            return int.from_bytes(asm.assemble(src).segments[0][1][:4], "little")

        assert classifier.kind(word("ldq $1, 0($2)")) == LOAD
        assert classifier.kind(word("stq $1, 0($2)")) == STORE
        assert classifier.kind(word("beq $1, .+8")) == BRANCH
        assert classifier.kind(word("addq $1, $2, $3")) == ALU
        assert classifier.kind(word("call_pal 0x83")) == SYSCALL


class TestFunctionalFirst:
    def test_runs_and_counts_cycles(self, loaded_image, expected):
        ff = FunctionalFirstSimulator(gen("block_decode"), syscall_handler=handler())
        load_image(ff.state, loaded_image, get_bundle(ISA).abi)
        report = ff.run(10_000_000)
        assert report.exit_status is not None
        assert report.cycles > report.instructions  # stalls exist
        assert ff.state.mem.read_u32(loaded_image.symbol("result")) == expected

    def test_requires_block_interface(self):
        with pytest.raises(ValueError, match="block"):
            FunctionalFirstSimulator(gen("one_all"))

    def test_min_interface_insufficient(self):
        # Min detail hides effective addresses; FF still works (pc/bits/next
        # are always visible) but for this check we assert the constructor
        # accepts it — the address feed is simply absent.
        ff = FunctionalFirstSimulator(gen("block_min"), syscall_handler=handler())
        assert ff._ea is None


class TestTimingDirected:
    def test_runs_with_step_control(self, loaded_image, expected):
        td = TimingDirectedSimulator(gen("step_all"), syscall_handler=handler())
        load_image(td.state, loaded_image, get_bundle(ISA).abi)
        report = td.run(10_000_000)
        assert report.exit_status is not None
        assert td.state.mem.read_u32(loaded_image.symbol("result")) == expected
        assert report.cycles >= 3 * report.instructions  # multi-cycle pipe

    def test_requires_step_interface(self):
        with pytest.raises(ValueError, match="Step"):
            TimingDirectedSimulator(gen("one_all"))


class TestTimingFirst:
    def test_clean_run_has_no_mismatches(self, loaded_image, expected):
        tf = TimingFirstSimulator(gen("one_all"), gen("one_min"), handler)
        tf.load(lambda st: load_image(st, loaded_image, get_bundle(ISA).abi))
        report = tf.run(10_000_000)
        assert report.mismatches == 0
        assert tf.state.mem.read_u32(loaded_image.symbol("result")) == expected

    def test_injected_bugs_are_caught_and_corrected(self, loaded_image, expected):
        tf = TimingFirstSimulator(
            gen("one_all"), gen("one_min"), handler, inject_bug_every=500
        )
        tf.load(lambda st: load_image(st, loaded_image, get_bundle(ISA).abi))
        report = tf.run(10_000_000)
        assert report.mismatches >= report.instructions // 500
        # the checker keeps the run architecturally correct
        assert (
            tf.checker_sim.state.mem.read_u32(loaded_image.symbol("result"))
            == expected
        )


class TestSpeculativeFunctionalFirst:
    def test_rollbacks_do_not_corrupt_state(self, loaded_image, expected):
        sff = SpeculativeFunctionalFirstSimulator(
            gen("one_decode_spec"),
            syscall_handler=handler(),
            diverge_every=97,
            diverge_depth=4,
        )
        load_image(sff.state, loaded_image, get_bundle(ISA).abi)
        report = sff.run(10_000_000)
        assert report.rollbacks > 0
        assert report.rolled_back_instructions == report.rollbacks * 4
        assert sff.state.mem.read_u32(loaded_image.symbol("result")) == expected

    def test_requires_speculative_interface(self):
        with pytest.raises(ValueError, match="speculation"):
            SpeculativeFunctionalFirstSimulator(gen("one_decode"))

    def test_journal_stays_bounded(self, loaded_image):
        sff = SpeculativeFunctionalFirstSimulator(
            gen("one_decode_spec"), syscall_handler=handler(), window=8
        )
        load_image(sff.state, loaded_image, get_bundle(ISA).abi)
        sff.run(1000)
        assert len(sff.state.journal) <= 9


class TestSampling:
    def test_alternates_and_finishes(self, loaded_image, expected):
        sampler = SamplingSimulator(
            gen("step_all"),
            gen("block_min"),
            syscall_handler=handler(),
            detail_window=100,
            fastforward_window=400,
        )
        load_image(sampler.state, loaded_image, get_bundle(ISA).abi)
        report = sampler.run(10_000_000)
        assert report.exit_status is not None
        assert report.detailed_instructions > 0
        assert report.fastforward_instructions > report.detailed_instructions
        assert sampler.state.mem.read_u32(loaded_image.symbol("result")) == expected

    def test_detailed_cpi_estimate_positive(self, loaded_image):
        sampler = SamplingSimulator(
            gen("step_all"), gen("block_min"), syscall_handler=handler()
        )
        load_image(sampler.state, loaded_image, get_bundle(ISA).abi)
        report = sampler.run(10_000_000)
        assert report.estimated_cpi > 1.0


class TestIntegrated:
    def test_runs(self, loaded_image, expected):
        integrated = IntegratedSimulator(gen("one_all"), syscall_handler=handler())
        load_image(integrated.state, loaded_image, get_bundle(ISA).abi)
        report = integrated.run(10_000_000)
        assert report.exit_status is not None
        assert integrated.state.mem.read_u32(loaded_image.symbol("result")) == expected


class TestCrossOrganizationAgreement:
    def test_cycle_counts_agree_between_equivalent_models(self, loaded_image):
        """Integrated and functional-first use the same cycle math, so on
        the same program they must produce identical cycle counts."""
        ff = FunctionalFirstSimulator(gen("block_decode"), syscall_handler=handler())
        load_image(ff.state, loaded_image, get_bundle(ISA).abi)
        r1 = ff.run(10_000_000)

        integrated = IntegratedSimulator(gen("one_all"), syscall_handler=handler())
        load_image(integrated.state, loaded_image, get_bundle(ISA).abi)
        r2 = integrated.run(10_000_000)
        assert r1.instructions in (r2.instructions, r2.instructions + 1)
        assert abs(r1.cycles - r2.cycles) <= 70  # final (uncommitted) syscall
