"""Tests for stored-trace capture and replay (paper §II-B)."""

import io

import pytest

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.sysemu import OSEmulator, load_image
from repro.timing.pipeline import InOrderPipelineModel
from repro.timing.trace import TraceReader, TraceWriter, replay_into
from repro.timing.functional_first import FunctionalFirstSimulator
from repro.workloads import SUITE, assemble_kernel

ISA = "alpha"
KERNEL = SUITE["sieve"]

_GEN = {}


def gen(buildset):
    if buildset not in _GEN:
        _GEN[buildset] = synthesize(get_bundle(ISA).load_spec(), buildset)
    return _GEN[buildset]


@pytest.fixture()
def captured_trace():
    bundle = get_bundle(ISA)
    writer = TraceWriter(gen("block_decode"), OSEmulator(bundle.abi))
    image = assemble_kernel(ISA, KERNEL, KERNEL.test_n)
    load_image(writer.state, image, bundle.abi)
    stream = io.StringIO()
    captured = writer.capture(stream, 10_000_000)
    stream.seek(0)
    return stream, captured


class TestCapture:
    def test_captures_all_instructions(self, captured_trace):
        stream, captured = captured_trace
        reader = TraceReader(stream)
        records = list(reader)
        assert len(records) == captured
        assert reader.exit_status is not None

    def test_header(self, captured_trace):
        stream, _ = captured_trace
        reader = TraceReader(stream)
        assert reader.header.isa == "alpha"
        assert reader.header.interface == "block_decode"
        assert "pc" in reader.header.fields
        assert "effective_addr" in reader.header.fields

    def test_records_are_sane(self, captured_trace):
        stream, _ = captured_trace
        records = list(TraceReader(stream))
        first = records[0]
        assert first["pc"] == 0x1000
        assert first["next_pc"] in (0x1004, first["pc"] + 4)
        loads = [r for r in records if r["effective_addr"] is not None]
        assert loads, "sieve performs memory accesses"

    def test_requires_block_interface(self):
        with pytest.raises(ValueError, match="Block"):
            TraceWriter(gen("one_all"))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            TraceReader(io.StringIO("nope\n"))


class TestReplay:
    def test_replay_matches_live_timing(self, captured_trace):
        """Feeding the stored trace into the pipeline model must produce
        exactly the cycles a live functional-first run produces."""
        stream, _ = captured_trace
        bundle = get_bundle(ISA)
        spec = bundle.load_spec()

        live = FunctionalFirstSimulator(
            gen("block_decode"), syscall_handler=OSEmulator(bundle.abi)
        )
        image = assemble_kernel(ISA, KERNEL, KERNEL.test_n)
        load_image(live.state, image, bundle.abi)
        live_report = live.run(10_000_000)

        replay_model = InOrderPipelineModel(spec)
        replay_into(TraceReader(stream), replay_model)
        assert replay_model.instructions == live_report.instructions
        assert replay_model.cycles == live_report.cycles

    def test_one_trace_many_timing_models(self, captured_trace):
        """The paper's parallel-consumption use case: one stored stream,
        several differently-configured timing simulators."""
        stream, _ = captured_trace
        spec = get_bundle(ISA).load_spec()
        from repro.timing.cache import Cache

        text = stream.getvalue()
        cycles = []
        for size in (128, 8 * 1024):
            icache = Cache("I1", size=size, line=32, assoc=2, miss_penalty=20)
            dcache = Cache("D1", size=size, line=32, assoc=2, miss_penalty=20)
            model = InOrderPipelineModel(spec, icache, dcache)
            replay_into(TraceReader(io.StringIO(text)), model)
            cycles.append(model.cycles)
        assert cycles[0] > cycles[1]  # smaller caches -> more stall cycles
