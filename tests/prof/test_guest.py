"""Unit tests for guest attribution: unit timing, probe hits, sampling."""

import time

from repro.prof.guest import (
    NULL_GUEST,
    GuestProfiler,
    HostCallProfiler,
    NullGuestProfiler,
    PCSampler,
)


class TestGuestProfiler:
    def test_register_then_charge(self):
        g = GuestProfiler()
        g.register_unit(0x1000, length=8, parts=2)
        g.add_unit_time(0x1000, 500, executed=8)
        g.add_unit_time(0x1000, 300, executed=8, chained=True)
        stat = g.units[0x1000]
        assert stat.ns == 800
        assert stat.calls == 2
        assert stat.instructions == 16
        assert stat.chained_calls == 1
        assert stat.length == 8 and stat.parts == 2

    def test_charge_before_register_creates_the_unit(self):
        # A unit can execute (via a chained transfer) before install-time
        # registration catches up; re-registration then fills the shape.
        g = GuestProfiler()
        g.add_unit_time(0x2000, 100, executed=4)
        assert g.units[0x2000].length == 0
        g.register_unit(0x2000, length=4, parts=1)
        assert g.units[0x2000].length == 4
        assert g.units[0x2000].ns == 100  # accumulated time survives

    def test_hot_blocks_ordering_share_and_limit(self):
        g = GuestProfiler()
        g.register_unit(0x1000, 4)
        g.register_unit(0x2000, 4)
        g.register_unit(0x3000, 4)
        g.add_unit_time(0x1000, 100, 4)
        g.add_unit_time(0x2000, 700, 4)
        g.add_unit_time(0x3000, 200, 4)
        hot = g.hot_blocks()
        assert [row["pc"] for row in hot] == [0x2000, 0x3000, 0x1000]
        assert hot[0]["share"] == 0.7
        assert abs(sum(row["share"] for row in hot) - 1.0) < 1e-9
        assert [row["pc"] for row in g.hot_blocks(limit=1)] == [0x2000]

    def test_hot_blocks_pc_range_uses_ilen(self):
        g = GuestProfiler()
        g.register_unit(0x1000, length=3)
        g.add_unit_time(0x1000, 10, 3)
        assert g.hot_blocks(ilen=4)[0]["end"] == 0x100C
        assert g.hot_blocks(ilen=2)[0]["end"] == 0x1006

    def test_hot_pcs_merges_hits_and_samples(self):
        g = GuestProfiler()
        g.add_pc_hits({0x10: 5, 0x20: 1})
        g.add_pc_hits({0x10: 2})
        g.add_samples({0x20: 9, 0x30: 3})
        rows = g.hot_pcs()
        assert rows[0] == {"pc": 0x20, "hits": 1, "samples": 9}
        assert rows[1] == {"pc": 0x10, "hits": 7, "samples": 0}
        assert rows[2] == {"pc": 0x30, "hits": 0, "samples": 3}
        assert len(g.hot_pcs(limit=2)) == 2

    def test_clear_resets_foreign_time_too(self):
        g = GuestProfiler()
        g.add_unit_time(0x1000, 10, 1)
        g.add_pc_hits({1: 1})
        g.add_samples({2: 2})
        g.foreign_ns = 123
        g.clear()
        assert not g.units and not g.pc_hits and not g.samples
        assert g.foreign_ns == 0


class TestNullGuestProfiler:
    def test_inert(self):
        n = NullGuestProfiler()
        n.register_unit(1, 2)
        n.add_unit_time(1, 10, 1)
        n.add_pc_hits({1: 1})
        n.add_samples({1: 1})
        n.clear()
        assert n.units == {}
        assert n.hot_blocks() == []
        assert n.hot_pcs() == []
        assert n.foreign_ns == 0
        assert not n.enabled
        assert not NULL_GUEST.enabled


class _Target:
    pc = 0x4000


class TestPCSampler:
    def test_samples_target_pc(self):
        sampler = PCSampler(_Target(), interval_us=100)
        with sampler:
            time.sleep(0.02)
        assert sampler.taken > 0
        assert sampler.counts.get(0x4000, 0) == sampler.taken

    def test_stop_returns_histogram_and_joins(self):
        sampler = PCSampler(_Target(), interval_us=100)
        sampler.start()
        time.sleep(0.005)
        counts = sampler.stop()
        assert counts is sampler.counts
        assert sampler._thread is None


class TestHostCallProfiler:
    def test_records_function_time(self):
        def workload():
            return sum(range(100))

        with HostCallProfiler() as prof:
            workload()
        stats = prof.stats
        assert "workload" in stats
        calls, ns = stats["workload"]
        assert calls >= 1 and ns >= 0
        top = prof.top(limit=5)
        assert len(top) <= 5
        assert all(set(row) == {"name", "calls", "ns"} for row in top)
