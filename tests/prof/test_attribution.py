"""End-to-end attribution: a profiled Block run names its hot loop.

The acceptance criterion for the profiling layer is behavioural, not
structural: on a kernel dominated by one self-loop, the hot-block
table's top entry must be that loop's guest PC range — with the chain
slow path's nested translation time *deducted*, so the entry block
(which merely chains into everything else) does not masquerade as hot.
"""

import pytest

from repro.isa.base import get_bundle
from repro.obs import make_observability
from repro.prof.spans import CHAIN_PATCH, EXECUTE, TRANSLATE
from repro.synth import SynthOptions, synthesize
from repro.workloads.suite import run_kernel


@pytest.fixture(scope="module")
def profiled_fib():
    """One profiled fib run on alpha/block_min (superblocks + chaining on)."""
    generated = synthesize(
        get_bundle("alpha").load_spec(),
        "block_min",
        SynthOptions(observe=True),
    )
    obs = make_observability(profile=True)
    run = run_kernel(generated, "alpha", "fib", obs=obs)
    assert run.correct
    return obs, run


class TestHotBlockAttribution:
    def test_top_entry_is_the_loop(self, profiled_fib):
        obs, run = profiled_fib
        hot = obs.prof.guest.hot_blocks(ilen=4)
        assert hot, "profiled run recorded no units"
        top = hot[0]
        # The hottest unit by host time is the unit that executed the
        # most guest instructions — the fib loop, not the entry block.
        by_instructions = max(hot, key=lambda row: row["instructions"])
        assert top["pc"] == by_instructions["pc"]
        assert top["instructions"] > run.executed / 2
        assert top["share"] > 0.5
        # Superblock provenance rode along: the self-loop was unrolled
        # into a multi-part unit (PR 4's side tables).
        assert top["parts"] > 1
        assert top["end"] == top["pc"] + top["length"] * 4

    def test_entry_block_is_not_billed_for_downstream_translation(
        self, profiled_fib
    ):
        # Without the foreign-time deduction the entry unit at the image
        # origin absorbs the whole chain slow path (translating its
        # successors) and shows up with a majority share.
        obs, _ = profiled_fib
        rows = {row["pc"]: row for row in obs.prof.guest.hot_blocks(ilen=4)}
        entry = rows.get(0x1000)
        if entry is None:
            pytest.skip("entry PC not a unit head under this layout")
        assert entry["share"] < 0.3

    def test_executions_are_charged_per_chained_hop(self, profiled_fib):
        obs, run = profiled_fib
        stats = obs.prof.guest.units.values()
        # The unit that raises ExitProgram aborts mid-execution, so its
        # partial count is never charged; everything else must be.
        attributed = sum(s.instructions for s in stats)
        assert run.executed * 0.95 < attributed <= run.executed
        assert any(s.chained_calls > 0 for s in stats)

    def test_span_tree_nests_translate_under_execute(self, profiled_fib):
        obs, _ = profiled_fib
        tree = obs.prof.spans.tree()
        execute = tree[EXECUTE]
        assert execute["count"] == 1
        children = execute.get("children", {})
        # translation happens inside the run: directly on a cache miss,
        # or nested under a chain-patch slow path.
        nested = set(children)
        if CHAIN_PATCH in children:
            nested |= set(children[CHAIN_PATCH].get("children", {}))
        assert TRANSLATE in nested
        assert obs.prof.spans.events  # raw events feed the Chrome trace
        assert obs.prof.spans.events_dropped == 0

    def test_unprofiled_observability_keeps_the_null_profiler(self):
        obs = make_observability()
        assert not obs.prof.enabled
        assert obs.prof.guest.hot_blocks() == []
