"""Bench-trajectory regression diffing (`repro bench diff` / `trail`)."""

import json

import pytest

from repro.prof.bench import (
    DEFAULT_THRESHOLD,
    bench_trail,
    diff_bench,
    flatten_mips,
    load_bench,
    render_diff,
    render_trail,
)


def t2_doc(alpha_block: float, samples=None) -> dict:
    doc = {
        "experiment": "table2_simulation_speed",
        "scale": 0.5,
        "mips": {
            "block_min": {"alpha": alpha_block, "arm": 1.2},
            "one_min": {"alpha": 0.8, "arm": 0.5},
        },
    }
    if samples is not None:
        doc["samples"] = {"block_min": {"alpha": samples}}
    return doc


class TestFlattenMips:
    def test_flattens_nested_paths(self):
        cells = flatten_mips(t2_doc(2.0))
        assert cells[("block_min", "alpha")] == 2.0
        assert cells[("one_min", "arm")] == 0.5
        assert len(cells) == 4

    def test_prefers_min_of_samples_over_headline(self):
        # The headline is best-of-reps; the min sample is the
        # least-disturbed repetition and the one to regress against.
        cells = flatten_mips(t2_doc(2.0, samples=[1.9, 1.7]))
        assert cells[("block_min", "alpha")] == 1.7
        assert cells[("one_min", "alpha")] == 0.8  # no samples: headline

    def test_skips_derived_leaves(self):
        doc = {
            "mips": {
                "alpha": {"on": 2.0, "off": 1.0, "speedup": 2.0},
                "ratio": 3.0,
            }
        }
        cells = flatten_mips(doc)
        assert set(cells) == {("alpha", "on"), ("alpha", "off")}

    def test_ignores_non_numeric_and_bool(self):
        cells = flatten_mips({"mips": {"a": True, "b": "fast", "c": 1.5}})
        assert cells == {("c",): 1.5}


class TestDiffBench:
    def test_detects_injected_regression_and_exits_nonzero(self):
        # The acceptance fixture: alpha/block_min loses 15% (past the
        # default 10% threshold); everything else holds.
        diff = diff_bench(t2_doc(2.0), t2_doc(1.7))
        assert diff.threshold == DEFAULT_THRESHOLD
        assert [row.label for row in diff.regressions] == ["block_min/alpha"]
        assert diff.regressions[0].delta == pytest.approx(-0.15)
        assert diff.exit_code == 1

    def test_regression_via_min_sample_despite_flat_headline(self):
        # A regression can hide behind one lucky rep: the headline is
        # unchanged but the worst repetition fell 21%.
        old = t2_doc(2.0, samples=[1.9, 1.9])
        new = t2_doc(2.0, samples=[1.5, 2.0])
        diff = diff_bench(old, new)
        assert diff.exit_code == 1

    def test_within_threshold_passes(self):
        diff = diff_bench(t2_doc(2.0), t2_doc(1.85))  # -7.5%
        assert diff.regressions == []
        assert diff.exit_code == 0

    def test_custom_threshold(self):
        assert diff_bench(t2_doc(2.0), t2_doc(1.85), threshold=0.05).exit_code == 1

    def test_improvement_is_not_a_regression(self):
        assert diff_bench(t2_doc(2.0), t2_doc(3.0)).exit_code == 0

    def test_cell_set_changes_are_reported_not_fatal(self):
        old = t2_doc(2.0)
        new = t2_doc(2.0)
        del new["mips"]["one_min"]
        new["mips"]["step_all"] = {"alpha": 0.1}
        diff = diff_bench(old, new)
        assert "one_min/alpha" in diff.only_old
        assert "step_all/alpha" in diff.only_new
        assert diff.exit_code == 0

    def test_experiment_mismatch_is_surfaced(self):
        other = t2_doc(2.0)
        other["experiment"] = "chaining_speedup"
        diff = diff_bench(t2_doc(2.0), other)
        assert "vs" in diff.experiment

    def test_as_dict_round_trips_json(self):
        diff = diff_bench(t2_doc(2.0), t2_doc(1.7))
        doc = json.loads(json.dumps(diff.as_dict()))
        assert doc["regressions"] == 1
        regressed = [c for c in doc["cells"] if c["regressed"]]
        assert regressed[0]["key"] == "block_min/alpha"

    def test_render_flags_regressions(self):
        text = render_diff(diff_bench(t2_doc(2.0), t2_doc(1.7)))
        assert "REGRESSED" in text
        assert "-15.0%" in text
        assert "1 regression(s)" in text


class TestBenchTrail:
    def test_summarizes_a_results_directory(self, tmp_path):
        (tmp_path / "BENCH_T2.json").write_text(json.dumps(t2_doc(2.0)))
        (tmp_path / "BENCH_A4.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("ignored")
        rows = bench_trail(str(tmp_path))
        assert [row["file"] for row in rows] == [
            "BENCH_A4.json", "BENCH_T2.json"
        ]
        assert rows[0]["experiment"] == "(unreadable)"
        assert rows[1]["cells"] == 4
        assert rows[1]["geomean_mips"] > 0
        text = render_trail(rows)
        assert "BENCH_T2.json" in text and "(unreadable)" in text

    def test_missing_directory_is_empty(self, tmp_path):
        assert bench_trail(str(tmp_path / "nope")) == []

    def test_load_bench_reads_files(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text(json.dumps({"experiment": "x"}))
        assert load_bench(str(path))["experiment"] == "x"
