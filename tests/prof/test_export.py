"""Export-format tests: Chrome trace schema, folded stacks, documents."""

import json

import pytest

from repro.prof.export import (
    chrome_trace,
    folded_stacks,
    profile_document,
    render_profile_text,
    write_chrome_trace,
)
from repro.prof.profiler import NULL_PROF, Profiler
from repro.prof.spans import CHAIN_PATCH, EXECUTE, TRANSLATE


@pytest.fixture()
def prof():
    """A deterministic populated profiler (spans, units, PC hits)."""
    p = Profiler()
    clock = iter(range(0, 100_000_000, 1_000_000))  # 1 ms ticks
    p.spans._clock = lambda: next(clock)
    p.spans.origin_ns = 0
    with p.spans.span(EXECUTE):
        with p.spans.span(TRANSLATE):
            pass
        with p.spans.span(CHAIN_PATCH):
            pass
    p.guest.register_unit(0x1000, length=4, parts=1)
    p.guest.register_unit(0x2000, length=16, parts=3)
    p.guest.add_unit_time(0x1000, 1_000, executed=4)
    p.guest.add_unit_time(0x2000, 9_000, executed=160, chained=True)
    p.guest.add_pc_hits({0x1000: 5})
    p.meta["isa"] = "alpha"
    p.meta["buildset"] = "block_min"
    return p


class TestChromeTrace:
    def test_schema_perfetto_accepts(self, prof):
        doc = chrome_trace(prof)
        # Chrome Trace Event Format, JSON Object Format: the traceEvents
        # array is the only required member; every event needs name/ph,
        # and complete events ("X") need numeric ts + dur.
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata record
        spans = events[1:]
        assert len(spans) == 3
        for event in spans:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert {"name", "cat", "pid", "tid"} <= set(event)
        json.dumps(doc)  # fully serializable

    def test_other_data_carries_meta_and_hot_blocks(self, prof):
        doc = chrome_trace(prof, meta={"command": "test"})
        other = doc["otherData"]
        assert other["isa"] == "alpha"
        assert other["command"] == "test"
        assert other["events_dropped"] == 0
        assert other["hot_blocks"][0]["pc"] == hex(0x2000)
        assert other["hot_blocks"][0]["share"] == 0.9

    def test_write_round_trips(self, prof, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), prof)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(chrome_trace(prof)))


class TestFoldedStacks:
    def test_format_is_path_space_weight(self, prof):
        lines = folded_stacks(prof).splitlines()
        assert lines  # at least the execute self-time
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert all(part for part in path.split(";"))
        assert any(line.startswith(f"{EXECUTE};{TRANSLATE} ") for line in lines)

    def test_zero_weight_paths_are_omitted(self):
        assert folded_stacks(NULL_PROF) == ""


class TestProfileDocument:
    def test_document_shape(self, prof):
        doc = profile_document(prof, meta={"ilen": 4})
        assert set(doc) == {
            "meta", "spans", "events_dropped", "hot_blocks", "hot_pcs"
        }
        assert doc["meta"]["isa"] == "alpha"
        assert EXECUTE in doc["spans"]
        assert doc["hot_blocks"][0]["end"] == 0x2000 + 16 * 4
        assert doc["hot_pcs"][0] == {"pc": 0x1000, "hits": 5, "samples": 0}
        json.dumps(doc)


class TestRenderText:
    def test_mentions_spans_and_hot_units(self, prof):
        text = render_profile_text(prof)
        assert "== profile ==" in text
        assert "isa=alpha" in text
        assert EXECUTE in text and TRANSLATE in text
        assert "Hot translated units" in text
        assert "0x2000..0x2040" in text
        assert "90.0%" in text
        assert "WARNING" not in text

    def test_warns_on_dropped_events(self, prof):
        prof.spans.events_dropped = 9
        text = render_profile_text(prof)
        assert "WARNING" in text and "9" in text

    def test_empty_profiler_renders(self):
        text = render_profile_text(Profiler())
        assert "no spans recorded" in text
