"""Unit tests for the nested wall-clock span tracer."""

import pytest

from repro.prof.spans import (
    EXECUTE,
    NULL_SPANS,
    TRANSLATE,
    NullSpanTracer,
    SpanNode,
    SpanTracer,
)


class FakeClock:
    """Deterministic nanosecond clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


@pytest.fixture()
def clock():
    return FakeClock()


class TestSpanTracer:
    def test_nesting_builds_the_tree(self, clock):
        t = SpanTracer(clock=clock)
        t.begin(EXECUTE)
        clock.advance(100)
        t.begin(TRANSLATE)
        clock.advance(40)
        t.end()
        clock.advance(60)
        t.end()
        tree = t.tree()
        assert tree[EXECUTE]["total_ns"] == 200
        assert tree[EXECUTE]["children"][TRANSLATE]["total_ns"] == 40
        assert TRANSLATE not in tree  # nested, not top-level

    def test_self_time_excludes_children(self, clock):
        t = SpanTracer(clock=clock)
        with t.span(EXECUTE):
            clock.advance(100)
            with t.span(TRANSLATE):
                clock.advance(40)
        node = t.tree()[EXECUTE]
        assert node["total_ns"] == 140
        assert node["self_ns"] == 100
        assert node["children"][TRANSLATE]["self_ns"] == 40

    def test_count_min_max_aggregate_per_path(self, clock):
        t = SpanTracer(clock=clock)
        for dur in (30, 10, 20):
            with t.span(TRANSLATE):
                clock.advance(dur)
        node = t.tree()[TRANSLATE]
        assert node["count"] == 3
        assert node["total_ns"] == 60
        assert node["min_ns"] == 10
        assert node["max_ns"] == 30

    def test_same_name_at_different_depths_is_two_nodes(self, clock):
        t = SpanTracer(clock=clock)
        with t.span(TRANSLATE):
            clock.advance(5)
        with t.span(EXECUTE):
            with t.span(TRANSLATE):
                clock.advance(7)
        tree = t.tree()
        assert tree[TRANSLATE]["total_ns"] == 5
        assert tree[EXECUTE]["children"][TRANSLATE]["total_ns"] == 7

    def test_span_is_exception_safe(self, clock):
        t = SpanTracer(clock=clock)
        with pytest.raises(RuntimeError):
            with t.span(EXECUTE):
                clock.advance(10)
                raise RuntimeError("guest exited")
        assert t.depth == 0
        assert t.tree()[EXECUTE]["count"] == 1

    def test_events_record_depth_and_origin_relative_start(self, clock):
        clock.advance(1000)  # non-zero construction time
        t = SpanTracer(clock=clock)
        t.begin(EXECUTE)
        clock.advance(100)
        t.begin(TRANSLATE)
        clock.advance(40)
        t.end()
        t.end()
        # completed inner-first: (name, depth, start_ns, dur_ns)
        assert t.events == [
            (TRANSLATE, 1, 100, 40),
            (EXECUTE, 0, 0, 140),
        ]

    def test_event_cap_counts_drops_but_keeps_aggregates(self, clock):
        t = SpanTracer(clock=clock, max_events=2)
        for _ in range(5):
            with t.span(TRANSLATE):
                clock.advance(1)
        assert len(t.events) == 2
        assert t.events_dropped == 3
        assert t.tree()[TRANSLATE]["count"] == 5  # the tree never drops

    def test_clear_resets_everything(self, clock):
        t = SpanTracer(clock=clock)
        with t.span(EXECUTE):
            clock.advance(10)
        t.clear()
        assert t.tree() == {}
        assert t.events == []
        assert t.events_dropped == 0
        assert t.depth == 0

    def test_paths_is_preorder(self, clock):
        t = SpanTracer(clock=clock)
        with t.span(EXECUTE):
            clock.advance(1)
            with t.span(TRANSLATE):
                clock.advance(1)
        with t.span(TRANSLATE):
            clock.advance(1)
        labels = [path for path, _ in t.paths()]
        assert labels == [(EXECUTE,), (EXECUTE, TRANSLATE), (TRANSLATE,)]


class TestSpanNode:
    def test_self_ns_never_negative(self):
        node = SpanNode("x")
        node.record(10)
        child = node.child("y")
        child.record(25)  # clock skew / re-entrancy artifacts
        assert node.self_ns == 0


class TestNullSpanTracer:
    def test_inert_and_shared_context(self):
        n = NullSpanTracer()
        ctx1 = n.span(EXECUTE)
        ctx2 = n.span(TRANSLATE)
        assert ctx1 is ctx2  # one shared nullcontext, no allocation
        with ctx1:
            pass
        n.begin("x")
        n.end()
        n.clear()
        assert n.tree() == {}
        assert n.paths() == []
        assert n.events == ()
        assert n.events_dropped == 0
        assert not n.enabled
        assert not NULL_SPANS.enabled
