"""Unit tests for semantic analysis (declarations -> IsaSpec)."""

import ast

import pytest

from repro.adl import load_isa_source
from repro.adl.errors import AnalysisError

MINIMAL = """
isa mini;
endian little;
ilen 4;
regfile R 4 u64;
field v u64;
format f { opcode[31:26]; ra[25:21]; }
accessor R(n) {
  decode %{ index = n %}
  read %{ value = R[index] %}
  write %{ R[index] = value %}
}
operandname s1 source (decode, read_s1) = v;
actions translate, fetch, decode, read_s1, evaluate;
action *@translate = %{ phys_pc = pc %}
action *@fetch = %{ instr_bits = __fetch(phys_pc) %}
class alu;
operand alu s1 R(ra);
instruction NOP format f : alu { match opcode == 0x00; }
action NOP@evaluate = %{ pass %}
buildset bs {
  entrypoint go = translate, fetch, decode, read_s1, evaluate;
}
"""


def analyze_src(extra="", base=MINIMAL):
    return load_isa_source(base + extra)


class TestBasics:
    def test_minimal_analyzes(self):
        spec = analyze_src()
        assert spec.name == "mini"
        assert spec.ilen == 4
        assert "R" in spec.regfiles
        assert spec.instructions[0].name == "NOP"

    def test_builtin_fields_present(self):
        spec = analyze_src()
        for name in ("pc", "phys_pc", "instr_bits", "next_pc", "fault"):
            assert name in spec.fields
            assert spec.fields[name].builtin

    def test_operand_id_field_autodeclared(self):
        spec = analyze_src()
        assert "s1_id" in spec.fields
        assert spec.fields["s1_id"].slot == "s1"
        assert spec.fields["v"].slot == "s1"

    def test_instruction_mask_value(self):
        spec = analyze_src()
        instr = spec.instructions[0]
        assert instr.mask == 0x3F << 26
        assert instr.value == 0

    def test_decode(self):
        spec = analyze_src()
        assert spec.decode(0x0000_0000) == 0
        assert spec.decode(0xFFFF_FFFF) is None

    def test_operand_code_instantiated(self):
        spec = analyze_src()
        instr = spec.instructions[0]
        decode_src = "\n".join(ast.unparse(s) for s in instr.action_code["decode"])
        read_src = "\n".join(ast.unparse(s) for s in instr.action_code["read_s1"])
        assert "s1_id = ra" in decode_src
        assert "v = R[s1_id]" in read_src

    def test_wildcard_actions_attached(self):
        spec = analyze_src()
        instr = spec.instructions[0]
        assert "translate" in instr.action_code
        assert "fetch" in instr.action_code

    def test_make_state(self):
        spec = analyze_src()
        state = spec.make_state()
        assert state.rf["R"] == [0, 0, 0, 0]


class TestErrors:
    def test_missing_actions_order(self):
        with pytest.raises(AnalysisError, match="actions"):
            load_isa_source("isa x;")

    def test_duplicate_field(self):
        with pytest.raises(AnalysisError, match="duplicate field"):
            analyze_src("field v u64;")

    def test_field_shadows_builtin(self):
        with pytest.raises(AnalysisError, match="builtin"):
            analyze_src("field pc u64;")

    def test_unknown_field_type(self):
        with pytest.raises(AnalysisError, match="unknown type"):
            analyze_src("field w f32;")

    def test_bitfield_exceeds_word(self):
        with pytest.raises(AnalysisError, match="exceeds"):
            analyze_src("format g { x[32:0]; }")

    def test_bitfield_collides_with_field(self):
        with pytest.raises(AnalysisError, match="collides"):
            analyze_src("format g { v[3:0]; }")

    def test_unknown_accessor(self):
        with pytest.raises(AnalysisError, match="unknown accessor"):
            analyze_src("operand alu s1 Q(ra);")

    def test_wrong_accessor_arity(self):
        with pytest.raises(AnalysisError, match="argument"):
            analyze_src("operand alu s1 R(ra, ra);")

    def test_unknown_operand_target(self):
        with pytest.raises(AnalysisError, match="not a class or instruction"):
            analyze_src("operand nosuch s1 R(ra);")

    def test_action_unknown_name(self):
        with pytest.raises(AnalysisError, match="not in the 'actions' order"):
            analyze_src("action NOP@no_such_step = %{ pass %}")

    def test_instruction_unknown_format(self):
        with pytest.raises(AnalysisError, match="unknown format"):
            analyze_src("instruction X format nosuch { match opcode == 1; }")

    def test_instruction_unknown_class(self):
        with pytest.raises(AnalysisError, match="unknown class"):
            analyze_src("instruction X format f : nosuch { match opcode == 1; }")

    def test_match_unknown_bitfield(self):
        with pytest.raises(AnalysisError, match="not in format"):
            analyze_src("instruction X format f { match nosuch == 1; }")

    def test_match_value_too_wide(self):
        with pytest.raises(AnalysisError, match="does not fit"):
            analyze_src("instruction X format f { match opcode == 0x100; }")

    def test_no_match_terms(self):
        with pytest.raises(AnalysisError, match="no match"):
            analyze_src("instruction X format f { }")

    def test_identical_decode_patterns(self):
        with pytest.raises(AnalysisError, match="identical decode"):
            analyze_src("instruction X format f { match opcode == 0; }")

    def test_identical_decode_patterns_carry_loc(self):
        with pytest.raises(AnalysisError) as exc:
            analyze_src("instruction X format f { match opcode == 0; }")
        assert exc.value.loc is not None
        assert exc.value.loc.line > 0

    def test_overlapping_ambiguous_patterns_rejected(self):
        # opcode-mask and ra-mask are incomparable: words with opcode == 0
        # and ra == 3 match both NOP and Y, and neither is more specific.
        with pytest.raises(AnalysisError, match="neither is more specific") as exc:
            analyze_src("instruction Y format f { match ra == 3; }")
        assert exc.value.loc is not None

    def test_strictly_specializing_pattern_allowed(self):
        spec = analyze_src(
            "instruction GEN format f { match opcode == 2; }\n"
            "instruction SPC format f { match opcode == 2, ra == 1; }\n"
        )
        spc_word = (2 << 26) | (1 << 21)
        gen_word = 2 << 26
        names = [i.name for i in spec.instructions]
        assert spec.decode(spc_word) == names.index("SPC")
        assert spec.decode(gen_word) == names.index("GEN")

    def test_unknown_name_in_snippet(self):
        with pytest.raises(AnalysisError, match="unknown name"):
            analyze_src(
                "instruction Y format f { match opcode == 1; }\n"
                "action Y@evaluate = %{ v = bogus_name + 1 %}"
            )

    def test_unknown_function_in_snippet(self):
        with pytest.raises(AnalysisError, match="unknown function"):
            analyze_src(
                "instruction Y format f { match opcode == 1; }\n"
                "action Y@evaluate = %{ v = bogus_fn(pc) %}"
            )

    def test_visibility_unknown_field(self):
        with pytest.raises(AnalysisError, match="unknown field"):
            analyze_src("buildset b2 { visibility hide zz; entrypoint go = fetch; }")

    def test_entrypoint_unknown_action(self):
        with pytest.raises(AnalysisError, match="unknown action"):
            analyze_src("buildset b2 { entrypoint go = zz; }")

    def test_buildset_without_entrypoints(self):
        with pytest.raises(AnalysisError, match="no entrypoints"):
            analyze_src("buildset b2 { speculation off; }")

    def test_block_entrypoint_must_be_alone(self):
        with pytest.raises(AnalysisError, match="only"):
            analyze_src(
                "buildset b2 { entrypoint block go = fetch; entrypoint x = decode; }"
            )


class TestOverrides:
    def test_later_action_overrides_earlier(self):
        spec = analyze_src("action NOP@evaluate = %{ v = 1 %}")
        instr = spec.instructions[0]
        assert "v = 1" in ast.unparse(instr.action_code["evaluate"][0])

    def test_instruction_action_beats_class_action(self):
        spec = analyze_src(
            "action alu@evaluate = %{ v = 2 %}\n"
            "instruction W format f : alu { match opcode == 3; }\n"
            "action W@evaluate = %{ v = 3 %}"
        )
        w = spec.instruction("W")
        assert "v = 3" in ast.unparse(w.action_code["evaluate"][0])
        # NOP keeps its own explicit action (overridden earlier in file
        # order by nothing; instruction-specific beats class).
        nop = spec.instruction("NOP")
        assert "pass" in ast.unparse(nop.action_code["evaluate"][0])

    def test_instruction_operand_overrides_class(self):
        spec = analyze_src(
            "instruction V format f : alu { match opcode == 4; }\n"
            "operand V s1 R(opcode);"
        )
        v = spec.instruction("V")
        decode_src = ast.unparse(v.action_code["decode"][0])
        assert "s1_id = opcode" in decode_src


class TestBuildsetResolution:
    def test_visibility_default_show_all(self):
        spec = analyze_src()
        assert spec.buildsets["bs"].visible == frozenset(spec.fields)

    def test_hide_all_keeps_minimum(self):
        spec = analyze_src(
            "buildset m { visibility hide all; entrypoint go = translate, fetch, decode, read_s1, evaluate; }"
        )
        visible = spec.buildsets["m"].visible
        assert visible == {"pc", "phys_pc", "instr_bits", "next_pc", "fault"}

    def test_hide_cannot_remove_minimum(self):
        spec = analyze_src(
            "buildset m { visibility hide pc; entrypoint go = fetch; }"
        )
        assert "pc" in spec.buildsets["m"].visible

    def test_semantic_detail_classification(self, toy_spec):
        assert toy_spec.buildsets["one_all"].semantic_detail == "one"
        assert toy_spec.buildsets["step_all"].semantic_detail == "step"
        assert toy_spec.buildsets["block_min"].semantic_detail == "block"

    def test_group_expansion(self, toy_spec):
        ep = toy_spec.buildsets["one_all"].entrypoints[0]
        assert "read_src1" in ep.actions and "read_src2" in ep.actions
        assert "read_operands" not in ep.actions


class TestToyFixture:
    def test_toy_full_analysis(self, toy_spec):
        assert toy_spec.name == "toy"
        assert len(toy_spec.instructions) == 16
        assert set(toy_spec.buildsets) >= {
            "one_all",
            "one_min",
            "one_all_spec",
            "step_all",
            "block_min",
            "block_all",
            "block_min_spec",
        }

    def test_toy_decode_add(self, toy_spec):
        word = (0x01 << 26) | (1 << 21) | (2 << 16) | (3 << 11)
        index = toy_spec.decode(word)
        assert toy_spec.instructions[index].name == "ADD"

    def test_toy_signed_bitfield(self, toy_spec):
        bf = toy_spec.formats["iform"].bitfields["imm"]
        assert bf.extract(0x0000FFFF) == -1
        assert bf.extract(0x00007FFF) == 0x7FFF
