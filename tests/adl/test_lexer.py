"""Unit tests for the ADL tokenizer."""

import pytest

from repro.adl.errors import LexError
from repro.adl.lexer import TokKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        tokens = tokenize("field effective_addr u64;")
        assert [t.text for t in tokens[:-1]] == ["field", "effective_addr", "u64", ";"]
        assert tokens[-1].kind is TokKind.EOF

    def test_decimal_number(self):
        token = tokenize("42")[0]
        assert token.kind is TokKind.NUMBER
        assert token.value == 42

    def test_hex_number(self):
        assert tokenize("0x2A")[0].value == 42

    def test_binary_number(self):
        assert tokenize("0b101")[0].value == 5

    def test_hex_without_digits_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x;")

    def test_double_equals_is_one_token(self):
        assert texts("opcode == 0x10") == ["opcode", "==", "0x10"]

    def test_assignment_vs_equality(self):
        assert texts("a = b == c") == ["a", "=", "b", "==", "c"]

    def test_string_literal(self):
        token = tokenize('include "common.lis";')[1]
        assert token.kind is TokKind.STRING
        assert token.text == "common.lis"

    def test_unterminated_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('include "oops')

    def test_unexpected_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("field $x;")


class TestSnippets:
    def test_snippet_capture(self):
        token = tokenize("%{ x = a + b %}")[0]
        assert token.kind is TokKind.SNIPPET
        assert token.text.strip() == "x = a + b"

    def test_nested_snippet_braces(self):
        token = tokenize("%{ outer %{ inner %} tail %}")[0]
        assert "inner" in token.text and "tail" in token.text

    def test_multiline_snippet_preserves_newlines(self):
        token = tokenize("%{\n  a = 1\n  b = 2\n%}")[0]
        assert token.text == "\n  a = 1\n  b = 2\n"

    def test_unterminated_snippet_rejected(self):
        with pytest.raises(LexError):
            tokenize("%{ x = 1")


class TestTrivia:
    def test_line_comments_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* c1 */ b") == ["a", "b"]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_locations_track_lines(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].loc.line == 1
        assert tokens[1].loc.line == 2
        assert tokens[1].loc.column == 3

    def test_empty_source_is_just_eof(self):
        tokens = tokenize("  \n\t ")
        assert len(tokens) == 1
        assert tokens[0].kind is TokKind.EOF
