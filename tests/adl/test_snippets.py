"""Unit tests for snippet parsing, dataflow facts, renaming and folding."""

import ast

import pytest

from repro.adl.errors import SnippetError
from repro.adl.snippets import (
    analyze_stmt,
    analyze_stmts,
    fold_constants,
    parse_snippet,
    propagate_constants,
    rename_names,
)
from repro.ops import PURE_NAMESPACE


def src(stmts):
    return "\n".join(ast.unparse(s) for s in stmts)


class TestParseSnippet:
    def test_simple_assignment(self):
        stmts = parse_snippet(" x = a + b ")
        assert len(stmts) == 1
        assert isinstance(stmts[0], ast.Assign)

    def test_multiline_dedent(self):
        stmts = parse_snippet("\n  a = 1\n  if a:\n      b = 2\n")
        assert len(stmts) == 2

    def test_syntax_error_reported(self):
        with pytest.raises(SnippetError):
            parse_snippet("x = = 1")

    @pytest.mark.parametrize(
        "bad",
        [
            "import os",
            "for i in x:\n    pass",
            "while x:\n    pass",
            "def f():\n    pass",
            "x.y = 1",
            "lambda: 1",
        ],
    )
    def test_disallowed_constructs(self, bad):
        with pytest.raises(SnippetError):
            parse_snippet(bad)


class TestFacts:
    def test_reads_and_writes(self):
        (stmt,) = parse_snippet("ea = base + disp")
        facts = analyze_stmt(stmt)
        assert facts.reads == {"base", "disp"}
        assert facts.writes == {"ea"}
        assert not facts.has_effect

    def test_subscript_store_is_effect(self):
        (stmt,) = parse_snippet("R[i] = v")
        facts = analyze_stmt(stmt)
        assert facts.subscript_writes == {"R"}
        assert facts.reads >= {"i", "v"}
        assert facts.has_effect

    def test_subscript_load_is_read(self):
        (stmt,) = parse_snippet("v = R[i]")
        facts = analyze_stmt(stmt)
        assert facts.reads == {"R", "i"}
        assert not facts.has_effect

    def test_augassign_reads_target(self):
        (stmt,) = parse_snippet("x += y")
        facts = analyze_stmt(stmt)
        assert facts.reads == {"x", "y"}
        assert facts.writes == {"x"}

    def test_augassign_subscript(self):
        (stmt,) = parse_snippet("R[i] += y")
        facts = analyze_stmt(stmt)
        assert facts.subscript_writes == {"R"}

    def test_effect_function_call(self):
        (stmt,) = parse_snippet("__mem_write(addr, 8, v)")
        facts = analyze_stmt(stmt)
        assert facts.effects == {"__mem_write"}
        assert facts.has_effect

    def test_pure_function_call(self):
        (stmt,) = parse_snippet("x = u64(a + b)")
        facts = analyze_stmt(stmt)
        assert not facts.has_effect
        assert "u64" not in facts.reads

    def test_unknown_call_is_conservative(self):
        (stmt,) = parse_snippet("x = mystery(a)")
        facts = analyze_stmt(stmt)
        assert facts.unknown_calls == {"mystery"}
        assert facts.has_effect

    def test_if_statement_collects_both_branches(self):
        (stmt,) = parse_snippet("\nif t:\n    a = x\nelse:\n    a = y\n")
        facts = analyze_stmt(stmt)
        assert facts.reads == {"t", "x", "y"}
        assert facts.writes == {"a"}

    def test_analyze_stmts_union(self):
        stmts = parse_snippet("\na = x\nb = y\n")
        facts = analyze_stmts(stmts)
        assert facts.reads == {"x", "y"}
        assert facts.writes == {"a", "b"}


class TestRename:
    def test_rename_load_and_store(self):
        stmts = parse_snippet("value = R[index]")
        out = rename_names(stmts, {"value": "src1_val", "index": "src1_id"})
        assert src(out) == "src1_val = R[src1_id]"

    def test_substitute_expression_at_load(self):
        stmts = parse_snippet("index = n")
        out = rename_names(stmts, {"n": ast.Constant(5), "index": "src2_id"})
        assert src(out) == "src2_id = 5"

    def test_substitute_expression_at_store_rejected(self):
        stmts = parse_snippet("n = 1")
        with pytest.raises(SnippetError):
            rename_names(stmts, {"n": ast.Constant(5)})

    def test_function_names_not_renamed(self):
        stmts = parse_snippet("x = u64(u64)") if False else parse_snippet("x = u64(y)")
        out = rename_names(stmts, {"u64": "nope", "y": "z"})
        assert src(out) == "x = u64(z)"

    def test_original_untouched(self):
        stmts = parse_snippet("value = R[index]")
        rename_names(stmts, {"value": "v2"})
        assert src(stmts) == "value = R[index]"


class TestFolding:
    def test_binop_folds(self):
        stmts = parse_snippet("x = a + 2 * 3")
        out = fold_constants(stmts, {"a": 10})
        assert src(out) == "x = 16"

    def test_function_folds(self):
        stmts = parse_snippet("x = sext(disp, 16)")
        out = fold_constants(stmts, {"disp": 0xFFFF}, PURE_NAMESPACE)
        assert src(out) == "x = -1"

    def test_if_with_constant_test_flattens(self):
        stmts = parse_snippet("\nif cond == 14:\n    x = 1\nelse:\n    x = 2\n")
        out = fold_constants(stmts, {"cond": 14})
        assert src(out) == "x = 1"

    def test_if_with_unknown_test_kept(self):
        stmts = parse_snippet("\nif c:\n    x = 1\n")
        out = fold_constants(stmts, {})
        assert isinstance(out[0], ast.If)

    def test_written_names_not_propagated(self):
        stmts = parse_snippet("\na = b\nx = a + 1\n")
        out = fold_constants(stmts, {"a": 5})
        # `a` is written inside the snippet, so the env value must not leak.
        assert src(out) == "a = b\nx = a + 1"

    def test_boolop_short_circuit(self):
        stmts = parse_snippet("x = flag and y")
        out = fold_constants(stmts, {"flag": True})
        assert src(out) == "x = y"

    def test_ifexp_folds(self):
        stmts = parse_snippet("x = 1 if lit else 2")
        out = fold_constants(stmts, {"lit": 0})
        assert src(out) == "x = 2"

    def test_division_by_zero_left_unfolded(self):
        stmts = parse_snippet("x = 1 // d")
        out = fold_constants(stmts, {"d": 0})
        assert "1 // 0" in src(out)

    def test_propagate_constants_chains(self):
        stmts = parse_snippet("\nsrc1_id = ra\nv = R[src1_id]\n")
        out, env = propagate_constants(stmts, {"ra": 7}, PURE_NAMESPACE)
        assert "R[7]" in src(out)
        assert env["src1_id"] == 7

    def test_propagate_skips_multiply_assigned(self):
        stmts = parse_snippet("\nx = 1\nif c:\n    x = 2\ny = x\n")
        out, env = propagate_constants(stmts, {}, PURE_NAMESPACE)
        assert "x" not in env
        assert "y = x" in src(out)
