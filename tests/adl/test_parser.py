"""Unit tests for the ADL parser."""

import pytest

from repro.adl import syntax as syn
from repro.adl.errors import ParseError
from repro.adl.parser import parse_files, parse_source


def one(source):
    decls = parse_source(source)
    assert len(decls) == 1
    return decls[0]


class TestSimpleDecls:
    def test_isa(self):
        decl = one("isa alpha;")
        assert isinstance(decl, syn.IsaDecl)
        assert decl.name == "alpha"

    def test_endian(self):
        assert one("endian big;").value == "big"

    def test_endian_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_source("endian middle;")

    def test_ilen(self):
        assert one("ilen 4;").value == 4

    def test_regfile(self):
        decl = one("regfile R 32 u64;")
        assert (decl.name, decl.count, decl.type) == ("R", 32, "u64")

    def test_sreg(self):
        decl = one("sreg lr u32;")
        assert (decl.name, decl.type) == ("lr", "u32")

    def test_field(self):
        decl = one("field effective_addr u64;")
        assert (decl.name, decl.type) == ("effective_addr", "u64")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("isa alpha")

    def test_unknown_declaration(self):
        with pytest.raises(ParseError):
            parse_source("frobnicate x;")


class TestFormat:
    def test_format_with_bitfields(self):
        decl = one("format op { opcode[31:26]; disp[15:0] signed; }")
        assert decl.name == "op"
        assert decl.bitfields[0].name == "opcode"
        assert (decl.bitfields[0].hi, decl.bitfields[0].lo) == (31, 26)
        assert not decl.bitfields[0].signed
        assert decl.bitfields[1].signed

    def test_reversed_range_rejected(self):
        with pytest.raises(ParseError):
            parse_source("format op { x[0:5]; }")


class TestAccessor:
    def test_full_accessor(self):
        decl = one(
            "accessor R(n) { decode %{ index = n %} read %{ value = R[index] %} "
            "write %{ R[index] = value %} }"
        )
        assert decl.params == ("n",)
        assert "index = n" in decl.decode
        assert "R[index]" in decl.read

    def test_accessor_without_params(self):
        decl = one("accessor Z() { read %{ value = 0 %} }")
        assert decl.params == ()
        assert decl.decode is None

    def test_duplicate_section_rejected(self):
        with pytest.raises(ParseError):
            parse_source("accessor R() { read %{ a = 1 %} read %{ a = 2 %} }")

    def test_unknown_section_rejected(self):
        with pytest.raises(ParseError):
            parse_source("accessor R() { fetch %{ a = 1 %} }")


class TestOperandConstructs:
    def test_operandname(self):
        decl = one("operandname src1 source (decode_instruction, read_src1) = src1_val;")
        assert decl.name == "src1"
        assert decl.direction == "source"
        assert decl.decode_action == "decode_instruction"
        assert decl.access_action == "read_src1"
        assert decl.value_field == "src1_val"

    def test_operandname_bad_direction(self):
        with pytest.raises(ParseError):
            parse_source("operandname src1 input (a, b) = v;")

    def test_operand_attach(self):
        decl = one("operand ralu src1 R(ra);")
        assert (decl.target, decl.opname, decl.accessor) == ("ralu", "src1", "R")
        assert decl.args == ("ra",)

    def test_operand_attach_numeric_arg(self):
        assert one("operand ralu src2 IMM(16);").args == (16,)

    def test_operand_attach_no_args(self):
        assert one("operand ralu src2 LIT();").args == ()


class TestActionsAndInstructions:
    def test_action(self):
        decl = one("action load@compute_effective_addr = %{ ea = a + b %}")
        assert decl.target == "load"
        assert decl.action == "compute_effective_addr"
        assert "ea = a + b" in decl.snippet

    def test_wildcard_action(self):
        assert one("action *@translate_pc = %{ phys_pc = pc %}").target == "*"

    def test_actions_order(self):
        decl = one("actions fetch, decode, execute;")
        assert decl.names == ("fetch", "decode", "execute")

    def test_instruction_full(self):
        decl = one(
            "instruction ADDQ format oper : intop, rcw { match opcode == 0x10, fn == 0x20; }"
        )
        assert decl.name == "ADDQ"
        assert decl.format == "oper"
        assert decl.classes == ("intop", "rcw")
        assert [[(m.field, m.value) for m in alt] for alt in decl.matches] == [
            [("opcode", 0x10), ("fn", 0x20)],
        ]

    def test_instruction_multiple_match_alternatives(self):
        decl = one(
            "instruction ADD format f { match op == 4, i == 1; match op == 4, i == 0; }"
        )
        assert len(decl.matches) == 2

    def test_instruction_without_classes(self):
        decl = one("instruction NOP format oper { match opcode == 0; }")
        assert decl.classes == ()

    def test_group(self):
        decl = one("group read_operands = read_src1, read_src2;")
        assert decl.actions == ("read_src1", "read_src2")

    def test_predicate(self):
        decl = one("predicate cond_ok after check_cond;")
        assert (decl.field, decl.after_action) == ("cond_ok", "check_cond")

    def test_helper(self):
        decl = one("helper __check_cond = %{\ndef __check_cond(c, f):\n    return True\n%}")
        assert decl.name == "__check_cond"
        assert "def __check_cond" in decl.snippet


class TestBuildset:
    SOURCE = """
    buildset one_all {
      speculation on;
      visibility hide all;
      visibility show pc, fault;
      entrypoint do_in_one = fetch, decode, execute;
      entrypoint block do_block = fetch, decode, execute;
    }
    """

    def test_buildset(self):
        decl = one(self.SOURCE)
        assert decl.name == "one_all"
        spec_stmt, hide_stmt, show_stmt, ep1, ep2 = decl.statements
        assert spec_stmt.enabled
        assert hide_stmt.mode == "hide" and hide_stmt.names == ()
        assert show_stmt.names == ("pc", "fault")
        assert not ep1.block and ep1.actions == ("fetch", "decode", "execute")
        assert ep2.block and ep2.name == "do_block"

    def test_bad_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_source("buildset b { frobnicate; }")


class TestIncludes:
    def test_include_expansion(self, tmp_path):
        (tmp_path / "inner.lis").write_text("field x u64;")
        outer = tmp_path / "outer.lis"
        outer.write_text('include "inner.lis";\nfield y u64;')
        decls = parse_files([str(outer)])
        assert [d.name for d in decls] == ["x", "y"]

    def test_include_loop_is_harmless(self, tmp_path):
        a = tmp_path / "a.lis"
        b = tmp_path / "b.lis"
        a.write_text('include "b.lis";\nfield xa u64;')
        b.write_text('include "a.lis";\nfield xb u64;')
        decls = parse_files([str(a)])
        assert [d.name for d in decls] == ["xb", "xa"]


class TestFixtureParses:
    def test_toy_fixture_parses(self, toy_paths):
        decls = parse_files(toy_paths)
        names = [d.name for d in decls if isinstance(d, syn.InstructionDecl)]
        assert "ADD" in names and "SYS" in names
        buildsets = [d.name for d in decls if isinstance(d, syn.BuildsetDecl)]
        assert "one_all" in buildsets and "block_min" in buildsets
