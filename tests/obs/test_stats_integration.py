"""End-to-end checks of the --stats / stats CLI surface.

Drives :func:`repro.cli.main` exactly as a user would and asserts the
machine-readable output carries real measurements: nonzero code-cache
hits, per-entrypoint invocation counts that agree with the executed
instruction count, and per-syscall counters.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main


def _run_json(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        rc = main(argv)
    return rc, json.loads(out.getvalue())


class TestKernelsStatsJson:
    @pytest.fixture(scope="class")
    def doc(self):
        rc, doc = _run_json(["kernels", "alpha", "block_min", "--stats=json"])
        assert rc == 0
        return doc

    def test_all_kernels_pass(self, doc):
        assert doc["failures"] == 0
        assert all(k["correct"] for k in doc["kernels"])

    def test_code_cache_hits_and_misses(self, doc):
        cache = doc["stats"]["counters"]["code_cache"]
        assert cache["hits"] > 0
        assert cache["misses"] > 0
        assert cache["hits"] > cache["misses"]  # loops re-enter blocks

    def test_entrypoint_counts_present(self, doc):
        entrypoints = doc["stats"]["counters"]["entrypoints"]
        assert entrypoints["do_block"] > 0

    def test_syscall_counts(self, doc):
        # Every kernel exits via SYS_EXIT, so the counter equals the
        # number of kernels run.
        syscalls = doc["stats"]["counters"]["syscall"]
        assert syscalls["exit"] == len(doc["kernels"])

    def test_instruction_totals_agree(self, doc):
        run = doc["stats"]["counters"]["run"]
        assert run["instructions"] == sum(
            k["instructions"] for k in doc["kernels"]
        )
        assert run["kernels"] == len(doc["kernels"])

    def test_translation_probes(self, doc):
        translate = doc["stats"]["counters"]["translate"]
        cache = doc["stats"]["counters"]["code_cache"]
        assert translate["blocks"] == cache["misses"]
        assert translate["instructions"] > 0

    def test_chain_counters(self, doc):
        chain = doc["stats"]["counters"]["code_cache"]["chain"]
        assert chain["links"] > 0
        assert chain["chained"] > 0  # loops take the patched fast path

    def test_superblock_counters(self, doc):
        translate = doc["stats"]["counters"]["translate"]
        assert translate["superblocks"] > 0
        # superblocks are multi-block by definition
        assert translate["superblock_instructions"] > translate["superblocks"]


class TestBlockTuningFlags:
    def test_no_chain_flag_disables_chaining(self):
        rc, doc = _run_json(
            ["kernels", "alpha", "block_min", "--no-chain", "--stats=json"]
        )
        assert rc == 0
        assert doc["failures"] == 0
        chain = doc["stats"]["counters"]["code_cache"]["chain"]
        assert chain["links"] == 0
        assert chain["chained"] == 0

    def test_superblock_zero_restores_basic_blocks(self):
        rc, doc = _run_json(
            ["kernels", "alpha", "block_min", "--superblock", "0",
             "--stats=json"]
        )
        assert rc == 0
        assert doc["failures"] == 0
        # the counter only exists when a superblock actually formed
        assert "superblocks" not in doc["stats"]["counters"]["translate"]


class TestStatsSubcommand:
    def test_one_interface_counts_every_instruction(self):
        rc, doc = _run_json(
            ["stats", "alpha", "one_min", "--kernel", "fib", "--json"]
        )
        assert rc == 0
        executed = doc["kernels"][0]["instructions"]
        entrypoints = doc["stats"]["counters"]["entrypoints"]
        # The One interface funnels every instruction through do_in_one,
        # so the probe count must equal the executed-instruction count.
        assert entrypoints["do_in_one"] == executed
        assert executed > 0

    def test_text_mode_prints_report(self):
        out = io.StringIO()
        with redirect_stdout(out):
            rc = main(["stats", "alpha", "block_min", "--kernel", "fib"])
        assert rc == 0
        assert "code_cache" in out.getvalue()
        assert "hits" in out.getvalue()


class TestPlainJsonModes:
    def test_kernels_json_without_stats(self):
        rc, doc = _run_json(["kernels", "alpha", "one_min", "--json"])
        assert rc == 0
        assert "stats" not in doc
        assert doc["isa"] == "alpha"
        assert {k["kernel"] for k in doc["kernels"]} >= {"fib", "sort"}

    def test_table1_json(self):
        rc, doc = _run_json(["table1", "--json"])
        assert rc == 0
        assert {row["isa"] for row in doc} >= {"alpha"}
        assert all(row["buildsets"] > 0 for row in doc)
