"""Unit tests for the event ring buffer."""

import pytest

from repro.obs.events import NULL_EVENTS, EventRing, NullEventRing


class TestEventRing:
    def test_emit_and_snapshot_order(self):
        ring = EventRing(capacity=8)
        for i in range(3):
            ring.emit("syscall", number=i)
        events = ring.snapshot()
        assert [e.kind for e in events] == ["syscall"] * 3
        assert [dict(e.fields)["number"] for e in events] == [0, 1, 2]
        assert [e.seq for e in events] == [0, 1, 2]

    def test_wraparound_keeps_newest(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.emit("e", i=i)
        events = ring.snapshot()
        assert len(events) == 4
        assert [dict(e.fields)["i"] for e in events] == [6, 7, 8, 9]
        assert ring.emitted == 10
        assert ring.dropped == 6

    def test_no_drops_below_capacity(self):
        ring = EventRing(capacity=4)
        ring.emit("e")
        assert ring.dropped == 0
        assert len(ring) == 1

    def test_as_dict(self):
        ring = EventRing()
        ring.emit("rollback", depth=4)
        event = ring.snapshot()[0]
        assert event.as_dict() == {"seq": 0, "kind": "rollback", "depth": 4}

    def test_clear(self):
        ring = EventRing(capacity=4)
        ring.emit("e")
        ring.clear()
        assert ring.snapshot() == []
        assert ring.emitted == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestNullEventRing:
    def test_inert(self):
        ring = NullEventRing()
        ring.emit("e", x=1)
        ring.clear()
        assert ring.snapshot() == []
        assert len(ring) == 0
        assert ring.emitted == 0 and ring.dropped == 0
        assert not ring.enabled

    def test_shared_instance(self):
        assert isinstance(NULL_EVENTS, NullEventRing)
