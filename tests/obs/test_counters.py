"""Unit tests for the hierarchical counter store."""

from repro.obs.counters import NULL_COUNTERS, Counters, NullCounters


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("code_cache.hits")
        c.inc("code_cache.hits", 4)
        assert c.get("code_cache.hits") == 5
        assert c.get("absent") == 0
        assert c.get("absent", -1) == -1

    def test_put_is_gauge(self):
        c = Counters()
        c.put("code_cache.blocks", 10)
        c.put("code_cache.blocks", 7)
        assert c.get("code_cache.blocks") == 7

    def test_items_sorted(self):
        c = Counters()
        c.inc("b", 2)
        c.inc("a", 1)
        assert c.items() == [("a", 1), ("b", 2)]

    def test_as_tree_nests_dotted_names(self):
        c = Counters()
        c.inc("syscall.write", 3)
        c.inc("syscall.exit", 1)
        c.inc("run.instructions", 100)
        assert c.as_tree() == {
            "syscall": {"write": 3, "exit": 1},
            "run": {"instructions": 100},
        }

    def test_as_tree_leaf_and_prefix_collision(self):
        c = Counters()
        c.inc("rollback", 2)
        c.inc("rollback.depth.4", 1)
        tree = c.as_tree()
        assert tree["rollback"]["total"] == 2
        assert tree["rollback"]["depth"]["4"] == 1

    def test_as_tree_collision_is_order_independent(self):
        # The same pair registered leaf-first vs prefix-first must render
        # identically: items() sorts by name, so "x" always precedes
        # "x.y", but insertion order into the store must not matter.
        leaf_first, prefix_first = Counters(), Counters()
        leaf_first.inc("x", 5)
        leaf_first.inc("x.y", 7)
        prefix_first.inc("x.y", 7)
        prefix_first.inc("x", 5)
        expected = {"x": {"total": 5, "y": 7}}
        assert leaf_first.as_tree() == expected
        assert prefix_first.as_tree() == expected

    def test_as_tree_deep_collision_under_intermediate(self):
        c = Counters()
        c.inc("a.b", 1)
        c.inc("a.b.c.d", 2)
        assert c.as_tree() == {"a": {"b": {"total": 1, "c": {"d": 2}}}}

    def test_put_overwrites_prior_incs(self):
        # Gauge semantics: a put discards whatever inc accumulated, so
        # re-recording a cumulative source cannot double-count.
        c = Counters()
        c.inc("timing.icache.hits", 40)
        c.put("timing.icache.hits", 25)
        assert c.get("timing.icache.hits") == 25

    def test_inc_after_put_adds_to_gauge(self):
        c = Counters()
        c.put("blocks", 10)
        c.inc("blocks", 3)
        assert c.get("blocks") == 13

    def test_merge_sums(self):
        a, b = Counters(), Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_clear_and_len(self):
        c = Counters()
        c.inc("x")
        assert len(c) == 1
        c.clear()
        assert len(c) == 0


class TestNullCounters:
    def test_all_operations_are_inert(self):
        n = NullCounters()
        n.inc("x", 5)
        n.put("y", 9)
        n.merge(None)
        n.clear()
        assert n.get("x") == 0
        assert n.items() == []
        assert n.as_tree() == {}
        assert len(n) == 0
        assert not n.enabled

    def test_shared_instance(self):
        assert isinstance(NULL_COUNTERS, NullCounters)
        assert not NULL_COUNTERS.enabled
