"""Unit tests for stats aggregation and rendering."""

import json

from repro.obs import (
    Observability,
    collect,
    make_observability,
    render_json,
    render_text,
)
from repro.obs.probe import NULL_OBS
from repro.obs.report import record_timing_stats


def _populated_obs() -> Observability:
    obs = Observability(ring_capacity=16)
    obs.counters.inc("code_cache.hits", 12)
    obs.counters.inc("code_cache.misses", 3)
    obs.counters.inc("syscall.write", 2)
    obs.events.emit("syscall", number=4, pc=0x1000)
    obs.events.emit("cache_flush", dropped=3)
    return obs


class TestCollect:
    def test_document_shape(self):
        stats = collect(_populated_obs())
        assert stats["counters"]["code_cache"]["hits"] == 12
        assert stats["events"]["emitted"] == 2
        assert stats["events"]["dropped"] == 0
        kinds = [e["kind"] for e in stats["events"]["recent"]]
        assert kinds == ["syscall", "cache_flush"]

    def test_recent_limit(self):
        obs = Observability(ring_capacity=64)
        for i in range(40):
            obs.events.emit("e", i=i)
        stats = collect(obs, recent=5)
        assert len(stats["events"]["recent"]) == 5
        assert stats["events"]["recent"][-1]["i"] == 39

    def test_null_obs_collects_empty(self):
        stats = collect(NULL_OBS)
        assert stats["counters"] == {}
        assert stats["events"]["recent"] == []

    def test_ring_truncation_surfaces_as_counter_gauge(self):
        obs = Observability(ring_capacity=4)
        for i in range(10):
            obs.events.emit("e", i=i)
        stats = collect(obs)
        assert stats["events"]["dropped"] == 6
        assert stats["counters"]["events"]["dropped"] == 6
        # collect() is idempotent: put() is a gauge, not an inc
        assert collect(obs)["counters"]["events"]["dropped"] == 6


class TestRendering:
    def test_render_json_round_trips(self):
        stats = collect(_populated_obs())
        assert json.loads(render_json(stats)) == stats

    def test_render_text_mentions_counters_and_events(self):
        text = render_text(collect(_populated_obs()))
        assert "code_cache" in text
        assert "hits" in text
        assert "events: 2 emitted" in text
        assert "cache_flush" in text

    def test_render_text_empty(self):
        assert "no counters" in render_text(collect(NULL_OBS))

    def test_render_text_warns_on_dropped_events(self):
        obs = Observability(ring_capacity=4)
        for i in range(9):
            obs.events.emit("e", i=i)
        text = render_text(collect(obs))
        assert "WARNING" in text
        assert "5 event(s)" in text

    def test_render_text_no_warning_without_drops(self):
        assert "WARNING" not in render_text(collect(_populated_obs()))


class TestMakeObservability:
    def test_enabled_returns_live_instance(self):
        obs = make_observability()
        assert obs.enabled
        obs.counters.inc("x")
        assert obs.counters.get("x") == 1

    def test_disabled_returns_shared_null(self):
        assert make_observability(enabled=False) is NULL_OBS


class TestRecordTimingStats:
    def test_folds_cache_and_predictor_gauges(self):
        from repro.timing.branch import BimodalPredictor
        from repro.timing.cache import Cache

        class Model:
            icache = Cache("I1", size=1024, line=32, assoc=2)
            dcache = Cache("D1", size=1024, line=32, assoc=2)
            predictor = BimodalPredictor(entries=64)

        model = Model()
        model.icache.access(0x1000)
        model.icache.access(0x1000)
        model.predictor.update(0x1000, True)

        obs = Observability()
        record_timing_stats(obs, "functional_first", model)
        tree = obs.counters.as_tree()["timing"]["functional_first"]
        assert tree["icache"]["hits"] == 1
        assert tree["icache"]["misses"] == 1
        assert tree["branch"]["correct"] + tree["branch"]["mispredicted"] == 1

        # Gauge semantics: recording again must not double-count.
        record_timing_stats(obs, "functional_first", model)
        tree = obs.counters.as_tree()["timing"]["functional_first"]
        assert tree["icache"]["misses"] == 1
