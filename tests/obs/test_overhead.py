"""The zero-overhead-when-off guarantee, checked structurally.

The acceptance bar for the observability subsystem is that the default
(disabled) configuration regenerates exactly the seed's code: no probe
statements in generated entrypoints, no wrapper around the block
dispatch loop, identical translated block bodies.  Structural equality
of the generated artifacts is a stronger (and noise-free) check than a
wall-clock comparison.
"""

import dis

import pytest

from repro.isa.base import get_bundle
from repro.obs import make_observability
from repro.synth import SynthOptions, synthesize
from repro.synth.runtime import SynthesizedSimulator
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads.suite import assemble_kernel
from repro.workloads.kernels import SUITE


def _bytecode_len(fn) -> int:
    return sum(1 for _ in dis.get_instructions(fn.__code__))


@pytest.fixture(scope="module")
def alpha_spec():
    return get_bundle("alpha").load_spec()


class TestGeneratedModules:
    @pytest.mark.parametrize("buildset", ["one_min", "one_all", "step_all"])
    def test_disabled_source_has_no_probes(self, alpha_spec, buildset):
        off = synthesize(alpha_spec, buildset)  # defaults: observe=False
        on = synthesize(alpha_spec, buildset, SynthOptions(observe=True))
        assert "_obs_ep" not in off.source
        assert "_obs_ep" in on.source

    @pytest.mark.parametrize("buildset", ["one_min", "step_all"])
    def test_disabled_entrypoints_add_no_bytecode(self, alpha_spec, buildset):
        """Disabled synthesis is deterministic (== seed output) and the
        observe probe is the only bytecode difference when enabled."""
        off = synthesize(alpha_spec, buildset)
        off_again = synthesize(alpha_spec, buildset)
        on = synthesize(alpha_spec, buildset, SynthOptions(observe=True))
        assert off.source == off_again.source
        for name in off.entry_names:
            off_len = _bytecode_len(off.namespace[name])
            on_len = _bytecode_len(on.namespace[name])
            assert off_len == _bytecode_len(off_again.namespace[name])
            assert off_len < on_len


class TestTraceProbes:
    @pytest.mark.parametrize("buildset", ["one_min", "step_all"])
    def test_disabled_source_has_no_prof_probes(self, alpha_spec, buildset):
        off = synthesize(alpha_spec, buildset)  # defaults: trace=False
        on = synthesize(alpha_spec, buildset, SynthOptions(trace=True))
        assert "_prof_hits" not in off.source
        assert "_prof_hits" in on.source

    def test_trace_probe_is_bytecode_additive_only(self, alpha_spec):
        off = synthesize(alpha_spec, "one_min")
        on = synthesize(alpha_spec, "one_min", SynthOptions(trace=True))
        for name in off.entry_names:
            assert _bytecode_len(off.namespace[name]) < _bytecode_len(
                on.namespace[name]
            )

    def test_observe_alone_emits_no_prof_probes(self, alpha_spec):
        on = synthesize(alpha_spec, "one_min", SynthOptions(observe=True))
        assert "_prof_hits" not in on.source


class TestBlockPath:
    def test_disabled_do_block_is_the_plain_method(self, alpha_spec):
        generated = synthesize(alpha_spec, "block_min")
        sim = generated.make()
        # No per-instance override: the dispatch loop calls the original,
        # probe-free method, so Table II block_min speed is untouched.
        assert "do_block" not in sim.__dict__
        assert type(sim).do_block is SynthesizedSimulator.do_block

    def test_enabled_do_block_is_the_observed_variant(self, alpha_spec):
        generated = synthesize(
            alpha_spec, "block_min", SynthOptions(observe=True)
        )
        sim = generated.make(obs=make_observability())
        assert sim.do_block.__func__ is SynthesizedSimulator._do_block_observed

    def test_unprofiled_instance_binds_no_profiled_twins(self, alpha_spec):
        generated = synthesize(alpha_spec, "block_min")
        sim = generated.make()
        for name in ("do_block", "run", "_chain_link", "_do_syscall",
                     "rollback"):
            assert name not in sim.__dict__

    def test_profiled_instance_binds_the_profiled_dispatch(self, alpha_spec):
        generated = synthesize(
            alpha_spec, "block_min", SynthOptions(observe=True)
        )
        sim = generated.make(obs=make_observability(profile=True))
        assert sim.do_block.__func__ is SynthesizedSimulator._do_block_profiled
        assert sim.run.__func__ is SynthesizedSimulator._run_profiled
        assert (
            sim._chain_link.__func__
            is SynthesizedSimulator._chain_link_profiled
        )

    def test_translated_blocks_identical_on_and_off(self, alpha_spec):
        """Per-block-execution cost is unchanged: probes live outside the
        translated function, so its source is byte-identical either way."""
        image = assemble_kernel("alpha", SUITE["fib"], 5)
        sources = {}
        configs = {
            "off": (SynthOptions(), make_observability(enabled=False)),
            "observed": (SynthOptions(observe=True), make_observability()),
            # profiling times around the unit call, never inside it
            "profiled": (
                SynthOptions(observe=True),
                make_observability(profile=True),
            ),
        }
        for label, (options, obs) in configs.items():
            generated = synthesize(alpha_spec, "block_min", options)
            os_emu = OSEmulator(get_bundle("alpha").abi, obs=obs)
            sim = generated.make(syscall_handler=os_emu, obs=obs)
            load_image(sim.state, image, get_bundle("alpha").abi)
            sim.run(50)
            pc = next(iter(sim._cache))
            sources[label] = sim.block_source(pc)
        assert sources["off"] == sources["observed"] == sources["profiled"]
