"""Unit tests for program images and loading."""

import pytest

from repro.arch import ArchState, RegisterFileDef
from repro.sysemu import ProgramImage, SyscallABI, load_image


def make_state():
    return ArchState(regfiles=[RegisterFileDef("R", 16, "u32")])


ABI = SyscallABI(
    regfile="R", number_reg=0, arg_regs=(1, 2, 3), ret_reg=0, stack_reg=13
)


class TestProgramImage:
    def test_segments_and_size(self):
        image = ProgramImage(entry=0x1000)
        image.add_segment(0x1000, b"\x01\x02")
        image.add_segment(0x2000, b"\x03")
        assert image.size == 3

    def test_symbol_lookup(self):
        image = ProgramImage(entry=0, symbols={"main": 0x40})
        assert image.symbol("main") == 0x40
        with pytest.raises(KeyError, match="no symbol"):
            image.symbol("nope")


class TestLoadImage:
    def test_loads_segments_and_entry(self):
        image = ProgramImage(entry=0x1000)
        image.add_segment(0x1000, b"\xAA\xBB")
        state = make_state()
        load_image(state, image, ABI, stack_top=0x9000)
        assert state.pc == 0x1000
        assert state.mem.read_u8(0x1000) == 0xAA
        assert state.rf["R"][13] == 0x9000

    def test_no_abi_no_stack(self):
        image = ProgramImage(entry=0x20)
        state = make_state()
        load_image(state, image)
        assert state.rf["R"][13] == 0

    def test_stack_pointer_masked_to_width(self):
        image = ProgramImage(entry=0)
        state = make_state()
        load_image(state, image, ABI, stack_top=0x1_2345_6789)
        assert state.rf["R"][13] == 0x2345_6789
