"""Unit tests for the OS emulation layer."""

import pytest

from repro.arch import ArchState, ExitProgram, RegisterFileDef
from repro.sysemu import (
    SYS_BRK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_READ,
    SYS_TIME,
    SYS_WRITE,
    OSEmulator,
    SyscallABI,
)

ABI = SyscallABI(
    regfile="R", number_reg=0, arg_regs=(1, 2, 3), ret_reg=0,
    error_reg=4, stack_reg=15,
)


def make_state():
    return ArchState(regfiles=[RegisterFileDef("R", 16, "u64")])


def call(os_emu, state, number, a0=0, a1=0, a2=0):
    regs = state.rf["R"]
    regs[0], regs[1], regs[2], regs[3] = number, a0, a1, a2
    os_emu(state)
    return regs[0], regs[4]


class TestSyscalls:
    def test_exit_raises(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        with pytest.raises(ExitProgram) as info:
            call(os_emu, state, SYS_EXIT, 42)
        assert info.value.status == 42

    def test_exit_status_truncated_to_byte(self):
        os_emu = OSEmulator(ABI)
        with pytest.raises(ExitProgram) as info:
            call(os_emu, make_state(), SYS_EXIT, 0x1FF)
        assert info.value.status == 0xFF

    def test_write_stdout(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        state.mem.write_bytes(0x100, b"hello")
        ret, err = call(os_emu, state, SYS_WRITE, 1, 0x100, 5)
        assert ret == 5 and err == 0
        assert bytes(os_emu.stdout) == b"hello"

    def test_write_stderr(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        state.mem.write_bytes(0x100, b"oops")
        call(os_emu, state, SYS_WRITE, 2, 0x100, 4)
        assert bytes(os_emu.stderr) == b"oops"

    def test_write_bad_fd(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        ret, err = call(os_emu, state, SYS_WRITE, 7, 0x100, 4)
        assert err == 1

    def test_read_consumes_stdin(self):
        os_emu = OSEmulator(ABI, stdin=b"abcdef")
        state = make_state()
        ret, err = call(os_emu, state, SYS_READ, 0, 0x200, 4)
        assert ret == 4 and err == 0
        assert state.mem.read_bytes(0x200, 4) == b"abcd"
        ret, _ = call(os_emu, state, SYS_READ, 0, 0x300, 10)
        assert ret == 2  # only "ef" left

    def test_brk_tracks(self):
        os_emu = OSEmulator(ABI, brk_base=0x100000)
        state = make_state()
        ret, _ = call(os_emu, state, SYS_BRK, 0)
        assert ret == 0x100000
        ret, _ = call(os_emu, state, SYS_BRK, 0x140000)
        assert ret == 0x140000
        ret, _ = call(os_emu, state, SYS_BRK, 0)
        assert ret == 0x140000

    def test_getpid(self):
        ret, _ = call(OSEmulator(ABI), make_state(), SYS_GETPID)
        assert ret == 1000

    def test_time_monotone_deterministic(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        first, _ = call(os_emu, state, SYS_TIME)
        second, _ = call(os_emu, state, SYS_TIME)
        assert second == first + 1

    def test_unknown_syscall_sets_error(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        ret, err = call(os_emu, state, 9999)
        assert err == 1

    def test_call_counts(self):
        os_emu = OSEmulator(ABI)
        state = make_state()
        call(os_emu, state, SYS_GETPID)
        call(os_emu, state, SYS_GETPID)
        assert os_emu.call_counts[SYS_GETPID] == 2
