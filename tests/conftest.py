"""Shared fixtures: the toy ISA specification used across test packages."""

import os

import pytest

from repro.adl import load_isa

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

TOY_LIS = os.path.join(FIXTURES, "toy.lis")
TOY_BUILDSETS_LIS = os.path.join(FIXTURES, "toy_buildsets.lis")


@pytest.fixture(scope="session")
def toy_spec():
    """Analyzed toy ISA including its buildsets."""
    return load_isa([TOY_LIS, TOY_BUILDSETS_LIS])


@pytest.fixture()
def toy_paths():
    return [TOY_LIS, TOY_BUILDSETS_LIS]
