"""Golden semantics tests for the SPARC subset."""

import pytest

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.workloads import kernel_names, run_kernel

from tests.isa.harness import run_asm, step_one

M32 = 0xFFFFFFFF


def setup_with(pairs, sregs=None):
    def setup(state):
        for reg, value in pairs.items():
            state.rf["R"][reg] = value & M32
        for name, value in (sregs or {}).items():
            state.sr[name] = value

    return setup


def r(sim, index):
    return sim.state.rf["R"][index]


def icc(sim):
    sr = sim.state.sr
    return (sr["icc_n"], sr["icc_z"], sr["icc_v"], sr["icc_c"])


class TestArith:
    @pytest.mark.parametrize(
        "src,a,b,expected",
        [
            ("add %l0, %l1, %l2", 5, 7, 12),
            ("sub %l0, %l1, %l2", 5, 7, (5 - 7) & M32),
            ("and %l0, %l1, %l2", 0b1100, 0b1010, 0b1000),
            ("or %l0, %l1, %l2", 0b1100, 0b1010, 0b1110),
            ("xor %l0, %l1, %l2", 0b1100, 0b1010, 0b0110),
            ("andn %l0, %l1, %l2", 0b1111, 0b0101, 0b1010),
            ("xnor %l0, %l1, %l2", 5, 5, M32),
            ("umul %l0, %l1, %l2", 0x10000, 0x10000, 0),
            ("sll %l0, %l1, %l2", 1, 31, 1 << 31),
            ("srl %l0, %l1, %l2", 1 << 31, 31, 1),
            ("sra %l0, %l1, %l2", 1 << 31, 31, M32),
        ],
    )
    def test_register_forms(self, src, a, b, expected):
        sim = step_one("sparc", setup_with({16: a, 17: b}), src)
        assert r(sim, 18) == expected

    def test_immediate_form(self):
        sim = step_one("sparc", setup_with({16: 10}), "add %l0, -3, %l1")
        assert r(sim, 17) == 7

    def test_g0_reads_zero(self):
        sim = step_one("sparc", setup_with({0: 0, 16: 5}), "add %g0, %l0, %l1")
        assert r(sim, 17) == 5

    def test_g0_write_discarded(self):
        sim = step_one("sparc", setup_with({16: 5}), "add %l0, %l0, %g0")
        assert r(sim, 0) == 0

    def test_umul_sets_y(self):
        sim = step_one("sparc", setup_with({16: 1 << 31, 17: 4}), "umul %l0, %l1, %l2")
        assert sim.state.sr["y"] == 2

    def test_subcc_flags(self):
        sim = step_one("sparc", setup_with({16: 5, 17: 5}), "subcc %l0, %l1, %g0")
        n, z, v, c = icc(sim)
        assert (n, z, v, c) == (0, 1, 0, 0)

    def test_addcc_overflow(self):
        sim = step_one(
            "sparc", setup_with({16: 0x7FFFFFFF, 17: 1}), "addcc %l0, %l1, %l2"
        )
        n, z, v, c = icc(sim)
        assert (n, v) == (1, 1)

    def test_sethi(self):
        sim = step_one("sparc", None, "sethi 0x12345, %l0")
        assert r(sim, 16) == 0x12345 << 10

    def test_save_restore_are_adds_in_flat_model(self):
        sim = step_one("sparc", setup_with({14: 0x9000}), "save %sp, -96, %sp")
        assert r(sim, 14) == 0x9000 - 96


class TestMemory:
    def test_ld_st_roundtrip(self):
        def setup(state):
            state.rf["R"][8] = 0x4000
            state.mem.write_u32(0x4008, 0xCAFEBABE)

        sim = step_one("sparc", setup, "ld [%o0 + 8], %l0")
        assert r(sim, 16) == 0xCAFEBABE

    def test_st(self):
        sim = step_one(
            "sparc", setup_with({16: 0xAB, 8: 0x4000}), "st %l0, [%o0]"
        )
        assert sim.state.mem.read_u32(0x4000) == 0xAB

    def test_big_endian(self):
        sim = step_one(
            "sparc", setup_with({16: 0x11223344, 8: 0x4000}), "st %l0, [%o0]"
        )
        assert sim.state.mem.read_u8(0x4000) == 0x11

    def test_ldsb(self):
        def setup(state):
            state.rf["R"][8] = 0x4000
            state.mem.write_u8(0x4000, 0x80)

        sim = step_one("sparc", setup, "ldsb [%o0], %l0")
        assert r(sim, 16) == 0xFFFFFF80

    def test_register_offset(self):
        def setup(state):
            state.rf["R"][8] = 0x4000
            state.rf["R"][9] = 0x10
            state.mem.write_u32(0x4010, 55)

        sim = step_one("sparc", setup, "ld [%o0 + %o1], %l0")
        assert r(sim, 16) == 55


class TestControl:
    def test_ba(self):
        sim = step_one("sparc", None, "ba .+16")
        assert sim.state.pc == 0x1010

    def test_bne_taken_and_not(self):
        sim = step_one("sparc", setup_with({}, {"icc_z": 0}), "bne .+12")
        assert sim.state.pc == 0x100C
        sim = step_one("sparc", setup_with({}, {"icc_z": 1}), "bne .+12")
        assert sim.state.pc == 0x1004

    @pytest.mark.parametrize(
        "branch,flags,taken",
        [
            ("bg", {"icc_z": 0, "icc_n": 0, "icc_v": 0}, True),
            ("ble", {"icc_z": 1}, True),
            ("bge", {"icc_n": 1, "icc_v": 1}, True),
            ("bl", {"icc_n": 1, "icc_v": 0}, True),
            ("bgu", {"icc_c": 0, "icc_z": 0}, True),
            ("bleu", {"icc_c": 1}, True),
            ("bcs", {"icc_c": 1}, True),
            ("bneg", {"icc_n": 1}, True),
        ],
    )
    def test_condition_table(self, branch, flags, taken):
        sim = step_one("sparc", setup_with({}, flags), f"{branch} .+8")
        assert (sim.state.pc == 0x1008) is taken

    def test_call_links_o7(self):
        sim = step_one("sparc", None, "call .+20")
        assert sim.state.pc == 0x1014
        assert r(sim, 15) == 0x1000

    def test_jmpl_links(self):
        sim = step_one("sparc", setup_with({16: 0x2000}), "jmpl [%l0], %o7")
        assert sim.state.pc == 0x2000
        assert r(sim, 15) == 0x1000

    def test_call_retl_roundtrip(self):
        sim, os_emu, result = run_asm(
            "sparc",
            """
            _start:
                mov 21, %o0
                call double
                mov 1, %g1
                ta 0
            double:
                add %o0, %o0, %o0
                retl
            """,
        )
        assert result.exit_status == 42


class TestKernels:
    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_suite_on_sparc(self, name):
        generated = synthesize(get_bundle("sparc").load_spec(), "one_min")
        run = run_kernel(generated, "sparc", name)
        assert run.correct, f"{name}: {run.result:#x} != {run.expected:#x}"

    def test_kernels_under_block_translation(self):
        generated = synthesize(get_bundle("sparc").load_spec(), "block_min")
        run = run_kernel(generated, "sparc", "checksum")
        assert run.correct
