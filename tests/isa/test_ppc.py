"""Golden semantics tests for the PowerPC subset."""

import pytest

from repro.isa.base import get_bundle

from tests.isa.harness import run_asm, step_one

M32 = 0xFFFFFFFF


def setup_with(pairs, sregs=None):
    def setup(state):
        for reg, value in pairs.items():
            state.rf["R"][reg] = value & M32
        for name, value in (sregs or {}).items():
            state.sr[name] = value

    return setup


def r(sim, index):
    return sim.state.rf["R"][index]


def cr0(sim):
    return sim.state.sr["cr"] >> 28


class TestDFormArithmetic:
    def test_addi(self):
        sim = step_one("ppc", setup_with({1: 5}), "addi 3, 1, 10")
        assert r(sim, 3) == 15

    def test_addi_ra0_is_literal_zero(self):
        sim = step_one("ppc", setup_with({0: 999}), "addi 3, 0, 10")
        assert r(sim, 3) == 10

    def test_addis(self):
        sim = step_one("ppc", setup_with({1: 4}), "addis 3, 1, 2")
        assert r(sim, 3) == 0x20004

    def test_addi_negative(self):
        sim = step_one("ppc", setup_with({1: 5}), "addi 3, 1, -10")
        assert r(sim, 3) == (5 - 10) & M32

    def test_mulli(self):
        sim = step_one("ppc", setup_with({1: (-3) & M32}), "mulli 3, 1, 7")
        assert r(sim, 3) == (-21) & M32

    def test_subfic_sets_carry(self):
        sim = step_one("ppc", setup_with({1: 3}), "subfic 3, 1, 10")
        assert r(sim, 3) == 7
        assert sim.state.sr["xer_ca"] == 1

    def test_ori_oris_xori(self):
        sim = step_one("ppc", setup_with({2: 0xF0}), "ori 3, 2, 0x0F")
        assert r(sim, 3) == 0xFF
        sim = step_one("ppc", setup_with({2: 1}), "oris 3, 2, 0x8000")
        assert r(sim, 3) == 0x80000001

    def test_andi_dot_sets_cr0(self):
        sim = step_one("ppc", setup_with({2: 0b1100}), "andi. 3, 2, 0b0011")
        assert r(sim, 3) == 0
        assert cr0(sim) == 0b0010  # EQ


class TestXForm:
    @pytest.mark.parametrize(
        "src,a,b,expected",
        [
            ("add 3, 1, 2", 5, 7, 12),
            ("subf 3, 1, 2", 5, 7, 2),  # rb - ra
            ("mullw 3, 1, 2", 0x10000, 0x10000, 0),
            ("mulhwu 3, 1, 2", 0x80000000, 4, 2),
            ("divw 3, 1, 2", (-7) & M32, 2, (-3) & M32),
            ("divwu 3, 1, 2", 7, 2, 3),
            ("and 3, 1, 2", 0b1100, 0b1010, 0b1000),
            ("or 3, 1, 2", 0b1100, 0b1010, 0b1110),
            ("xor 3, 1, 2", 0b1100, 0b1010, 0b0110),
            ("nand 3, 1, 2", M32, M32, 0),
            ("nor 3, 1, 2", 0, 0, M32),
            ("andc 3, 1, 2", 0b1111, 0b0101, 0b1010),
            ("slw 3, 1, 2", 1, 31, 1 << 31),
            ("slw 3, 1, 2", 1, 32, 0),
            ("srw 3, 1, 2", 1 << 31, 31, 1),
            ("sraw 3, 1, 2", 0x80000000, 31, M32),
        ],
    )
    def test_arith_logic(self, src, a, b, expected):
        sim = step_one("ppc", setup_with({1: a, 2: b}), src)
        assert r(sim, 3) == expected

    def test_x_logic_operand_order(self):
        # and rA, rS, rB: destination is the *second* operand field
        sim = step_one("ppc", setup_with({4: 0b1100, 5: 0b1010}), "and 3, 4, 5")
        assert r(sim, 3) == 0b1000

    def test_dot_form_sets_cr0_lt(self):
        sim = step_one("ppc", setup_with({1: M32, 2: 1}), "add. 3, 1, 2")
        assert r(sim, 3) == 0
        assert cr0(sim) == 0b0010
        sim = step_one("ppc", setup_with({1: M32, 2: 0}), "add. 3, 1, 2")
        assert cr0(sim) == 0b1000  # negative -> LT

    def test_neg(self):
        sim = step_one("ppc", setup_with({1: 5}), "neg 3, 1")
        assert r(sim, 3) == (-5) & M32

    def test_cntlzw_extsb_extsh(self):
        sim = step_one("ppc", setup_with({1: 0x00010000}), "cntlzw 3, 1")
        assert r(sim, 3) == 15
        sim = step_one("ppc", setup_with({1: 0x80}), "extsb 3, 1")
        assert r(sim, 3) == 0xFFFFFF80
        sim = step_one("ppc", setup_with({1: 0x8000}), "extsh 3, 1")
        assert r(sim, 3) == 0xFFFF8000

    def test_srawi_carry(self):
        sim = step_one("ppc", setup_with({1: (-5) & M32}), "srawi 3, 1, 1")
        assert r(sim, 3) == (-3) & M32
        assert sim.state.sr["xer_ca"] == 1

    def test_addc_carry(self):
        sim = step_one("ppc", setup_with({1: M32, 2: 1}), "addc 3, 1, 2")
        assert r(sim, 3) == 0
        assert sim.state.sr["xer_ca"] == 1


class TestRotates:
    def test_rlwinm_shift(self):
        sim = step_one("ppc", setup_with({2: 1}), "rlwinm 3, 2, 4, 0, 27")
        assert r(sim, 3) == 16

    def test_rlwinm_mask_extract(self):
        # extract byte 2 (bits 8..15 IBM) == (value >> 16) & 0xff
        sim = step_one("ppc", setup_with({2: 0x12345678}), "rlwinm 3, 2, 16, 24, 31")
        assert r(sim, 3) == 0x34

    def test_rlwinm_wrap_mask(self):
        sim = step_one("ppc", setup_with({2: M32}), "rlwinm 3, 2, 0, 31, 0")
        assert r(sim, 3) == 0x80000001

    def test_rlwimi_inserts(self):
        sim = step_one(
            "ppc", setup_with({2: 0xAB, 3: 0x11223344}), "rlwimi 3, 2, 8, 16, 23"
        )
        assert r(sim, 3) == 0x1122AB44


class TestMemory:
    def test_lwz_stw(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.mem.write_u32(0x4008, 0xCAFEBABE)

        sim = step_one("ppc", setup, "lwz 3, 8(1)")
        assert r(sim, 3) == 0xCAFEBABE
        assert sim.di.effective_addr == 0x4008

    def test_big_endian_layout(self):
        sim = step_one("ppc", setup_with({3: 0x11223344, 1: 0x4000}), "stw 3, 0(1)")
        assert sim.state.mem.read_u8(0x4000) == 0x11

    def test_lha_sign_extends(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.mem.write(0x4000, 2, 0x8000)

        sim = step_one("ppc", setup, "lha 3, 0(1)")
        assert r(sim, 3) == 0xFFFF8000

    def test_stwu_updates_base(self):
        sim = step_one("ppc", setup_with({1: 0x4010, 3: 77}), "stwu 3, -16(1)")
        assert sim.state.mem.read_u32(0x4000) == 77
        assert r(sim, 1) == 0x4000

    def test_lwzu_updates_base(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.mem.write_u32(0x4004, 31)

        sim = step_one("ppc", setup, "lwzu 3, 4(1)")
        assert r(sim, 3) == 31
        assert r(sim, 1) == 0x4004

    def test_indexed_forms(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.rf["R"][2] = 0x10
            state.mem.write_u32(0x4010, 55)

        sim = step_one("ppc", setup, "lwzx 3, 1, 2")
        assert r(sim, 3) == 55
        sim = step_one("ppc", setup_with({1: 0x4000, 2: 4, 3: 9}), "stwx 3, 1, 2")
        assert sim.state.mem.read_u32(0x4004) == 9


class TestComparesAndBranches:
    def test_cmpwi_lt(self):
        sim = step_one("ppc", setup_with({4: (-3) & M32}), "cmpwi 4, 0")
        assert cr0(sim) == 0b1000

    def test_cmpwi_crf(self):
        sim = step_one("ppc", setup_with({4: 7}), "cmpwi 2, 4, 7")
        assert (sim.state.sr["cr"] >> (28 - 8)) & 0xF == 0b0010

    def test_cmplwi_unsigned(self):
        sim = step_one("ppc", setup_with({4: M32}), "cmplwi 4, 1")
        assert cr0(sim) == 0b0100  # unsigned max > 1

    def test_cmpw_registers(self):
        sim = step_one("ppc", setup_with({4: 2, 5: 9}), "cmpw 4, 5")
        assert cr0(sim) == 0b1000

    def test_b_and_bl(self):
        sim = step_one("ppc", None, "b .+16")
        assert sim.state.pc == 0x1010
        sim = step_one("ppc", None, "bl .+16")
        assert sim.state.pc == 0x1010
        assert sim.state.sr["lr"] == 0x1004

    def test_bne_taken(self):
        sim = step_one("ppc", setup_with({}, {"cr": 0x40000000}), "bne .+12")
        # CR0 = GT -> EQ bit clear -> bne taken
        assert sim.state.pc == 0x100C

    def test_beq_not_taken(self):
        sim = step_one("ppc", setup_with({}, {"cr": 0x40000000}), "beq .+12")
        assert sim.state.pc == 0x1004

    def test_bdnz_decrements_ctr(self):
        sim = step_one("ppc", setup_with({}, {"ctr": 3}), "bdnz .+8")
        assert sim.state.sr["ctr"] == 2
        assert sim.state.pc == 0x1008
        sim = step_one("ppc", setup_with({}, {"ctr": 1}), "bdnz .+8")
        assert sim.state.sr["ctr"] == 0
        assert sim.state.pc == 0x1004  # fell through

    def test_blr(self):
        sim = step_one("ppc", setup_with({}, {"lr": 0x2000}), "blr")
        assert sim.state.pc == 0x2000

    def test_bctr(self):
        sim = step_one("ppc", setup_with({}, {"ctr": 0x3000}), "bctr")
        assert sim.state.pc == 0x3000

    def test_mtlr_mflr(self):
        sim = step_one("ppc", setup_with({5: 0x1234}), "mtlr 5")
        assert sim.state.sr["lr"] == 0x1234
        sim = step_one("ppc", setup_with({}, {"lr": 0x77}), "mflr 6")
        assert r(sim, 6) == 0x77

    def test_mfcr(self):
        sim = step_one("ppc", setup_with({}, {"cr": 0x12345678}), "mfcr 3")
        assert r(sim, 3) == 0x12345678


class TestDecode:
    def test_canonical_encodings_decode(self):
        spec = get_bundle("ppc").load_spec()
        for instr in spec.instructions:
            for mask, value in instr.patterns:
                index = spec.decode(value)
                assert spec.instructions[index].name == instr.name


class TestPrograms:
    def test_countdown_with_ctr(self):
        sim, os_emu, result = run_asm(
            "ppc",
            """
            _start:
                li 6, 0
                li 7, 50
                mtctr 7
            loop:
                addi 6, 6, 2
                bdnz loop
                mr 3, 6
                li 0, 1
                sc
            """,
        )
        assert result.exit_status == 100

    def test_function_via_lr(self):
        sim, os_emu, result = run_asm(
            "ppc",
            """
            _start:
                li 3, 21
                bl double
                li 0, 1
                sc
            double:
                add 3, 3, 3
                blr
            """,
        )
        assert result.exit_status == 42

    def test_write_hello(self):
        sim, os_emu, result = run_asm(
            "ppc",
            """
            _start:
                li 3, 1
                liw 4, text
                li 5, 3
                li 0, 4
                sc
                li 3, 0
                li 0, 1
                sc
            text: .asciz "ppc"
            """,
        )
        assert bytes(os_emu.stdout) == b"ppc"
