"""Golden semantics tests for the ARM v5 subset."""

import pytest

from repro.isa.base import get_bundle

from tests.isa.harness import run_asm, step_one

M32 = 0xFFFFFFFF


def setup_with(pairs, flags=None):
    def setup(state):
        for reg, value in pairs.items():
            state.rf["R"][reg] = value & M32
        for name, value in (flags or {}).items():
            state.sr[f"cpsr_{name}"] = value

    return setup


def r(sim, index):
    return sim.state.rf["R"][index]


def flags(sim):
    sr = sim.state.sr
    return (sr["cpsr_n"], sr["cpsr_z"], sr["cpsr_c"], sr["cpsr_v"])


class TestDataProcessing:
    @pytest.mark.parametrize(
        "src,a,b,expected",
        [
            ("add r0, r1, r2", 5, 7, 12),
            ("add r0, r1, r2", M32, 1, 0),
            ("sub r0, r1, r2", 5, 7, (5 - 7) & M32),
            ("rsb r0, r1, r2", 5, 7, 2),
            ("and r0, r1, r2", 0b1100, 0b1010, 0b1000),
            ("orr r0, r1, r2", 0b1100, 0b1010, 0b1110),
            ("eor r0, r1, r2", 0b1100, 0b1010, 0b0110),
            ("bic r0, r1, r2", 0b1111, 0b0101, 0b1010),
            ("add r0, r1, r2, lsl #4", 1, 1, 17),
            ("add r0, r1, r2, lsr #1", 0, 9, 4),
            ("add r0, r1, r2, asr #1", 0, 0x80000000, 0xC0000000),
            ("add r0, r1, r2, ror #8", 0, 0x1FF, 0xFF000001),
        ],
    )
    def test_register_forms(self, src, a, b, expected):
        sim = step_one("arm", setup_with({1: a, 2: b}), src)
        assert r(sim, 0) == expected

    def test_immediate_with_rotation(self):
        sim = step_one("arm", None, "mov r0, #0xFF000000")
        assert r(sim, 0) == 0xFF000000

    def test_mvn(self):
        sim = step_one("arm", None, "mvn r0, #0")
        assert r(sim, 0) == M32

    def test_register_shift_by_register(self):
        sim = step_one("arm", setup_with({1: 1, 2: 12}), "mov r0, r1, lsl r2")
        assert r(sim, 0) == 1 << 12

    def test_shifter_out_reported(self):
        sim = step_one("arm", setup_with({1: 0, 2: 3}), "add r0, r1, r2, lsl #4")
        assert sim.di.shifter_out == 48

    def test_adc_uses_carry(self):
        sim = step_one("arm", setup_with({1: 1, 2: 2}, {"c": 1}), "adc r0, r1, r2")
        assert r(sim, 0) == 4

    def test_sbc_uses_carry(self):
        sim = step_one("arm", setup_with({1: 10, 2: 3}, {"c": 0}), "sbc r0, r1, r2")
        assert r(sim, 0) == 6  # 10 - 3 - 1

    def test_flags_on_adds(self):
        sim = step_one(
            "arm", setup_with({1: 0x7FFFFFFF, 2: 1}), "adds r0, r1, r2"
        )
        n, z, c, v = flags(sim)
        assert (n, z, c, v) == (1, 0, 0, 1)

    def test_flags_on_subs_zero(self):
        sim = step_one("arm", setup_with({1: 5, 2: 5}), "subs r0, r1, r2")
        n, z, c, v = flags(sim)
        assert (n, z, c, v) == (0, 1, 1, 0)  # C=1: no borrow

    def test_cmp_sets_flags_without_writing(self):
        sim = step_one("arm", setup_with({1: 3, 2: 5, 0: 123}), "cmp r1, r2")
        assert r(sim, 0) == 123
        n, z, c, v = flags(sim)
        assert (n, z, c) == (1, 0, 0)

    def test_tst(self):
        sim = step_one("arm", setup_with({1: 0b100, 2: 0b010}), "tst r1, r2")
        assert flags(sim)[1] == 1  # Z set

    def test_logical_carry_from_shifter(self):
        sim = step_one(
            "arm", setup_with({1: 0, 2: 0x80000001}), "movs r0, r2, lsr #1"
        )
        assert r(sim, 0) == 0x40000000
        assert flags(sim)[2] == 1  # bit shifted out


class TestConditionalExecution:
    def test_condition_false_skips(self):
        sim = step_one("arm", setup_with({0: 7}, {"z": 0}), "moveq r0, #1")
        assert r(sim, 0) == 7
        assert sim.di.cond_ok == 0

    def test_condition_true_executes(self):
        sim = step_one("arm", setup_with({0: 7}, {"z": 1}), "moveq r0, #1")
        assert r(sim, 0) == 1

    @pytest.mark.parametrize(
        "cond,setf,expect",
        [
            ("eq", {"z": 1}, True), ("ne", {"z": 1}, False),
            ("cs", {"c": 1}, True), ("cc", {"c": 1}, False),
            ("mi", {"n": 1}, True), ("pl", {"n": 0}, True),
            ("hi", {"c": 1, "z": 0}, True), ("ls", {"c": 1, "z": 0}, False),
            ("ge", {"n": 1, "v": 1}, True), ("lt", {"n": 1, "v": 0}, True),
            ("gt", {"z": 0, "n": 0, "v": 0}, True),
            ("le", {"z": 1, "n": 0, "v": 0}, True),
        ],
    )
    def test_condition_table(self, cond, setf, expect):
        sim = step_one("arm", setup_with({0: 0}, setf), f"mov{cond} r0, #1")
        assert (r(sim, 0) == 1) is expect


class TestMemory:
    def test_ldr_str_roundtrip(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.mem.write_u32(0x4008, 0xDEADBEEF)

        sim = step_one("arm", setup, "ldr r0, [r1, #8]")
        assert r(sim, 0) == 0xDEADBEEF
        assert sim.di.effective_addr == 0x4008

    def test_str(self):
        sim = step_one("arm", setup_with({0: 0xAB, 1: 0x4000}), "str r0, [r1]")
        assert sim.state.mem.read_u32(0x4000) == 0xAB

    def test_ldrb_strb(self):
        sim = step_one("arm", setup_with({0: 0x1FF, 1: 0x4000}), "strb r0, [r1]")
        assert sim.state.mem.read_u8(0x4000) == 0xFF

    def test_pre_index_writeback(self):
        sim = step_one("arm", setup_with({0: 7, 1: 0x4000}), "str r0, [r1, #4]!")
        assert sim.state.mem.read_u32(0x4004) == 7
        assert r(sim, 1) == 0x4004

    def test_post_index(self):
        sim = step_one("arm", setup_with({0: 7, 1: 0x4000}), "str r0, [r1], #4")
        assert sim.state.mem.read_u32(0x4000) == 7
        assert r(sim, 1) == 0x4004

    def test_negative_offset(self):
        def setup(state):
            state.rf["R"][1] = 0x4010
            state.mem.write_u32(0x4008, 31)

        sim = step_one("arm", setup, "ldr r0, [r1, #-8]")
        assert r(sim, 0) == 31

    def test_register_offset_with_shift(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.rf["R"][2] = 4
            state.mem.write_u32(0x4010, 55)

        sim = step_one("arm", setup, "ldr r0, [r1, r2, lsl #2]")
        assert r(sim, 0) == 55

    def test_halfword(self):
        sim = step_one("arm", setup_with({0: 0x12345, 1: 0x4000}), "strh r0, [r1]")
        assert sim.state.mem.read_u16(0x4000) == 0x2345

    def test_ldrsb(self):
        def setup(state):
            state.rf["R"][1] = 0x4000
            state.mem.write_u8(0x4000, 0x80)

        sim = step_one("arm", setup, "ldrsb r0, [r1]")
        assert r(sim, 0) == 0xFFFFFF80


class TestBranchesAndMisc:
    def test_b_forward(self):
        sim = step_one("arm", None, "b .+16")
        assert sim.state.pc == 0x1000 + 16

    def test_bl_links(self):
        sim = step_one("arm", None, "bl .+16")
        assert r(sim, 14) == 0x1004
        assert sim.state.pc == 0x1010

    def test_bx(self):
        sim = step_one("arm", setup_with({3: 0x2001}), "bx r3")
        assert sim.state.pc == 0x2000

    def test_conditional_branch_not_taken(self):
        sim = step_one("arm", setup_with({}, {"z": 0}), "beq .+16")
        assert sim.state.pc == 0x1004

    def test_mov_pc_is_a_jump(self):
        sim = step_one("arm", setup_with({3: 0x3000}), "mov pc, r3")
        assert sim.state.pc == 0x3000

    def test_reading_pc_gives_pc_plus_8(self):
        sim = step_one("arm", None, "mov r0, pc")
        assert r(sim, 0) == 0x1008

    def test_mul(self):
        sim = step_one("arm", setup_with({1: 7, 2: 6}), "mul r0, r1, r2")
        assert r(sim, 0) == 42

    def test_mla(self):
        sim = step_one("arm", setup_with({1: 7, 2: 6, 3: 8}), "mla r0, r1, r2, r3")
        assert r(sim, 0) == 50

    def test_clz(self):
        sim = step_one("arm", setup_with({1: 0x00010000}), "clz r0, r1")
        assert r(sim, 0) == 15

    def test_mrs_msr_roundtrip(self):
        sim, os_emu, result = run_asm(
            "arm",
            """
            _start:
                mov r1, #0
                subs r1, r1, #1     @ sets N and C
                mrs r2, cpsr
                mov r3, #0
                msr cpsr_f, r3      @ clear flags
                mrs r4, cpsr
                msr cpsr_f, r2      @ restore
                mrs r5, cpsr
                mov r0, #0
                mov r7, #1
                swi #0
            """,
        )
        r2 = sim.state.rf["R"][2]
        assert r2 >> 28 == 0b1000  # N=1 Z=0 C=0 (0-1 borrows) V=0
        assert sim.state.rf["R"][4] >> 28 == 0
        assert sim.state.rf["R"][5] == r2


class TestDecode:
    def test_canonical_encodings_decode(self):
        spec = get_bundle("arm").load_spec()
        for instr in spec.instructions:
            for mask, value in instr.patterns:
                word = value | (14 << 28)  # cond AL
                index = spec.decode(word)
                assert spec.instructions[index].name == instr.name

    def test_mul_not_decoded_as_and(self):
        spec = get_bundle("arm").load_spec()
        asm = get_bundle("arm").make_assembler()
        image = asm.assemble("mul r0, r1, r2")
        word = int.from_bytes(image.segments[0][1][:4], "little")
        assert spec.instructions[spec.decode(word)].name == "MUL"

    def test_ldrh_not_decoded_as_dp(self):
        spec = get_bundle("arm").load_spec()
        asm = get_bundle("arm").make_assembler()
        image = asm.assemble("ldrh r0, [r1, #2]")
        word = int.from_bytes(image.segments[0][1][:4], "little")
        assert spec.instructions[spec.decode(word)].name == "LDRH"


class TestPrograms:
    def test_gcd(self):
        sim, os_emu, result = run_asm(
            "arm",
            """
            _start:
                mov r1, #84
                mov r2, #36
            gcd:
                cmp r1, r2
                subgt r1, r1, r2
                sublt r2, r2, r1
                bne gcd
                mov r0, r1
                mov r7, #1
                swi #0
            """,
        )
        assert result.exit_status == 12

    def test_strlen_and_write(self):
        sim, os_emu, result = run_asm(
            "arm",
            """
            _start:
                li   r4, text
                mov  r5, #0
            count:
                ldrb r6, [r4, r5]
                cmp  r6, #0
                addne r5, r5, #1
                bne  count
                mov  r0, #1
                li   r1, text
                mov  r2, r5
                mov  r7, #4
                swi  #0
                mov  r0, r5
                mov  r7, #1
                swi  #0
            text: .asciz "conditional!"
            """,
        )
        assert bytes(os_emu.stdout) == b"conditional!"
        assert result.exit_status == 12
