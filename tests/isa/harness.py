"""Helpers for per-ISA semantic tests."""

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator

_GENERATED = {}


def simulator(isa: str, buildset: str = "one_all"):
    """A fresh simulator + OS emulator for one ISA (generator cached)."""
    key = (isa, buildset)
    if key not in _GENERATED:
        bundle = get_bundle(isa)
        _GENERATED[key] = (bundle, synthesize(bundle.load_spec(), buildset))
    bundle, generated = _GENERATED[key]
    os_emu = OSEmulator(bundle.abi)
    sim = generated.make(syscall_handler=os_emu)
    return sim, os_emu


def run_asm(isa: str, source: str, buildset: str = "one_all", max_instrs=200_000):
    """Assemble, load and run a program; returns (sim, os_emu, result)."""
    bundle = get_bundle(isa)
    sim, os_emu = simulator(isa, buildset)
    image = bundle.make_assembler().assemble(source, origin=0x1000)
    load_image(sim.state, image, bundle.abi)
    sim.image = image
    result = sim.run(max_instrs)
    return sim, os_emu, result


def step_one(isa: str, setup, words_or_src):
    """Execute a single assembled instruction after ``setup(state)``.

    ``words_or_src`` is assembly source; only its first instruction runs.
    Returns the simulator for inspection.
    """
    bundle = get_bundle(isa)
    sim, _ = simulator(isa)
    image = bundle.make_assembler().assemble(words_or_src, origin=0x1000)
    load_image(sim.state, image, bundle.abi)
    if setup is not None:
        setup(sim.state)
    sim.state.pc = 0x1000
    sim.do_in_one(sim.di)
    return sim
