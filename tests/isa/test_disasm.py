"""Tests for the spec-derived generic disassembler."""

import pytest

from repro.isa.base import get_bundle
from repro.isa.disasm import Disassembler


@pytest.fixture(scope="module")
def alpha():
    bundle = get_bundle("alpha")
    return bundle, Disassembler(bundle.load_spec())


def word_of(bundle, source):
    image = bundle.make_assembler().assemble(source)
    return int.from_bytes(image.segments[0][1][:4], "little")


class TestDisassembler:
    def test_operate(self, alpha):
        bundle, disasm = alpha
        text = disasm.disassemble(word_of(bundle, "addq $1, $2, $3"))
        assert text.startswith("ADDQ")
        assert "ra=1" in text and "rb=2" in text and "rc=3" in text

    def test_memory_displacement(self, alpha):
        bundle, disasm = alpha
        text = disasm.disassemble(word_of(bundle, "ldq $4, -8($30)"))
        assert text.startswith("LDQ")
        assert "disp16=-8" in text

    def test_unknown_word(self, alpha):
        _, disasm = alpha
        # opcode 0x07 is unassigned in the Alpha subset
        assert disasm.disassemble(0x07 << 26).startswith(".word")

    def test_range_disassembly(self, alpha):
        bundle, disasm = alpha
        from repro.arch.memory import Memory

        mem = Memory()
        image = bundle.make_assembler().assemble(
            "addq $1, $2, $3\nsubq $3, 1, $3\n", origin=0x100
        )
        for addr, data in image.segments:
            mem.write_bytes(addr, data)
        lines = disasm.disassemble_range(mem, 0x100, 2)
        assert "ADDQ" in lines[0]
        assert "SUBQ" in lines[1]

    @pytest.mark.parametrize("isa", ["alpha", "arm", "ppc"])
    def test_every_instruction_renders(self, isa):
        bundle = get_bundle(isa)
        spec = bundle.load_spec()
        disasm = Disassembler(spec)
        cond = (14 << 28) if isa == "arm" else 0
        for instr in spec.instructions:
            text = disasm.disassemble(instr.patterns[0][1] | cond)
            assert text.split()[0] == instr.name
