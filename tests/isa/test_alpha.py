"""Golden semantics tests for the Alpha subset."""

import pytest

from repro.isa.base import get_bundle

from tests.isa.harness import run_asm, step_one

M64 = (1 << 64) - 1


def regs(pairs):
    def setup(state):
        for reg, value in pairs.items():
            state.rf["R"][reg] = value & M64

    return setup


def r(sim, index):
    return sim.state.rf["R"][index]


class TestOperates:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("addq", 5, 7, 12),
            ("addq", M64, 1, 0),
            ("subq", 5, 7, (5 - 7) & M64),
            ("addl", 0x7FFFFFFF, 1, 0xFFFFFFFF80000000),
            ("subl", 0, 1, M64),
            ("s4addq", 3, 5, 17),
            ("s8addq", 3, 5, 29),
            ("mulq", 1 << 40, 1 << 30, (1 << 70) & M64),
            ("mull", 0x10000, 0x10000, 0),
            ("umulh", 1 << 63, 4, 2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("bis", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("bic", 0b1111, 0b0101, 0b1010),
            ("ornot", 0, 0, M64),
            ("eqv", 5, 5, M64),
            ("sll", 1, 63, 1 << 63),
            ("srl", 1 << 63, 63, 1),
            ("sra", 1 << 63, 63, M64),
            ("cmpeq", 4, 4, 1),
            ("cmpeq", 4, 5, 0),
            ("cmplt", (-1) & M64, 0, 1),
            ("cmplt", 0, (-1) & M64, 0),
            ("cmple", 3, 3, 1),
            ("cmpult", (-1) & M64, 0, 0),
            ("cmpule", 1, 1, 1),
        ],
    )
    def test_register_forms(self, op, a, b, expected):
        sim = step_one("alpha", regs({1: a, 2: b}), f"{op} $1, $2, $3")
        assert r(sim, 3) == expected

    def test_literal_form(self):
        sim = step_one("alpha", regs({1: 10}), "addq $1, 200, $3")
        assert r(sim, 3) == 210

    def test_literal_id_reported(self):
        sim = step_one("alpha", regs({1: 10}), "addq $1, 200, $3")
        assert sim.di.src2_id == 0x100 | 200

    def test_r31_reads_zero(self):
        sim = step_one("alpha", regs({1: 5}), "addq $1, $31, $3")
        assert r(sim, 3) == 5

    def test_r31_write_discarded(self):
        sim = step_one("alpha", regs({1: 5, 2: 6}), "addq $1, $2, $31")
        assert r(sim, 31) == 0

    def test_cmpbge(self):
        sim = step_one(
            "alpha", regs({1: 0x0102030405060708, 2: 0x0800000000000001}),
            "cmpbge $1, $2, $3",
        )
        # byte 0: 8 >= 1 yes; byte 7: 1 >= 8 no; middle bytes vs 0 yes
        assert r(sim, 3) == 0b01111111

    def test_zapnot(self):
        sim = step_one(
            "alpha", regs({1: 0x1122334455667788, 2: 0x0F}), "zapnot $1, $2, $3"
        )
        assert r(sim, 3) == 0x55667788

    def test_zap(self):
        sim = step_one(
            "alpha", regs({1: 0x1122334455667788, 2: 0x0F}), "zap $1, $2, $3"
        )
        assert r(sim, 3) == 0x1122334400000000

    def test_extbl(self):
        sim = step_one(
            "alpha", regs({1: 0x1122334455667788, 2: 2}), "extbl $1, $2, $3"
        )
        assert r(sim, 3) == 0x66

    def test_cmov_taken_and_not(self):
        sim = step_one("alpha", regs({1: 0, 2: 9, 3: 5}), "cmoveq $1, $2, $3")
        assert r(sim, 3) == 9
        sim = step_one("alpha", regs({1: 1, 2: 9, 3: 5}), "cmoveq $1, $2, $3")
        assert r(sim, 3) == 5


class TestMemory:
    def test_lda_ldah(self):
        sim = step_one("alpha", regs({2: 0x1000}), "lda $1, 8($2)")
        assert r(sim, 1) == 0x1008
        sim = step_one("alpha", regs({2: 4}), "ldah $1, 2($2)")
        assert r(sim, 1) == 0x20004

    def test_ldq_stq_roundtrip(self):
        def setup(state):
            state.rf["R"][2] = 0x4000
            state.mem.write_u64(0x4010, 0xCAFEBABE12345678)

        sim = step_one("alpha", setup, "ldq $1, 16($2)")
        assert r(sim, 1) == 0xCAFEBABE12345678
        assert sim.di.effective_addr == 0x4010

    def test_ldl_sign_extends(self):
        def setup(state):
            state.rf["R"][2] = 0x4000
            state.mem.write_u32(0x4000, 0x80000000)

        sim = step_one("alpha", setup, "ldl $1, 0($2)")
        assert r(sim, 1) == 0xFFFFFFFF80000000

    def test_ldbu_ldwu(self):
        def setup(state):
            state.rf["R"][2] = 0x4000
            state.mem.write_u16(0x4000, 0x80FF)

        sim = step_one("alpha", setup, "ldbu $1, 0($2)")
        assert r(sim, 1) == 0xFF
        sim = step_one("alpha", setup, "ldwu $1, 0($2)")
        assert r(sim, 1) == 0x80FF

    def test_stq_u_aligns(self):
        sim = step_one(
            "alpha", regs({1: 0xAB, 2: 0x4003}), "stq_u $1, 0($2)"
        )
        assert sim.state.mem.read_u64(0x4000) == 0xAB

    def test_negative_displacement(self):
        def setup(state):
            state.rf["R"][2] = 0x4010
            state.mem.write_u64(0x4008, 77)

        sim = step_one("alpha", setup, "ldq $1, -8($2)")
        assert r(sim, 1) == 77


class TestBranches:
    def test_br_unconditional(self):
        sim = step_one("alpha", None, "br $31, .+32")
        assert sim.state.pc == 0x1000 + 4 + 28  # target = pc+4+disp*4

    def test_bsr_links(self):
        sim = step_one("alpha", None, "bsr $26, .+16")
        assert r(sim, 26) == 0x1004

    @pytest.mark.parametrize(
        "op,value,taken",
        [
            ("beq", 0, True), ("beq", 1, False),
            ("bne", 1, True), ("bne", 0, False),
            ("blt", (-5) & M64, True), ("blt", 5, False),
            ("bge", 0, True), ("bge", (-1) & M64, False),
            ("bgt", 1, True), ("bgt", 0, False),
            ("ble", 0, True), ("ble", 1, False),
            ("blbs", 3, True), ("blbs", 2, False),
            ("blbc", 2, True), ("blbc", 3, False),
        ],
    )
    def test_conditional(self, op, value, taken):
        sim = step_one("alpha", regs({1: value}), f"{op} $1, .+64")
        expected = 0x1000 + 4 + 60 if taken else 0x1004
        assert sim.state.pc == expected
        assert sim.di.branch_taken == (1 if taken else 0)

    def test_jmp(self):
        sim = step_one("alpha", regs({27: 0x2002}), "jmp $26, ($27)")
        assert sim.state.pc == 0x2000  # low bits cleared
        assert r(sim, 26) == 0x1004


class TestDecode:
    def test_every_instruction_has_unique_decode(self):
        spec = get_bundle("alpha").load_spec()
        seen = set()
        for instr in spec.instructions:
            for mask, value in instr.patterns:
                word = value  # the canonical encoding itself
                index = spec.decode(word)
                assert spec.instructions[index].name == instr.name, (
                    f"{instr.name} decodes as {spec.instructions[index].name}"
                )
                seen.add(instr.name)
        assert len(seen) == len(spec.instructions)

    def test_assembled_words_decode_correctly(self):
        bundle = get_bundle("alpha")
        spec = bundle.load_spec()
        asm = bundle.make_assembler()
        cases = {
            "addq $1, $2, $3": "ADDQ",
            "addq $1, 99, $3": "ADDQ",
            "ldq $1, 8($2)": "LDQ",
            "stw $1, 2($2)": "STW",
            "beq $3, .+8": "BEQ",
            "jmp $26, ($27)": "JMP",
            "call_pal 0x83": "CALL_PAL",
            "mulq $4, $5, $6": "MULQ",
        }
        for source, expected in cases.items():
            image = asm.assemble(source)
            word = int.from_bytes(image.segments[0][1][:4], "little")
            assert spec.instructions[spec.decode(word)].name == expected


class TestPrograms:
    def test_fibonacci(self):
        sim, os_emu, result = run_asm(
            "alpha",
            """
            _start:
                li $1, 0          # fib(0)
                li $2, 1          # fib(1)
                li $3, 20         # count
            loop:
                addq $1, $2, $4
                mov  $2, $1
                mov  $4, $2
                subq $3, 1, $3
                bne  $3, loop
                mov  $1, $16
                li   $0, 1
                call_pal 0x83
            """,
        )
        assert result.exited
        assert result.exit_status == 6765 & 0xFF

    def test_write_syscall(self):
        sim, os_emu, result = run_asm(
            "alpha",
            """
            _start:
                li $16, 1
                li $17, text
                li $18, 5
                li $0, 4
                call_pal 0x83
                li $16, 0
                li $0, 1
                call_pal 0x83
            text: .asciz "alpha"
            """,
        )
        assert bytes(os_emu.stdout) == b"alpha"
        assert result.exit_status == 0

    def test_function_call_and_stack(self):
        sim, os_emu, result = run_asm(
            "alpha",
            """
            _start:
                li   $16, 21
                bsr  $26, double
                li   $0, 1
                call_pal 0x83
            double:
                addq $16, $16, $16
                ret  $31, ($26)
            """,
        )
        assert result.exit_status == 42
