"""Unit tests for the shared assembler framework."""

import pytest

from repro.isa.asmcore import (
    AsmContext,
    AsmError,
    Assembler,
    ExprEvaluator,
    hi16,
    lo16,
)


class MiniAssembler(Assembler):
    """4-byte 'instructions': just the evaluated single operand."""

    def encode(self, mnemonic, operands, ctx):
        if mnemonic == "emit":
            return [self.evaluate(operands[0], ctx) & 0xFFFFFFFF]
        raise AsmError(f"unknown {mnemonic}", ctx.lineno)


def words_of(image):
    return [
        int.from_bytes(data[i : i + 4], "little")
        for _, data in image.segments
        for i in range(0, len(data), 4)
    ]


class TestExprEvaluator:
    def eval(self, text, symbols=None):
        return ExprEvaluator(text, symbols or {}, 1).parse()

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("0x10 | 0x01", 0x11),
            ("1 << 4", 16),
            ("256 >> 4", 16),
            ("-5 + 3", -2),
            ("~0 & 0xff", 0xFF),
            ("10 % 3", 1),
            ("7 / 2", 3),
            ("0b1010 ^ 0b0110", 0b1100),
        ],
    )
    def test_arithmetic(self, text, expected):
        assert self.eval(text) == expected

    def test_symbols(self):
        assert self.eval("base + 8", {"base": 0x100}) == 0x108

    def test_hi16_lo16(self):
        value = 0x12348000
        assert hi16(value) * 65536 + (lo16(value) - 0x10000) == value
        assert self.eval("hi16(0x12345678)") == 0x1234
        assert self.eval("lo16(0x12345678)") == 0x5678

    def test_hi16_carry_adjustment(self):
        # lo16 is sign-extended by lda-style instructions: hi must adjust.
        value = 0x0001_8000
        assert hi16(value) == 2  # not 1
        reconstructed = hi16(value) * 65536 + (lo16(value) - 0x10000)
        assert reconstructed == value

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined"):
            self.eval("nope")

    def test_trailing_junk(self):
        with pytest.raises(AsmError, match="trailing"):
            self.eval("1 2")

    def test_bad_character(self):
        with pytest.raises(AsmError):
            self.eval("1 ? 2")


class TestTwoPass:
    def test_labels_and_forward_references(self):
        asm = MiniAssembler()
        image = asm.assemble(
            """
            start: emit end
                   emit start
            end:   emit 7
            """,
            origin=0x100,
        )
        assert words_of(image) == [0x108, 0x100, 7]

    def test_org_directive(self):
        asm = MiniAssembler()
        image = asm.assemble(".org 0x40\nemit 1\n")
        assert image.segments[0][0] == 0x40

    def test_word_byte_space_align(self):
        asm = MiniAssembler()
        image = asm.assemble(
            """
            .byte 1, 2
            .align 4
            .word 0xAABBCCDD
            .space 4
            """
        )
        data = image.segments[0][1]
        assert data[0:2] == b"\x01\x02"
        assert data[4:8] == (0xAABBCCDD).to_bytes(4, "little")
        assert len(data) == 12

    def test_asciz(self):
        asm = MiniAssembler()
        image = asm.assemble('.asciz "hi\\n"')
        assert image.segments[0][1] == b"hi\n\x00"

    def test_symbol_assignment(self):
        asm = MiniAssembler()
        image = asm.assemble("K = 5\nemit K + 1\n")
        assert words_of(image) == [6]

    def test_dot_is_location_counter(self):
        asm = MiniAssembler()
        image = asm.assemble("emit .\nemit .\n", origin=0x10)
        assert words_of(image) == [0x10, 0x14]

    def test_entry_defaults_to_start_symbol(self):
        asm = MiniAssembler()
        image = asm.assemble("emit 0\n_start: emit 1\n", origin=0)
        assert image.entry == 4

    def test_unknown_directive(self):
        asm = MiniAssembler()
        with pytest.raises(AsmError, match="unknown directive"):
            asm.assemble(".frobnicate 1")

    def test_errors_carry_line_numbers(self):
        asm = MiniAssembler()
        with pytest.raises(AsmError, match="line 2"):
            asm.assemble("emit 1\nbogus 2\n")

    def test_comments_stripped(self):
        asm = MiniAssembler()
        image = asm.assemble("emit 1 # comment\nemit 2 // also\n")
        assert words_of(image) == [1, 2]

    def test_range_check(self):
        asm = MiniAssembler()
        ctx = AsmContext(0, {}, 1, 2)
        assert asm.check_range(-1, 8, True, 1, "x") == 0xFF
        with pytest.raises(AsmError, match="out of range"):
            asm.check_range(300, 8, False, 1, "x")
