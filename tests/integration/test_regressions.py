"""Regression tests for bugs found during development.

Each test pins a specific failure mode so it cannot silently return.
"""

import pytest

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.sysemu import OSEmulator, load_image


def run_block(isa: str, source: str):
    bundle = get_bundle(isa)
    generated = synthesize(bundle.load_spec(), "block_min")
    os_emu = OSEmulator(bundle.abi)
    sim = generated.make(syscall_handler=os_emu)
    image = bundle.make_assembler().assemble(source, origin=0x1000)
    load_image(sim.state, image, bundle.abi)
    return sim, sim.run(100_000)


class TestConstantFoldedArchWrites:
    """A constant-folded special-register write must not be eliminated.

    The block translator once promoted ``lr = pc + 4`` to a constant and
    dead-code-eliminated the assignment, losing the architectural link
    write; calls through LR then returned to garbage.
    """

    def test_ppc_bl_blr_under_block_translation(self):
        sim, result = run_block(
            "ppc",
            """
            _start:
                li 3, 20
                bl double
                bl double
                li 0, 1
                sc
            double:
                add 3, 3, 3
                blr
            """,
        )
        assert result.exited
        assert result.exit_status == 80

    def test_arm_bl_sets_lr_under_block_translation(self):
        sim, result = run_block(
            "arm",
            """
            _start:
                mov r0, #10
                bl triple
                mov r7, #1
                swi #0
            triple:
                add r0, r0, r0, lsl #1
                bx lr
            """,
        )
        assert result.exited
        assert result.exit_status == 30


class TestStepSpeculationJournal:
    """Step-detail speculation once skipped journal creation for
    instructions with no register/memory writes (ARM CMP writes flags
    only), crashing with an undefined journal name."""

    def test_arm_flag_only_instructions_journal(self):
        bundle = get_bundle("arm")
        generated = synthesize(bundle.load_spec(), "step_all_spec")
        os_emu = OSEmulator(bundle.abi)
        sim = generated.make(syscall_handler=os_emu)
        image = bundle.make_assembler().assemble(
            """
            _start:
                mov r1, #3
                cmp r1, #3
                moveq r0, #1
                mov r7, #1
                swi #0
            """,
            origin=0x1000,
        )
        load_image(sim.state, image, bundle.abi)
        result = sim.run(100)
        assert result.exited
        assert result.exit_status == 1
        # one journal record per instruction (the exiting SWI never commits)
        assert len(sim.state.journal) == result.executed - 1

    def test_rollback_restores_flags(self):
        bundle = get_bundle("arm")
        generated = synthesize(bundle.load_spec(), "step_all_spec")
        sim = generated.make()
        image = bundle.make_assembler().assemble("cmp r1, #0", origin=0x1000)
        load_image(sim.state, image, bundle.abi)
        sim.state.sr["cpsr_z"] = 0
        for name in generated.entry_names:
            getattr(sim, name)(sim.di)
        assert sim.state.sr["cpsr_z"] == 1
        sim.rollback(1)
        assert sim.state.sr["cpsr_z"] == 0


class TestAlphaR31Invariant:
    """R31 must stay zero through every interface, including rollback."""

    @pytest.mark.parametrize("buildset", ["one_all_spec", "block_min"])
    def test_r31_never_written(self, buildset):
        bundle = get_bundle("alpha")
        generated = synthesize(bundle.load_spec(), buildset)
        sim = generated.make()
        image = bundle.make_assembler().assemble(
            "addq $1, $2, $31\nbeq $31, .+4\n", origin=0x1000
        )
        load_image(sim.state, image, bundle.abi)
        sim.state.rf["R"][1] = 7
        sim.state.rf["R"][2] = 8
        sim.run(2)
        assert sim.state.rf["R"][31] == 0
