"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

HELLO = """
_start:
        li $16, 1
        li $17, msg
        li $18, 3
        li $0, 4
        call_pal 0x83
        li $16, 7
        li $0, 1
        call_pal 0x83
msg:    .asciz "cli"
"""


@pytest.fixture()
def hello_program(tmp_path):
    path = tmp_path / "hello.s"
    path.write_text(HELLO)
    return str(path)


class TestCli:
    def test_isas(self, capsys):
        assert main(["isas"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "arm" in out and "ppc" in out

    def test_interfaces(self, capsys):
        assert main(["interfaces", "ppc"]) == 0
        out = capsys.readouterr().out
        assert "block_min" in out and "step_all" in out

    def test_run_returns_exit_status(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program])
        out = capsys.readouterr().out
        assert status == 7
        assert "cli" in out
        assert "executed" in out

    def test_run_alternate_buildset(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program, "--buildset", "block_min"])
        assert status == 7

    def test_run_block_tuning_flags(self, hello_program, capsys):
        status = main(
            ["run", "alpha", hello_program, "--buildset", "block_min",
             "--no-chain", "--superblock", "0"]
        )
        assert status == 7
        assert "cli" in capsys.readouterr().out

    def test_run_superblock_budget_flag(self, hello_program):
        assert main(
            ["run", "alpha", hello_program, "--buildset", "block_min",
             "--superblock", "8"]
        ) == 7

    def test_run_budget_exhausted(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program, "--max", "2"])
        assert status == 2
        assert "budget exhausted" in capsys.readouterr().out

    def test_disasm(self, hello_program, capsys):
        assert main(["disasm", "alpha", hello_program]) == 0
        out = capsys.readouterr().out
        assert "CALL_PAL" in out
        assert "LDAH" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_isa_rejected(self):
        with pytest.raises(SystemExit):
            main(["interfaces", "mips"])
