"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

HELLO = """
_start:
        li $16, 1
        li $17, msg
        li $18, 3
        li $0, 4
        call_pal 0x83
        li $16, 7
        li $0, 1
        call_pal 0x83
msg:    .asciz "cli"
"""


@pytest.fixture()
def hello_program(tmp_path):
    path = tmp_path / "hello.s"
    path.write_text(HELLO)
    return str(path)


class TestCli:
    def test_isas(self, capsys):
        assert main(["isas"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "arm" in out and "ppc" in out

    def test_interfaces(self, capsys):
        assert main(["interfaces", "ppc"]) == 0
        out = capsys.readouterr().out
        assert "block_min" in out and "step_all" in out

    def test_run_returns_exit_status(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program])
        out = capsys.readouterr().out
        assert status == 7
        assert "cli" in out
        assert "executed" in out

    def test_run_alternate_buildset(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program, "--buildset", "block_min"])
        assert status == 7

    def test_run_block_tuning_flags(self, hello_program, capsys):
        status = main(
            ["run", "alpha", hello_program, "--buildset", "block_min",
             "--no-chain", "--superblock", "0"]
        )
        assert status == 7
        assert "cli" in capsys.readouterr().out

    def test_run_superblock_budget_flag(self, hello_program):
        assert main(
            ["run", "alpha", hello_program, "--buildset", "block_min",
             "--superblock", "8"]
        ) == 7

    def test_run_budget_exhausted(self, hello_program, capsys):
        status = main(["run", "alpha", hello_program, "--max", "2"])
        assert status == 2
        assert "budget exhausted" in capsys.readouterr().out

    def test_disasm(self, hello_program, capsys):
        assert main(["disasm", "alpha", hello_program]) == 0
        out = capsys.readouterr().out
        assert "CALL_PAL" in out
        assert "LDAH" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_isa_rejected(self):
        with pytest.raises(SystemExit):
            main(["interfaces", "mips"])

    def test_stats_unknown_isa_exits_2_with_known_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "mips"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown ISA 'mips'" in err
        assert "alpha" in err and "arm" in err

    def test_profile_unknown_isa_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "mips"])
        assert excinfo.value.code == 2
        assert "known ISAs" in capsys.readouterr().err


LOOP = """
_start:
        li $1, 60
loop:   subq $1, 1, $1
        bne $1, loop
        li $16, 5
        li $0, 1
        call_pal 0x83
"""


@pytest.fixture()
def loop_program(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(LOOP)
    return str(path)


class TestProfileCli:
    def test_run_profile_prints_text_report(self, loop_program, capsys):
        status = main(
            ["run", "alpha", loop_program, "--buildset", "block_min",
             "--profile"]
        )
        assert status == 5
        out = capsys.readouterr().out
        assert "== profile ==" in out
        assert "Hot translated units" in out

    def test_run_profile_writes_chrome_trace(
        self, loop_program, tmp_path, capsys
    ):
        import json

        out = tmp_path / "trace.json"
        status = main(
            ["run", "alpha", loop_program, "--buildset", "block_min",
             f"--profile={out}"]
        )
        assert status == 5
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"
        assert all(e["ph"] == "X" for e in doc["traceEvents"][1:])
        assert doc["otherData"]["isa"] == "alpha"
        # profiling alone does not print a stats report
        assert "== stats ==" not in capsys.readouterr().out

    def test_profile_command_json_document(self, capsys):
        import json

        status = main(
            ["profile", "alpha", "block_min", "--kernel", "fib", "--json"]
        )
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["isa"] == "alpha"
        assert doc["meta"]["buildset"] == "block_min"
        assert doc["hot_blocks"], "no units attributed"
        assert doc["kernels"][0]["kernel"] == "fib"
        assert doc["failures"] == 0

    def test_profile_command_export_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        folded = tmp_path / "stacks.folded"
        status = main(
            ["profile", "alpha", "block_min", "--kernel", "fib",
             "--trace-out", str(trace), "--folded", str(folded)]
        )
        assert status == 0
        assert "Hot translated units" in capsys.readouterr().out
        assert json.loads(trace.read_text())["traceEvents"]
        for line in folded.read_text().splitlines():
            path, weight = line.rsplit(" ", 1)
            assert path and int(weight) > 0


class TestBenchCli:
    @staticmethod
    def _write(path, alpha):
        import json

        path.write_text(
            json.dumps(
                {
                    "experiment": "table2_simulation_speed",
                    "mips": {"block_min": {"alpha": alpha}},
                }
            )
        )

    def test_diff_regression_exits_nonzero(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 2.0)
        self._write(new, 1.7)  # -15%, past the default 10% threshold
        assert main(["bench", "diff", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_diff_warn_only_and_clean_pass(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 2.0)
        self._write(new, 1.7)
        assert main(["bench", "diff", str(old), str(new), "--warn-only"]) == 0
        self._write(new, 1.95)
        assert main(["bench", "diff", str(old), str(new)]) == 0

    def test_diff_threshold_flag(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 2.0)
        self._write(new, 1.9)  # -5%
        assert main(
            ["bench", "diff", str(old), str(new), "--threshold", "0.02"]
        ) == 1

    def test_diff_unreadable_input_exits_2(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        self._write(old, 2.0)
        assert main(["bench", "diff", str(old), str(tmp_path / "nope")]) == 2
        assert "bench diff" in capsys.readouterr().err

    def test_trail_lists_artifacts(self, tmp_path, capsys):
        self._write(tmp_path / "BENCH_T2.json", 2.0)
        assert main(["bench", "trail", "--dir", str(tmp_path)]) == 0
        assert "BENCH_T2.json" in capsys.readouterr().out

    def test_trail_empty_directory(self, tmp_path, capsys):
        assert main(["bench", "trail", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_" in capsys.readouterr().out
