"""Smoke tests: every shipped example runs to completion and asserts its
own claims (the scripts contain their own ``assert`` statements)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

ALL = [
    "quickstart.py",
    "tailor_an_interface.py",
    "sampling_simulator.py",
    "timing_first_checker.py",
    "speculative_runahead.py",
]


@pytest.mark.parametrize("script", ALL)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they show"


def test_quickstart_shows_generated_code():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "5050" in result.stdout
    assert "def _b_0" in result.stdout
