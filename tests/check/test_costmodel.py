"""Unit tests for the static host-op cost model.

The sign-agreement comparison against *measured* Table III deltas lives
in benchmarks/test_check_costmodel.py (it needs profile builds); these
tests pin the model's spec-derived structure, which needs no execution.
"""

import pytest

from repro.check.costmodel import (
    DELTA_ROWS,
    cost_report,
    instruction_weights,
    predict_costs,
    predict_spec,
)


class TestWeights:
    def test_weights_are_a_distribution(self, toy_spec):
        weights = instruction_weights(toy_spec)
        assert set(weights) == {i.name for i in toy_spec.instructions}
        assert all(w > 0 for w in weights.values())
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_weights_follow_decode_space_occupancy(self, toy_spec):
        """Instructions with looser patterns get proportionally more
        weight — the spec-derived stand-in for dynamic frequency."""
        weights = instruction_weights(toy_spec)
        word_bits = toy_spec.ilen * 8
        for instr in toy_spec.instructions:
            free = sum(
                2.0 ** (word_bits - bin(mask).count("1"))
                for mask, _value in instr.patterns
            )
            for other in toy_spec.instructions:
                other_free = sum(
                    2.0 ** (word_bits - bin(mask).count("1"))
                    for mask, _value in other.patterns
                )
                if free > other_free:
                    assert weights[instr.name] > weights[other.name]


class TestPredictions:
    def test_prediction_parts_are_positive(self, gen_one_all):
        prediction = predict_costs(gen_one_all)
        assert prediction.entry_cost > 0
        assert prediction.body_cost > 0
        assert prediction.total == pytest.approx(
            prediction.entry_cost + prediction.body_cost
        )

    def test_more_information_predicts_more_host_ops(
        self, gen_one_min, gen_one_all
    ):
        assert predict_costs(gen_one_all).total > predict_costs(gen_one_min).total

    def test_multiple_calls_predict_more_host_ops(
        self, gen_one_all, gen_step_all
    ):
        assert (
            predict_costs(gen_step_all).total > predict_costs(gen_one_all).total
        )

    def test_speculation_predicts_more_host_ops(
        self, gen_one_all, gen_one_all_spec
    ):
        assert (
            predict_costs(gen_one_all_spec).total
            > predict_costs(gen_one_all).total
        )

    def test_block_buildsets_are_skipped(self, toy_spec):
        predictions = predict_spec(toy_spec)
        assert "block_min" not in predictions
        assert "one_all" in predictions


class TestBlockPrediction:
    def test_block_priced_below_one_min(self):
        """Table III's direction for the Block level: the translated
        units (superblocks, chained exits) amortize to far fewer host
        ops per instruction than the cheapest One interface."""
        from repro.check.costmodel import predict_block_costs
        from repro.isa.base import get_bundle
        from repro.synth import synthesize
        from repro.workloads import SUITE, assemble_kernel

        bundle = get_bundle("alpha")
        spec = bundle.load_spec()
        image = assemble_kernel("alpha", SUITE["checksum"], 4)
        block = predict_block_costs(
            synthesize(spec, "block_min"), image, bundle.abi
        )
        assert block.entry_cost == 0.0  # dispatch amortizes under chaining
        assert block.body_cost > 0
        one = predict_costs(synthesize(spec, "one_min"))
        assert block.total < one.total


class TestReport:
    def test_report_shape(self):
        report = cost_report("alpha")
        assert report["isa"] == "alpha"
        assert set(report["deltas"]) == {row[0] for row in DELTA_ROWS}
        for cost in report["predictions"].values():
            assert cost["total"] == pytest.approx(
                cost["entry"] + cost["body"], abs=0.02
            )

    def test_all_table3_deltas_predicted_positive(self):
        """The paper's qualitative claim, statically recovered: every
        step up in detail costs host work (block is runtime-translated
        and excluded)."""
        deltas = cost_report("alpha")["deltas"]
        assert all(value > 0 for value in deltas.values())
