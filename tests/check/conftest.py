"""Shared synthesized modules for the checker tests.

Everything here synthesizes the toy spec (fast) once per session; the
injected-defect tests then mutate the clean generated source and
re-check, which costs parsing only.
"""

import pytest

from repro.synth import SynthOptions, synthesize


@pytest.fixture(scope="session")
def gen_one_all(toy_spec):
    return synthesize(toy_spec, "one_all")


@pytest.fixture(scope="session")
def gen_one_min(toy_spec):
    return synthesize(toy_spec, "one_min")


@pytest.fixture(scope="session")
def gen_one_all_spec(toy_spec):
    return synthesize(toy_spec, "one_all_spec")


@pytest.fixture(scope="session")
def gen_step_all(toy_spec):
    return synthesize(toy_spec, "step_all")


@pytest.fixture(scope="session")
def gen_observe(toy_spec):
    return synthesize(toy_spec, "one_all", SynthOptions(observe=True))


def codes_of(result):
    return sorted({d.code for d in result.diagnostics if not d.suppressed})
