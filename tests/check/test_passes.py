"""Every CHK code catches its defect class.

Each test takes a *clean* synthesized module, injects the one defect
the code exists to catch (by mutating the generated source), and
asserts the checker reports exactly that code.  Together with the
clean-sweep tests in test_runner.py this pins both directions: no
false negatives on seeded bugs, no false positives on real modules.
"""

import pytest

from repro.check import check_generated
from repro.check.model import ModuleModel
from repro.check.passes import check_monotonicity

from .conftest import codes_of


def replaced(generated, old, new, count=1):
    source = generated.source
    assert old in source, f"fixture drift: {old!r} not in generated source"
    return source.replace(old, new, count)


class TestEngineCHK000:
    def test_unparsable_module_is_a_finding(self, gen_one_all):
        result = check_generated(gen_one_all, "def broken(:\n")
        assert codes_of(result) == ["CHK000"]
        assert result.exit_code == 1

    def test_crashing_pass_is_a_finding_not_a_crash(self, gen_one_all, monkeypatch):
        import repro.check.runner as runner

        def boom(model):
            raise RuntimeError("pass exploded")

        monkeypatch.setattr(
            runner, "MODULE_PASSES", (boom,) + tuple(runner.MODULE_PASSES)
        )
        result = check_generated(gen_one_all)
        assert "CHK000" in codes_of(result)
        assert any("pass exploded" in d.message for d in result.diagnostics)


class TestVisibilityContract:
    def test_chk001_hidden_store_into_record(self, gen_one_all_spec):
        source = replaced(
            gen_one_all_spec,
            "di.next_pc = next_pc",
            "di.next_pc = next_pc\n    di.sneaky = next_pc",
        )
        result = check_generated(gen_one_all_spec, source)
        assert codes_of(result) == ["CHK001"]

    def test_chk001_hidden_field_as_record_slot(self, gen_one_min):
        # give the Min record a slot for a field Min hides
        source = replaced(
            gen_one_min, "'fault'", "'fault', 'effective_addr'"
        )
        result = check_generated(gen_one_min, source)
        assert "CHK001" in codes_of(result)

    def test_chk002_visible_field_never_stored(self, gen_one_all):
        source = replaced(gen_one_all, "    di.dest_val = dest_val\n", "\n")
        result = check_generated(gen_one_all, source)
        assert codes_of(result) == ["CHK002"]

    def test_chk002_visible_field_without_slot(self, gen_one_all):
        source = replaced(gen_one_all, "'dest_val', ", "")
        result = check_generated(gen_one_all, source)
        assert "CHK002" in codes_of(result)

    def test_chk003_double_store(self, gen_one_all):
        source = replaced(
            gen_one_all,
            "di.dest_val = dest_val",
            "di.dest_val = dest_val\n    di.dest_val = dest_val",
        )
        result = check_generated(gen_one_all, source)
        assert codes_of(result) == ["CHK003"]

    def test_chk003_entry_and_body_both_store(self, gen_one_all):
        # the entry already stores pc; a body storing it again is a
        # second store on the same interface call
        source = replaced(
            gen_one_all,
            "di.next_pc = next_pc",
            "di.next_pc = next_pc\n    di.pc = pc",
        )
        result = check_generated(gen_one_all, source)
        assert "CHK003" in codes_of(result)


class TestDCESoundness:
    def test_chk010_memory_write_eliminated(self, gen_one_all):
        source = replaced(
            gen_one_all, "    __mem.write(effective_addr, 8, src2_val)\n", "\n"
        )
        result = check_generated(gen_one_all, source)
        assert codes_of(result) == ["CHK010"]

    def test_chk010_regfile_store_eliminated(self, gen_one_min):
        source = replaced(gen_one_min, "    R[dest1_id] = dest_val\n", "\n")
        result = check_generated(gen_one_min, source)
        assert "CHK010" in codes_of(result)

    def test_chk010_pc_commit_eliminated(self, gen_one_all):
        source = replaced(gen_one_all, "    __state.pc = next_pc\n", "\n")
        result = check_generated(gen_one_all, source)
        assert codes_of(result) == ["CHK010"]

    def test_chk011_dead_hidden_computation_survives(self, gen_one_min):
        source = replaced(
            gen_one_min,
            "__state.pc = next_pc",
            "effective_addr = 12345\n    __state.pc = next_pc",
        )
        result = check_generated(gen_one_min, source)
        assert codes_of(result) == ["CHK011"]
        assert result.exit_code == 0  # warning severity: wasteful, not wrong

    def test_chk011_fires_when_dce_is_disabled(self, toy_spec):
        """The ablation knob proves the check measures DCE effectiveness."""
        from repro.synth import SynthOptions, synthesize

        generated = synthesize(toy_spec, "one_min", SynthOptions(dce=False))
        result = check_generated(generated)
        assert "CHK011" in codes_of(result)


class TestSpeculationCoverage:
    def test_chk020_memory_write_without_undo_entry(self, gen_one_all_spec):
        source = replaced(
            gen_one_all_spec,
            "    __j.append(('m', effective_addr, 8, "
            "__mem.read(effective_addr, 8)))\n",
            "\n",
        )
        result = check_generated(gen_one_all_spec, source)
        assert codes_of(result) == ["CHK020"]

    def test_chk020_regfile_store_without_undo_entry(self, gen_one_all_spec):
        source = replaced(
            gen_one_all_spec,
            "    __j.append(('r', 'R', dest1_id, R[dest1_id]))\n",
            "\n",
        )
        result = check_generated(gen_one_all_spec, source)
        assert codes_of(result) == ["CHK020"]

    def test_chk021_publication_eliminated(self, gen_one_all_spec):
        source = replaced(
            gen_one_all_spec, "    __state.journal.append(__j)\n", "\n"
        )
        result = check_generated(gen_one_all_spec, source)
        assert codes_of(result) == ["CHK021"]

    def test_chk021_journal_machinery_in_nonspec_module(
        self, gen_one_all, gen_one_all_spec
    ):
        # a non-speculative module containing the speculative sibling's
        # journal plumbing is residue
        result = check_generated(gen_one_all, gen_one_all_spec.source)
        assert "CHK021" in codes_of(result)


class TestMonotonicity:
    def test_chk030_extra_store_in_lower_detail_module(
        self, gen_one_min, gen_one_all
    ):
        # make Min store a field All does not store for that instruction
        source = replaced(
            gen_one_min,
            "__state.pc = next_pc",
            "di.branch_taken = 0\n    __state.pc = next_pc",
        )
        mutated = ModuleModel.build(gen_one_min, source)
        clean = ModuleModel.build(gen_one_all)
        diags = check_monotonicity([mutated, clean])
        assert {d.code for d in diags} == {"CHK030"}

    def test_chk030_slot_missing_from_higher_detail_module(
        self, gen_one_min, gen_one_all
    ):
        # the higher-detail sibling losing a slot the Min module has
        # breaks the Min ⊆ All nesting of record layouts
        source = replaced(gen_one_all, "'fault', ", "")
        clean = ModuleModel.build(gen_one_min)
        mutated = ModuleModel.build(gen_one_all, source)
        diags = check_monotonicity([clean, mutated])
        assert any(
            d.code == "CHK030" and "slot" in d.message for d in diags
        )

    def test_clean_siblings_are_monotonic(
        self, gen_one_min, gen_one_all, gen_step_all
    ):
        models = [
            ModuleModel.build(g)
            for g in (gen_one_min, gen_one_all, gen_step_all)
        ]
        assert check_monotonicity(models) == []


class TestZeroOverheadResidue:
    def test_chk040_probe_residue_in_observe_off_module(
        self, gen_one_all, gen_observe
    ):
        # the observe-on sibling's source claimed by an observe-off
        # module is exactly the residue the promise forbids
        result = check_generated(gen_one_all, gen_observe.source)
        assert "CHK040" in codes_of(result)

    def test_chk040_trace_probe_residue_in_trace_off_module(self, toy_spec):
        from repro.synth import SynthOptions, synthesize

        traced = synthesize(toy_spec, "one_all", SynthOptions(trace=True))
        plain = synthesize(toy_spec, "one_all")
        # the trace-on sibling's source claimed by a trace-off module:
        # guest-PC probe residue the promise forbids
        result = check_generated(plain, traced.source)
        assert "CHK040" in codes_of(result)

    def test_chk040_accepts_probes_in_trace_on_module(self, toy_spec):
        from repro.synth import SynthOptions, synthesize

        traced = synthesize(toy_spec, "one_all", SynthOptions(trace=True))
        assert "CHK040" not in codes_of(check_generated(traced))

    def test_chk041_hops_residue_in_nonprofile_module(self, gen_one_all):
        source = replaced(
            gen_one_all,
            "__state.pc = next_pc",
            "__state.pc = next_pc\n    self._hops += 1",
        )
        result = check_generated(gen_one_all, source)
        assert codes_of(result) == ["CHK041"]

    def test_chk041_unresolved_placeholder_in_profile_module(self, toy_spec):
        from repro.synth import SynthOptions, synthesize

        generated = synthesize(toy_spec, "one_all", SynthOptions(profile=True))
        source = generated.source.replace(
            "__state.pc = next_pc",
            "self._hops += __BODY_COST_999__\n    __state.pc = next_pc",
            1,
        )
        result = check_generated(generated, source)
        assert codes_of(result) == ["CHK041"]


class TestAttribution:
    """Findings point at both the generated line and the .lis construct."""

    def test_diagnostics_carry_generated_location(self, gen_one_all):
        source = replaced(gen_one_all, "    di.dest_val = dest_val\n", "\n")
        result = check_generated(gen_one_all, source)
        (diag,) = [d for d in result.diagnostics if d.code == "CHK002"]
        assert diag.gen_loc is not None
        assert diag.gen_loc.filename == "<synth toy/one_all>"
        assert diag.gen_loc.line > 0

    def test_diagnostics_carry_spec_location(self, gen_one_all):
        source = replaced(gen_one_all, "    di.dest_val = dest_val\n", "\n")
        result = check_generated(gen_one_all, source)
        (diag,) = [d for d in result.diagnostics if d.code == "CHK002"]
        assert diag.loc is not None
        assert diag.loc.filename.endswith("toy.lis")

    def test_rendered_text_shows_both_locations(self, gen_one_all):
        from repro.check import render_text

        source = replaced(gen_one_all, "    di.dest_val = dest_val\n", "\n")
        text = render_text(check_generated(gen_one_all, source))
        assert "toy.lis" in text
        assert "[generated: <synth toy/one_all>:" in text


@pytest.mark.parametrize(
    "code",
    [
        "CHK000", "CHK001", "CHK002", "CHK003", "CHK010", "CHK011",
        "CHK020", "CHK021", "CHK030", "CHK040", "CHK041",
    ],
)
def test_code_is_registered(code):
    from repro.check import CODES
    from repro.diag import REGISTRY

    assert code in CODES
    assert REGISTRY[code] is CODES[code]
