"""Checker orchestration, CLI wiring, and the strict-synthesis gate."""

import json

import pytest

from repro.check import check_generated, check_isa, check_spec
from repro.cli import main
from repro.isa.base import available_isas

from .conftest import codes_of


class TestCleanSweep:
    def test_toy_spec_checks_clean(self, toy_spec):
        result = check_spec(toy_spec)
        assert codes_of(result) == []
        assert result.exit_code == 0
        assert len(result.paths) == len(toy_spec.buildsets)

    def test_alpha_checks_clean_across_all_buildsets(self):
        result = check_isa("alpha")
        assert codes_of(result) == []
        assert len(result.paths) == 12

    def test_block_modules_are_checked_for_layout_only(self, toy_spec):
        from repro.synth import synthesize

        generated = synthesize(toy_spec, "block_min")
        result = check_generated(generated)
        assert codes_of(result) == []

    def test_unknown_buildset_is_a_finding_not_a_crash(self, toy_spec):
        result = check_spec(toy_spec, buildsets=["does_not_exist"])
        assert codes_of(result) == ["CHK000"]
        assert result.exit_code == 1


class TestStrictSynthesis:
    # Uses alpha rather than the toy spec: the toy deliberately carries
    # a lint error (LIS030: SYS under speculation) that trips the
    # earlier strict gate before the checker gets to run.

    @pytest.fixture(scope="class")
    def alpha_spec(self):
        from repro.isa.base import get_bundle

        return get_bundle("alpha").load_spec()

    def test_strict_runs_the_checker(self, alpha_spec, monkeypatch):
        """strict=True refuses to hand out a module that fails validation."""
        from repro.synth import synthesize
        from repro.synth.errors import SynthesisError
        import repro.check.runner as runner

        from repro.check.codes import make_diagnostic

        def failing(model):
            return [make_diagnostic("CHK001", "injected strict failure")]

        monkeypatch.setattr(runner, "MODULE_PASSES", (failing,))
        with pytest.raises(SynthesisError, match="CHK001"):
            synthesize(alpha_spec, "one_all", strict=True)

    def test_strict_passes_on_clean_spec(self, alpha_spec):
        from repro.synth import synthesize

        generated = synthesize(alpha_spec, "one_all", strict=True)
        assert generated.buildset_name == "one_all"


class TestCLI:
    def test_check_text_clean(self, capsys):
        assert main(["check", "alpha", "--buildset", "one_min"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_check_json_document_shape(self, capsys):
        assert main(["check", "alpha", "--buildset", "one_min",
                     "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["exit_code"] == 0
        assert doc["paths"] == ["alpha/one_min"]

    def test_check_json_with_cost_model(self, capsys):
        assert main(["check", "alpha", "--format=json", "--costs"]) == 0
        doc = json.loads(capsys.readouterr().out)
        report = doc["cost_model"]
        assert report["isa"] == "alpha"
        assert set(report["deltas"]) == {
            "decode", "full", "multi_call", "speculation"
        }

    @pytest.mark.parametrize("command", ["check", "lint"])
    def test_unknown_isa_exits_2_with_known_list(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "notanisa"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown ISA 'notanisa'" in err
        for isa in available_isas():
            assert isa in err


class TestSuppression:
    def test_check_disable_comment_suppresses(self, gen_one_all, tmp_path):
        """A ``// check: disable=`` on the attributed .lis line works."""
        from repro.adl.errors import SourceLoc
        from repro.check.codes import make_diagnostic
        from repro.diag.suppress import SuppressionIndex

        lis = tmp_path / "spec.lis"
        lis.write_text("field f : u64; // check: disable=CHK002\n")
        diag = make_diagnostic(
            "CHK002", "f never stored", loc=SourceLoc(str(lis), 1, 1)
        )
        (marked,) = SuppressionIndex().apply([diag])
        assert marked.suppressed

    def test_lint_style_comment_also_suppresses_check_codes(self, tmp_path):
        from repro.adl.errors import SourceLoc
        from repro.check.codes import make_diagnostic
        from repro.diag.suppress import SuppressionIndex

        lis = tmp_path / "spec.lis"
        lis.write_text("field f : u64; # lint: disable=CHK002,LIS022\n")
        diag = make_diagnostic(
            "CHK002", "f never stored", loc=SourceLoc(str(lis), 1, 1)
        )
        (marked,) = SuppressionIndex().apply([diag])
        assert marked.suppressed
