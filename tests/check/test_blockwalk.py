"""Static walk of runtime-translated units (CHK050-CHK052, CHK040).

Both directions, mirroring ``tests/check/test_passes.py``: the shipping
translator's units walk clean, and each code catches its defect class —
injected either by mutating a genuinely translated unit or via a
hand-built :class:`UnitInfo`.
"""

import pytest

from repro.check.blockwalk import (
    UnitInfo,
    check_translated_units,
    check_unit,
    walk_units,
)
from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize
from repro.workloads import SUITE, assemble_kernel


@pytest.fixture(scope="module")
def alpha_walk():
    """Translated units of alpha/block_min over the checksum kernel."""
    bundle = get_bundle("alpha")
    spec = bundle.load_spec()
    generated = synthesize(spec, "block_min")
    image = assemble_kernel("alpha", SUITE["checksum"], 4)
    return walk_units(generated, image, bundle.abi)


def codes_of(diags):
    return sorted({d.code for d in diags})


class TestWalk:
    def test_walk_reaches_multiple_units(self, alpha_walk):
        assert len(alpha_walk) > 3
        assert all(unit.length >= 1 for unit in alpha_walk)
        assert all(
            isinstance(t, int) for unit in alpha_walk for t in unit.exit_targets
        )

    def test_superblocks_actually_form(self, alpha_walk):
        # the walk must exercise the interesting shapes, or the checks
        # below prove nothing
        assert any(unit.length > 8 for unit in alpha_walk)
        assert any(unit.cells > 0 for unit in alpha_walk)

    def test_shipping_units_check_clean(self, alpha_walk):
        diags = [
            d
            for unit in alpha_walk
            for d in check_unit(unit, "alpha", chain=True, observe=False)
        ]
        assert not diags, [d.message for d in diags]

    def test_full_isa_sweep_is_clean(self):
        spec = get_bundle("alpha").load_spec()
        diags = check_translated_units("alpha", spec)
        assert not diags, [d.message for d in diags]

    def test_chain_off_units_check_clean_as_chain_off(self):
        bundle = get_bundle("alpha")
        spec = bundle.load_spec()
        generated = synthesize(spec, "block_min", SynthOptions(chain=False))
        image = assemble_kernel("alpha", SUITE["checksum"], 4)
        for unit in walk_units(generated, image, bundle.abi):
            assert not check_unit(unit, "alpha", chain=False, observe=False)


class TestDefectInjection:
    """Each code fires on exactly the defect it exists to catch."""

    def mutate(self, unit, **changes):
        import dataclasses

        return dataclasses.replace(unit, **changes)

    def pick_superblock(self, walk):
        return next(u for u in walk if u.length > 2 and u.cells > 0)

    def test_dropped_trace_record_is_chk051(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        source = unit.source.replace("__trace.append", "__notrace.append", 1)
        bad = self.mutate(unit, source=source)
        assert "CHK051" in codes_of(check_unit(bad, "t", chain=True, observe=False))

    def test_wrong_length_is_chk051(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        bad = self.mutate(unit, length=unit.length + 1)
        codes = codes_of(check_unit(bad, "t", chain=True, observe=False))
        assert "CHK051" in codes

    def test_unparseable_unit_is_chk050(self, alpha_walk):
        bad = self.mutate(alpha_walk[0], source="def f(:")
        assert codes_of(check_unit(bad, "t", chain=True, observe=False)) == ["CHK050"]

    def test_count_above_length_is_chk050(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        source = unit.source.replace(
            f"di.count = {unit.length}", f"di.count = {unit.length + 7}"
        )
        if source == unit.source:
            pytest.skip("unit's epilogue does not store its full count")
        bad = self.mutate(unit, source=source)
        assert "CHK050" in codes_of(check_unit(bad, "t", chain=True, observe=False))

    def test_missing_count_store_is_chk050(self):
        bad = UnitInfo(
            pc=0,
            source="def _blk_0(self, di):\n    pass",
            length=0,
            cells=0,
            exit_targets=(),
        )
        assert "CHK050" in codes_of(check_unit(bad, "t", chain=True, observe=False))

    def test_budget_overdebit_is_chk050(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        source = unit.source.replace(
            f"di.budget - {unit.length}", f"di.budget - {unit.length + 9}"
        )
        if source == unit.source:
            pytest.skip("unit's epilogue does not debit its full length")
        bad = self.mutate(unit, source=source)
        assert "CHK050" in codes_of(check_unit(bad, "t", chain=True, observe=False))

    def test_chain_slot_mismatch_is_chk052(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        bad = self.mutate(unit, cells=unit.cells + 1)
        assert "CHK052" in codes_of(check_unit(bad, "t", chain=True, observe=False))

    def test_chain_residue_when_off_is_chk052(self, alpha_walk):
        unit = self.pick_superblock(alpha_walk)
        assert "CHK052" in codes_of(check_unit(unit, "t", chain=False, observe=False))

    def test_obs_residue_when_off_is_chk040(self, alpha_walk):
        unit = alpha_walk[0]
        bad = self.mutate(unit, source=unit.source + "\n    __o = self.obs")
        codes = codes_of(check_unit(bad, "t", chain=True, observe=False))
        assert "CHK040" in codes

    def test_prof_residue_when_trace_off_is_chk040(self, alpha_walk):
        unit = alpha_walk[0]
        bad = self.mutate(
            unit, source=unit.source + "\n    self._prof_hits[0] = 1"
        )
        codes = codes_of(
            check_unit(bad, "t", chain=True, observe=False, trace=False)
        )
        assert "CHK040" in codes

    def test_prof_reference_is_allowed_when_trace_on(self, alpha_walk):
        unit = alpha_walk[0]
        probed = self.mutate(
            unit, source=unit.source + "\n    self._prof_hits[0] = 1"
        )
        codes = codes_of(
            check_unit(probed, "t", chain=True, observe=False, trace=True)
        )
        assert "CHK040" not in codes
