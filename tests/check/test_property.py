"""Property: every ISA x buildset synthesizes to a module that checks clean.

This is the checker's standing guarantee over the whole shipping
surface — any (ISA, interface) pair a user can ask ``synthesize`` for
passes translation validation with zero findings.  Hypothesis drives
the sampling; results are cached per pair so repeated examples cost
nothing.
"""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.base import available_isas, get_bundle


@lru_cache(maxsize=None)
def _spec(isa: str):
    return get_bundle(isa).load_spec()


@lru_cache(maxsize=None)
def _check_one(isa: str, buildset: str):
    from repro.check import check_generated
    from repro.synth import synthesize

    return check_generated(synthesize(_spec(isa), buildset))


_PAIRS = [
    (isa, buildset)
    for isa in available_isas()
    for buildset in sorted(_spec(isa).buildsets)
]


@settings(
    deadline=None,
    max_examples=len(_PAIRS),
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(pair=st.sampled_from(_PAIRS))
def test_every_isa_buildset_checks_clean(pair):
    isa, buildset = pair
    result = _check_one(isa, buildset)
    unsuppressed = [d for d in result.diagnostics if not d.suppressed]
    assert unsuppressed == [], (
        f"{isa}/{buildset}: " + "; ".join(d.message for d in unsuppressed)
    )
    assert result.exit_code == 0
