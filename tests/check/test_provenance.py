"""The provenance side-table emitted during code generation.

Generated modules are an implementation detail the user never reads;
diagnostics about them are only actionable if they can be traced back
to the ``.lis`` construct that produced each line.  These tests pin the
side-table's coverage and the line-offset bookkeeping that survives
sub-writer merging in the step generator.
"""

from repro.synth.provenance import Provenance, SpecOrigin


class TestSideTableCoverage:
    def test_every_recorded_line_is_in_range(self, gen_one_all, gen_step_all):
        for generated in (gen_one_all, gen_step_all):
            total = len(generated.source.splitlines())
            provenance = generated.plan.provenance
            assert provenance.lines
            assert all(1 <= line <= total for line in provenance.lines)

    def test_record_stores_attribute_to_field_declarations(self, gen_one_all):
        spec = gen_one_all.plan.spec
        provenance = gen_one_all.plan.provenance
        lines = gen_one_all.source.splitlines()
        stores = [
            (line, origin)
            for line, origin in provenance.lines.items()
            if origin.kind == "store"
        ]
        assert stores
        for line, origin in stores:
            assert lines[line - 1].lstrip().startswith(
                (f"di.{origin.detail} =", f"di.{origin.detail}=")
            )
            # user-declared fields point into the .lis source; builtins
            # (pc, instr_bits, ...) have no declaration to point at
            if not spec.fields[origin.detail].builtin:
                assert origin.loc is not None

    def test_semantics_lines_attribute_to_instruction_actions(self, gen_one_all):
        provenance = gen_one_all.plan.provenance
        semantics = [
            origin
            for origin in provenance.lines.values()
            if origin.kind == "semantics"
        ]
        assert semantics
        assert all(origin.instr for origin in semantics)

    def test_body_functions_are_recorded(self, gen_one_all, gen_step_all):
        spec = gen_one_all.plan.spec
        for index in range(len(spec.instructions)):
            assert f"_b_{index}" in gen_one_all.plan.provenance.functions
        step_functions = gen_step_all.plan.provenance.functions
        assert any(name.startswith("_sb_") for name in step_functions)

    def test_step_origins_carry_their_entrypoint_index(self, gen_step_all):
        provenance = gen_step_all.plan.provenance
        steps = {
            origin.step
            for origin in provenance.lines.values()
            if origin.kind == "semantics"
        }
        assert len(steps) > 1  # semantics are split across entrypoints

    def test_journal_lines_attributed_under_speculation(self, gen_one_all_spec):
        provenance = gen_one_all_spec.plan.provenance
        journal = [
            o for o in provenance.lines.values() if o.kind == "journal"
        ]
        assert journal


class TestOriginLookup:
    def test_line_origin_wins_over_function_origin(self):
        provenance = Provenance()
        fn_origin = SpecOrigin(instr="ADD", kind="body")
        line_origin = SpecOrigin(instr="ADD", kind="store", detail="dest_val")
        provenance.record_function("_b_0", fn_origin)
        provenance.record_line(10, line_origin)
        assert provenance.origin_at(10, "_b_0") is line_origin
        assert provenance.origin_at(11, "_b_0") is fn_origin
        assert provenance.origin_at(11) is None

    def test_merge_offset_shifts_lines(self):
        outer = Provenance()
        inner = Provenance()
        origin = SpecOrigin(instr="ADD", kind="semantics")
        inner.record_line(3, origin)
        inner.record_function("_sb_1_0", origin)
        outer.merge_offset(inner, 100)
        assert outer.origin_at(103) is origin
        assert outer.functions["_sb_1_0"] is origin

    def test_describe_is_human_readable(self):
        origin = SpecOrigin(
            instr="LDW", action="memory_access", kind="semantics", step=4
        )
        text = origin.describe()
        assert "LDW" in text
        assert "memory_access" in text
        assert "step 4" in text
