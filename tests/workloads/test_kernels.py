"""Kernel-suite validation: every kernel, every ISA, several interfaces.

This is our version of the paper's §V.D validation methodology, including
the rotating-interface run that exercises every interface without a full
validation run per interface.
"""

import pytest

from repro.isa.base import get_bundle
from repro.synth import synthesize
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.workloads import SUITE, assemble_kernel, kernel_names, run_kernel

ISAS = ("alpha", "arm", "ppc")

_GEN_CACHE = {}


def generated(isa, buildset):
    key = (isa, buildset)
    if key not in _GEN_CACHE:
        _GEN_CACHE[key] = synthesize(get_bundle(isa).load_spec(), buildset)
    return _GEN_CACHE[key]


class TestKernelCorrectness:
    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_matches_reference(self, isa, name):
        run = run_kernel(generated(isa, "one_min"), isa, name)
        assert run.correct, (
            f"{name} on {isa}: got {run.result:#x}, expected {run.expected:#x}"
        )
        assert run.exit_status is not None

    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize(
        "buildset", ["block_min", "block_all_spec", "one_all", "step_all"]
    )
    def test_representative_kernel_across_interfaces(self, isa, buildset):
        run = run_kernel(generated(isa, buildset), isa, "checksum")
        assert run.correct

    @pytest.mark.parametrize("isa", ISAS)
    def test_instruction_counts_close_across_isas(self, isa):
        """Kernels express the same algorithm, so dynamic counts should be
        the same order of magnitude on every ISA."""
        runs = [run_kernel(generated(i, "one_min"), i, "fib") for i in ISAS]
        counts = [r.executed for r in runs]
        assert max(counts) < 2 * min(counts)


class TestRotatingValidation:
    """Call a different interface for each basic block (paper §V.D)."""

    @pytest.mark.parametrize("isa", ISAS)
    def test_rotating_interfaces_produce_reference_result(self, isa):
        bundle = get_bundle(isa)
        spec_names = ["one_all", "one_min", "one_all_spec", "block_min", "block_all"]
        gens = [generated(isa, name) for name in spec_names]
        kernel = SUITE["sieve"]
        image = assemble_kernel(isa, kernel, kernel.test_n)
        os_emu = OSEmulator(bundle.abi)
        sims = [g.make(syscall_handler=os_emu) for g in gens]
        # All sims share one architectural state.
        shared = sims[0].state
        for sim in sims[1:]:
            sim.state = shared
        load_image(shared, image, bundle.abi)

        from repro.arch.faults import ExitProgram

        executed = 0
        index = 0
        try:
            while executed < 10_000_000:
                sim = sims[index % len(sims)]
                index += 1
                if sim.buildset.semantic_detail == "block":
                    sim.di.count = 0
                    sim.do_block(sim.di)
                    executed += sim.di.count
                else:
                    sim.do_in_one(sim.di)
                    executed += 1
        except ExitProgram:
            pass
        value = shared.mem.read_u32(image.symbol("result"))
        assert value == kernel.reference(kernel.test_n) & 0xFFFFFFFF


class TestBuilderInfrastructure:
    def test_emitted_assembly_differs_per_isa(self):
        kernel = SUITE["fib"].build(10)
        sources = {isa: kernel.emit(isa) for isa in ISAS}
        assert "call_pal" in sources["alpha"]
        assert "swi" in sources["arm"]
        assert "sc" in sources["ppc"]
        assert len({id(s) for s in sources.values()}) == 3

    def test_kernel_register_overflow_detected(self):
        from repro.workloads.builder import Kernel

        kernel = Kernel()
        regs = kernel.regs(" ".join(f"r{i}" for i in range(13)))
        kernel.li(regs[-1], 1)
        with pytest.raises(ValueError, match="registers"):
            kernel.emit("alpha")

    @pytest.mark.parametrize("isa", ISAS)
    def test_store_result_word_readable(self, isa):
        run = run_kernel(generated(isa, "one_min"), isa, "fib", n=10)
        assert run.result == 55
