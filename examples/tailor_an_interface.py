#!/usr/bin/env python3
"""Tailoring a new interface in a dozen lines (the paper's headline claim).

"The amount of time and effort required to achieve these benefits is
trivial; ... this 14.4x performance benefit can be obtained by expending
only minutes of development time writing about a dozen lines of code."

We take the stock Alpha description and add a brand-new interface that a
hypothetical cache-study timing simulator wants: one call per basic
block, reporting ONLY effective addresses and next PCs.  That is 6 lines
of ADL.  No instruction semantics are touched, nothing is revalidated
beyond the interface itself, and the tailored simulator runs much faster
than the everything-visible one.

Run:  python examples/tailor_an_interface.py
"""

import time

from repro import get_bundle, load_isa, synthesize
from repro.adl import analyze, parse_files, parse_source
from repro.sysemu import OSEmulator, load_image
from repro.workloads import SUITE, assemble_kernel

# The entire cost of the new interface: -----------------------------------
NEW_INTERFACE = """
buildset cache_study {
  speculation off;
  visibility hide all;
  visibility show effective_addr;
  entrypoint block do_block = full_pipe;
}
"""
# --------------------------------------------------------------------------


def make_spec_with_new_interface():
    bundle = get_bundle("alpha")
    decls = parse_files(bundle.description_paths())
    decls += parse_source(NEW_INTERFACE, "<cache_study>")
    return bundle, analyze(decls)


def measure(generated, bundle, kernel, n) -> tuple[float, int]:
    image = assemble_kernel("alpha", kernel, n)
    sim = generated.make(syscall_handler=OSEmulator(bundle.abi))
    load_image(sim.state, image, bundle.abi)
    snapshot = sim.state.snapshot()
    sim.run(100_000_000)  # warm translation caches
    sim.state.restore(snapshot)
    start = time.perf_counter()
    result = sim.run(100_000_000)
    return time.perf_counter() - start, result.executed


def main() -> None:
    bundle, spec = make_spec_with_new_interface()
    lines = len([l for l in NEW_INTERFACE.splitlines() if l.strip()])
    print(f"added interface 'cache_study' in {lines} lines of ADL")
    print(f"spec now has {len(spec.buildsets)} interfaces\n")

    kernel = SUITE["memcopy"]
    n = 2000
    for name in ("one_all", "cache_study"):
        generated = synthesize(spec, name)
        elapsed, executed = measure(generated, bundle, kernel, n)
        print(f"{name:12s}: {executed} instructions in {elapsed:.3f}s "
              f"({executed / elapsed / 1e6:.2f} MIPS)")

    # The tailored interface still reports what the cache study needs:
    generated = synthesize(spec, "cache_study")
    sim = generated.make(syscall_handler=OSEmulator(bundle.abi))
    image = assemble_kernel("alpha", kernel, 50)
    load_image(sim.state, image, bundle.abi)
    addresses = []
    fields = generated.plan.trace_fields
    ea_index = fields.index("effective_addr")
    while len(addresses) < 8:
        sim.di.count = 0
        sim.do_block(sim.di)
        addresses += [
            rec[ea_index] for rec in sim.di.trace if rec[ea_index] is not None
        ]
    print("\nfirst data addresses seen by the cache study:",
          [hex(a) for a in addresses[:8]])


if __name__ == "__main__":
    main()
