#!/usr/bin/env python3
"""Speculative functional-first: run ahead, roll back, re-execute.

Paper §II-E: the functional simulator runs independently of the timing
simulator, and "when the timing simulator detects that the functional
simulator's execution has differed in any way from the timing
simulator's ... it can command the functional simulator to undo its
previous behavior".

The speculation support costs one ADL keyword (``speculation on``); the
synthesizer journals every architectural write.  Here a divergence
schedule forces periodic rollbacks of the speculative tail, and the run
still ends in exactly the right architectural state.

Run:  python examples/speculative_runahead.py
"""

from repro import get_bundle, synthesize
from repro.sysemu import OSEmulator, load_image
from repro.timing import SpeculativeFunctionalFirstSimulator
from repro.workloads import SUITE, assemble_kernel

ISA = "ppc"  # works on any of the three ISAs; try arm or alpha too
KERNEL = SUITE["sieve"]
N = 400


def main() -> None:
    bundle = get_bundle(ISA)
    spec = bundle.load_spec()
    image = assemble_kernel(ISA, KERNEL, N)
    expected = KERNEL.reference(N) & 0xFFFFFFFF

    simulator = SpeculativeFunctionalFirstSimulator(
        synthesize(spec, "one_decode_spec"),
        syscall_handler=OSEmulator(bundle.abi),
        window=16,          # timing simulator lags at most 16 instructions
        diverge_every=113,  # "memory order violation" schedule
        diverge_depth=5,    # squash the last 5 speculative instructions
    )
    load_image(simulator.state, image, bundle.abi)
    report = simulator.run(100_000_000)

    value = simulator.state.mem.read_u32(image.symbol("result"))
    print(f"ISA                    : {ISA}")
    print(f"instructions consumed  : {report.instructions} "
          f"(includes re-executed wrong-path work)")
    print(f"rollbacks              : {report.rollbacks}")
    print(f"instructions squashed  : {report.rolled_back_instructions}")
    print(f"journal entries pending: {len(simulator.state.journal)}")
    print(f"result                 : {value} (expected {expected}) -> "
          f"{'CORRECT' if value == expected else 'WRONG'}")
    assert value == expected


if __name__ == "__main__":
    main()
