#!/usr/bin/env python3
"""Timing-first simulation: the functional simulator as a safety net.

Paper §II-D: "the timing simulator need not be totally functionally
correct — corner cases and rare instructions can be ignored and bugs can
be tolerated ... The checking by a functional simulator improves
debuggability of the timing simulator by providing nearly-immediate
notification when an error occurs."

We run an integrated timing model that has a deliberate functional bug
(every 400th instruction corrupts a register) next to a One/Min
functional checker synthesized from the same specification.  Every
corruption is caught at the next instruction boundary, counted, and
repaired by reloading architectural state.

Run:  python examples/timing_first_checker.py
"""

from repro import get_bundle, synthesize
from repro.sysemu import OSEmulator, load_image
from repro.timing import TimingFirstSimulator
from repro.workloads import SUITE, assemble_kernel

ISA = "alpha"
KERNEL = SUITE["sort"]
N = 64


def main() -> None:
    bundle = get_bundle(ISA)
    spec = bundle.load_spec()
    image = assemble_kernel(ISA, KERNEL, N)
    expected = KERNEL.reference(N) & 0xFFFFFFFF

    simulator = TimingFirstSimulator(
        timing_generated=synthesize(spec, "one_all"),
        checker_generated=synthesize(spec, "one_min"),
        syscall_handler_factory=lambda: OSEmulator(bundle.abi),
        inject_bug_every=400,
    )
    simulator.load(lambda state: load_image(state, image, bundle.abi))
    report = simulator.run(100_000_000)

    value = simulator.checker_sim.state.mem.read_u32(image.symbol("result"))
    print(f"instructions : {report.instructions}")
    print(f"injected bugs: ~{report.instructions // 400}")
    print(f"mismatches   : {report.mismatches} (caught and repaired)")
    print(f"result       : {value:#x} (expected {expected:#x}) -> "
          f"{'CORRECT' if value == expected else 'WRONG'}")
    print(f"cycles       : {report.cycles} (CPI {report.cpi:.2f}; each "
          f"repair cost a pipeline flush)")
    assert value == expected


if __name__ == "__main__":
    main()
