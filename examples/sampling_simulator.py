#!/usr/bin/env python3
"""Sampling microarchitecture simulation with two synthesized interfaces.

The motivating scenario from paper §I: "timing simulators which support
sampling perform detailed simulation for only small portions of the
total simulation run and 'fast-forward' through the rest ... During
fast-forwarding, the timing simulator needs very little information."

One specification gives us both interfaces: a Step/All build for the
detailed windows (the timing-directed pipeline drives the seven calls
per instruction) and a Block/Min build for fast-forwarding.  Both
operate on the same architectural state.

Run:  python examples/sampling_simulator.py
"""

import time

from repro import get_bundle, synthesize
from repro.sysemu import OSEmulator, load_image
from repro.timing import SamplingSimulator, TimingDirectedSimulator
from repro.workloads import SUITE, assemble_kernel

ISA = "alpha"
KERNEL = "checksum"
N = 3000


def main() -> None:
    bundle = get_bundle(ISA)
    spec = bundle.load_spec()
    image = assemble_kernel(ISA, SUITE[KERNEL], N)

    step = synthesize(spec, "step_all")
    block = synthesize(spec, "block_min")

    # Ground truth: detailed simulation everywhere.
    detailed = TimingDirectedSimulator(step, OSEmulator(bundle.abi))
    load_image(detailed.state, image, bundle.abi)
    start = time.perf_counter()
    truth = detailed.run(100_000_000)
    truth_elapsed = time.perf_counter() - start
    print(f"detailed everywhere : {truth.instructions} instr, "
          f"CPI {truth.cpi:.3f}, {truth_elapsed:.2f}s")

    # Sampling: 10% detailed windows, 90% fast-forward.
    sampler = SamplingSimulator(
        step, block,
        syscall_handler=OSEmulator(bundle.abi),
        detail_window=150,
        fastforward_window=1350,
    )
    load_image(sampler.state, image, bundle.abi)
    snap = sampler.state.snapshot()
    sampler.run(100_000_000)          # warm the fast-forward code cache
    sampler.state.restore(snap)
    report = sampler.run(100_000_000)
    print(f"sampling (10% det.) : {report.instructions} instr, "
          f"CPI estimate {report.estimated_cpi:.3f}, {report.elapsed:.2f}s")
    print(f"\nspeedup {truth_elapsed / report.elapsed:.1f}x, CPI error "
          f"{abs(report.estimated_cpi - truth.cpi) / truth.cpi * 100:.1f}%")
    print("the fast-forward interface cost a dozen lines of ADL, not a "
          "second functional simulator")


if __name__ == "__main__":
    main()
