#!/usr/bin/env python3
"""Quickstart: the single-specification principle in one file.

We describe a tiny ISA once, at full detail, then synthesize two
different functional-to-timing interfaces from it: a debugging-friendly
One/All interface and a fast Block/Min interface.  Both run the same
program, produce the same architectural state, and were *not* written
twice — that's the paper's whole point.

Run:  python examples/quickstart.py
"""

from repro import ExitProgram, load_isa_source, synthesize

TINY_ISA = r"""
isa tiny;
endian little;
ilen 4;

regfile R 16 u64;

field src1_val u64;
field src2_val u64;
field dest_val u64;

format rform { opcode[31:26]; ra[25:21]; rb[20:16]; rc[15:11]; }
format iform { opcode[31:26]; ra[25:21]; rb[20:16]; imm[15:0] signed; }

accessor R(n) {
  decode %{ index = n %}
  read   %{ value = R[index] %}
  write  %{ R[index] = value %}
}

operandname src1 source (decode_instruction, read_src1) = src1_val;
operandname src2 source (decode_instruction, read_src2) = src2_val;
operandname dest1 dest  (decode_instruction, write_dest1) = dest_val;

actions translate_pc, fetch_instruction, decode_instruction,
        read_src1, read_src2, evaluate, memory_access, write_dest1,
        check_exception;

action *@translate_pc = %{ phys_pc = pc %}
action *@fetch_instruction = %{ instr_bits = __fetch(phys_pc) %}

class alu;
operand alu src1 R(ra);
operand alu src2 R(rb);
operand alu dest1 R(rc);

class ialu;
operand ialu src1 R(ra);
operand ialu dest1 R(rb);

instruction ADD format rform : alu { match opcode == 1; }
action ADD@evaluate = %{ dest_val = u64(src1_val + src2_val) %}

instruction ADDI format iform : ialu { match opcode == 2; }
action ADDI@evaluate = %{ dest_val = u64(src1_val + imm) %}

instruction BNE format iform : ialu { match opcode == 3; }
action BNE@evaluate = %{
  dest_val = src1_val
  if src1_val != 0:
      next_pc = u64(pc + 4 + imm * 4)
%}

instruction HALT format rform { match opcode == 63; }
action HALT@memory_access = %{ __syscall() %}

// Two interfaces from the ONE description above -------------------------
buildset debug_iface {
  speculation off;
  visibility show all;
  entrypoint do_in_one = translate_pc, fetch_instruction, decode_instruction,
                         read_src1, read_src2, evaluate, memory_access,
                         write_dest1, check_exception;
}

buildset fast_iface {
  speculation off;
  visibility hide all;
  entrypoint block do_block = translate_pc, fetch_instruction, decode_instruction,
                              read_src1, read_src2, evaluate, memory_access,
                              write_dest1, check_exception;
}
"""


def iform(op, ra, rb, imm):
    return (op << 26) | (ra << 21) | (rb << 16) | (imm & 0xFFFF)


def rform(op, ra, rb, rc):
    return (op << 26) | (ra << 21) | (rb << 16) | (rc << 11)


# sum the numbers 1..100 into R3, then halt
PROGRAM = [
    iform(2, 0, 1, 100),   # ADDI r1 = r0 + 100   (counter)
    iform(2, 0, 3, 0),     # ADDI r3 = 0          (sum)
    rform(1, 3, 1, 3),     # ADD  r3 = r3 + r1    <- loop
    iform(2, 1, 1, -1),    # ADDI r1 = r1 - 1
    iform(3, 1, 0, -3),    # BNE  r1, loop
    rform(63, 0, 0, 0),    # HALT
]


def main() -> None:
    spec = load_isa_source(TINY_ISA)
    print(f"analyzed ISA {spec.name!r}: {len(spec.instructions)} instructions, "
          f"{len(spec.buildsets)} interfaces\n")

    def halt(state, di):
        raise ExitProgram(int(state.rf["R"][3]) & 0xFF)

    results = {}
    for name in ("debug_iface", "fast_iface"):
        generated = synthesize(spec, name)
        sim = generated.make(syscall_handler=halt)
        for index, word in enumerate(PROGRAM):
            sim.state.mem.write_u32(index * 4, word)
        outcome = sim.run(10_000)
        results[name] = sim.state.rf["R"][3]
        print(f"{name:12s}: executed {outcome.executed} instructions, "
              f"R3 = {sim.state.rf['R'][3]}")

    assert results["debug_iface"] == results["fast_iface"] == 5050
    print("\nBoth interfaces computed sum(1..100) = 5050 from one "
          "specification.")

    # Peek at what the synthesizer produced for the debug interface.
    generated = synthesize(spec, "debug_iface")
    body = generated.source.split("def _b_0")[1].split("\ndef ")[0]
    print("\nGenerated One/All body for ADD (hidden fields are locals,\n"
          "visible fields become record stores):")
    print("def _b_0" + body)


if __name__ == "__main__":
    main()
