"""Experiment FN5 — footnote 5: interpreted vs translated base cost.

Paper: "similar measurements using an interpreted rather than
binary-translated style of execution give a base cost of 205.5 host
instructions for the Alpha instruction set" vs 104.0 translated — the
interpreter roughly doubles the base cost.  We compare the exec-dispatch
interpreter against the compiled One/Min simulator (same buildset, same
DCE, same visibility) and the Block/Min translator.
"""

from repro.harness import measure_buildset, measure_interpreter, render_table


def test_footnote5(benchmark, publish, publish_json):
    def measure():
        interp = measure_interpreter("alpha", "one_min")
        compiled = measure_buildset("alpha", "one_min")
        translated = measure_buildset("alpha", "block_min")
        return interp, compiled, translated

    interp, compiled, translated = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    publish_json(
        "FN5",
        {
            "experiment": "footnote5_interpreted",
            "unit": "geomean MIPS over the kernel suite (Alpha)",
            "mips": {
                "interpreted_one_min": interp.mips,
                "compiled_one_min": compiled.mips,
                "translated_block_min": translated.mips,
            },
        },
    )
    rows = [
        ["interpreted (exec-dispatch), One/Min", round(interp.mips, 3)],
        ["compiled bodies, One/Min", round(compiled.mips, 3)],
        ["block-translated, Block/Min", round(translated.mips, 3)],
    ]
    publish(
        "footnote5_interpreted",
        render_table(
            "Footnote 5 (analogue): execution styles at minimum detail (Alpha, MIPS)",
            ["Execution style", "MIPS"],
            rows,
            float_format="{:.3f}",
        ),
    )
    # Interpretation costs more than compiled dispatch; translation wins.
    assert compiled.mips > interp.mips
    assert translated.mips > compiled.mips
    # Paper's ratio is ~2x; accept anything clearly above 1.2x.
    assert compiled.mips / interp.mips > 1.2
