"""Experiment F1 — Figure 1: the decoupled-simulator organization taxonomy.

Figure 1 is a diagram, not a measurement; its executable reproduction is
that all five organizations (integrated, functional-first,
timing-directed, timing-first, speculative functional-first) run against
interfaces synthesized from ONE specification, produce architecturally
identical results, and exhibit their characteristic properties (trace
consumption, step control, mismatch checking, rollback recovery).
"""

from repro.harness import render_table
from repro.isa.base import get_bundle
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.timing import (
    FunctionalFirstSimulator,
    IntegratedSimulator,
    SpeculativeFunctionalFirstSimulator,
    TimingDirectedSimulator,
    TimingFirstSimulator,
)
from repro.workloads import SUITE, assemble_kernel

from conftest import generator

ISA = "alpha"
KERNEL = SUITE["checksum"]
N = 1500


def _image():
    return assemble_kernel(ISA, KERNEL, N)


def _handler():
    return OSEmulator(get_bundle(ISA).abi)


def _run_all():
    bundle = get_bundle(ISA)
    expected = KERNEL.reference(N) & 0xFFFFFFFF
    image = _image()
    reports = []

    integrated = IntegratedSimulator(generator(ISA, "one_all"), _handler())
    load_image(integrated.state, image, bundle.abi)
    reports.append((integrated.run(10_000_000), integrated.state, "one_all"))

    ff = FunctionalFirstSimulator(
        generator(ISA, "block_decode"), syscall_handler=_handler()
    )
    load_image(ff.state, image, bundle.abi)
    reports.append((ff.run(10_000_000), ff.state, "block_decode"))

    td = TimingDirectedSimulator(generator(ISA, "step_all"), _handler())
    load_image(td.state, image, bundle.abi)
    reports.append((td.run(10_000_000), td.state, "step_all"))

    tf = TimingFirstSimulator(
        generator(ISA, "one_all"), generator(ISA, "one_min"), _handler,
        inject_bug_every=700,
    )
    tf.load(lambda st: load_image(st, image, bundle.abi))
    reports.append((tf.run(10_000_000), tf.checker_sim.state, "one_all+one_min"))

    sff = SpeculativeFunctionalFirstSimulator(
        generator(ISA, "one_decode_spec"),
        syscall_handler=_handler(),
        diverge_every=89,
        diverge_depth=3,
    )
    load_image(sff.state, image, bundle.abi)
    reports.append((sff.run(10_000_000), sff.state, "one_decode_spec"))

    return reports, expected, image


def test_fig1_all_organizations(benchmark, publish, publish_json):
    reports, expected, image = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    publish_json(
        "F1",
        {
            "experiment": "fig1_organizations",
            "kernel": "checksum",
            "organizations": {
                report.organization: {
                    "interface": interface,
                    "instructions": report.instructions,
                    "cycles": report.cycles,
                    "mismatches": report.mismatches,
                    "rollbacks": report.rollbacks,
                }
                for report, _, interface in reports
            },
        },
    )
    rows = []
    for report, state, interface in reports:
        value = state.mem.read_u32(image.symbol("result"))
        rows.append(
            [
                report.organization,
                interface,
                report.instructions,
                report.cycles,
                round(report.ipc, 3) if report.cycles else "-",
                report.mismatches,
                report.rollbacks,
                "ok" if value == expected else "WRONG",
            ]
        )
        assert value == expected, f"{report.organization} diverged"
    publish(
        "fig1_organizations",
        render_table(
            "Figure 1 (executable analogue): one specification driving "
            "every simulator organization",
            ["Organization", "Interface used", "Instr", "Cycles", "IPC",
             "Mismatch", "Rollback", "Arch state"],
            rows,
        ),
    )
    by_org = {report.organization: report for report, _, _ in reports}
    # Each organization shows its characteristic behaviour:
    assert by_org["timing-first"].mismatches > 0  # injected bugs caught
    assert by_org["speculative-functional-first"].rollbacks > 0
    assert by_org["timing-directed"].cpi > by_org["functional-first"].cpi
