"""Experiment T3 — Table III: costs of detail (host ops / sim instruction).

Paper (host x86 instructions): base 104.0-143.6; decode info +46-63;
full info +150-268; block-call -50 (negative!); multiple calls +213-238;
speculation +15-33.  Our host unit is executed CPython bytecode
operations; the structure to reproduce is the sign and ranking of each
increment: information costs are real but modest, batching into blocks
*saves* work, splitting into seven calls is the most expensive axis, and
speculation is the cheapest.
"""

from repro.harness import render_table
from repro.harness.hostops import CostsOfDetail

from conftest import ISAS

_COLUMNS = {}


def test_table3_measure(benchmark, publish, publish_json):
    columns = benchmark.pedantic(
        lambda: [CostsOfDetail.measure(isa) for isa in ISAS],
        rounds=1,
        iterations=1,
    )
    for column in columns:
        _COLUMNS[column.isa] = column
    publish_json(
        "T3",
        {
            "experiment": "table3_costs_of_detail",
            "unit": "executed Python bytecode ops per simulated instruction",
            "costs": {
                c.isa: {
                    "base": c.base,
                    "incr_decode_info": c.incr_decode_info,
                    "incr_full_info": c.incr_full_info,
                    "incr_block_call": c.incr_block_call,
                    "incr_multiple_calls": c.incr_multiple_calls,
                    "incr_speculation": c.incr_speculation,
                }
                for c in columns
            },
        },
    )
    rows = [
        ["Base cost for instruction"] + [round(c.base, 1) for c in columns],
        ["Incremental cost of decode information"]
        + [round(c.incr_decode_info, 1) for c in columns],
        ["Incremental cost of full information"]
        + [round(c.incr_full_info, 1) for c in columns],
        ["Incremental cost of block-call"]
        + [round(c.incr_block_call, 1) for c in columns],
        ["Incremental cost of multiple calls"]
        + [round(c.incr_multiple_calls, 1) for c in columns],
        ["Incremental cost of speculation"]
        + [round(c.incr_speculation, 1) for c in columns],
    ]
    publish(
        "table3_costs_of_detail",
        render_table(
            "Table III (analogue): costs of detail "
            "(executed Python bytecode ops per simulated instruction)",
            ["Cost"] + list(ISAS),
            rows,
            float_format="{:.1f}",
        ),
    )


def test_cost_structure_matches_paper(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for isa in ISAS:
        c = _COLUMNS[isa]
        assert c.base > 0
        # information has a cost, and more information costs more
        assert c.incr_full_info > 0
        assert c.incr_full_info >= c.incr_decode_info
        # block batching is a *negative* incremental cost (paper: ~-50)
        assert c.incr_block_call < 0
        # splitting execution into seven calls is the most expensive axis
        assert c.incr_multiple_calls > c.incr_full_info
        # speculation is the least important element (paper SV-E)
        assert c.incr_speculation < c.incr_multiple_calls
