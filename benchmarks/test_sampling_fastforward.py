"""Experiment A3 — the sampling motivation from SI / SII-C.

"Timing simulators which support sampling ... 'fast-forward' through the
rest of the time, performing only functional simulation ... functional
simulation can be the bottleneck for simulator speed."  With the
single-specification principle the fast-forward interface is just a
second buildset.  We compare sampling with a Block/Min fast-forward
interface against running the detailed Step-driven pipeline everywhere.
"""

import time

from repro.harness import render_table
from repro.isa.base import get_bundle
from repro.sysemu.loader import load_image
from repro.sysemu.syscalls import OSEmulator
from repro.timing import SamplingSimulator, TimingDirectedSimulator
from repro.workloads import SUITE, assemble_kernel

from conftest import generator

ISA = "alpha"
KERNEL = SUITE["checksum"]
N = 2500


def _measure():
    bundle = get_bundle(ISA)
    image = assemble_kernel(ISA, KERNEL, N)

    detailed = TimingDirectedSimulator(
        generator(ISA, "step_all"), OSEmulator(bundle.abi)
    )
    load_image(detailed.state, image, bundle.abi)
    start = time.perf_counter()
    detailed_report = detailed.run(100_000_000)
    detailed_elapsed = time.perf_counter() - start

    sampler = SamplingSimulator(
        generator(ISA, "step_all"),
        generator(ISA, "block_min"),
        syscall_handler=OSEmulator(bundle.abi),
        detail_window=150,
        fastforward_window=1350,  # 10% detailed, as SMARTS-style sampling
    )
    load_image(sampler.state, image, bundle.abi)
    # warm the fast-forward code cache so translation cost (amortized in
    # any long run) does not dominate this short one
    snap = sampler.state.snapshot()
    sampler.run(100_000_000)
    sampler.state.restore(snap)
    sampling_report = sampler.run(100_000_000)
    return detailed_report, detailed_elapsed, sampling_report


def test_sampling_speedup(benchmark, publish, publish_json):
    detailed_report, detailed_elapsed, sampling_report = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    speedup = detailed_elapsed / sampling_report.elapsed
    detailed_cpi = detailed_report.cpi
    sampled_cpi = sampling_report.estimated_cpi
    publish_json(
        "A3",
        {
            "experiment": "sampling_fastforward",
            "kernel": "checksum",
            "detailed": {
                "instructions": detailed_report.instructions,
                "seconds": detailed_elapsed,
                "cpi": detailed_cpi,
            },
            "sampling": {
                "instructions": sampling_report.instructions,
                "seconds": sampling_report.elapsed,
                "cpi_estimate": sampled_cpi,
            },
            "speedup": speedup,
        },
    )
    rows = [
        ["detailed everywhere (Step/All)", detailed_report.instructions,
         round(detailed_elapsed, 3), round(detailed_cpi, 3)],
        ["sampling (10% Step/All + 90% Block/Min)",
         sampling_report.instructions, round(sampling_report.elapsed, 3),
         round(sampled_cpi, 3)],
    ]
    publish(
        "sampling_fastforward",
        render_table(
            "A3: sampling with a tailored fast-forward interface (Alpha)",
            ["Configuration", "Instructions", "Seconds", "CPI estimate"],
            rows,
            float_format="{:.3f}",
        ),
    )
    print(f"\nsampling wall-clock speedup: {speedup:.2f}x")
    assert sampling_report.exit_status is not None
    assert speedup > 2.0
    # the sampled CPI estimate stays close to ground truth
    assert abs(sampled_cpi - detailed_cpi) / detailed_cpi < 0.25
